//! # Multi-GPU Graph Analytics
//!
//! A Rust reproduction of Pan, Wang, Wu, Yang & Owens, *"Multi-GPU Graph
//! Analytics"* (IPDPS 2017): a single-node multi-GPU programmable
//! graph-processing framework in which unmodified single-GPU primitives are
//! extended to multiple GPUs by framework-managed frontier splitting,
//! packaging, pushing and combining at bulk-synchronous iteration
//! boundaries.
//!
//! Real GPUs are replaced by the [`vgpu`] virtual-GPU substrate: every
//! algorithm executes for real on one CPU thread per virtual device, while a
//! calibrated cost model meters kernels, transfers and synchronization so
//! that the paper's BSP-scale behaviour (W + H·g + S·l) is reproducible on
//! any machine. See `DESIGN.md` for the full substitution table.
//!
//! Minimal usage — partition a graph over four virtual GPUs and run
//! multi-GPU BFS:
//!
//! ```
//! use mgpu_graph_analytics::core::{EnactConfig, Runner};
//! use mgpu_graph_analytics::gen::{rmat, RmatParams};
//! use mgpu_graph_analytics::graph::{Csr, GraphBuilder};
//! use mgpu_graph_analytics::partition::{DistGraph, Duplication, RandomPartitioner};
//! use mgpu_graph_analytics::primitives::Bfs;
//! use mgpu_graph_analytics::vgpu::{HardwareProfile, SimSystem};
//!
//! let graph: Csr<u32, u64> =
//!     GraphBuilder::undirected(&rmat(10, 8, RmatParams::paper(), 42));
//! let dist = DistGraph::partition(&graph, &RandomPartitioner::default(), 4, Duplication::All);
//! let system = SimSystem::homogeneous(4, HardwareProfile::k40());
//! let mut runner = Runner::new(system, &dist, Bfs::default(), EnactConfig::default())?;
//! let report = runner.enact(Some(0))?;
//! assert!(report.iterations > 0);
//! assert!(report.sim_time_us > 0.0);
//! # Ok::<(), mgpu_graph_analytics::vgpu::VgpuError>(())
//! ```
//!
//! This facade crate re-exports the workspace crates under stable names:
//!
//! * [`vgpu`] — devices, streams, memory pools, interconnect, BSP counters.
//! * [`graph`] — COO/CSR/CSC structures, builders, statistics.
//! * [`gen`] — R-MAT and analog dataset generators.
//! * [`partition`] — random / biased-random / multilevel partitioners and
//!   multi-GPU host-graph construction.
//! * [`core`] — frontiers, advance/filter operators, the multi-GPU enactor.
//! * [`primitives`] — BFS, DOBFS, SSSP, BC, CC, PageRank.
//! * [`baselines`] — re-implemented comparison mechanisms (2D BFS,
//!   hardwired DOBFS, out-of-core GAS, hybrid placement).

pub use mgpu_baselines as baselines;
pub use mgpu_core as core;
pub use mgpu_gen as gen;
pub use mgpu_graph as graph;
pub use mgpu_partition as partition;
pub use mgpu_primitives as primitives;
pub use vgpu;
