//! Coordinate-format edge lists: the interchange format between generators,
//! partitioners and the CSR builder.

use crate::ids::Id;

/// An edge list with an explicit vertex-count bound and optional integer
/// edge weights (the paper's SSSP uses "randomly generated integers from
/// [0, 64]").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coo<V: Id = u32> {
    /// Number of vertices; all endpoints are `< n_vertices`.
    pub n_vertices: usize,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(V, V)>,
    /// Optional per-edge weights, parallel to `edges`.
    pub weights: Option<Vec<u32>>,
}

impl<V: Id> Coo<V> {
    /// An empty edge list over `n_vertices` vertices.
    pub fn new(n_vertices: usize) -> Self {
        Coo { n_vertices, edges: Vec::new(), weights: None }
    }

    /// Build from raw parts, validating endpoints and weight arity.
    pub fn from_edges(n_vertices: usize, edges: Vec<(V, V)>, weights: Option<Vec<u32>>) -> Self {
        if let Some(w) = &weights {
            assert_eq!(w.len(), edges.len(), "one weight per edge");
        }
        debug_assert!(
            edges.iter().all(|&(s, d)| s.idx() < n_vertices && d.idx() < n_vertices),
            "edge endpoint out of range"
        );
        Coo { n_vertices, edges, weights }
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Append an unweighted edge.
    pub fn push(&mut self, src: V, dst: V) {
        debug_assert!(src.idx() < self.n_vertices && dst.idx() < self.n_vertices);
        debug_assert!(self.weights.is_none(), "mixing weighted and unweighted edges");
        self.edges.push((src, dst));
    }

    /// Append a weighted edge.
    pub fn push_weighted(&mut self, src: V, dst: V, w: u32) {
        debug_assert!(src.idx() < self.n_vertices && dst.idx() < self.n_vertices);
        self.edges.push((src, dst));
        self.weights.get_or_insert_with(Vec::new).push(w);
    }

    /// Iterate `(src, dst, weight)` with weight defaulting to 1.
    pub fn iter_weighted(&self) -> impl Iterator<Item = (V, V, u32)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(move |(i, &(s, d))| (s, d, self.weights.as_ref().map_or(1, |w| w[i])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut coo = Coo::<u32>::new(4);
        coo.push(0, 1);
        coo.push(1, 2);
        assert_eq!(coo.n_edges(), 2);
        assert_eq!(coo.n_vertices, 4);
    }

    #[test]
    fn weighted_iteration_defaults_to_one() {
        let coo = Coo::<u32>::from_edges(3, vec![(0, 1), (1, 2)], None);
        let ws: Vec<u32> = coo.iter_weighted().map(|(_, _, w)| w).collect();
        assert_eq!(ws, vec![1, 1]);
    }

    #[test]
    fn weighted_edges_keep_weights() {
        let mut coo = Coo::<u32>::new(3);
        coo.push_weighted(0, 1, 7);
        coo.push_weighted(1, 2, 9);
        let all: Vec<_> = coo.iter_weighted().collect();
        assert_eq!(all, vec![(0, 1, 7), (1, 2, 9)]);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_arity_is_checked() {
        let _ = Coo::<u32>::from_edges(3, vec![(0, 1)], Some(vec![1, 2]));
    }
}
