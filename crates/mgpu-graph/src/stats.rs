//! Graph statistics: degrees and the sampled pseudo-diameter of Table II.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::csr::Csr;
use crate::ids::Id;

/// Degree distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub n_vertices: usize,
    /// Number of directed edges.
    pub n_edges: usize,
    /// Average out-degree (the "edge factor" for undirected graphs is half
    /// this for generator parlance, but Table II counts directed edges).
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Number of isolated (zero out-degree) vertices.
    pub isolated: usize,
}

/// Compute degree statistics.
pub fn degree_stats<V: Id, O: Id>(g: &Csr<V, O>) -> DegreeStats {
    let n = g.n_vertices();
    let mut max_degree = 0;
    let mut isolated = 0;
    for v in 0..n {
        let d = g.degree(V::from_usize(v));
        max_degree = max_degree.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        n_vertices: n,
        n_edges: g.n_edges(),
        avg_degree: if n == 0 { 0.0 } else { g.n_edges() as f64 / n as f64 },
        max_degree,
        isolated,
    }
}

/// Sequential BFS returning per-vertex depth (`usize::MAX` = unreached) and
/// the eccentricity of the source. This is the reference traversal that the
/// framework's BFS output is validated against.
pub fn bfs_depths<V: Id, O: Id>(g: &Csr<V, O>, src: V) -> (Vec<usize>, usize) {
    let n = g.n_vertices();
    let mut depth = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    depth[src.idx()] = 0;
    queue.push_back(src);
    let mut ecc = 0;
    while let Some(v) = queue.pop_front() {
        let dv = depth[v.idx()];
        for &u in g.neighbors(v) {
            if depth[u.idx()] == usize::MAX {
                depth[u.idx()] = dv + 1;
                ecc = ecc.max(dv + 1);
                queue.push_back(u);
            }
        }
    }
    (depth, ecc)
}

/// Estimate the diameter by running BFS from `samples` random sources and
/// taking the maximum observed eccentricity — the paper's "approximated
/// diameter computed by multiple runs of random-sourced BFS" (Table II,
/// entries marked ∗). A lower bound on the true diameter.
pub fn estimate_diameter<V: Id, O: Id>(g: &Csr<V, O>, samples: usize, seed: u64) -> usize {
    let n = g.n_vertices();
    if n == 0 {
        return 0;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best = 0;
    for _ in 0..samples {
        let src = V::from_usize(rng.gen_range(0..n));
        let (_, ecc) = bfs_depths(g, src);
        best = best.max(ecc);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildOptions, GraphBuilder};
    use crate::coo::Coo;

    fn path(n: usize) -> Csr<u32, u64> {
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        GraphBuilder::build(&Coo::from_edges(n, edges, None), BuildOptions::default())
    }

    #[test]
    fn degree_stats_on_a_path() {
        let g = path(5);
        let s = degree_stats(&g);
        assert_eq!(s.n_vertices, 5);
        assert_eq!(s.n_edges, 8, "undirected path has 2(n-1) directed edges");
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 0);
    }

    #[test]
    fn bfs_depths_on_a_path() {
        let g = path(6);
        let (d, ecc) = bfs_depths(&g, 0u32);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ecc, 5);
    }

    #[test]
    fn bfs_leaves_unreachable_at_max() {
        let coo = Coo::from_edges(4, vec![(0, 1)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (d, _) = bfs_depths(&g, 0u32);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn diameter_estimate_is_a_lower_bound_and_finds_path_diameter() {
        let g = path(16);
        let est = estimate_diameter(&g, 16, 42);
        assert!(est <= 15);
        assert!(est >= 8, "with 16 samples on 16 vertices some source is near an end");
    }

    #[test]
    fn diameter_of_empty_graph_is_zero() {
        let g = Csr::<u32, u64>::empty(0);
        assert_eq!(estimate_diameter(&g, 4, 1), 0);
    }
}
