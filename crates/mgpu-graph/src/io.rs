//! MatrixMarket I/O — the format of the UF Sparse Matrix Collection the
//! paper's real datasets come from (§VII-A).
//!
//! Supports the coordinate format variants graph work encounters:
//! `matrix coordinate {pattern|integer|real} {general|symmetric}`. Symmetric
//! matrices store one triangle; the reader mirrors it (the builder's
//! undirected conversion would otherwise do the same). Indices are
//! 1-based on disk, 0-based in memory.

use std::io::{BufRead, Write};

use crate::coo::Coo;
use crate::ids::Id;

/// Errors from MatrixMarket parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "i/o error: {e}"),
            MtxError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> MtxError {
    MtxError::Parse { line, message: message.into() }
}

/// Read a MatrixMarket coordinate file into an edge list. Weights are kept
/// for `integer` files (clamped to `u32`), synthesized as 1 for `real`
/// (graph frameworks treat UF `real` values as topology), and absent for
/// `pattern`.
pub fn read_mtx<V: Id, R: BufRead>(reader: R) -> Result<Coo<V>, MtxError> {
    let mut lines = reader.lines().enumerate();

    // header
    let (i, header) =
        lines.next().ok_or_else(|| parse_err(1, "empty file")).and_then(|(i, l)| Ok((i, l?)))?;
    let header = header.to_ascii_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(i + 1, "expected '%%MatrixMarket matrix …' header"));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err(i + 1, format!("unsupported storage '{}'", fields[2])));
    }
    let value_kind = fields[3];
    if !matches!(value_kind, "pattern" | "integer" | "real") {
        return Err(parse_err(i + 1, format!("unsupported value type '{value_kind}'")));
    }
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(i + 1, format!("unsupported symmetry '{other}'"))),
    };

    // size line (after comments)
    let mut size: Option<(usize, usize, usize)> = None;
    let mut rest = Vec::new();
    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        if size.is_none() {
            let parts: Vec<&str> = trimmed.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(parse_err(i + 1, "size line must be 'rows cols nnz'"));
            }
            let rows: usize =
                parts[0].parse().map_err(|e| parse_err(i + 1, format!("bad rows: {e}")))?;
            let cols: usize =
                parts[1].parse().map_err(|e| parse_err(i + 1, format!("bad cols: {e}")))?;
            let nnz: usize =
                parts[2].parse().map_err(|e| parse_err(i + 1, format!("bad nnz: {e}")))?;
            let n = rows.max(cols);
            // Vertex ids run 0..n; the largest, n-1, must fit the id type
            // or `V::from_usize` would truncate (u32) downstream.
            if n > 0 && n - 1 > V::MAX_AS_USIZE {
                return Err(parse_err(
                    i + 1,
                    format!("{n} vertices exceed the {}-byte vertex id type", V::BYTES),
                ));
            }
            size = Some((n, n, nnz));
        } else {
            rest.push((i + 1, trimmed.to_string()));
        }
    }
    let (n, _, nnz) = size.ok_or_else(|| parse_err(0, "missing size line"))?;
    if rest.len() != nnz {
        return Err(parse_err(
            rest.last().map_or(0, |(i, _)| *i),
            format!("expected {nnz} entries, found {}", rest.len()),
        ));
    }

    let weighted = value_kind == "integer";
    let mut coo = Coo::<V>::new(n);
    if weighted {
        coo.weights = Some(Vec::with_capacity(nnz * if symmetric { 2 } else { 1 }));
    }
    for (lineno, entry) in rest {
        let parts: Vec<&str> = entry.split_whitespace().collect();
        let want = match value_kind {
            "pattern" => 2,
            _ => 3,
        };
        if parts.len() < want {
            return Err(parse_err(lineno, format!("expected {want} fields")));
        }
        let r: usize = parts[0].parse().map_err(|e| parse_err(lineno, format!("bad row: {e}")))?;
        let c: usize = parts[1].parse().map_err(|e| parse_err(lineno, format!("bad col: {e}")))?;
        if r == 0 || c == 0 || r > n || c > n {
            return Err(parse_err(lineno, format!("index out of range: {r} {c} (n={n})")));
        }
        let w = if weighted {
            let raw: i64 =
                parts[2].parse().map_err(|e| parse_err(lineno, format!("bad value: {e}")))?;
            Some(raw.unsigned_abs().min(u32::MAX as u64) as u32)
        } else {
            if value_kind == "real" {
                // The value is discarded (topology-only), but a file whose
                // entries aren't numbers — or are NaN/inf — is corrupt, not
                // a graph.
                let v: f64 =
                    parts[2].parse().map_err(|e| parse_err(lineno, format!("bad value: {e}")))?;
                if !v.is_finite() {
                    return Err(parse_err(lineno, format!("non-finite value '{}'", parts[2])));
                }
            }
            None
        };
        let (src, dst) = (V::from_usize(r - 1), V::from_usize(c - 1));
        coo.edges.push((src, dst));
        if let (Some(ws), Some(w)) = (&mut coo.weights, w) {
            ws.push(w);
        }
        if symmetric && r != c {
            coo.edges.push((dst, src));
            if let (Some(ws), Some(w)) = (&mut coo.weights, w) {
                ws.push(w);
            }
        }
    }
    Ok(coo)
}

/// Write an edge list as `matrix coordinate {pattern|integer} general`.
pub fn write_mtx<V: Id, W: Write>(coo: &Coo<V>, mut out: W) -> std::io::Result<()> {
    let kind = if coo.weights.is_some() { "integer" } else { "pattern" };
    writeln!(out, "%%MatrixMarket matrix coordinate {kind} general")?;
    writeln!(out, "% written by mgpu-graph")?;
    writeln!(out, "{} {} {}", coo.n_vertices, coo.n_vertices, coo.n_edges())?;
    for (s, d, w) in coo.iter_weighted() {
        if coo.weights.is_some() {
            writeln!(out, "{} {} {}", s.idx() + 1, d.idx() + 1, w)?;
        } else {
            writeln!(out, "{} {}", s.idx() + 1, d.idx() + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(s: &str) -> Result<Coo<u32>, MtxError> {
        read_mtx(BufReader::new(s.as_bytes()))
    }

    #[test]
    fn reads_pattern_general() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate pattern general\n\
             % a comment\n\
             3 3 2\n\
             1 2\n\
             3 1\n",
        )
        .unwrap();
        assert_eq!(coo.n_vertices, 3);
        assert_eq!(coo.edges, vec![(0, 1), (2, 0)]);
        assert!(coo.weights.is_none());
    }

    #[test]
    fn symmetric_mirrors_off_diagonal_only() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate pattern symmetric\n\
             3 3 2\n\
             2 1\n\
             3 3\n",
        )
        .unwrap();
        assert_eq!(coo.edges, vec![(1, 0), (0, 1), (2, 2)]);
    }

    #[test]
    fn integer_values_become_weights() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate integer general\n\
             2 2 2\n\
             1 2 7\n\
             2 1 -3\n",
        )
        .unwrap();
        assert_eq!(coo.weights, Some(vec![7, 3]));
    }

    #[test]
    fn real_values_are_treated_as_topology() {
        let coo = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             2 2 1\n\
             1 2 0.5\n",
        )
        .unwrap();
        assert_eq!(coo.edges, vec![(0, 1)]);
        assert!(coo.weights.is_none());
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(parse("%%NotMM matrix coordinate pattern general\n1 1 0\n").is_err());
        assert!(parse("%%MatrixMarket matrix array real general\n1 1 0\n").is_err());
    }

    #[test]
    fn out_of_range_and_count_mismatch_are_rejected() {
        let err =
            parse("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n").unwrap_err();
        assert!(matches!(err, MtxError::Parse { .. }), "{err}");
        let err =
            parse("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn round_trip_weighted() {
        let mut coo = Coo::<u32>::new(4);
        coo.push_weighted(0, 1, 5);
        coo.push_weighted(3, 2, 9);
        let mut buf = Vec::new();
        write_mtx(&coo, &mut buf).unwrap();
        let back = read_mtx::<u32, _>(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.edges, coo.edges);
        assert_eq!(back.weights, coo.weights);
    }

    #[test]
    fn round_trip_pattern() {
        let coo = Coo::<u32>::from_edges(3, vec![(0, 2), (1, 0)], None);
        let mut buf = Vec::new();
        write_mtx(&coo, &mut buf).unwrap();
        let back = read_mtx::<u32, _>(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.edges, coo.edges);
    }

    #[test]
    fn truncated_headers_are_rejected_not_panicked() {
        for s in [
            "",
            "%%MatrixMarket",
            "%%MatrixMarket matrix",
            "%%MatrixMarket matrix coordinate",
            "%%MatrixMarket matrix coordinate pattern",
            "%%MatrixMarket matrix coordinate pattern general",
        ] {
            assert!(parse(s).is_err(), "{s:?} should be an error");
        }
    }

    #[test]
    fn vertex_count_exceeding_id_width_is_rejected() {
        // 2^33 vertices cannot be indexed by u32 ids.
        let err = parse("%%MatrixMarket matrix coordinate pattern general\n8589934592 1 0\n")
            .unwrap_err();
        assert!(err.to_string().contains("vertex id type"), "{err}");
        // …but fits u64 ids.
        assert!(read_mtx::<u64, _>(BufReader::new(
            "%%MatrixMarket matrix coordinate pattern general\n8589934592 1 0\n".as_bytes()
        ))
        .is_ok());
    }

    #[test]
    fn non_finite_real_values_are_rejected() {
        for v in ["nan", "NaN", "inf", "-inf", "infinity"] {
            let s = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 {v}\n");
            let err = parse(&s).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{v}: {err}");
        }
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 x7\n").is_err());
    }

    /// Property: `read_mtx` never panics, whatever the input — it returns
    /// `Ok` or a typed [`MtxError`]. Sweeps structured corruptions of a
    /// valid file (token splices, truncations) and raw byte soup, both
    /// driven by a deterministic splitmix64 stream.
    #[test]
    fn read_mtx_never_panics_on_corrupt_input() {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let template = "%%MatrixMarket matrix coordinate integer symmetric\n\
                        % comment\n\
                        4 4 3\n\
                        1 2 5\n\
                        3 1 -2\n\
                        4 4 9\n";
        let tokens = [
            "0",
            "-1",
            "999999999999999999999999",
            "4294967296",
            "nan",
            "inf",
            "1e308",
            "%",
            "%%MatrixMarket",
            "pattern",
            "symmetric",
            "\u{0}",
            "☃",
            " ",
            "\t",
            "18446744073709551615",
        ];
        let mut rng = 0x5eed_u64;
        for case in 0..500 {
            let mut s = template.to_string();
            match splitmix(&mut rng) % 3 {
                // truncate at a random byte (clamped to a char boundary)
                0 => {
                    let mut cut = (splitmix(&mut rng) as usize) % (s.len() + 1);
                    while !s.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    s.truncate(cut);
                }
                // splice a hostile token at a random whitespace gap
                1 => {
                    let gaps: Vec<usize> = s
                        .char_indices()
                        .filter(|&(_, c)| c == ' ' || c == '\n')
                        .map(|(i, _)| i)
                        .collect();
                    let at = gaps[(splitmix(&mut rng) as usize) % gaps.len()];
                    let tok = tokens[(splitmix(&mut rng) as usize) % tokens.len()];
                    s.insert_str(at, tok);
                }
                // raw byte soup (lossy-decoded so it is still &str input)
                _ => {
                    let len = (splitmix(&mut rng) as usize) % 200;
                    let bytes: Vec<u8> =
                        (0..len).map(|_| (splitmix(&mut rng) & 0xff) as u8).collect();
                    s = String::from_utf8_lossy(&bytes).into_owned();
                }
            }
            let outcome = std::panic::catch_unwind(|| {
                let _ = parse(&s);
                let _ = read_mtx::<u64, _>(BufReader::new(s.as_bytes()));
            });
            assert!(outcome.is_ok(), "case {case} panicked on input {s:?}");
        }
    }
}
