//! The preprocessing builder: COO → canonical CSR.
//!
//! The paper's experimental setup (§VII-A): "all graphs we use are converted
//! to undirected graphs. Self-loops and duplicated edges are removed." The
//! builder implements exactly that pipeline, with a parallel sort (rayon) for
//! large edge lists.

use rayon::prelude::*;

use crate::coo::Coo;
use crate::csr::{Csr, CsrError};
use crate::ids::Id;

/// Preprocessing switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Add the reverse of every edge (undirected conversion).
    pub symmetrize: bool,
    /// Drop `v → v` edges.
    pub remove_self_loops: bool,
    /// Drop duplicate `(src, dst)` pairs (keeping the first weight).
    pub dedup: bool,
    /// Sort each adjacency row by destination id (canonical order).
    pub sort_rows: bool,
}

impl Default for BuildOptions {
    /// The paper's preprocessing: undirected, no self-loops, no duplicates.
    fn default() -> Self {
        BuildOptions { symmetrize: true, remove_self_loops: true, dedup: true, sort_rows: true }
    }
}

impl BuildOptions {
    /// Keep the graph directed but still clean it.
    pub fn directed() -> Self {
        BuildOptions { symmetrize: false, ..Default::default() }
    }

    /// No preprocessing at all (trust the input).
    pub fn raw() -> Self {
        BuildOptions { symmetrize: false, remove_self_loops: false, dedup: false, sort_rows: false }
    }
}

/// A CSR at whichever offset width the graph needs: the narrow (u32) layout
/// when the final edge count fits 32 bits — the paper's fast path, whose
/// per-device cost model rewards the halved index bandwidth — widened to
/// u64 offsets otherwise. Built by [`GraphBuilder::build_auto`]; the check
/// is on the *post-preprocessing* edge count, and overflow always widens,
/// never truncates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrAuto<V: Id> {
    /// `Csr<V, u32>` — edge count fits 32-bit offsets.
    Narrow(Csr<V, u32>),
    /// `Csr<V, u64>` — the checked widening fallback.
    Wide(Csr<V, u64>),
}

impl<V: Id> CsrAuto<V> {
    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        match self {
            CsrAuto::Narrow(g) => g.n_vertices(),
            CsrAuto::Wide(g) => g.n_vertices(),
        }
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        match self {
            CsrAuto::Narrow(g) => g.n_edges(),
            CsrAuto::Wide(g) => g.n_edges(),
        }
    }

    /// Bytes per edge offset in the chosen layout.
    pub fn offset_bytes(&self) -> usize {
        match self {
            CsrAuto::Narrow(_) => 4,
            CsrAuto::Wide(_) => 8,
        }
    }

    /// Short label for reports ("u32" / "u64").
    pub fn label(&self) -> &'static str {
        match self {
            CsrAuto::Narrow(_) => "u32",
            CsrAuto::Wide(_) => "u64",
        }
    }

    /// The narrow graph, if that is what was built.
    pub fn narrow(&self) -> Option<&Csr<V, u32>> {
        match self {
            CsrAuto::Narrow(g) => Some(g),
            CsrAuto::Wide(_) => None,
        }
    }

    /// The wide graph, if the fallback engaged.
    pub fn wide(&self) -> Option<&Csr<V, u64>> {
        match self {
            CsrAuto::Wide(g) => Some(g),
            CsrAuto::Narrow(_) => None,
        }
    }
}

/// Stateless builder entry points.
pub struct GraphBuilder;

impl GraphBuilder {
    /// The shared preprocessing pipeline: symmetrize / clean / sort / dedup
    /// into a canonical edge list.
    fn preprocess<V: Id>(coo: &Coo<V>, options: BuildOptions) -> Coo<V> {
        let mut triples: Vec<(V, V, u32)> = coo.iter_weighted().collect();

        if options.symmetrize {
            let rev: Vec<(V, V, u32)> = triples.iter().map(|&(s, d, w)| (d, s, w)).collect();
            triples.extend(rev);
        }
        if options.remove_self_loops {
            triples.retain(|&(s, d, _)| s != d);
        }
        if options.dedup || options.sort_rows {
            // Stable parallel sort: for duplicates, the first-listed weight
            // survives the dedup below.
            triples.par_sort_by_key(|&(s, d, _)| (s, d));
        }
        if options.dedup {
            triples.dedup_by_key(|&mut (s, d, _)| (s, d));
        }

        let weighted = coo.weights.is_some();
        let edges: Vec<(V, V)> = triples.iter().map(|&(s, d, _)| (s, d)).collect();
        let weights = weighted.then(|| triples.iter().map(|&(_, _, w)| w).collect());
        Coo::from_edges(coo.n_vertices, edges, weights)
    }

    /// Apply `options` to `coo` and produce a CSR graph.
    pub fn build<V: Id, O: Id>(coo: &Coo<V>, options: BuildOptions) -> Csr<V, O> {
        Csr::from_coo(&Self::preprocess(coo, options))
    }

    /// The paper's default preprocessing.
    pub fn undirected<V: Id, O: Id>(coo: &Coo<V>) -> Csr<V, O> {
        Self::build(coo, BuildOptions::default())
    }

    /// The widening decision, generic over the narrow offset type `N` so
    /// tests can exercise the fallback with `u16` (a genuine u32 overflow
    /// would need a >4-billion-edge graph). `Ok` is the narrow build, `Err`
    /// the u64 fallback; a vertex-width overflow is not recoverable by
    /// widening offsets and panics with the typed error's message.
    fn narrow_or_widen<V: Id, N: Id>(clean: &Coo<V>) -> Result<Csr<V, N>, Csr<V, u64>> {
        match Csr::<V, N>::try_from_coo(clean) {
            Ok(g) => Ok(g),
            Err(CsrError::OffsetOverflow { .. }) => Err(Csr::from_coo(clean)),
            Err(e @ CsrError::VertexOverflow { .. }) => panic!("{e}"),
        }
    }

    /// [`GraphBuilder::build`] at the automatically chosen offset width:
    /// narrow (u32) when the preprocessed edge count fits, else the checked
    /// u64 fallback.
    pub fn build_auto<V: Id>(coo: &Coo<V>, options: BuildOptions) -> CsrAuto<V> {
        let clean = Self::preprocess(coo, options);
        match Self::narrow_or_widen::<V, u32>(&clean) {
            Ok(g) => CsrAuto::Narrow(g),
            Err(g) => CsrAuto::Wide(g),
        }
    }

    /// [`GraphBuilder::undirected`] at the automatically chosen offset width.
    pub fn undirected_auto<V: Id>(coo: &Coo<V>) -> CsrAuto<V> {
        Self::build_auto(coo, BuildOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messy() -> Coo<u32> {
        // duplicates, a self loop, directed edges
        Coo::from_edges(4, vec![(0, 1), (0, 1), (1, 1), (2, 3), (3, 2)], None)
    }

    #[test]
    fn default_build_symmetrizes_dedups_and_removes_loops() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&messy());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn directed_build_keeps_direction() {
        let g: Csr<u32, u64> = GraphBuilder::build(&messy(), BuildOptions::directed());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[] as &[u32], "self-loop removed, no reverse edge added");
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn raw_build_preserves_everything() {
        let g: Csr<u32, u64> = GraphBuilder::build(&messy(), BuildOptions::raw());
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn dedup_keeps_first_weight() {
        let coo = Coo::from_edges(2, vec![(0, 1), (0, 1)], Some(vec![7, 9]));
        let g: Csr<u32, u64> =
            GraphBuilder::build(&coo, BuildOptions { symmetrize: false, ..Default::default() });
        let w: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(w, vec![(1, 7)]);
    }

    #[test]
    fn symmetrized_weights_mirror() {
        let coo = Coo::from_edges(3, vec![(0, 1), (1, 2)], Some(vec![5, 6]));
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        assert_eq!(g.neighbors_weighted(1).collect::<Vec<_>>(), vec![(0, 5), (2, 6)]);
    }

    #[test]
    fn rows_are_sorted() {
        let coo = Coo::from_edges(5, vec![(0, 4), (0, 2), (0, 3), (0, 1)], None);
        let g: Csr<u32, u64> =
            GraphBuilder::build(&coo, BuildOptions { symmetrize: false, ..Default::default() });
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn auto_build_is_narrow_when_edges_fit() {
        let auto = GraphBuilder::undirected_auto(&messy());
        let expected: Csr<u32, u32> = GraphBuilder::undirected(&messy());
        assert_eq!(auto.label(), "u32");
        assert_eq!(auto.offset_bytes(), 4);
        assert_eq!(auto.n_vertices(), 4);
        assert_eq!(auto.n_edges(), 4);
        assert_eq!(auto.narrow(), Some(&expected));
        assert!(auto.wide().is_none());
    }

    #[test]
    fn widening_fallback_preserves_every_edge() {
        // A star too big for u16 offsets exercises the fallback arm; the
        // widened build must match a direct u64 build edge for edge — the
        // overflow may never truncate.
        let edges: Vec<(u32, u32)> = (1..=70_000).map(|d| (0, d)).collect();
        let coo = Coo::from_edges(70_001, edges, None);
        assert!(matches!(
            Csr::<u32, u16>::try_from_coo(&coo),
            Err(CsrError::OffsetOverflow { edges: 70_000, .. })
        ));
        let wide = GraphBuilder::narrow_or_widen::<u32, u16>(&coo)
            .expect_err("70k edges must not fit u16 offsets");
        let direct: Csr<u32, u64> = Csr::from_coo(&coo);
        assert_eq!(wide, direct);
        assert_eq!(wide.n_edges(), 70_000);
        assert_eq!(wide.degree(0), 70_000);
    }

    #[test]
    #[should_panic(expected = "vertex count")]
    fn vertex_overflow_panics_rather_than_widening() {
        // 70k vertices cannot be addressed by u16 ids; widening the offset
        // type cannot fix that, so the builder refuses loudly.
        let coo = Coo::<u16>::from_edges(70_000, vec![], None);
        let _ = GraphBuilder::narrow_or_widen::<u16, u16>(&coo);
    }
}
