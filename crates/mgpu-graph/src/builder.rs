//! The preprocessing builder: COO → canonical CSR.
//!
//! The paper's experimental setup (§VII-A): "all graphs we use are converted
//! to undirected graphs. Self-loops and duplicated edges are removed." The
//! builder implements exactly that pipeline, with a parallel sort (rayon) for
//! large edge lists.

use rayon::prelude::*;

use crate::coo::Coo;
use crate::csr::Csr;
use crate::ids::Id;

/// Preprocessing switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Add the reverse of every edge (undirected conversion).
    pub symmetrize: bool,
    /// Drop `v → v` edges.
    pub remove_self_loops: bool,
    /// Drop duplicate `(src, dst)` pairs (keeping the first weight).
    pub dedup: bool,
    /// Sort each adjacency row by destination id (canonical order).
    pub sort_rows: bool,
}

impl Default for BuildOptions {
    /// The paper's preprocessing: undirected, no self-loops, no duplicates.
    fn default() -> Self {
        BuildOptions { symmetrize: true, remove_self_loops: true, dedup: true, sort_rows: true }
    }
}

impl BuildOptions {
    /// Keep the graph directed but still clean it.
    pub fn directed() -> Self {
        BuildOptions { symmetrize: false, ..Default::default() }
    }

    /// No preprocessing at all (trust the input).
    pub fn raw() -> Self {
        BuildOptions { symmetrize: false, remove_self_loops: false, dedup: false, sort_rows: false }
    }
}

/// Stateless builder entry points.
pub struct GraphBuilder;

impl GraphBuilder {
    /// Apply `options` to `coo` and produce a CSR graph.
    pub fn build<V: Id, O: Id>(coo: &Coo<V>, options: BuildOptions) -> Csr<V, O> {
        let mut triples: Vec<(V, V, u32)> = coo.iter_weighted().collect();

        if options.symmetrize {
            let rev: Vec<(V, V, u32)> = triples.iter().map(|&(s, d, w)| (d, s, w)).collect();
            triples.extend(rev);
        }
        if options.remove_self_loops {
            triples.retain(|&(s, d, _)| s != d);
        }
        if options.dedup || options.sort_rows {
            // Stable parallel sort: for duplicates, the first-listed weight
            // survives the dedup below.
            triples.par_sort_by_key(|&(s, d, _)| (s, d));
        }
        if options.dedup {
            triples.dedup_by_key(|&mut (s, d, _)| (s, d));
        }

        let weighted = coo.weights.is_some();
        let edges: Vec<(V, V)> = triples.iter().map(|&(s, d, _)| (s, d)).collect();
        let weights = weighted.then(|| triples.iter().map(|&(_, _, w)| w).collect());
        Csr::from_coo(&Coo::from_edges(coo.n_vertices, edges, weights))
    }

    /// The paper's default preprocessing.
    pub fn undirected<V: Id, O: Id>(coo: &Coo<V>) -> Csr<V, O> {
        Self::build(coo, BuildOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn messy() -> Coo<u32> {
        // duplicates, a self loop, directed edges
        Coo::from_edges(4, vec![(0, 1), (0, 1), (1, 1), (2, 3), (3, 2)], None)
    }

    #[test]
    fn default_build_symmetrizes_dedups_and_removes_loops() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&messy());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn directed_build_keeps_direction() {
        let g: Csr<u32, u64> = GraphBuilder::build(&messy(), BuildOptions::directed());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[] as &[u32], "self-loop removed, no reverse edge added");
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn raw_build_preserves_everything() {
        let g: Csr<u32, u64> = GraphBuilder::build(&messy(), BuildOptions::raw());
        assert_eq!(g.n_edges(), 5);
        assert_eq!(g.neighbors(1), &[1]);
    }

    #[test]
    fn dedup_keeps_first_weight() {
        let coo = Coo::from_edges(2, vec![(0, 1), (0, 1)], Some(vec![7, 9]));
        let g: Csr<u32, u64> =
            GraphBuilder::build(&coo, BuildOptions { symmetrize: false, ..Default::default() });
        let w: Vec<_> = g.neighbors_weighted(0).collect();
        assert_eq!(w, vec![(1, 7)]);
    }

    #[test]
    fn symmetrized_weights_mirror() {
        let coo = Coo::from_edges(3, vec![(0, 1), (1, 2)], Some(vec![5, 6]));
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        assert_eq!(g.neighbors_weighted(1).collect::<Vec<_>>(), vec![(0, 5), (2, 6)]);
    }

    #[test]
    fn rows_are_sorted() {
        let coo = Coo::from_edges(5, vec![(0, 4), (0, 2), (0, 3), (0, 1)], None);
        let g: Csr<u32, u64> =
            GraphBuilder::build(&coo, BuildOptions { symmetrize: false, ..Default::default() });
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }
}
