//! Compressed sparse row adjacency — the device-resident graph format.

use crate::coo::Coo;
use crate::ids::Id;

/// Why a graph cannot be represented at the requested index widths. The
/// narrow (u32) CSR is the paper's fast path (Table V: 64-bit ids "double
/// bandwidth requirements and our performance drops accordingly"); when a
/// graph exceeds the 32-bit range the builder must *widen*, never silently
/// truncate — these errors are how the checked fallback is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrError {
    /// The edge count does not fit the offset type `O`.
    OffsetOverflow {
        /// Edges the graph has.
        edges: usize,
        /// Largest count the offset type can address.
        max: usize,
    },
    /// The vertex count does not fit the vertex-id type `V` (the last vertex
    /// id would be unaddressable). Widening the *offset* type cannot fix
    /// this; the vertex type itself is too narrow.
    VertexOverflow {
        /// Vertices the graph has.
        vertices: usize,
        /// Largest vertex count the id type can address.
        max: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::OffsetOverflow { edges, max } => {
                write!(f, "edge count {edges} does not fit in the offset type (max {max})")
            }
            CsrError::VertexOverflow { vertices, max } => {
                write!(f, "vertex count {vertices} does not fit in the vertex id type (max {max})")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// A CSR graph with vertex ids of type `V` and edge offsets of type `O`.
///
/// `O` must be wide enough for `n_edges`; the builder checks this. The
/// paper's "32bit eID / 64bit eID / 64bit vID" variants of Table V are
/// `Csr<u32, u32>`, `Csr<u32, u64>` and `Csr<u64, u64>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<V: Id = u32, O: Id = u64> {
    row_offsets: Vec<O>,
    col_indices: Vec<V>,
    weights: Option<Vec<u32>>,
}

impl<V: Id, O: Id> Csr<V, O> {
    /// Build directly from parts (offsets must be monotonically
    /// non-decreasing, starting at 0 and ending at `col_indices.len()`).
    pub fn from_parts(row_offsets: Vec<O>, col_indices: Vec<V>, weights: Option<Vec<u32>>) -> Self {
        assert!(!row_offsets.is_empty(), "row offsets need at least the terminating entry");
        assert_eq!(row_offsets[0].idx(), 0, "offsets start at 0");
        assert_eq!(
            row_offsets.last().unwrap().idx(),
            col_indices.len(),
            "offsets must end at the edge count"
        );
        debug_assert!(row_offsets.windows(2).all(|w| w[0] <= w[1]), "offsets non-decreasing");
        if let Some(w) = &weights {
            assert_eq!(w.len(), col_indices.len(), "one weight per edge");
        }
        Csr { row_offsets, col_indices, weights }
    }

    /// An edgeless graph over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Csr { row_offsets: vec![O::zero(); n + 1], col_indices: Vec::new(), weights: None }
    }

    /// Build from an edge list by counting sort (stable: preserves the input
    /// order of parallel edges within a row). `O(|V| + |E|)`. Panics on
    /// index-width overflow; [`Csr::try_from_coo`] is the checked variant
    /// the auto-widening builder uses.
    pub fn from_coo(coo: &Coo<V>) -> Self {
        Self::try_from_coo(coo).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Csr::from_coo`] with a typed width check: errors (never truncates)
    /// when the edge count overflows `O` or the vertex count overflows `V`.
    pub fn try_from_coo(coo: &Coo<V>) -> Result<Self, CsrError> {
        let n = coo.n_vertices;
        if coo.n_edges() > O::MAX_AS_USIZE {
            return Err(CsrError::OffsetOverflow { edges: coo.n_edges(), max: O::MAX_AS_USIZE });
        }
        // ids run 0..n, so the largest id is n-1; MAX_AS_USIZE+1 vertices fit
        if n > 0 && n - 1 > V::MAX_AS_USIZE {
            return Err(CsrError::VertexOverflow {
                vertices: n,
                max: V::MAX_AS_USIZE.saturating_add(1),
            });
        }
        let mut degree = vec![0usize; n];
        for &(s, _) in &coo.edges {
            degree[s.idx()] += 1;
        }
        let mut offsets = vec![O::zero(); n + 1];
        let mut acc = 0usize;
        for v in 0..n {
            offsets[v] = O::from_usize(acc);
            acc += degree[v];
        }
        offsets[n] = O::from_usize(acc);
        let mut cols = vec![V::default(); coo.n_edges()];
        let mut wout = coo.weights.as_ref().map(|_| vec![0u32; coo.n_edges()]);
        let mut cursor: Vec<usize> = (0..n).map(|v| offsets[v].idx()).collect();
        for (i, &(s, d)) in coo.edges.iter().enumerate() {
            let at = cursor[s.idx()];
            cols[at] = d;
            if let (Some(wo), Some(wi)) = (&mut wout, &coo.weights) {
                wo[at] = wi[i];
            }
            cursor[s.idx()] += 1;
        }
        Ok(Csr { row_offsets: offsets, col_indices: cols, weights: wout })
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.col_indices.len()
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: V) -> usize {
        self.row_offsets[v.idx() + 1].idx() - self.row_offsets[v.idx()].idx()
    }

    /// The edge-id range of `v`'s out-edges.
    pub fn edge_range(&self, v: V) -> std::ops::Range<usize> {
        self.row_offsets[v.idx()].idx()..self.row_offsets[v.idx() + 1].idx()
    }

    /// Out-neighbors of `v`.
    pub fn neighbors(&self, v: V) -> &[V] {
        &self.col_indices[self.edge_range(v)]
    }

    /// Out-neighbors of `v` with weights (1 if unweighted).
    pub fn neighbors_weighted(&self, v: V) -> impl Iterator<Item = (V, u32)> + '_ {
        let r = self.edge_range(v);
        let cols = &self.col_indices[r.clone()];
        let ws = self.weights.as_deref();
        let start = r.start;
        cols.iter().enumerate().map(move |(i, &d)| (d, ws.map_or(1, |w| w[start + i])))
    }

    /// The weight of edge id `e` (1 if unweighted).
    pub fn edge_weight(&self, e: usize) -> u32 {
        self.weights.as_ref().map_or(1, |w| w[e])
    }

    /// Whether the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Raw row offsets (length `n_vertices + 1`).
    pub fn row_offsets(&self) -> &[O] {
        &self.row_offsets
    }

    /// Raw column indices (length `n_edges`).
    pub fn col_indices(&self) -> &[V] {
        &self.col_indices
    }

    /// The transpose (reverse graph): the CSC view used by pull-mode
    /// traversal. Weights follow their edges.
    pub fn transpose(&self) -> Csr<V, O> {
        let n = self.n_vertices();
        let mut coo = Coo::<V>::new(n);
        coo.edges.reserve(self.n_edges());
        if self.weights.is_some() {
            coo.weights = Some(Vec::with_capacity(self.n_edges()));
        }
        for v in 0..n {
            let v = V::from_usize(v);
            for e in self.edge_range(v) {
                let d = self.col_indices[e];
                coo.edges.push((d, v));
                if let Some(w) = &mut coo.weights {
                    w.push(self.weights.as_ref().unwrap()[e]);
                }
            }
        }
        Csr::from_coo(&coo)
    }

    /// In-memory footprint in bytes: what storing this graph costs a device
    /// (offsets + columns + weights). This is what partition subgraphs charge
    /// against device memory pools.
    pub fn bytes(&self) -> u64 {
        (self.row_offsets.len() * O::BYTES
            + self.col_indices.len() * V::BYTES
            + self.weights.as_ref().map_or(0, |w| w.len() * 4)) as u64
    }

    /// Sum of out-degrees of the given frontier — the advance workload size.
    pub fn frontier_out_degree(&self, frontier: &[V]) -> usize {
        frontier.iter().map(|&v| self.degree(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr<u32, u64> {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let coo = Coo::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)], None);
        Csr::from_coo(&coo)
    }

    #[test]
    fn from_coo_builds_correct_adjacency() {
        let g = diamond();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn counting_sort_is_stable_for_parallel_edges() {
        let coo = Coo::from_edges(2, vec![(0, 1), (0, 0), (0, 1)], Some(vec![10, 20, 30]));
        let g: Csr<u32, u64> = Csr::from_coo(&coo);
        assert_eq!(g.neighbors(0), &[1, 0, 1]);
        let ws: Vec<u32> = g.neighbors_weighted(0).map(|(_, w)| w).collect();
        assert_eq!(ws, vec![10, 20, 30]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(0), &[] as &[u32]);
        assert_eq!(t.transpose(), g, "transpose is an involution on canonical order");
    }

    #[test]
    fn transpose_carries_weights() {
        let coo = Coo::from_edges(3, vec![(0, 1), (1, 2)], Some(vec![5, 6]));
        let g: Csr<u32, u64> = Csr::from_coo(&coo);
        let t = g.transpose();
        let w: Vec<_> = t.neighbors_weighted(2).collect();
        assert_eq!(w, vec![(1, 6)]);
    }

    #[test]
    fn bytes_accounts_offsets_columns_weights() {
        let g = diamond();
        assert_eq!(g.bytes(), (5 * 8 + 4 * 4) as u64);
        let coo = Coo::from_edges(2, vec![(0, 1)], Some(vec![1]));
        let gw: Csr<u32, u32> = Csr::from_coo(&coo);
        assert_eq!(gw.bytes(), (3 * 4 + 4 + 4) as u64);
    }

    #[test]
    fn frontier_out_degree_sums() {
        let g = diamond();
        assert_eq!(g.frontier_out_degree(&[0, 1]), 3);
        assert_eq!(g.frontier_out_degree(&[]), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::<u32, u64>::empty(3);
        assert_eq!(g.n_vertices(), 3);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn offset_overflow_is_typed() {
        let edges: Vec<(u32, u32)> = (1..=70_000).map(|d| (0, d)).collect();
        let coo = Coo::from_edges(70_001, edges, None);
        match Csr::<u32, u16>::try_from_coo(&coo) {
            Err(CsrError::OffsetOverflow { edges, max }) => {
                assert_eq!(edges, 70_000);
                assert_eq!(max, u16::MAX as usize);
            }
            other => panic!("expected OffsetOverflow, got {other:?}"),
        }
    }

    #[test]
    fn vertex_overflow_is_typed() {
        let coo = Coo::<u16>::from_edges(70_000, vec![], None);
        match Csr::<u16, u64>::try_from_coo(&coo) {
            Err(CsrError::VertexOverflow { vertices, max }) => {
                assert_eq!(vertices, 70_000);
                assert_eq!(max, 65_536);
            }
            other => panic!("expected VertexOverflow, got {other:?}"),
        }
    }

    #[test]
    fn width_boundaries_fit_exactly() {
        // 65535 edges is the largest count u16 offsets can terminate.
        let edges: Vec<(u32, u32)> = (1..=65_535).map(|d| (0, d)).collect();
        let g = Csr::<u32, u16>::try_from_coo(&Coo::from_edges(65_536, edges, None)).unwrap();
        assert_eq!(g.n_edges(), 65_535);
        assert_eq!(g.degree(0), 65_535);
        // 65536 vertices is the largest population u16 ids can address.
        let coo = Coo::<u16>::from_edges(65_536, vec![(0, 65_535)], None);
        assert!(Csr::<u16, u64>::try_from_coo(&coo).is_ok());
    }

    #[test]
    #[should_panic(expected = "does not fit in the offset type")]
    fn from_coo_panics_with_typed_message_on_overflow() {
        let edges: Vec<(u32, u32)> = (1..=70_000).map(|d| (0, d)).collect();
        let _ = Csr::<u32, u16>::from_coo(&Coo::from_edges(70_001, edges, None));
    }

    #[test]
    fn u64_ids_work() {
        let coo = Coo::<u64>::from_edges(3, vec![(0, 2), (2, 1)], None);
        let g: Csr<u64, u64> = Csr::from_coo(&coo);
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.bytes(), (4 * 8 + 2 * 8) as u64);
    }
}
