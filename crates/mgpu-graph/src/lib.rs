//! # mgpu-graph — graph data substrate
//!
//! Compressed sparse row/column graph structures with the properties the
//! paper's pipeline needs:
//!
//! * Generic vertex-id and edge-offset widths ([`Id`] over `u32` / `u64`) —
//!   the Table V experiment measures the bandwidth cost of moving from
//!   32-bit to 64-bit vertex and edge ids ("reads 2× data per edge …
//!   records 0.5× performance").
//! * A builder that performs the paper's preprocessing (§VII-A): convert to
//!   undirected, remove self-loops and duplicate edges.
//! * CSC (reverse) adjacency for pull-mode traversal — the backward half of
//!   direction-optimizing BFS.
//! * Statistics used by Table II: vertex/edge counts and a BFS-sampled
//!   pseudo-diameter ("approximated diameter computed by multiple runs of
//!   random-sourced BFS").

pub mod builder;
pub mod coo;
pub mod csr;
pub mod ids;
pub mod io;
pub mod stats;

pub use builder::{BuildOptions, CsrAuto, GraphBuilder};
pub use coo::Coo;
pub use csr::{Csr, CsrError};
pub use ids::Id;
pub use io::{read_mtx, write_mtx, MtxError};
pub use stats::{degree_stats, estimate_diameter, DegreeStats};
