//! Vertex-id / edge-offset width abstraction.
//!
//! Gunrock templates its primitives over `VertexT` and `SizeT`; the paper's
//! Table V quantifies the cost of widening them ("32-bit vertex and edge IDs
//! are no longer sufficient … this doubles bandwidth requirements and our
//! performance drops accordingly"). Everything downstream is generic over
//! [`Id`], and the cost model charges `Id::BYTES` per transmitted id, so the
//! 32→64-bit experiment is a type parameter change.

use std::fmt::{Debug, Display};
use std::hash::Hash;

/// An unsigned integer usable as a vertex id or edge offset.
pub trait Id:
    Copy + Clone + Eq + Ord + Hash + Debug + Display + Default + Send + Sync + 'static
{
    /// Width in bytes — what one id costs on the wire and in memory.
    const BYTES: usize;
    /// Largest representable value, as a `usize` (saturating).
    const MAX_AS_USIZE: usize;

    /// Convert from `usize`; panics (in debug) if the value does not fit.
    fn from_usize(v: usize) -> Self;
    /// Convert to `usize` for indexing.
    fn idx(self) -> usize;
    /// Zero.
    fn zero() -> Self {
        Self::from_usize(0)
    }
}

impl Id for u16 {
    const BYTES: usize = 2;
    const MAX_AS_USIZE: usize = u16::MAX as usize;

    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "id {v} does not fit in u16");
        v as u16
    }

    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

impl Id for u32 {
    const BYTES: usize = 4;
    const MAX_AS_USIZE: usize = u32::MAX as usize;

    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        debug_assert!(v <= u32::MAX as usize, "id {v} does not fit in u32");
        v as u32
    }

    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

impl Id for u64 {
    const BYTES: usize = 8;
    const MAX_AS_USIZE: usize = usize::MAX;

    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        v as u64
    }

    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Combined width description of a graph's id types, used by the cost model
/// when charging communication volume (H is counted in vertices; bytes are
/// `vertices × id-and-payload widths`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdWidths {
    /// Bytes per vertex id on the wire.
    pub vertex_bytes: usize,
    /// Bytes per edge offset in memory.
    pub edge_bytes: usize,
}

impl IdWidths {
    /// Widths for a graph with vertex type `V` and offset type `O`.
    pub fn of<V: Id, O: Id>() -> Self {
        IdWidths { vertex_bytes: V::BYTES, edge_bytes: O::BYTES }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_round_trips() {
        assert_eq!(u32::from_usize(42).idx(), 42);
        assert_eq!(<u32 as Id>::BYTES, 4);
    }

    #[test]
    fn u64_round_trips() {
        assert_eq!(u64::from_usize(1 << 40).idx(), 1 << 40);
        assert_eq!(<u64 as Id>::BYTES, 8);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    #[cfg(debug_assertions)]
    fn u32_overflow_is_caught_in_debug() {
        let _ = u32::from_usize(1 << 40);
    }

    #[test]
    fn widths_reflect_types() {
        let w = IdWidths::of::<u32, u64>();
        assert_eq!(w.vertex_bytes, 4);
        assert_eq!(w.edge_bytes, 8);
    }
}
