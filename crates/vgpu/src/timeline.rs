//! Execution timelines: an opt-in profiler for the virtual devices.
//!
//! When enabled on a [`crate::Device`], every kernel launch and explicit
//! charge is recorded as a span on its stream's timeline. The trace exports
//! to the Chrome trace-event JSON format (`chrome://tracing`, Perfetto),
//! which is how one would inspect computation/communication overlap on a
//! real multi-GPU run — here it visualizes the simulated schedule instead:
//! the compute stream of each device, its communication stream, and the
//! gaps where it waits at BSP barriers.

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Device id (Chrome trace `pid`).
    pub device: usize,
    /// Stream id (Chrome trace `tid`).
    pub stream: usize,
    /// Span label (kernel kind or `"transfer"` / `"charge"`).
    pub name: &'static str,
    /// Simulated start time in microseconds.
    pub start_us: f64,
    /// Simulated duration in microseconds.
    pub dur_us: f64,
    /// Work items metered for the span (0 for plain charges).
    pub items: u64,
}

/// A per-device recording buffer; disabled (and free) by default.
#[derive(Debug, Default)]
pub struct Timeline {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// Begin recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span (no-op while disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded spans.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop all recorded spans.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Serialize spans from one or more timelines into Chrome trace-event
    /// JSON (load in `chrome://tracing` or Perfetto).
    pub fn chrome_trace<'a>(timelines: impl IntoIterator<Item = &'a Timeline>) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for tl in timelines {
            for e in &tl.events {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"pid\":{},\"tid\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"{}\",\"args\":{{\"items\":{}}}}}",
                    e.device, e.stream, e.start_us, e.dur_us, e.name, e.items
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, dur: f64) -> TraceEvent {
        TraceEvent { device: 0, stream: 1, name: "advance", start_us: start, dur_us: dur, items: 5 }
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let mut tl = Timeline::default();
        tl.record(ev(0.0, 1.0));
        assert!(tl.events().is_empty());
    }

    #[test]
    fn enabled_timeline_records_in_order() {
        let mut tl = Timeline::default();
        tl.enable();
        tl.record(ev(0.0, 1.0));
        tl.record(ev(1.0, 2.0));
        assert_eq!(tl.events().len(), 2);
        assert_eq!(tl.events()[1].dur_us, 2.0);
        tl.clear();
        assert!(tl.events().is_empty());
        assert!(tl.is_enabled(), "clear keeps recording on");
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let mut a = Timeline::default();
        a.enable();
        a.record(ev(0.0, 1.5));
        let mut b = Timeline::default();
        b.enable();
        b.record(TraceEvent { device: 1, ..ev(3.0, 0.5) });
        let json = Timeline::chrome_trace([&a, &b]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"name\":\"advance\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(Timeline::chrome_trace([]), "{\"traceEvents\":[]}");
    }
}
