//! Execution timelines: an opt-in structured tracer for the virtual devices.
//!
//! When enabled on a [`crate::Device`], every kernel launch, explicit charge,
//! package send/receive, barrier wait, superstep sync, retry, collective
//! stage, host spill, chunked pass and checkpoint is recorded as a typed
//! [`TraceEvent`] span on its stream's timeline. The trace exports to the
//! Chrome trace-event JSON format (`chrome://tracing`, Perfetto), which is
//! how one would inspect computation/communication overlap on a real
//! multi-GPU run — here it visualizes the simulated schedule instead: the
//! compute stream of each device, its communication stream, and the gaps
//! where it waits at BSP barriers.
//!
//! Because every span is keyed to the *simulated* clock (which is bit-exact
//! across kernel-thread counts and host scheduling), a trace of the same run
//! is byte-identical no matter how it is executed — the property the
//! golden-trace regression suite in `tests/trace_observability.rs` pins.
//! Recording is off by default and free when off: no allocation, and the
//! clock-charging paths never branch on more than the `enabled` flag.

/// The typed category of a recorded span; selects which BSP bucket the
/// profiler folds the span into (`W`, `C`, `H·g`, `S·l`, wait/skew, other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceKind {
    /// Primitive computation kernel — folds into `W`.
    Kernel,
    /// Communication-computation kernel (combine/split) — folds into `C`.
    CommKernel,
    /// Explicit stream charge (allocation overhead, transfer tail, failed
    /// launch overhead) — folds into the `other` bucket.
    #[default]
    Charge,
    /// Package send occupancy on the communication stream; `h_us` carries
    /// the portion attributed to `H·g`, `bytes` the wire bytes charged.
    Send,
    /// Package arrival (instant, `dur_us == 0`); `bytes` is the wire size.
    Recv,
    /// Idle time between a device's local completion and the slowest peer
    /// at a BSP barrier — the skew the paper's §V analysis attributes to
    /// load imbalance.
    BarrierWait,
    /// The per-superstep synchronization charge `l` — folds into `S·l`.
    Sync,
    /// A retry backoff (kernel relaunch or transfer resend).
    Retry,
    /// A governor downgrade decision (instant marker; `bytes` = the
    /// footprint estimate that forced it). Admission-time decisions are
    /// replayed into the trace at enact start.
    Downgrade,
    /// One stage of a butterfly collective (instant marker).
    Stage,
    /// A host-spill transfer under memory pressure; `h_us` carries the
    /// occupancy portion, `bytes` the bytes freed.
    Spill,
    /// A chunked multi-pass advance (instant marker; `items` = passes).
    Chunk,
    /// A recovery checkpoint offer (instant marker; `items` = words).
    Checkpoint,
    /// Batched-traversal lane occupancy (instant marker; `items` = active
    /// lanes this superstep, `bytes` = the lane bitmask).
    Lanes,
}

impl TraceKind {
    /// Stable label for exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Kernel => "kernel",
            TraceKind::CommKernel => "comm-kernel",
            TraceKind::Charge => "charge",
            TraceKind::Send => "send",
            TraceKind::Recv => "recv",
            TraceKind::BarrierWait => "barrier-wait",
            TraceKind::Sync => "sync",
            TraceKind::Retry => "retry",
            TraceKind::Downgrade => "downgrade",
            TraceKind::Stage => "stage",
            TraceKind::Spill => "spill",
            TraceKind::Chunk => "chunk",
            TraceKind::Checkpoint => "checkpoint",
            TraceKind::Lanes => "lanes",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Device id (Chrome trace `pid`).
    pub device: usize,
    /// Stream id (Chrome trace `tid`).
    pub stream: usize,
    /// Typed category (selects the profiler's BSP bucket).
    pub kind: TraceKind,
    /// Span label (kernel kind or `"transfer"` / `"charge"`).
    pub name: &'static str,
    /// Superstep the span belongs to (stamped from the timeline's cursor).
    pub superstep: u32,
    /// Simulated start time in microseconds.
    pub start_us: f64,
    /// Simulated duration in microseconds.
    pub dur_us: f64,
    /// Work items metered for the span (0 for plain charges).
    pub items: u64,
    /// Wire bytes attributed to the span (sends, receives, spills).
    pub bytes: u64,
    /// Portion of the span attributed to `H·g` in the BSP accounting —
    /// exactly what the span added to `BspCounters::h_time_us`.
    pub h_us: f64,
    /// Peer device for transfers (`-1` when not applicable).
    pub peer: i64,
}

impl Default for TraceEvent {
    fn default() -> Self {
        TraceEvent {
            device: 0,
            stream: 0,
            kind: TraceKind::Charge,
            name: "",
            superstep: 0,
            start_us: 0.0,
            dur_us: 0.0,
            items: 0,
            bytes: 0,
            h_us: 0.0,
            peer: -1,
        }
    }
}

/// Metadata for a typed span charged via [`crate::Device::charge_as`].
#[derive(Debug, Clone, Copy)]
pub struct SpanMeta {
    /// Typed category.
    pub kind: TraceKind,
    /// Span label.
    pub name: &'static str,
    /// Work items.
    pub items: u64,
    /// Wire bytes.
    pub bytes: u64,
    /// Portion attributed to `H·g`.
    pub h_us: f64,
    /// Peer device (`-1` = none).
    pub peer: i64,
}

impl SpanMeta {
    /// A span with the given kind and label and empty metadata.
    pub fn new(kind: TraceKind, name: &'static str) -> Self {
        SpanMeta { kind, name, items: 0, bytes: 0, h_us: 0.0, peer: -1 }
    }

    /// Set the item count.
    pub fn items(mut self, items: u64) -> Self {
        self.items = items;
        self
    }

    /// Set the wire bytes.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Set the `H·g` portion.
    pub fn h_us(mut self, h_us: f64) -> Self {
        self.h_us = h_us;
        self
    }

    /// Set the peer device.
    pub fn peer(mut self, peer: usize) -> Self {
        self.peer = peer as i64;
        self
    }
}

/// A per-device recording buffer; disabled (and free) by default.
#[derive(Debug, Default)]
pub struct Timeline {
    enabled: bool,
    superstep: u32,
    events: Vec<TraceEvent>,
}

impl Timeline {
    /// Begin recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is recording active?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span (no-op while disabled). The span's `superstep` field is
    /// stamped from the timeline's cursor so charge sites never track it.
    pub fn record(&mut self, mut event: TraceEvent) {
        if self.enabled {
            event.superstep = self.superstep;
            self.events.push(event);
        }
    }

    /// The recorded spans.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The superstep currently stamped on recorded spans.
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// Position the superstep cursor (used when resuming from a checkpoint
    /// so trace supersteps stay absolute).
    pub fn set_superstep(&mut self, superstep: u32) {
        self.superstep = superstep;
    }

    /// Advance the superstep cursor past a BSP barrier.
    pub fn advance_superstep(&mut self) {
        self.superstep += 1;
    }

    /// Drop all recorded spans and rewind the superstep cursor.
    pub fn clear(&mut self) {
        self.events.clear();
        self.superstep = 0;
    }

    /// Serialize spans from one or more timelines into Chrome trace-event
    /// JSON (load in `chrome://tracing` or Perfetto).
    pub fn chrome_trace<'a>(timelines: impl IntoIterator<Item = &'a Timeline>) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for tl in timelines {
            for e in &tl.events {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "{{\"pid\":{},\"tid\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"superstep\":{},\"items\":{},\
                     \"bytes\":{},\"peer\":{}}}}}",
                    e.device,
                    e.stream,
                    e.start_us,
                    e.dur_us,
                    e.name,
                    e.kind.as_str(),
                    e.superstep,
                    e.items,
                    e.bytes,
                    e.peer
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            stream: 1,
            kind: TraceKind::Kernel,
            name: "advance",
            start_us: start,
            dur_us: dur,
            items: 5,
            ..TraceEvent::default()
        }
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let mut tl = Timeline::default();
        tl.record(ev(0.0, 1.0));
        assert!(tl.events().is_empty());
    }

    #[test]
    fn enabled_timeline_records_in_order() {
        let mut tl = Timeline::default();
        tl.enable();
        tl.record(ev(0.0, 1.0));
        tl.record(ev(1.0, 2.0));
        assert_eq!(tl.events().len(), 2);
        assert_eq!(tl.events()[1].dur_us, 2.0);
        tl.clear();
        assert!(tl.events().is_empty());
        assert!(tl.is_enabled(), "clear keeps recording on");
    }

    #[test]
    fn superstep_cursor_stamps_events() {
        let mut tl = Timeline::default();
        tl.enable();
        tl.record(ev(0.0, 1.0));
        tl.advance_superstep();
        tl.record(ev(1.0, 1.0));
        tl.record(ev(2.0, 1.0));
        tl.set_superstep(7);
        tl.record(ev(3.0, 1.0));
        let stamps: Vec<u32> = tl.events().iter().map(|e| e.superstep).collect();
        assert_eq!(stamps, [0, 1, 1, 7]);
        tl.clear();
        assert_eq!(tl.superstep(), 0, "clear rewinds the cursor");
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let mut a = Timeline::default();
        a.enable();
        a.record(ev(0.0, 1.5));
        let mut b = Timeline::default();
        b.enable();
        b.record(TraceEvent { device: 1, ..ev(3.0, 0.5) });
        let json = Timeline::chrome_trace([&a, &b]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"name\":\"advance\""));
        assert!(json.contains("\"cat\":\"kernel\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(Timeline::chrome_trace([]), "{\"traceEvents\":[]}");
    }
}
