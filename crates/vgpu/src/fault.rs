//! Deterministic fault injection for the virtual-GPU substrate.
//!
//! A [`FaultPlan`] is a declarative list of fault events keyed by *logical*
//! progress indices — the k-th kernel launch on a device, the k-th transfer
//! on a link — never by wall-clock or thread scheduling. The same plan on
//! the same workload therefore fires at exactly the same simulated points in
//! every run, which is what lets the resilience tests assert bit-identical
//! reports (including recovery events) across repetitions and across
//! `kernel_threads` settings.
//!
//! A [`FaultInjector`] is the runtime half: it owns the per-device launch
//! counters and per-link transfer counters and is consulted by
//! [`crate::Device::kernel`] and [`crate::Mailbox::send`]. Faults fire
//! *before* the kernel body runs or the payload is posted, so a failed
//! launch has no side effects on device state — retrying it is safe for
//! any primitive whose kernels are idempotent at launch granularity.
//!
//! Fault taxonomy:
//!
//! * **Kernel failure** ([`KernelFault::Fail`]) — the launch errors after
//!   paying its launch overhead; transient.
//! * **Transient OOM** ([`KernelFault::TransientOom`]) — the launch reports
//!   an allocation spike; transient.
//! * **Straggler delay** ([`KernelFault::Straggle`]) — the launch succeeds
//!   but costs `delay_us` extra *simulated* microseconds, exactly as a slow
//!   clock or a contended link would; charged in simulated time so the
//!   metering-invariance contract (`kernel_threads` never changes simulated
//!   time) is preserved.
//! * **Device loss** ([`KernelFault::DeviceLoss`]) — the device is marked
//!   permanently lost; this and every later launch or send on it fails with
//!   [`crate::VgpuError::DeviceLost`].
//! * **Transfer failure / timeout** ([`TransferFault`]) — a peer-to-peer
//!   push fails; transient.
//! * **Pressure faults** ([`PressureSite`]) — the memory-pressure machinery
//!   itself fails: the k-th host spill on a device aborts mid-copy, the
//!   k-th chunked-advance pass fails at launch, or the k-th arena-leasing
//!   advance hits an allocation spike. These compose governor downgrade
//!   chains with recovery, so the two subsystems are tested together
//!   instead of in isolation.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

/// What goes wrong at a kernel-launch fault site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelFault {
    /// The launch fails ([`crate::VgpuError::KernelFailed`]); transient.
    Fail,
    /// The launch reports a transient allocation spike
    /// ([`crate::VgpuError::OutOfMemory`]).
    TransientOom,
    /// The launch succeeds but costs `delay_us` extra simulated time.
    Straggle {
        /// Extra simulated microseconds charged to the launch.
        delay_us: f64,
    },
    /// The device is permanently lost from this launch on.
    DeviceLoss,
}

/// What goes wrong at a transfer fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The push fails ([`crate::VgpuError::TransferFailed`]); transient.
    Fail,
    /// The push times out ([`crate::VgpuError::Timeout`]); transient.
    Timeout,
}

/// Which memory-pressure mechanism a [`FaultEvent::Pressure`] targets.
/// Sites are counted per device in the order the governor reaches them —
/// logical progress indices, like launches and transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PressureSite {
    /// The k-th host-spill transfer on the device fails mid-copy
    /// (surfaces as a transient [`crate::VgpuError::TransferFailed`] on the
    /// device's host link).
    Spill,
    /// The k-th chunked-advance pass on the device fails at launch
    /// (surfaces as a transient [`crate::VgpuError::KernelFailed`]).
    ChunkPass,
    /// The k-th arena-leasing advance on the device hits an allocation
    /// spike (surfaces as a transient [`crate::VgpuError::OutOfMemory`]).
    ArenaLease,
}

/// One planned fault, keyed by its deterministic site index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Fires at the `launch`-th kernel launch (0-based) on `device`.
    Kernel {
        /// Target device id.
        device: usize,
        /// 0-based kernel-launch index on that device.
        launch: u64,
        /// What happens.
        fault: KernelFault,
    },
    /// Fires at the `index`-th send (0-based) on the `from → to` link.
    Transfer {
        /// Sending device id.
        from: usize,
        /// Receiving device id.
        to: usize,
        /// 0-based transfer index on that link.
        index: u64,
        /// What happens.
        fault: TransferFault,
    },
    /// Fires at the `index`-th time `device`'s pressure machinery reaches
    /// `site` (0-based, counted per device per site kind).
    Pressure {
        /// Target device id.
        device: usize,
        /// 0-based site index on that device (per site kind).
        index: u64,
        /// Which pressure mechanism fails.
        site: PressureSite,
    },
}

impl FaultEvent {
    /// Device ids this event references.
    fn devices(&self) -> (usize, Option<usize>) {
        match *self {
            FaultEvent::Kernel { device, .. } => (device, None),
            FaultEvent::Transfer { from, to, .. } => (from, Some(to)),
            FaultEvent::Pressure { device, .. } => (device, None),
        }
    }
}

impl fmt::Display for FaultEvent {
    /// The exact textual form [`FaultPlan::parse`] reads back.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::Kernel { device, launch, fault } => match fault {
                KernelFault::Fail => write!(f, "kfail:{device}@{launch}"),
                KernelFault::TransientOom => write!(f, "oom:{device}@{launch}"),
                KernelFault::Straggle { delay_us } => {
                    write!(f, "slow:{device}@{launch}:{delay_us}")
                }
                KernelFault::DeviceLoss => write!(f, "lose:{device}@{launch}"),
            },
            FaultEvent::Transfer { from, to, index, fault } => match fault {
                TransferFault::Fail => write!(f, "tfail:{from}>{to}@{index}"),
                TransferFault::Timeout => write!(f, "ttimeout:{from}>{to}@{index}"),
            },
            FaultEvent::Pressure { device, index, site } => match site {
                PressureSite::Spill => write!(f, "spill:{device}@{index}"),
                PressureSite::ChunkPass => write!(f, "pass:{device}@{index}"),
                PressureSite::ArenaLease => write!(f, "lease:{device}@{index}"),
            },
        }
    }
}

impl fmt::Display for FaultPlan {
    /// The exact inverse of [`FaultPlan::parse`]: a comma-separated event
    /// list in plan order, so any chaos-soak failure prints a spec that
    /// replays verbatim via `--fault-plan`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

/// A deterministic, declarative fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The planned events (order is irrelevant; sites are unique keys —
    /// a later event at an already-planned site replaces the earlier one).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True if the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Plan a kernel failure at `device`'s `launch`-th kernel launch.
    pub fn kernel_fail(mut self, device: usize, launch: u64) -> Self {
        self.events.push(FaultEvent::Kernel { device, launch, fault: KernelFault::Fail });
        self
    }

    /// Plan a transient OOM spike at `device`'s `launch`-th kernel launch.
    pub fn transient_oom(mut self, device: usize, launch: u64) -> Self {
        self.events.push(FaultEvent::Kernel { device, launch, fault: KernelFault::TransientOom });
        self
    }

    /// Plan a straggler delay of `delay_us` simulated microseconds at
    /// `device`'s `launch`-th kernel launch.
    pub fn straggle(mut self, device: usize, launch: u64, delay_us: f64) -> Self {
        self.events.push(FaultEvent::Kernel {
            device,
            launch,
            fault: KernelFault::Straggle { delay_us },
        });
        self
    }

    /// Plan permanent loss of `device` at its `launch`-th kernel launch.
    pub fn device_loss(mut self, device: usize, launch: u64) -> Self {
        self.events.push(FaultEvent::Kernel { device, launch, fault: KernelFault::DeviceLoss });
        self
    }

    /// Plan a transfer failure at the `index`-th send on `from → to`.
    pub fn transfer_fail(mut self, from: usize, to: usize, index: u64) -> Self {
        self.events.push(FaultEvent::Transfer { from, to, index, fault: TransferFault::Fail });
        self
    }

    /// Plan a transfer timeout at the `index`-th send on `from → to`.
    pub fn transfer_timeout(mut self, from: usize, to: usize, index: u64) -> Self {
        self.events.push(FaultEvent::Transfer { from, to, index, fault: TransferFault::Timeout });
        self
    }

    /// Plan a failure of `device`'s `index`-th host-spill transfer.
    pub fn spill_fail(mut self, device: usize, index: u64) -> Self {
        self.events.push(FaultEvent::Pressure { device, index, site: PressureSite::Spill });
        self
    }

    /// Plan a launch failure of `device`'s `index`-th chunked-advance pass.
    pub fn chunk_pass_fail(mut self, device: usize, index: u64) -> Self {
        self.events.push(FaultEvent::Pressure { device, index, site: PressureSite::ChunkPass });
        self
    }

    /// Plan an allocation spike on `device`'s `index`-th arena-leasing
    /// advance.
    pub fn arena_lease_oom(mut self, device: usize, index: u64) -> Self {
        self.events.push(FaultEvent::Pressure { device, index, site: PressureSite::ArenaLease });
        self
    }

    /// A seed-driven random plan of `n_faults` *transient* faults (kernel
    /// failures, OOM spikes, straggler delays, transfer failures/timeouts)
    /// spread over `n_devices` devices with site indices below `horizon`.
    /// Fully determined by `seed` — the generator is a fixed splitmix64
    /// stream, so the same arguments always produce the same plan.
    pub fn random(seed: u64, n_devices: usize, n_faults: usize, horizon: u64) -> Self {
        assert!(n_devices > 0 && horizon > 0, "need at least one device and a nonzero horizon");
        let mut s = seed ^ 0x51ed_270b_d4d2_5f84;
        let mut next = move || splitmix64(&mut s);
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let device = (next() % n_devices as u64) as usize;
            let site = next() % horizon;
            match next() % 5 {
                0 => plan = plan.kernel_fail(device, site),
                1 => plan = plan.transient_oom(device, site),
                2 => {
                    let delay_us = 10.0 + (next() % 90) as f64;
                    plan = plan.straggle(device, site, delay_us);
                }
                3 if n_devices > 1 => {
                    let to = (device + 1 + (next() % (n_devices as u64 - 1)) as usize) % n_devices;
                    plan = plan.transfer_fail(device, to, site);
                }
                _ if n_devices > 1 => {
                    let to = (device + 1 + (next() % (n_devices as u64 - 1)) as usize) % n_devices;
                    plan = plan.transfer_timeout(device, to, site);
                }
                _ => plan = plan.kernel_fail(device, site),
            }
        }
        plan
    }

    /// Like [`FaultPlan::random`] but the draw also covers the pressure
    /// sites (spill transfers, chunked-advance passes, arena leases), so a
    /// seeded chaos sweep exercises governor machinery and recovery
    /// together. Still transient-only. A distinct function rather than a
    /// flag so existing `random:` seed banks keep their exact plans.
    pub fn random_with_pressure(
        seed: u64,
        n_devices: usize,
        n_faults: usize,
        horizon: u64,
    ) -> Self {
        assert!(n_devices > 0 && horizon > 0, "need at least one device and a nonzero horizon");
        let mut s = seed ^ 0x51ed_270b_d4d2_5f84;
        let mut next = move || splitmix64(&mut s);
        let mut plan = FaultPlan::new();
        for _ in 0..n_faults {
            let device = (next() % n_devices as u64) as usize;
            let site = next() % horizon;
            match next() % 8 {
                0 => plan = plan.kernel_fail(device, site),
                1 => plan = plan.transient_oom(device, site),
                2 => {
                    let delay_us = 10.0 + (next() % 90) as f64;
                    plan = plan.straggle(device, site, delay_us);
                }
                3 if n_devices > 1 => {
                    let to = (device + 1 + (next() % (n_devices as u64 - 1)) as usize) % n_devices;
                    plan = plan.transfer_fail(device, to, site);
                }
                4 if n_devices > 1 => {
                    let to = (device + 1 + (next() % (n_devices as u64 - 1)) as usize) % n_devices;
                    plan = plan.transfer_timeout(device, to, site);
                }
                // Pressure sites are rare in a run (a handful per enact at
                // most), so key them to a compressed horizon where they
                // have a realistic chance of firing.
                5 => plan = plan.spill_fail(device, site % 4),
                6 => plan = plan.chunk_pass_fail(device, site % 8),
                7 => plan = plan.arena_lease_oom(device, site % 8),
                _ => plan = plan.kernel_fail(device, site),
            }
        }
        plan
    }

    /// Parse a textual plan. Grammar (comma-separated events):
    ///
    /// ```text
    /// kfail:D@N        kernel failure on device D, launch N
    /// oom:D@N          transient OOM on device D, launch N
    /// slow:D@N:US      straggler delay of US µs on device D, launch N
    /// lose:D@N         permanent loss of device D at launch N
    /// tfail:S>D@N      transfer failure on link S→D, transfer N
    /// ttimeout:S>D@N   transfer timeout on link S→D, transfer N
    /// spill:D@N        host-spill transfer N on device D fails
    /// pass:D@N         chunked-advance pass N on device D fails
    /// lease:D@N        arena-leasing advance N on device D OOMs
    /// ```
    ///
    /// [`FaultPlan`]'s `Display` impl is the exact inverse: for any plan
    /// `p`, `FaultPlan::parse(&p.to_string())` reproduces `p`.
    pub fn parse(spec: &str) -> std::result::Result<Self, String> {
        let mut plan = FaultPlan::new();
        for raw in spec.split(',') {
            let ev = raw.trim();
            if ev.is_empty() {
                continue;
            }
            let (kind, rest) =
                ev.split_once(':').ok_or_else(|| format!("fault event `{ev}`: missing `:`"))?;
            let site = |s: &str| -> std::result::Result<(usize, u64), String> {
                let (d, n) =
                    s.split_once('@').ok_or_else(|| format!("fault event `{ev}`: missing `@`"))?;
                Ok((
                    d.parse().map_err(|_| format!("fault event `{ev}`: bad device `{d}`"))?,
                    n.parse().map_err(|_| format!("fault event `{ev}`: bad index `{n}`"))?,
                ))
            };
            let link = |s: &str| -> std::result::Result<(usize, usize, u64), String> {
                let (from, rest) =
                    s.split_once('>').ok_or_else(|| format!("fault event `{ev}`: missing `>`"))?;
                let (to, n) = site(rest)?;
                Ok((
                    from.parse().map_err(|_| format!("fault event `{ev}`: bad device `{from}`"))?,
                    to,
                    n,
                ))
            };
            plan = match kind {
                "kfail" => {
                    let (d, n) = site(rest)?;
                    plan.kernel_fail(d, n)
                }
                "oom" => {
                    let (d, n) = site(rest)?;
                    plan.transient_oom(d, n)
                }
                "slow" => {
                    let (head, us) = rest
                        .rsplit_once(':')
                        .ok_or_else(|| format!("fault event `{ev}`: missing delay"))?;
                    let (d, n) = site(head)?;
                    let delay: f64 =
                        us.parse().map_err(|_| format!("fault event `{ev}`: bad delay `{us}`"))?;
                    plan.straggle(d, n, delay)
                }
                "lose" => {
                    let (d, n) = site(rest)?;
                    plan.device_loss(d, n)
                }
                "tfail" => {
                    let (f, t, n) = link(rest)?;
                    plan.transfer_fail(f, t, n)
                }
                "ttimeout" => {
                    let (f, t, n) = link(rest)?;
                    plan.transfer_timeout(f, t, n)
                }
                "spill" => {
                    let (d, n) = site(rest)?;
                    plan.spill_fail(d, n)
                }
                "pass" => {
                    let (d, n) = site(rest)?;
                    plan.chunk_pass_fail(d, n)
                }
                "lease" => {
                    let (d, n) = site(rest)?;
                    plan.arena_lease_oom(d, n)
                }
                other => return Err(format!("unknown fault kind `{other}` in `{ev}`")),
            };
        }
        Ok(plan)
    }

    /// Remap the plan onto a degraded system. `runtime_to_original[r]` is
    /// the original id of the device running as runtime id `r` after a
    /// failover; events that reference a device no longer alive are
    /// dropped (its planned faults died with it).
    pub fn remap(&self, runtime_to_original: &[usize]) -> FaultPlan {
        let original_to_runtime: HashMap<usize, usize> =
            runtime_to_original.iter().enumerate().map(|(r, &o)| (o, r)).collect();
        let events = self
            .events
            .iter()
            .filter_map(|ev| {
                let (a, b) = ev.devices();
                let ra = *original_to_runtime.get(&a)?;
                let rb = match b {
                    Some(b) => Some(*original_to_runtime.get(&b)?),
                    None => None,
                };
                Some(match *ev {
                    FaultEvent::Kernel { launch, fault, .. } => {
                        FaultEvent::Kernel { device: ra, launch, fault }
                    }
                    FaultEvent::Transfer { index, fault, .. } => FaultEvent::Transfer {
                        from: ra,
                        to: rb.expect("transfer events carry both endpoints"),
                        index,
                        fault,
                    },
                    FaultEvent::Pressure { index, site, .. } => {
                        FaultEvent::Pressure { device: ra, index, site }
                    }
                })
            })
            .collect();
        FaultPlan { events }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The runtime side of a plan: deterministic per-device launch counters,
/// per-link transfer counters and sticky lost flags.
#[derive(Debug)]
pub struct FaultInjector {
    n_devices: usize,
    kernel: HashMap<(usize, u64), KernelFault>,
    transfer: HashMap<(usize, usize, u64), TransferFault>,
    pressure: HashSet<(usize, u64, PressureSite)>,
    launches: Vec<AtomicU64>,
    transfers: Vec<AtomicU64>,
    spills: Vec<AtomicU64>,
    passes: Vec<AtomicU64>,
    leases: Vec<AtomicU64>,
    lost: Vec<AtomicBool>,
    fired: AtomicU64,
}

impl FaultInjector {
    /// Compile `plan` for a system of `n_devices` devices. Events that
    /// reference devices outside the system are ignored.
    pub fn new(plan: &FaultPlan, n_devices: usize) -> Self {
        let mut kernel = HashMap::new();
        let mut transfer = HashMap::new();
        let mut pressure = HashSet::new();
        for ev in &plan.events {
            match *ev {
                FaultEvent::Kernel { device, launch, fault } if device < n_devices => {
                    kernel.insert((device, launch), fault);
                }
                FaultEvent::Transfer { from, to, index, fault }
                    if from < n_devices && to < n_devices =>
                {
                    transfer.insert((from, to, index), fault);
                }
                FaultEvent::Pressure { device, index, site } if device < n_devices => {
                    pressure.insert((device, index, site));
                }
                _ => {}
            }
        }
        FaultInjector {
            n_devices,
            kernel,
            transfer,
            pressure,
            launches: (0..n_devices).map(|_| AtomicU64::new(0)).collect(),
            transfers: (0..n_devices * n_devices).map(|_| AtomicU64::new(0)).collect(),
            spills: (0..n_devices).map(|_| AtomicU64::new(0)).collect(),
            passes: (0..n_devices).map(|_| AtomicU64::new(0)).collect(),
            leases: (0..n_devices).map(|_| AtomicU64::new(0)).collect(),
            lost: (0..n_devices).map(|_| AtomicBool::new(false)).collect(),
            fired: AtomicU64::new(0),
        }
    }

    /// Number of devices this injector was compiled for.
    pub fn n_devices(&self) -> usize {
        self.n_devices
    }

    /// Consume `device`'s next launch index and return the fault planned at
    /// that site, if any. [`KernelFault::DeviceLoss`] also marks the device
    /// lost for all future operations.
    pub fn on_kernel(&self, device: usize) -> Option<KernelFault> {
        let idx = self.launches[device].fetch_add(1, Relaxed);
        let fault = self.kernel.get(&(device, idx)).copied()?;
        if fault == KernelFault::DeviceLoss {
            self.mark_lost(device);
        }
        self.fired.fetch_add(1, Relaxed);
        Some(fault)
    }

    /// Consume the `from → to` link's next transfer index and return the
    /// fault planned at that site, if any.
    pub fn on_transfer(&self, from: usize, to: usize) -> Option<TransferFault> {
        let idx = self.transfers[from * self.n_devices + to].fetch_add(1, Relaxed);
        let fault = self.transfer.get(&(from, to, idx)).copied()?;
        self.fired.fetch_add(1, Relaxed);
        Some(fault)
    }

    /// Consume `device`'s next `site` index and report whether a pressure
    /// fault was planned there.
    fn on_pressure(&self, counters: &[AtomicU64], device: usize, site: PressureSite) -> bool {
        let idx = counters[device].fetch_add(1, Relaxed);
        let hit = self.pressure.contains(&(device, idx, site));
        if hit {
            self.fired.fetch_add(1, Relaxed);
        }
        hit
    }

    /// Consume `device`'s next host-spill index; true if that spill is
    /// planned to fail.
    pub fn on_spill(&self, device: usize) -> bool {
        self.on_pressure(&self.spills, device, PressureSite::Spill)
    }

    /// Consume `device`'s next chunked-advance-pass index; true if that
    /// pass is planned to fail at launch.
    pub fn on_chunk_pass(&self, device: usize) -> bool {
        self.on_pressure(&self.passes, device, PressureSite::ChunkPass)
    }

    /// Consume `device`'s next arena-leasing-advance index; true if that
    /// launch is planned to hit an allocation spike.
    pub fn on_lease(&self, device: usize) -> bool {
        self.on_pressure(&self.leases, device, PressureSite::ArenaLease)
    }

    /// Has `device` been permanently lost?
    pub fn is_lost(&self, device: usize) -> bool {
        self.lost[device].load(Relaxed)
    }

    /// Mark `device` permanently lost (also done by an injected
    /// [`KernelFault::DeviceLoss`]).
    pub fn mark_lost(&self, device: usize) {
        self.lost[device].store(true, Relaxed);
    }

    /// Number of fault events that have fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_at_exact_launch_indices() {
        let plan = FaultPlan::new().kernel_fail(0, 2).straggle(1, 0, 40.0);
        let inj = FaultInjector::new(&plan, 2);
        assert_eq!(inj.on_kernel(0), None);
        assert_eq!(inj.on_kernel(0), None);
        assert_eq!(inj.on_kernel(0), Some(KernelFault::Fail));
        assert_eq!(inj.on_kernel(0), None);
        assert_eq!(inj.on_kernel(1), Some(KernelFault::Straggle { delay_us: 40.0 }));
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn device_loss_is_sticky() {
        let plan = FaultPlan::new().device_loss(1, 1);
        let inj = FaultInjector::new(&plan, 2);
        assert!(!inj.is_lost(1));
        assert_eq!(inj.on_kernel(1), None);
        assert_eq!(inj.on_kernel(1), Some(KernelFault::DeviceLoss));
        assert!(inj.is_lost(1));
        assert!(!inj.is_lost(0));
    }

    #[test]
    fn transfer_faults_are_per_link() {
        let plan = FaultPlan::new().transfer_fail(0, 1, 1).transfer_timeout(1, 0, 0);
        let inj = FaultInjector::new(&plan, 2);
        assert_eq!(inj.on_transfer(0, 1), None);
        assert_eq!(inj.on_transfer(0, 1), Some(TransferFault::Fail));
        assert_eq!(inj.on_transfer(1, 0), Some(TransferFault::Timeout));
        assert_eq!(inj.on_transfer(1, 0), None);
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(7, 4, 10, 100);
        let b = FaultPlan::random(7, 4, 10, 100);
        let c = FaultPlan::random(8, 4, 10, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.events.len(), 10);
        // random plans are transient-only: no device loss
        assert!(!a
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Kernel { fault: KernelFault::DeviceLoss, .. })));
    }

    #[test]
    fn parse_round_trips_the_documented_grammar() {
        let plan = FaultPlan::parse(
            "kfail:0@5, oom:1@2, slow:2@7:35.5, lose:1@40, tfail:0>1@3, ttimeout:2>0@9",
        )
        .unwrap();
        assert_eq!(
            plan,
            FaultPlan::new()
                .kernel_fail(0, 5)
                .transient_oom(1, 2)
                .straggle(2, 7, 35.5)
                .device_loss(1, 40)
                .transfer_fail(0, 1, 3)
                .transfer_timeout(2, 0, 9)
        );
        assert!(FaultPlan::parse("explode:0@1").is_err());
        assert!(FaultPlan::parse("kfail:0").is_err());
        assert!(FaultPlan::parse("slow:0@1").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn remap_drops_dead_devices_and_renumbers() {
        let plan = FaultPlan::new()
            .kernel_fail(0, 5)
            .kernel_fail(2, 3)
            .transfer_fail(2, 1, 0)
            .transfer_fail(2, 0, 1)
            .device_loss(1, 7);
        // device 1 died; survivors 0 and 2 become runtime 0 and 1
        let remapped = plan.remap(&[0, 2]);
        assert_eq!(
            remapped,
            FaultPlan::new().kernel_fail(0, 5).kernel_fail(1, 3).transfer_fail(1, 0, 1)
        );
    }
}
