//! A node: a set of devices plus the interconnect.

use std::sync::Arc;

use crate::counters::BspCounters;
use crate::device::Device;
use crate::error::{Result, VgpuError};
use crate::fault::{FaultInjector, FaultPlan};
use crate::interconnect::Interconnect;
use crate::profile::HardwareProfile;

/// A single node with `n` (possibly heterogeneous) devices and a fabric.
///
/// The devices are plain values: the framework moves each one into its
/// dedicated control thread for the duration of a traversal and moves them
/// back afterwards, so no locking is needed on the hot path.
#[derive(Debug)]
pub struct SimSystem {
    /// The devices, indexed by device id.
    pub devices: Vec<Device>,
    /// The shared inter-device fabric.
    pub interconnect: Arc<Interconnect>,
    /// The shared fault injector, when a fault plan is attached.
    fault: Option<Arc<FaultInjector>>,
}

impl SimSystem {
    /// Build a system from explicit per-device profiles.
    pub fn new(profiles: Vec<HardwareProfile>, interconnect: Interconnect) -> Result<Self> {
        if interconnect.n_devices() != profiles.len() {
            return Err(VgpuError::BadDevice {
                device: interconnect.n_devices(),
                have: profiles.len(),
            });
        }
        Ok(SimSystem {
            devices: profiles.into_iter().enumerate().map(|(i, p)| Device::new(i, p)).collect(),
            interconnect: Arc::new(interconnect),
            fault: None,
        })
    }

    /// A homogeneous node of `n` devices with the paper's PCIe topology
    /// (peer groups of 4).
    pub fn homogeneous(n: usize, profile: HardwareProfile) -> Self {
        Self::new(vec![profile; n], Interconnect::pcie3(n, 4))
            .expect("matching sizes by construction")
    }

    /// Attach a fault plan: builds the shared [`FaultInjector`] and wires it
    /// into every device. Call before enacting; an empty plan is free (the
    /// injector's probe maps are empty, so no launch behaviour changes).
    pub fn attach_fault_plan(&mut self, plan: &FaultPlan) {
        let inj = Arc::new(FaultInjector::new(plan, self.devices.len()));
        for d in &mut self.devices {
            d.set_fault_injector(Some(Arc::clone(&inj)));
        }
        self.fault = Some(inj);
    }

    /// The attached fault injector, if any (shared with mailboxes by the
    /// enactors so transfers consult the same plan).
    pub fn fault_injector(&self) -> Option<Arc<FaultInjector>> {
        self.fault.clone()
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// The latest simulated clock over all devices: the traversal makespan.
    pub fn makespan_us(&self) -> f64 {
        self.devices.iter().map(Device::now).fold(0.0, f64::max)
    }

    /// Aggregate BSP counters over all devices.
    pub fn total_counters(&self) -> BspCounters {
        let mut total = BspCounters::default();
        for d in &self.devices {
            total.merge(&d.counters);
        }
        total
    }

    /// Peak memory use over devices (bytes) — the per-GPU footprint Fig. 3
    /// reports is the max, since the graph must *fit* on every device.
    pub fn peak_memory_per_device(&self) -> u64 {
        self.devices.iter().map(|d| d.pool().peak()).max().unwrap_or(0)
    }

    /// Sum of peak memory over devices (bytes) — total footprint.
    pub fn total_peak_memory(&self) -> u64 {
        self.devices.iter().map(|d| d.pool().peak()).sum()
    }

    /// Reset all device clocks and counters (memory persists).
    pub fn reset_clocks(&mut self) {
        for d in &mut self.devices {
            d.reset_clock();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{KernelKind, COMPUTE_STREAM};

    #[test]
    fn homogeneous_system_has_n_devices() {
        let sys = SimSystem::homogeneous(6, HardwareProfile::k40());
        assert_eq!(sys.n_devices(), 6);
        assert_eq!(sys.devices[5].id(), 5);
    }

    #[test]
    fn mismatched_interconnect_is_rejected() {
        let err =
            SimSystem::new(vec![HardwareProfile::k40(); 2], Interconnect::pcie3(3, 4)).unwrap_err();
        assert!(matches!(err, VgpuError::BadDevice { .. }));
    }

    #[test]
    fn makespan_is_max_over_devices() {
        let mut sys = SimSystem::homogeneous(2, HardwareProfile::k40());
        sys.devices[0].kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 30_000)).unwrap();
        sys.devices[1].kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 3_000)).unwrap();
        assert!((sys.makespan_us() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_profiles_are_allowed() {
        let sys = SimSystem::new(
            vec![HardwareProfile::k40(), HardwareProfile::xeon_e5()],
            Interconnect::pcie3(2, 4),
        )
        .unwrap();
        assert_eq!(sys.devices[1].profile().name, "Xeon E5-2690 v2");
    }

    #[test]
    fn counters_aggregate() {
        let mut sys = SimSystem::homogeneous(3, HardwareProfile::k40());
        for d in &mut sys.devices {
            d.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 10)).unwrap();
        }
        assert_eq!(sys.total_counters().w_items, 30);
        assert_eq!(sys.total_counters().kernel_launches, 3);
    }
}
