//! Device memory: capacity-limited pools and tracked arrays.
//!
//! GPU memory capacity is the central resource constraint the paper designs
//! around (§VI-B): worst-case allocation "artificially limits the size of the
//! subgraph we can place onto one GPU". Every device-resident buffer in this
//! codebase is a [`DeviceArray`] registered with its device's [`MemoryPool`];
//! the pool enforces the profile's capacity (allocations beyond it fail with
//! [`VgpuError::OutOfMemory`]) and keeps the statistics the Fig. 3 experiment
//! reports: live bytes, peak bytes, allocation and reallocation counts.
//!
//! Counters are atomics so arrays can be dropped from any thread while the
//! pool handle is shared (Rust Atomics & Locks, ch. 2 idiom: independent
//! statistics counters with `Relaxed` ordering — the counters carry no
//! synchronization obligations of their own, threads only rendezvous at BSP
//! barriers which provide the necessary happens-before edges).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use crate::error::{Result, VgpuError};

#[derive(Debug)]
struct PoolInner {
    device: usize,
    capacity: u64,
    live: AtomicU64,
    peak: AtomicU64,
    allocs: AtomicU64,
    reallocs: AtomicU64,
    frees: AtomicU64,
    /// Total bytes moved by reallocations (old contents copied over).
    realloc_copied: AtomicU64,
}

/// A capacity-limited device memory pool; cheaply cloneable handle.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    inner: Arc<PoolInner>,
}

impl MemoryPool {
    /// Create a pool of `capacity` bytes for device `device`.
    pub fn new(device: usize, capacity: u64) -> Self {
        MemoryPool {
            inner: Arc::new(PoolInner {
                device,
                capacity,
                live: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
                reallocs: AtomicU64::new(0),
                frees: AtomicU64::new(0),
                realloc_copied: AtomicU64::new(0),
            }),
        }
    }

    fn reserve(&self, bytes: u64) -> Result<()> {
        let inner = &self.inner;
        // CAS loop so concurrent allocations cannot jointly exceed capacity.
        let mut cur = inner.live.load(Relaxed);
        loop {
            let new = cur + bytes;
            if new > inner.capacity {
                return Err(VgpuError::OutOfMemory {
                    device: inner.device,
                    requested: bytes,
                    live: cur,
                    capacity: inner.capacity,
                });
            }
            match inner.live.compare_exchange_weak(cur, new, Relaxed, Relaxed) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        inner.peak.fetch_max(inner.live.load(Relaxed), Relaxed);
        Ok(())
    }

    fn release(&self, bytes: u64) {
        self.inner.live.fetch_sub(bytes, Relaxed);
    }

    /// Device id this pool belongs to.
    pub fn device(&self) -> usize {
        self.inner.device
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Currently live bytes.
    pub fn live(&self) -> u64 {
        self.inner.live.load(Relaxed)
    }

    /// Bytes still available before the capacity limit. This is what the
    /// memory-pressure governor sizes chunked passes from: it is a pure
    /// function of the pool's simulated accounting, so any policy derived
    /// from it is deterministic across host thread counts.
    pub fn free_bytes(&self) -> u64 {
        self.inner.capacity.saturating_sub(self.inner.live.load(Relaxed))
    }

    /// High-water mark of live bytes.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Relaxed)
    }

    /// Number of allocations performed.
    pub fn allocs(&self) -> u64 {
        self.inner.allocs.load(Relaxed)
    }

    /// Number of reallocations (capacity growths) performed.
    pub fn reallocs(&self) -> u64 {
        self.inner.reallocs.load(Relaxed)
    }

    /// Number of frees performed.
    pub fn frees(&self) -> u64 {
        self.inner.frees.load(Relaxed)
    }

    /// Total bytes copied while reallocating.
    pub fn realloc_copied(&self) -> u64 {
        self.inner.realloc_copied.load(Relaxed)
    }

    /// Allocate a zero-initialized array of `len` elements.
    pub fn alloc<T: Default + Clone>(&self, len: usize) -> Result<DeviceArray<T>> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        self.reserve(bytes)?;
        self.inner.allocs.fetch_add(1, Relaxed);
        Ok(DeviceArray { data: vec![T::default(); len], cap: len, pool: self.clone() })
    }

    /// Allocate an *empty* array with capacity for `cap` elements.
    pub fn alloc_with_capacity<T: Default + Clone>(&self, cap: usize) -> Result<DeviceArray<T>> {
        let mut a = self.alloc::<T>(cap)?;
        a.data.clear();
        Ok(a)
    }

    /// Allocate an array holding a copy of `src` (the `cudaMemcpy` H2D analog;
    /// the time cost of the copy is charged by the caller through the device).
    pub fn alloc_from_slice<T: Default + Clone>(&self, src: &[T]) -> Result<DeviceArray<T>> {
        let mut a = self.alloc_with_capacity::<T>(src.len())?;
        a.data.extend_from_slice(src);
        Ok(a)
    }
}

/// An accounting-only reservation: charges the pool for `bytes` without
/// backing host memory. Used for data that lives in host-side structures but
/// is logically device-resident (e.g. the partitioned subgraph CSR arrays,
/// which the framework shares read-only across the run instead of copying).
#[derive(Debug)]
pub struct Reservation {
    bytes: u64,
    pool: MemoryPool,
}

impl Reservation {
    /// Reserved size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
        self.pool.inner.frees.fetch_add(1, Relaxed);
    }
}

impl MemoryPool {
    /// Reserve `bytes` of device memory without a backing buffer.
    pub fn reserve_external(&self, bytes: u64) -> Result<Reservation> {
        self.reserve(bytes)?;
        self.inner.allocs.fetch_add(1, Relaxed);
        Ok(Reservation { bytes, pool: self.clone() })
    }
}

/// A device-resident, pool-accounted growable array.
///
/// The accounted footprint is `capacity * size_of::<T>()`; growing beyond the
/// current capacity is a *reallocation* — the expensive event the just-enough
/// allocation scheme (§VI-B) works to make rare.
#[derive(Debug)]
pub struct DeviceArray<T> {
    data: Vec<T>,
    /// Accounted capacity in elements. Kept separately from `data.capacity()`
    /// because `Vec` may over-allocate; accounting uses exactly what was
    /// requested, as a real `cudaMalloc` would.
    cap: usize,
    pool: MemoryPool,
}

impl<T: Default + Clone> DeviceArray<T> {
    /// Element count currently in use.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no elements are in use.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Accounted capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Accounted footprint in bytes.
    pub fn bytes(&self) -> u64 {
        (self.cap * std::mem::size_of::<T>()) as u64
    }

    /// Grow the accounted capacity to at least `need` elements, reallocating
    /// if necessary. Returns `Ok(copied_bytes)`: 0 when no reallocation
    /// happened, otherwise the number of live bytes that had to be copied
    /// (the caller charges the copy to the simulated clock).
    pub fn ensure_capacity(&mut self, need: usize) -> Result<u64> {
        if need <= self.cap {
            return Ok(0);
        }
        let elem = std::mem::size_of::<T>();
        let extra = ((need - self.cap) * elem) as u64;
        self.pool.reserve(extra)?;
        self.pool.inner.reallocs.fetch_add(1, Relaxed);
        let copied = (self.data.len() * elem) as u64;
        self.pool.inner.realloc_copied.fetch_add(copied, Relaxed);
        self.data.reserve(need - self.data.len());
        self.cap = need;
        Ok(copied)
    }

    /// Set the in-use length to `len`, zero-filling new elements; `len` must
    /// not exceed the accounted capacity (call [`Self::ensure_capacity`]
    /// first — exactly the discipline the framework's allocation schemes
    /// implement).
    pub fn resize_within_capacity(&mut self, len: usize) {
        assert!(
            len <= self.cap,
            "resize to {len} exceeds accounted capacity {} — allocate first",
            self.cap
        );
        self.data.resize(len, T::default());
    }

    /// Clear the in-use contents (capacity is retained).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shrink the accounted capacity to `cap` elements (never below the
    /// in-use length), releasing the freed bytes back to the pool. Returns
    /// the number of bytes released. This is the reclaim half of a host
    /// spill: the caller is responsible for charging the staging transfer
    /// and for re-growing (a counted reallocation) if the capacity is
    /// needed again.
    pub fn shrink_to(&mut self, cap: usize) -> u64 {
        let cap = cap.max(self.data.len());
        if cap >= self.cap {
            return 0;
        }
        let freed = ((self.cap - cap) * std::mem::size_of::<T>()) as u64;
        self.pool.release(freed);
        self.cap = cap;
        freed
    }

    /// Append a value; the in-use length must stay within accounted capacity.
    pub fn push(&mut self, value: T) {
        assert!(self.data.len() < self.cap, "push beyond accounted capacity {}", self.cap);
        self.data.push(value);
    }

    /// Append a slice; the in-use length must stay within accounted capacity.
    pub fn extend_from_slice(&mut self, values: &[T]) {
        assert!(
            self.data.len() + values.len() <= self.cap,
            "extend beyond accounted capacity {}",
            self.cap
        );
        self.data.extend_from_slice(values);
    }

    /// Read-only view of the in-use elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the in-use elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The pool this array is accounted against.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }
}

impl<T> Drop for DeviceArray<T> {
    fn drop(&mut self) {
        let bytes = (self.cap * std::mem::size_of::<T>()) as u64;
        self.pool.release(bytes);
        self.pool.inner.frees.fetch_add(1, Relaxed);
    }
}

impl<T> std::ops::Index<usize> for DeviceArray<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T> std::ops::IndexMut<usize> for DeviceArray<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_balance() {
        let pool = MemoryPool::new(0, 1 << 20);
        {
            let a = pool.alloc::<u32>(1000).unwrap();
            assert_eq!(pool.live(), 4000);
            assert_eq!(a.len(), 1000);
        }
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.peak(), 4000);
        assert_eq!(pool.allocs(), 1);
        assert_eq!(pool.frees(), 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let pool = MemoryPool::new(3, 1024);
        let err = pool.alloc::<u64>(1000).unwrap_err();
        match err {
            VgpuError::OutOfMemory { device, requested, capacity, .. } => {
                assert_eq!(device, 3);
                assert_eq!(requested, 8000);
                assert_eq!(capacity, 1024);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ensure_capacity_counts_reallocs_and_copy_bytes() {
        let pool = MemoryPool::new(0, 1 << 20);
        let mut a = pool.alloc::<u32>(10).unwrap();
        assert_eq!(a.ensure_capacity(5).unwrap(), 0, "shrinking request is a no-op");
        let copied = a.ensure_capacity(100).unwrap();
        assert_eq!(copied, 40, "10 live u32s copied");
        assert_eq!(pool.reallocs(), 1);
        assert_eq!(pool.live(), 400);
        assert_eq!(a.capacity(), 100);
    }

    #[test]
    fn realloc_beyond_capacity_fails_but_array_stays_usable() {
        let pool = MemoryPool::new(0, 100);
        let mut a = pool.alloc::<u8>(50).unwrap();
        assert!(a.ensure_capacity(200).is_err());
        assert_eq!(a.capacity(), 50);
        a.resize_within_capacity(50);
        assert_eq!(a.len(), 50);
    }

    #[test]
    #[should_panic(expected = "exceeds accounted capacity")]
    fn resize_beyond_capacity_panics() {
        let pool = MemoryPool::new(0, 1 << 20);
        let mut a = pool.alloc::<u32>(4).unwrap();
        a.resize_within_capacity(5);
    }

    #[test]
    fn push_and_extend_respect_capacity() {
        let pool = MemoryPool::new(0, 1 << 20);
        let mut a = pool.alloc_with_capacity::<u32>(4).unwrap();
        a.push(1);
        a.extend_from_slice(&[2, 3, 4]);
        assert_eq!(a.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn alloc_from_slice_copies_contents() {
        let pool = MemoryPool::new(0, 1 << 20);
        let a = pool.alloc_from_slice(&[7u32, 8, 9]).unwrap();
        assert_eq!(a.as_slice(), &[7, 8, 9]);
        assert_eq!(pool.live(), 12);
    }

    #[test]
    fn shrink_releases_bytes_and_regrow_is_a_realloc() {
        let pool = MemoryPool::new(0, 1000);
        let mut a = pool.alloc_with_capacity::<u32>(100).unwrap();
        a.resize_within_capacity(10);
        assert_eq!(pool.free_bytes(), 600);
        let freed = a.shrink_to(20);
        assert_eq!(freed, 320, "80 u32 slots released");
        assert_eq!(a.capacity(), 20);
        assert_eq!(pool.free_bytes(), 920);
        // never shrinks below the in-use length
        assert_eq!(a.shrink_to(5), 40, "clamped to len 10, freeing 10 slots");
        assert_eq!(a.capacity(), 10);
        assert_eq!(a.as_slice().len(), 10);
        // growing back is the counted reallocation the governor reports
        let before = pool.reallocs();
        a.ensure_capacity(50).unwrap();
        assert_eq!(pool.reallocs(), before + 1);
    }

    #[test]
    fn concurrent_allocs_never_exceed_capacity() {
        let pool = MemoryPool::new(0, 8000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..100 {
                        if let Ok(a) = pool.alloc::<u64>(16) {
                            assert!(pool.live() <= pool.capacity());
                            held.push(a);
                            if held.len() > 4 {
                                held.remove(0);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(pool.live(), 0);
    }
}

#[cfg(test)]
mod reservation_tests {
    use super::*;

    #[test]
    fn reservation_accounts_and_releases() {
        let pool = MemoryPool::new(0, 1000);
        {
            let r = pool.reserve_external(600).unwrap();
            assert_eq!(r.bytes(), 600);
            assert_eq!(pool.live(), 600);
            assert!(pool.reserve_external(500).is_err(), "would exceed capacity");
        }
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.peak(), 600);
    }
}
