//! Superstep arenas: recycling pools for host-side kernel scratch.
//!
//! Every parallel operator launch materializes per-chunk emission buffers
//! (the per-block output idiom of `par::run_chunks`). Allocating those
//! `Vec`s fresh on every launch made each superstep pay the full
//! grow-by-doubling realloc ladder again — pure host-side churn that the
//! simulated clock never sees but the wall clock very much does. An
//! [`Arena`] keeps the buffers between launches: a chunk *leases* a buffer
//! (reusing the retained capacity of a previous superstep's buffer when one
//! is free) and *reclaims* it after its contents were merged, so steady
//! state runs allocation-free.
//!
//! The arena is deliberately invisible to the simulation: it holds host
//! memory only, is never accounted against a [`crate::MemoryPool`], and
//! leasing order cannot influence results because chunk outputs are merged
//! in chunk order regardless of which buffer backed them. At each BSP
//! barrier the enactor trims the free list back to a bounded retained set
//! ([`Arena::trim`]) so a one-off giant superstep does not pin its peak
//! footprint for the rest of the run.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// How many free buffers a barrier-time [`Arena::trim`] retains by default.
/// Sized for the common case (a few hundred chunks per superstep at the
/// cache-blocked chunk granularity); larger supersteps simply allocate
/// their tail chunks fresh.
pub const ARENA_RETAIN: usize = 256;

/// Usage statistics: how often leases were served from retained buffers.
#[derive(Debug, Default)]
pub struct ArenaStats {
    leases: AtomicU64,
    hits: AtomicU64,
    trimmed: AtomicU64,
}

impl ArenaStats {
    /// Total buffers handed out.
    pub fn leases(&self) -> u64 {
        self.leases.load(Relaxed)
    }

    /// Leases served by reusing a retained buffer (no host allocation).
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Leases that had to allocate a fresh buffer.
    pub fn misses(&self) -> u64 {
        self.leases() - self.hits()
    }

    /// Buffers dropped by barrier-time trims.
    pub fn trimmed(&self) -> u64 {
        self.trimmed.load(Relaxed)
    }
}

/// A recycling pool of `Vec<T>` scratch buffers shared by the chunk workers
/// of one device's kernel launches.
#[derive(Debug, Default)]
pub struct Arena<T> {
    free: Mutex<Vec<Vec<T>>>,
    stats: ArenaStats,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena { free: Mutex::new(Vec::new()), stats: ArenaStats::default() }
    }

    /// Lease a cleared buffer, reusing retained capacity when available.
    pub fn lease(&self) -> Vec<T> {
        self.stats.leases.fetch_add(1, Relaxed);
        if let Some(buf) = self.free.lock().expect("arena poisoned").pop() {
            self.stats.hits.fetch_add(1, Relaxed);
            buf
        } else {
            Vec::new()
        }
    }

    /// Return a leased buffer; its capacity is retained for future leases.
    pub fn reclaim(&self, mut buf: Vec<T>) {
        buf.clear();
        if buf.capacity() > 0 {
            self.free.lock().expect("arena poisoned").push(buf);
        }
    }

    /// Barrier-time reset: retain at most `keep` free buffers (largest
    /// capacities first) and drop the rest, bounding the host footprint the
    /// arena carries across supersteps.
    pub fn trim(&self, keep: usize) {
        let mut free = self.free.lock().expect("arena poisoned");
        if free.len() > keep {
            free.sort_unstable_by_key(|b| std::cmp::Reverse(b.capacity()));
            self.stats.trimmed.fetch_add((free.len() - keep) as u64, Relaxed);
            free.truncate(keep);
        }
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.lock().expect("arena poisoned").len()
    }

    /// Usage statistics.
    pub fn stats(&self) -> &ArenaStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_reclaim_reuses_capacity() {
        let arena = Arena::<u32>::new();
        let mut a = arena.lease();
        a.extend(0..1000);
        let ptr = a.as_ptr();
        arena.reclaim(a);
        let b = arena.lease();
        assert_eq!(b.as_ptr(), ptr, "retained buffer is reused");
        assert!(b.is_empty(), "leased buffers come back cleared");
        assert!(b.capacity() >= 1000);
        assert_eq!(arena.stats().leases(), 2);
        assert_eq!(arena.stats().hits(), 1);
        assert_eq!(arena.stats().misses(), 1);
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        let arena = Arena::<u32>::new();
        arena.reclaim(Vec::new());
        assert_eq!(arena.retained(), 0);
    }

    #[test]
    fn trim_keeps_the_largest_buffers() {
        let arena = Arena::<u8>::new();
        for cap in [10, 500, 50, 200] {
            arena.reclaim(Vec::with_capacity(cap));
        }
        arena.trim(2);
        assert_eq!(arena.retained(), 2);
        assert_eq!(arena.stats().trimmed(), 2);
        let kept: Vec<usize> = (0..2).map(|_| arena.lease().capacity()).collect();
        assert!(kept.contains(&500) && kept.contains(&200), "largest survive: {kept:?}");
    }

    #[test]
    fn concurrent_lease_reclaim_is_safe() {
        let arena = Arena::<u64>::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let arena = &arena;
                s.spawn(move || {
                    for i in 0..200 {
                        let mut b = arena.lease();
                        b.push(t * 1000 + i);
                        arena.reclaim(b);
                    }
                });
            }
        });
        assert_eq!(arena.stats().leases(), 1600);
    }
}
