//! Hardware profiles: the calibrated per-device cost parameters.
//!
//! A [`HardwareProfile`] captures everything the cost model needs to know
//! about one processor. The presets are calibrated against published
//! numbers for the boards the paper evaluates on:
//!
//! * **Tesla K40** — 12 GB GDDR5 at 288 GB/s; Gunrock-era BFS sustains about
//!   3 GTEPS per GPU on large power-law graphs (the paper's 4×K40 BFS at
//!   12.9 GTEPS, Table III).
//! * **Tesla K80 (per GPU)** — each of the two GK210s has 12 GB at 240 GB/s.
//! * **Tesla P100 (PCIe)** — 16 GB HBM2 at 732 GB/s; the paper observes that
//!   computation speeds up by roughly the bandwidth ratio while inter-GPU
//!   bandwidth stays flat, which is exactly what makes DOBFS scaling *worse*
//!   on P100 (§VII-B).
//! * **Xeon E5-2690 v2** — the host CPU, used as a device profile by the
//!   Totem-like hybrid baseline.
//!
//! Graph-kernel throughputs scale with memory bandwidth (graph traversal is
//! bandwidth-bound), so the non-K40 presets are derived from the K40 numbers
//! by the bandwidth ratio — the same scaling rule the paper applies when
//! comparing against K20 results (§VII-C).

/// Gibibyte in bytes.
pub const GIB: u64 = 1 << 30;

/// Calibrated cost parameters for one (virtual) processor.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Human-readable board name, e.g. `"Tesla K40"`.
    pub name: &'static str,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Device memory bandwidth in GB/s (used for bulk local copies).
    pub mem_bandwidth_gb_s: f64,
    /// Fixed overhead per kernel launch in microseconds (§V-B: ~3 µs).
    pub kernel_launch_us: f64,
    /// Edge-centric throughput (edges/µs) of an advance-style kernel.
    pub advance_edges_per_us: f64,
    /// Vertex-centric throughput (vertices/µs) of a filter-style kernel.
    pub filter_vertices_per_us: f64,
    /// Throughput (items/µs) of atomic-using kernels such as the
    /// `Expand_Incoming` combiner and the frontier split (atomic output
    /// cursors). Mostly-conflict-free atomics on Kepler run near memory
    /// bandwidth, somewhat below plain filter throughput.
    pub atomic_items_per_us: f64,
    /// Throughput (items/µs) of memset / scan / bookkeeping kernels.
    pub bulk_items_per_us: f64,
    /// Per-superstep API overhead in microseconds: CPU-side bookkeeping,
    /// event queries, stream synchronization (part of BSP `l`).
    pub superstep_api_us: f64,
    /// Extra synchronization cost charged once per superstep as soon as more
    /// than one device participates (inter-GPU event wait / flag exchange).
    pub peer_sync_base_us: f64,
    /// Additional per-peer synchronization cost (fan-in of event waits).
    pub peer_sync_per_peer_us: f64,
}

impl HardwareProfile {
    /// NVIDIA Tesla K40: the paper's main 6-GPU testbed.
    pub fn k40() -> Self {
        HardwareProfile {
            name: "Tesla K40",
            mem_capacity: 12 * GIB,
            mem_bandwidth_gb_s: 288.0,
            kernel_launch_us: 3.0,
            advance_edges_per_us: 3000.0, // ~3 GTEPS sustained BFS advance
            filter_vertices_per_us: 9000.0,
            atomic_items_per_us: 6000.0,
            bulk_items_per_us: 24000.0,
            superstep_api_us: 55.0,
            peer_sync_base_us: 40.0,
            peer_sync_per_peer_us: 25.0,
        }
    }

    /// One GPU of an NVIDIA Tesla K80 board (GK210, 12 GB at 240 GB/s).
    pub fn k80_gpu() -> Self {
        HardwareProfile { name: "Tesla K80 (per GPU)", ..Self::k40().scaled_bandwidth(240.0) }
    }

    /// NVIDIA Tesla P100 (PCIe, 16 GB HBM2).
    pub fn p100() -> Self {
        HardwareProfile {
            name: "Tesla P100",
            mem_capacity: 16 * GIB,
            // P100 kernel launches are slightly cheaper; API overheads shrink
            // a little with the newer driver but remain the same order.
            kernel_launch_us: 2.5,
            superstep_api_us: 34.0,
            ..Self::k40().scaled_bandwidth(732.0)
        }
    }

    /// 10-core Intel Xeon E5-2690 v2 host processor, used by the hybrid
    /// (Totem-like) baseline as a "device". Throughputs reflect a good
    /// multi-threaded CPU graph framework: ~0.3 GTEPS traversal.
    pub fn xeon_e5() -> Self {
        HardwareProfile {
            name: "Xeon E5-2690 v2",
            mem_capacity: 128 * GIB,
            mem_bandwidth_gb_s: 59.7,
            kernel_launch_us: 0.5, // a function call, not a kernel launch
            advance_edges_per_us: 300.0,
            filter_vertices_per_us: 900.0,
            atomic_items_per_us: 600.0,
            bulk_items_per_us: 4000.0,
            superstep_api_us: 5.0,
            peer_sync_base_us: 5.0,
            peer_sync_per_peer_us: 2.0,
        }
    }

    /// Derive a profile whose compute throughputs are scaled by
    /// `bandwidth / self.mem_bandwidth_gb_s` — the bandwidth-proportional
    /// scaling rule for bandwidth-bound graph kernels.
    pub fn scaled_bandwidth(&self, bandwidth_gb_s: f64) -> Self {
        let r = bandwidth_gb_s / self.mem_bandwidth_gb_s;
        HardwareProfile {
            mem_bandwidth_gb_s: bandwidth_gb_s,
            advance_edges_per_us: self.advance_edges_per_us * r,
            filter_vertices_per_us: self.filter_vertices_per_us * r,
            atomic_items_per_us: self.atomic_items_per_us * r,
            bulk_items_per_us: self.bulk_items_per_us * r,
            ..self.clone()
        }
    }

    /// Replace the memory capacity (useful for artificially small devices in
    /// tests of the out-of-memory paths).
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.mem_capacity = bytes;
        self
    }

    /// Divide every *fixed* overhead (kernel launch, superstep API, peer
    /// synchronization) by `scale`. In the BSP model `T = W + H·g + S·l`,
    /// shrinking a workload by `s` shrinks W and H by `s` but leaves the
    /// fixed `l` terms alone, which would let overheads swamp the scaled
    /// experiment; dividing the overheads by the same `s` preserves the
    /// paper's work-to-overhead ratios — and therefore its scaling shapes
    /// and GTEPS magnitudes — at laptop scale. Experiments that *measure*
    /// the overheads themselves (§V-B) use the unscaled profile.
    pub fn with_overhead_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0, "overhead scale is a shrink factor");
        self.kernel_launch_us /= scale;
        self.superstep_api_us /= scale;
        self.peer_sync_base_us /= scale;
        self.peer_sync_per_peer_us /= scale;
        self
    }

    /// Cost in microseconds of a bulk device-local copy of `bytes` bytes.
    pub fn local_copy_us(&self, bytes: u64) -> f64 {
        // Effective copy bandwidth is read+write, roughly half peak.
        bytes as f64 / (self.mem_bandwidth_gb_s * 0.5 * 1e3)
    }

    /// Per-superstep synchronization cost `l` for an `n`-device system
    /// (§V-B). The jump from one to two devices reflects inter-GPU
    /// synchronization; beyond that the cost grows roughly linearly with the
    /// number of peers, matching the paper's measured {66.8, 124, 142, 188} µs
    /// per-iteration floor for 1–4 GPUs once kernel launches are added.
    pub fn superstep_sync_us(&self, n_devices: usize) -> f64 {
        if n_devices <= 1 {
            self.superstep_api_us
        } else {
            self.superstep_api_us
                + self.peer_sync_base_us
                + self.peer_sync_per_peer_us * (n_devices - 1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_capacity_is_12_gib() {
        assert_eq!(HardwareProfile::k40().mem_capacity, 12 * GIB);
    }

    #[test]
    fn bandwidth_scaling_scales_throughputs_proportionally() {
        let k40 = HardwareProfile::k40();
        let double = k40.scaled_bandwidth(k40.mem_bandwidth_gb_s * 2.0);
        assert!((double.advance_edges_per_us - 2.0 * k40.advance_edges_per_us).abs() < 1e-9);
        assert!((double.filter_vertices_per_us - 2.0 * k40.filter_vertices_per_us).abs() < 1e-9);
        // Capacity and launch overhead are not bandwidth-derived.
        assert_eq!(double.mem_capacity, k40.mem_capacity);
        assert_eq!(double.kernel_launch_us, k40.kernel_launch_us);
    }

    #[test]
    fn p100_is_faster_than_k40_but_interconnect_independent() {
        let k40 = HardwareProfile::k40();
        let p100 = HardwareProfile::p100();
        assert!(p100.advance_edges_per_us > 2.0 * k40.advance_edges_per_us);
        assert_eq!(p100.mem_capacity, 16 * GIB);
    }

    #[test]
    fn sync_cost_jumps_from_one_to_two_devices() {
        let p = HardwareProfile::k40();
        let l1 = p.superstep_sync_us(1);
        let l2 = p.superstep_sync_us(2);
        let l3 = p.superstep_sync_us(3);
        let l4 = p.superstep_sync_us(4);
        assert!(l2 - l1 > l3 - l2, "1->2 jump exceeds 2->3 increment");
        assert!((l3 - l2 - (l4 - l3)).abs() < 1e-9, "linear beyond 2 devices");
    }

    #[test]
    fn local_copy_cost_is_linear_in_bytes() {
        let p = HardwareProfile::k40();
        let a = p.local_copy_us(1 << 20);
        let b = p.local_copy_us(2 << 20);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }
}
