//! A virtual GPU: streams, memory pool, clock and metered kernel launches.

use std::sync::Arc;

use crate::counters::BspCounters;
use crate::error::{Result, VgpuError};
use crate::fault::{FaultInjector, KernelFault};
use crate::memory::{DeviceArray, MemoryPool};
use crate::profile::HardwareProfile;
use crate::stream::{Event, Stream, StreamId};
use crate::timeline::{SpanMeta, TraceEvent, TraceKind};

/// The kind of kernel being launched; selects which calibrated throughput of
/// the [`HardwareProfile`] meters the work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Edge-centric traversal kernel (Gunrock *advance*); work unit = edges.
    Advance,
    /// Vertex-centric selection kernel (Gunrock *filter*); work unit =
    /// vertices.
    Filter,
    /// A fused advance+filter kernel (§VI-C); work unit = edges. One launch
    /// instead of two and no intermediate frontier in memory.
    FusedAdvanceFilter,
    /// Per-element compute kernel; work unit = elements.
    Compute,
    /// Atomic-heavy communication-computation kernel (`Expand_Incoming`
    /// combiner, frontier split with atomic output cursors).
    Combine,
    /// Frontier split / package kernel (communication computation).
    Split,
    /// Bulk bookkeeping: memset, scan, compact, copy.
    Bulk,
}

impl KernelKind {
    /// Does this kernel count toward W (primitive computation) or C
    /// (communication computation) in the BSP accounting?
    pub fn is_communication_computation(self) -> bool {
        matches!(self, KernelKind::Combine | KernelKind::Split)
    }

    /// Trace label for the profiler.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Advance => "advance",
            KernelKind::Filter => "filter",
            KernelKind::FusedAdvanceFilter => "advance+filter",
            KernelKind::Compute => "compute",
            KernelKind::Combine => "combine",
            KernelKind::Split => "split",
            KernelKind::Bulk => "bulk",
        }
    }
}

/// Conventional stream assignment used by the framework: stream 0 computes,
/// stream 1 communicates, mirroring the paper's separation of computation and
/// communication into different CUDA streams.
pub const COMPUTE_STREAM: StreamId = StreamId(0);
/// See [`COMPUTE_STREAM`].
pub const COMM_STREAM: StreamId = StreamId(1);

/// One virtual GPU.
#[derive(Debug)]
pub struct Device {
    id: usize,
    profile: HardwareProfile,
    pool: MemoryPool,
    streams: Vec<Stream>,
    /// Bandwidth multiplier on per-item kernel cost reflecting the graph's
    /// id widths (Table V: 64-bit vertex ids read 2× data per edge and
    /// record 0.5× performance). 1.0 = the 32-bit-vertex/32-bit-offset
    /// baseline; set by the framework from the graph's `IdWidths`.
    width_factor: f64,
    /// Host worker threads available to kernel bodies (see [`crate::par`]).
    /// Affects wall-clock execution speed only — never the metered cost,
    /// which is a pure function of the charged item counts.
    kernel_threads: usize,
    /// Deterministic fault injector shared across the system; `None` (the
    /// default) leaves the launch path exactly as fast and exactly as
    /// metered as a fault-free build.
    fault: Option<Arc<FaultInjector>>,
    /// A one-shot fault armed by the framework for the *next* launch (how
    /// pressure-machinery faults — chunked-advance passes, arena leases —
    /// reach the launch site; see [`crate::fault::PressureSite`]). Consumed
    /// by the launch whether or not it also retries.
    pending_fault: Option<KernelFault>,
    /// Transient launch faults are retried in place up to this many times
    /// (the fault fired *before* the body, so the failed launch had no side
    /// effects and an immediate relaunch is always safe).
    retry_max: u32,
    /// Simulated backoff charged per relaunch attempt.
    retry_backoff_us: f64,
    /// Relaunch attempts performed during the current traversal.
    kernel_retries: u64,
    /// BSP cost counters for the current traversal.
    pub counters: BspCounters,
    /// Opt-in execution profiler (see [`crate::Timeline`]).
    pub timeline: crate::timeline::Timeline,
}

impl Device {
    /// Create device `id` with the given profile and two streams
    /// (compute + communication).
    pub fn new(id: usize, profile: HardwareProfile) -> Self {
        let pool = MemoryPool::new(id, profile.mem_capacity);
        Device {
            id,
            profile,
            pool,
            streams: vec![Stream::new(0.0), Stream::new(0.0)],
            width_factor: 1.0,
            kernel_threads: crate::par::default_kernel_threads(),
            fault: None,
            pending_fault: None,
            retry_max: 0,
            retry_backoff_us: 0.0,
            kernel_retries: 0,
            counters: BspCounters::default(),
            timeline: crate::timeline::Timeline::default(),
        }
    }

    /// Set the id-width bandwidth factor (see the field docs). The
    /// framework derives it as `(vertex_bytes + offset_bytes/4) / 5`, which
    /// reproduces the paper's measured Table V ratios: 32v/32e → 1.0×
    /// throughput cost, 32v/64e → 1.2×, 64v/64e → 2.0×.
    pub fn set_width_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "width factor must be positive");
        self.width_factor = factor;
    }

    /// The current id-width bandwidth factor.
    pub fn width_factor(&self) -> f64 {
        self.width_factor
    }

    /// Set how many host threads kernel bodies may use (clamped to ≥ 1).
    /// Purely a wall-clock knob: simulated cost and all BSP counters are
    /// charged from item counts and are identical for every value.
    pub fn set_kernel_threads(&mut self, n: usize) {
        self.kernel_threads = n.max(1);
    }

    /// Host threads available to kernel bodies.
    pub fn kernel_threads(&self) -> usize {
        self.kernel_threads
    }

    /// Attach (or detach) a fault injector. Injected faults fire at
    /// deterministic kernel-launch indices — see [`crate::fault`].
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.fault = injector;
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.fault.as_ref()
    }

    /// Arm a one-shot fault for the next kernel launch on this device. The
    /// framework uses this to surface faults whose deterministic site lives
    /// above the launch layer (chunked-advance passes, arena leases): the
    /// site is decided where it is counted, then delivered here so the
    /// normal retry/backoff machinery applies unchanged.
    pub fn inject_fault(&mut self, fault: KernelFault) {
        self.pending_fault = Some(fault);
    }

    /// Bound in-place relaunches of transiently failing kernels: up to
    /// `max_retries` attempts, each charging `backoff_us` simulated
    /// microseconds (plus the failed launch's own overhead) before the
    /// relaunch. `(0, 0.0)` — the default — disables retries.
    pub fn set_retry_policy(&mut self, max_retries: u32, backoff_us: f64) {
        self.retry_max = max_retries;
        self.retry_backoff_us = backoff_us;
    }

    /// Relaunch attempts performed since the last [`Self::reset_clock`].
    pub fn kernel_retries(&self) -> u64 {
        self.kernel_retries
    }

    /// Device id within its system.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The device's hardware profile.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// The device's memory pool.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// Add a stream; returns its id.
    pub fn create_stream(&mut self) -> StreamId {
        let t = self.now();
        self.streams.push(Stream::new(t));
        StreamId(self.streams.len() - 1)
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.streams.len()
    }

    fn stream_mut(&mut self, s: StreamId) -> Result<&mut Stream> {
        let have = self.streams.len();
        self.streams.get_mut(s.0).ok_or(VgpuError::BadStream { stream: s.0, have })
    }

    /// The device's simulated clock: the time at which all streams drain
    /// (the `cudaDeviceSynchronize` analog).
    pub fn now(&self) -> f64 {
        self.streams.iter().map(Stream::ready_at).fold(0.0, f64::max)
    }

    /// Completion time of a single stream.
    pub fn stream_time(&self, s: StreamId) -> f64 {
        self.streams[s.0].ready_at()
    }

    /// Record an event on a stream.
    pub fn record_event(&self, s: StreamId) -> Event {
        self.streams[s.0].record()
    }

    /// Make stream `s` wait for `event` (`cudaStreamWaitEvent` analog; the
    /// event may come from another device's stream).
    pub fn stream_wait(&mut self, s: StreamId, event: Event) -> Result<()> {
        self.stream_mut(s)?.wait(event);
        Ok(())
    }

    /// Launch a kernel on stream `s`. The closure runs immediately (for
    /// real) and must return `(result, work_items)`; the launch charges
    /// `kernel_launch_us + work_items / throughput(kind)` to the stream and
    /// updates the BSP counters. Zero-work launches still pay the launch
    /// overhead — that is precisely the §V-B effect that makes road networks
    /// and deep frontiers slow.
    pub fn kernel<R>(
        &mut self,
        s: StreamId,
        kind: KernelKind,
        f: impl FnOnce() -> (R, u64),
    ) -> Result<R> {
        // Injected faults fire *before* the body runs, so a failed launch
        // has no side effects on device state and can be retried safely.
        let mut straggle_us = 0.0;
        if let Some(inj) = &self.fault {
            if inj.is_lost(self.id) {
                return Err(VgpuError::DeviceLost { device: self.id });
            }
        }
        let mut attempts = 0u32;
        loop {
            // The injector keeps its launch-index semantics even when a
            // pending fault is armed; `take()` makes the armed fault
            // one-shot, so the relaunch after a retry runs clean.
            let injected = self
                .fault
                .as_ref()
                .and_then(|inj| inj.on_kernel(self.id))
                .or_else(|| self.pending_fault.take());
            match injected {
                None => {}
                Some(KernelFault::Straggle { delay_us }) => straggle_us = delay_us,
                Some(KernelFault::Fail) => {
                    // a failed launch still pays its launch overhead
                    self.charge(s, self.profile.kernel_launch_us, 0.0)?;
                    if attempts < self.retry_max {
                        attempts += 1;
                        self.kernel_retries += 1;
                        let meta = SpanMeta::new(TraceKind::Retry, "kernel-retry");
                        self.charge_as(s, self.retry_backoff_us, 0.0, meta)?;
                        continue;
                    }
                    return Err(VgpuError::KernelFailed { device: self.id });
                }
                Some(KernelFault::TransientOom) => {
                    if attempts < self.retry_max {
                        attempts += 1;
                        self.kernel_retries += 1;
                        let meta = SpanMeta::new(TraceKind::Retry, "kernel-retry");
                        self.charge_as(s, self.retry_backoff_us, 0.0, meta)?;
                        continue;
                    }
                    return Err(VgpuError::OutOfMemory {
                        device: self.id,
                        requested: self.profile.mem_capacity,
                        live: self.pool.live(),
                        capacity: self.profile.mem_capacity,
                    });
                }
                Some(KernelFault::DeviceLoss) => {
                    return Err(VgpuError::DeviceLost { device: self.id });
                }
            }
            break;
        }
        let (result, items) = f();
        let per_us = match kind {
            KernelKind::Advance | KernelKind::FusedAdvanceFilter => {
                self.profile.advance_edges_per_us
            }
            KernelKind::Filter | KernelKind::Compute => self.profile.filter_vertices_per_us,
            KernelKind::Combine | KernelKind::Split => self.profile.atomic_items_per_us,
            KernelKind::Bulk => self.profile.bulk_items_per_us,
        };
        let cost =
            self.profile.kernel_launch_us + items as f64 * self.width_factor / per_us + straggle_us;
        let end = self.stream_mut(s)?.enqueue(cost, 0.0);
        if self.timeline.is_enabled() {
            let tk = if kind.is_communication_computation() {
                TraceKind::CommKernel
            } else {
                TraceKind::Kernel
            };
            self.timeline.record(TraceEvent {
                device: self.id,
                stream: s.0,
                kind: tk,
                name: kind.name(),
                start_us: end - cost,
                dur_us: cost,
                items,
                ..TraceEvent::default()
            });
        }
        self.counters.kernel_launches += 1;
        if kind.is_communication_computation() {
            self.counters.c_items += items;
            self.counters.c_time_us += cost;
        } else {
            self.counters.w_items += items;
            self.counters.w_time_us += cost;
        }
        Ok(result)
    }

    /// Charge an explicit duration to a stream without running work (used
    /// for transfer occupancy and host-side overheads).
    pub fn charge(&mut self, s: StreamId, cost_us: f64, not_before: f64) -> Result<f64> {
        let end = self.stream_mut(s)?.enqueue(cost_us, not_before);
        if self.timeline.is_enabled() && cost_us > 0.0 {
            self.timeline.record(TraceEvent {
                device: self.id,
                stream: s.0,
                kind: TraceKind::Charge,
                name: "charge",
                start_us: end - cost_us,
                dur_us: cost_us,
                ..TraceEvent::default()
            });
        }
        Ok(end)
    }

    /// Charge an explicit duration to a stream and record it as a typed
    /// span. The clock effect is identical to [`Self::charge`] (one enqueue
    /// of `cost_us`); the only difference is the recorded event — which is
    /// emitted even for zero-cost spans so that e.g. zero-backoff retries
    /// still appear in the trace paired with their fault-log entries.
    pub fn charge_as(
        &mut self,
        s: StreamId,
        cost_us: f64,
        not_before: f64,
        meta: SpanMeta,
    ) -> Result<f64> {
        let end = self.stream_mut(s)?.enqueue(cost_us, not_before);
        if self.timeline.is_enabled() {
            self.timeline.record(TraceEvent {
                device: self.id,
                stream: s.0,
                kind: meta.kind,
                name: meta.name,
                start_us: end - cost_us,
                dur_us: cost_us,
                items: meta.items,
                bytes: meta.bytes,
                h_us: meta.h_us,
                peer: meta.peer,
                ..TraceEvent::default()
            });
        }
        Ok(end)
    }

    /// Allocate a zeroed array, charging an allocation overhead to the
    /// compute stream (`cudaMalloc` is not free).
    pub fn alloc<T: Default + Clone>(&mut self, len: usize) -> Result<DeviceArray<T>> {
        let a = self.pool.alloc::<T>(len)?;
        self.charge(COMPUTE_STREAM, 2.0, 0.0)?;
        Ok(a)
    }

    /// Allocate an empty array with the given capacity (see [`Self::alloc`]).
    pub fn alloc_with_capacity<T: Default + Clone>(
        &mut self,
        cap: usize,
    ) -> Result<DeviceArray<T>> {
        let a = self.pool.alloc_with_capacity::<T>(cap)?;
        self.charge(COMPUTE_STREAM, 2.0, 0.0)?;
        Ok(a)
    }

    /// Copy host data to a fresh device array, charging the transfer at the
    /// device's memory bandwidth (initialization-time H2D copies).
    pub fn upload<T: Default + Clone>(&mut self, src: &[T]) -> Result<DeviceArray<T>> {
        let a = self.pool.alloc_from_slice(src)?;
        let cost = self.profile.local_copy_us(a.bytes());
        self.charge(COMPUTE_STREAM, 2.0 + cost, 0.0)?;
        Ok(a)
    }

    /// Grow `array` to hold at least `need` elements, charging the
    /// reallocation copy cost. This is the expensive event that the
    /// just-enough allocation scheme's size estimation works to avoid
    /// (§VI-B: "reallocation, which is expensive, is infrequent").
    pub fn ensure_capacity<T: Default + Clone>(
        &mut self,
        array: &mut DeviceArray<T>,
        need: usize,
    ) -> Result<()> {
        let copied = array.ensure_capacity(need)?;
        if copied > 0 || need > 0 {
            // alloc + copy-over cost; freeing the old allocation is cheap
            let cost = 2.0 + self.profile.local_copy_us(copied);
            self.charge(COMPUTE_STREAM, cost, 0.0)?;
        }
        Ok(())
    }

    /// Charge the per-superstep synchronization cost `l` and align every
    /// stream to the device-wide completion time plus that cost. Returns the
    /// new clock value. `global_time` is the maximum clock over all devices
    /// at the barrier (BSP global synchronization).
    pub fn end_superstep(&mut self, n_devices: usize, global_time: f64) -> f64 {
        let l = self.profile.superstep_sync_us(n_devices);
        let local = self.now();
        let aligned = local.max(global_time);
        let t = aligned + l;
        if self.timeline.is_enabled() {
            // The wait span is the barrier skew (idle time behind the
            // slowest peer); the sync span is the `S·l` charge. Recording
            // `start = aligned` keeps `start + dur` bit-equal to the
            // post-barrier clock, which the profiler's exact makespan
            // reconciliation depends on.
            if global_time > local {
                self.timeline.record(TraceEvent {
                    device: self.id,
                    stream: COMPUTE_STREAM.0,
                    kind: TraceKind::BarrierWait,
                    name: "barrier-wait",
                    start_us: local,
                    dur_us: global_time - local,
                    ..TraceEvent::default()
                });
            }
            self.timeline.record(TraceEvent {
                device: self.id,
                stream: COMPUTE_STREAM.0,
                kind: TraceKind::Sync,
                name: "superstep-sync",
                start_us: aligned,
                dur_us: l,
                items: n_devices as u64,
                ..TraceEvent::default()
            });
            self.timeline.advance_superstep();
        }
        for s in &mut self.streams {
            s.advance_to(t);
        }
        self.counters.supersteps += 1;
        self.counters.sync_time_us += l;
        t
    }

    /// Reset the clock and counters for a fresh traversal (memory contents
    /// and allocations persist, exactly like a GPU between runs).
    pub fn reset_clock(&mut self) {
        for s in &mut self.streams {
            *s = Stream::new(0.0);
        }
        self.counters.reset();
        self.kernel_retries = 0;
        self.pending_fault = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(0, HardwareProfile::k40())
    }

    #[test]
    fn kernel_charges_launch_plus_work() {
        let mut d = dev();
        let sum: u64 = d
            .kernel(COMPUTE_STREAM, KernelKind::Advance, || {
                let s: u64 = (0..3000u64).sum();
                (s, 3000)
            })
            .unwrap();
        assert_eq!(sum, 3000 * 2999 / 2);
        // 3 µs launch + 3000 edges / 3000 edges-per-µs = 4 µs
        assert!((d.now() - 4.0).abs() < 1e-9);
        assert_eq!(d.counters.w_items, 3000);
        assert_eq!(d.counters.kernel_launches, 1);
    }

    #[test]
    fn zero_work_kernel_still_pays_launch_overhead() {
        let mut d = dev();
        d.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap();
        assert!((d.now() - d.profile().kernel_launch_us).abs() < 1e-9);
    }

    #[test]
    fn combine_counts_toward_c_not_w() {
        let mut d = dev();
        d.kernel(COMM_STREAM, KernelKind::Combine, || ((), 100)).unwrap();
        assert_eq!(d.counters.c_items, 100);
        assert_eq!(d.counters.w_items, 0);
        assert!(d.counters.c_time_us > 0.0);
    }

    #[test]
    fn streams_overlap_and_superstep_aligns() {
        let mut d = dev();
        d.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 30_000)).unwrap(); // 13 µs
        d.charge(COMM_STREAM, 8.0, 0.0).unwrap();
        assert!((d.now() - 13.0).abs() < 1e-9, "overlapped, not summed");
        let t = d.end_superstep(1, 0.0);
        assert!((t - (13.0 + d.profile().superstep_api_us)).abs() < 1e-9);
        assert_eq!(d.stream_time(COMPUTE_STREAM), d.stream_time(COMM_STREAM));
        assert_eq!(d.counters.supersteps, 1);
    }

    #[test]
    fn superstep_respects_global_time() {
        let mut d = dev();
        d.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 9)).unwrap();
        let t = d.end_superstep(2, 500.0);
        assert!(t > 500.0, "device waits for the slowest peer");
    }

    #[test]
    fn cross_device_event_dependency() {
        let mut a = Device::new(0, HardwareProfile::k40());
        let mut b = Device::new(1, HardwareProfile::k40());
        a.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 300_000)).unwrap(); // 103 µs
        let ev = a.record_event(COMPUTE_STREAM);
        b.stream_wait(COMM_STREAM, ev).unwrap();
        b.charge(COMM_STREAM, 1.0, 0.0).unwrap();
        assert!((b.stream_time(COMM_STREAM) - 104.0).abs() < 1e-9);
    }

    #[test]
    fn upload_charges_bandwidth() {
        let mut d = dev();
        let data = vec![0u32; 1 << 20];
        let arr = d.upload(&data).unwrap();
        assert_eq!(arr.len(), 1 << 20);
        assert!(d.now() > 2.0, "H2D copy is not free");
    }

    #[test]
    fn reset_clock_keeps_memory() {
        let mut d = dev();
        let _a = d.alloc::<u32>(100).unwrap();
        let live = d.pool().live();
        d.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 100)).unwrap();
        d.reset_clock();
        assert_eq!(d.now(), 0.0);
        assert_eq!(d.pool().live(), live);
        assert_eq!(d.counters, BspCounters::default());
    }

    #[test]
    fn kernel_threads_is_a_wall_clock_knob_only() {
        let mut a = dev();
        let mut b = dev();
        a.set_kernel_threads(1);
        b.set_kernel_threads(8);
        assert_eq!(a.kernel_threads(), 1);
        assert_eq!(b.kernel_threads(), 8);
        a.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 3000)).unwrap();
        b.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 3000)).unwrap();
        assert_eq!(a.now().to_bits(), b.now().to_bits());
        assert_eq!(a.counters, b.counters);
        b.set_kernel_threads(0);
        assert_eq!(b.kernel_threads(), 1, "clamped to one");
    }

    #[test]
    fn injected_kernel_faults_fire_before_the_body() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut d = dev();
        let plan = FaultPlan::new().kernel_fail(0, 0).straggle(0, 1, 25.0).device_loss(0, 2);
        d.set_fault_injector(Some(Arc::new(FaultInjector::new(&plan, 1))));
        let mut ran = false;
        // launch 0: fails, body never runs, launch overhead still charged
        let err = d
            .kernel(COMPUTE_STREAM, KernelKind::Filter, || {
                ran = true;
                ((), 0)
            })
            .unwrap_err();
        assert!(matches!(err, VgpuError::KernelFailed { device: 0 }));
        assert!(!ran, "faults fire before the kernel body");
        assert!((d.now() - d.profile().kernel_launch_us).abs() < 1e-9);
        // launch 1: straggles — extra time is charged in simulated time
        let before = d.now();
        d.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap();
        assert!((d.now() - before - d.profile().kernel_launch_us - 25.0).abs() < 1e-9);
        // launch 2: permanent loss, sticky for every later launch
        let err = d.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap_err();
        assert!(matches!(err, VgpuError::DeviceLost { device: 0 }));
        let err = d.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap_err();
        assert!(matches!(err, VgpuError::DeviceLost { device: 0 }));
    }

    #[test]
    fn retry_policy_relaunches_transient_faults_in_place() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut d = dev();
        // launches 0 and 1 fail, 2 hits a transient OOM spike; with retries,
        // all are absorbed at the launch site.
        let plan = FaultPlan::new().kernel_fail(0, 0).kernel_fail(0, 1).transient_oom(0, 2);
        d.set_fault_injector(Some(Arc::new(FaultInjector::new(&plan, 1))));
        d.set_retry_policy(3, 10.0);
        let mut ran = 0u32;
        d.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
            ran += 1;
            ((), 0)
        })
        .unwrap();
        assert_eq!(ran, 1, "body runs once, after the faults are retried away");
        assert_eq!(d.kernel_retries(), 3);
        // 2 failed launches (overhead each) + 3 backoffs + the real launch
        let expect = 2.0 * d.profile().kernel_launch_us + 3.0 * 10.0 + d.profile().kernel_launch_us;
        assert!((d.now() - expect).abs() < 1e-9);
        // exhausted retries surface the error
        let mut e = dev();
        let plan = FaultPlan::new().kernel_fail(0, 0).kernel_fail(0, 1);
        e.set_fault_injector(Some(Arc::new(FaultInjector::new(&plan, 1))));
        e.set_retry_policy(1, 0.0);
        let err = e.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap_err();
        assert!(matches!(err, VgpuError::KernelFailed { device: 0 }));
    }

    #[test]
    fn an_armed_fault_is_one_shot_and_goes_through_the_retry_machinery() {
        let mut d = dev();
        d.set_retry_policy(2, 5.0);
        d.inject_fault(KernelFault::Fail);
        let mut ran = 0u32;
        d.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
            ran += 1;
            ((), 0)
        })
        .unwrap();
        assert_eq!(ran, 1, "the relaunch after the armed fault runs clean");
        assert_eq!(d.kernel_retries(), 1);
        // without a retry budget the armed fault surfaces typed
        let mut e = dev();
        e.inject_fault(KernelFault::TransientOom);
        let err = e.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap_err();
        assert!(matches!(err, VgpuError::OutOfMemory { device: 0, .. }));
        // consumed: the next launch is clean
        e.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap();
        // reset_clock disarms a never-consumed fault
        let mut f = dev();
        f.inject_fault(KernelFault::Fail);
        f.reset_clock();
        f.kernel(COMPUTE_STREAM, KernelKind::Filter, || ((), 0)).unwrap();
    }

    #[test]
    fn no_injector_means_no_metering_change() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut plain = dev();
        let mut empty = dev();
        empty.set_fault_injector(Some(Arc::new(FaultInjector::new(&FaultPlan::new(), 1))));
        plain.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 1234)).unwrap();
        empty.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), 1234)).unwrap();
        assert_eq!(plain.now().to_bits(), empty.now().to_bits());
        assert_eq!(plain.counters, empty.counters);
    }

    #[test]
    fn bad_stream_is_reported() {
        let mut d = dev();
        let err = d.charge(StreamId(9), 1.0, 0.0).unwrap_err();
        assert!(matches!(err, VgpuError::BadStream { stream: 9, .. }));
    }
}
