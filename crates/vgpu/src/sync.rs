//! Cross-device synchronization: the BSP barrier and the push fabric.
//!
//! Each virtual GPU is driven by a dedicated CPU thread (as in the paper,
//! §III-B "Manage GPUs"). Two pieces of shared machinery connect them:
//!
//! * [`SyncPoint`] — the bulk-synchronous superstep boundary. All device
//!   threads rendezvous, their simulated clocks are max-reduced to a global
//!   time, convergence flags are AND-reduced and numeric contributions are
//!   reduced for global stop conditions (e.g. PageRank's residual
//!   threshold).
//! * [`Mailbox`] — per-device inboxes for pushed packages. A send carries the
//!   [`Event`] at which the transfer completes on the wire so the receiver's
//!   combine kernel can `stream_wait` on real arrival times.
//!
//! The barrier uses a double-buffered reduction slot: the leader prepares the
//! *next* round's slot between the two barrier phases, so a fast thread can
//! never merge into a slot a slow thread is still reading.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use parking_lot::Mutex;

use crate::error::{Result, VgpuError};
use crate::fault::{FaultInjector, TransferFault};
use crate::stream::Event;

/// The values reduced across devices at a superstep boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalReduce {
    /// Maximum simulated clock over all devices (the BSP global time).
    pub max_time_us: f64,
    /// Minimum simulated clock over all devices. The spread
    /// `max_time_us - min_time_us` is how far the slowest device lags the
    /// fastest at the rendezvous — the straggler-detection signal.
    pub min_time_us: f64,
    /// Number of devices that arrived at the boundary in a failed state.
    /// Nonzero means every participant should abandon the traversal at this
    /// boundary — a barrier-synchronized abort signal, so all devices make
    /// the identical exit decision at the identical superstep.
    pub abort_count: usize,
    /// Number of devices that declared themselves locally converged.
    pub done_count: usize,
    /// Sum of per-device floating-point contributions (primitive-specific:
    /// e.g. total rank change for PageRank's stop condition).
    pub f64_sum: f64,
    /// Maximum of per-device floating-point contributions.
    pub f64_max: f64,
    /// Sum of per-device integer contributions (e.g. total frontier size).
    pub u64_sum: u64,
}

impl GlobalReduce {
    fn identity() -> Self {
        GlobalReduce {
            max_time_us: 0.0,
            min_time_us: f64::INFINITY,
            abort_count: 0,
            done_count: 0,
            f64_sum: 0.0,
            f64_max: f64::NEG_INFINITY,
            u64_sum: 0,
        }
    }

    fn merge(&mut self, time_us: f64, done: bool, c: &Contribution) {
        self.max_time_us = self.max_time_us.max(time_us);
        self.min_time_us = self.min_time_us.min(time_us);
        if done {
            self.done_count += 1;
        }
        if c.aborting {
            self.abort_count += 1;
        }
        self.f64_sum += c.f64_add;
        self.f64_max = self.f64_max.max(c.f64_max);
        self.u64_sum += c.u64_add;
    }
}

/// Per-device numeric contribution to the superstep reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contribution {
    /// Added into [`GlobalReduce::f64_sum`].
    pub f64_add: f64,
    /// Max-reduced into [`GlobalReduce::f64_max`].
    pub f64_max: f64,
    /// Added into [`GlobalReduce::u64_sum`].
    pub u64_add: u64,
    /// This device arrived at the boundary in a failed state (counted into
    /// [`GlobalReduce::abort_count`]).
    pub aborting: bool,
}

impl Default for Contribution {
    fn default() -> Self {
        Contribution { f64_add: 0.0, f64_max: f64::NEG_INFINITY, u64_add: 0, aborting: false }
    }
}

/// A reusable BSP superstep barrier for `n` device threads.
pub struct SyncPoint {
    n: usize,
    barrier: Barrier,
    slots: [Mutex<GlobalReduce>; 2],
    generation: AtomicUsize,
}

impl SyncPoint {
    /// Barrier for `n` participating threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a sync point needs at least one participant");
        SyncPoint {
            n,
            barrier: Barrier::new(n),
            slots: [Mutex::new(GlobalReduce::identity()), Mutex::new(GlobalReduce::identity())],
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of participants.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rendezvous with all other device threads: contribute this device's
    /// clock, local convergence flag and numeric contribution; receive the
    /// global reduction. Every participant must call this the same number of
    /// times (a superstep boundary).
    pub fn superstep(
        &self,
        time_us: f64,
        locally_done: bool,
        contribution: Contribution,
    ) -> GlobalReduce {
        let g = self.generation.load(Ordering::Acquire) % 2;
        self.slots[g].lock().merge(time_us, locally_done, &contribution);
        let wait = self.barrier.wait();
        if wait.is_leader() {
            // Prepare the *next* round's slot and publish the new generation
            // before releasing anyone, so no thread can race a merge into a
            // slot that is concurrently being read or cleared.
            *self.slots[(g + 1) % 2].lock() = GlobalReduce::identity();
            self.generation.store(g + 1, Ordering::Release);
        }
        self.barrier.wait();
        *self.slots[g].lock()
    }

    /// Convenience: a plain rendezvous carrying only time and the done flag.
    pub fn barrier(&self, time_us: f64, locally_done: bool) -> GlobalReduce {
        self.superstep(time_us, locally_done, Contribution::default())
    }
}

/// A message pushed to a peer device: payload plus wire arrival time.
#[derive(Debug)]
pub struct Delivery<T> {
    /// Sending device.
    pub src: usize,
    /// Simulated time at which the data is resident on the receiver.
    pub arrival: Event,
    /// The packaged payload.
    pub payload: T,
}

/// Per-device inboxes for peer-to-peer pushes.
pub struct Mailbox<T> {
    inboxes: Vec<Mutex<Vec<Delivery<T>>>>,
    fault: Option<Arc<FaultInjector>>,
}

impl<T> Mailbox<T> {
    /// Inboxes for `n` devices.
    pub fn new(n: usize) -> Self {
        Self::with_faults(n, None)
    }

    /// Inboxes for `n` devices with an optional fault injector on the wire
    /// (transfer failures and timeouts fire at deterministic per-link send
    /// indices — see [`crate::fault`]).
    pub fn with_faults(n: usize, fault: Option<Arc<FaultInjector>>) -> Self {
        Mailbox { inboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(), fault }
    }

    /// Number of inboxes.
    pub fn n(&self) -> usize {
        self.inboxes.len()
    }

    /// Push `payload` from `src` to `dst`, arriving at `arrival`. Fails if
    /// the sender has been lost or the injector planned a fault at this
    /// send's link index; a failed send posts nothing.
    pub fn send(&self, src: usize, dst: usize, arrival: Event, payload: T) -> Result<()> {
        if let Some(inj) = &self.fault {
            if inj.is_lost(src) {
                return Err(VgpuError::DeviceLost { device: src });
            }
            match inj.on_transfer(src, dst) {
                None => {}
                Some(TransferFault::Fail) => {
                    return Err(VgpuError::TransferFailed { from: src, to: dst })
                }
                Some(TransferFault::Timeout) => return Err(VgpuError::Timeout { device: src }),
            }
        }
        self.inboxes[dst].lock().push(Delivery { src, arrival, payload });
        Ok(())
    }

    /// Drain everything delivered to `dst`. Deliveries are sorted by sender
    /// for determinism (combine order must not depend on thread scheduling,
    /// or runs would not be reproducible).
    pub fn drain(&self, dst: usize) -> Vec<Delivery<T>> {
        let mut out: Vec<Delivery<T>> = std::mem::take(&mut *self.inboxes[dst].lock());
        out.sort_by_key(|d| d.src);
        out
    }

    /// True if `dst`'s inbox is empty.
    pub fn is_empty(&self, dst: usize) -> bool {
        self.inboxes[dst].lock().is_empty()
    }
}

/// Convert a device thread's join outcome into a substrate result: a panic
/// that escaped the thread body becomes [`VgpuError::DeviceLost`] for that
/// device instead of poisoning the whole process. One bad kernel body then
/// fails the enact call, not the program.
pub fn harvest_device_thread<T>(
    joined: std::thread::Result<Result<T>>,
    device: usize,
) -> Result<T> {
    match joined {
        Ok(r) => r,
        Err(_) => Err(VgpuError::DeviceLost { device }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn superstep_reduces_max_time_and_done() {
        let sp = Arc::new(SyncPoint::new(3));
        // Device threads are joined through `harvest_device_thread`, the
        // same panic-capturing path the enactors use.
        let results: Vec<Result<GlobalReduce>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let sp = Arc::clone(&sp);
                    s.spawn(move || -> Result<GlobalReduce> {
                        Ok(sp.superstep(
                            10.0 * (i + 1) as f64,
                            i == 0,
                            Contribution {
                                f64_add: 1.5,
                                f64_max: i as f64,
                                u64_add: i as u64,
                                ..Default::default()
                            },
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(i, h)| harvest_device_thread(h.join(), i))
                .collect()
        });
        for r in results {
            let r = r.unwrap();
            assert_eq!(r.max_time_us, 30.0);
            assert_eq!(r.min_time_us, 10.0);
            assert_eq!(r.done_count, 1);
            assert_eq!(r.abort_count, 0);
            assert!((r.f64_sum - 4.5).abs() < 1e-12);
            assert_eq!(r.f64_max, 2.0);
            assert_eq!(r.u64_sum, 3);
        }
    }

    #[test]
    fn harvest_converts_panics_to_device_loss() {
        let joined = std::thread::scope(|s| {
            s.spawn(|| -> Result<()> {
                panic!("poisoned kernel body");
            })
            .join()
        });
        let err = harvest_device_thread(joined, 3).unwrap_err();
        assert_eq!(err, VgpuError::DeviceLost { device: 3 });
    }

    #[test]
    fn aborting_contributions_are_counted() {
        let sp = SyncPoint::new(1);
        let r = sp.superstep(1.0, false, Contribution { aborting: true, ..Default::default() });
        assert_eq!(r.abort_count, 1);
    }

    #[test]
    fn repeated_supersteps_do_not_leak_state() {
        let sp = Arc::new(SyncPoint::new(4));
        std::thread::scope(|s| {
            for i in 0..4 {
                let sp = Arc::clone(&sp);
                s.spawn(move || {
                    for round in 0..50u64 {
                        let r = sp.superstep(
                            round as f64,
                            true,
                            Contribution { u64_add: round + i, ..Default::default() },
                        );
                        assert_eq!(r.max_time_us, round as f64);
                        assert_eq!(r.done_count, 4);
                        assert_eq!(r.u64_sum, 4 * round + 6, "round {round}");
                    }
                });
            }
        });
    }

    #[test]
    fn single_participant_superstep_is_immediate() {
        let sp = SyncPoint::new(1);
        let r = sp.barrier(5.0, false);
        assert_eq!(r.max_time_us, 5.0);
        assert_eq!(r.done_count, 0);
    }

    #[test]
    fn mailbox_delivers_sorted_by_sender() {
        let mb: Mailbox<Vec<u32>> = Mailbox::new(2);
        mb.send(1, 0, Event::at(5.0), vec![9]).unwrap();
        mb.send(0, 0, Event::at(3.0), vec![7]).unwrap();
        let got = mb.drain(0);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].src, 0);
        assert_eq!(got[1].src, 1);
        assert_eq!(got[1].arrival.time(), 5.0);
        assert!(mb.is_empty(0));
    }

    #[test]
    fn mailbox_concurrent_sends_all_arrive() {
        let mb = Arc::new(Mailbox::<u64>::new(4));
        std::thread::scope(|s| {
            for src in 0..4usize {
                let mb = Arc::clone(&mb);
                s.spawn(move || {
                    for k in 0..100u64 {
                        mb.send(src, (src + 1) % 4, Event::ready(), k).unwrap();
                    }
                });
            }
        });
        let total: usize = (0..4).map(|d| mb.drain(d).len()).sum();
        assert_eq!(total, 400);
    }
}
