//! Streams and events: the `cudaStream_t` / `cudaEvent_t` timing analog.
//!
//! The paper overlaps computation and communication by putting them on
//! different CUDA streams and establishing dependencies with
//! `cudaStreamWaitEvent()` without CPU intervention (§III-B "Manage GPUs").
//! We model each stream as a monotonically advancing timeline: launching a
//! kernel or transfer on a stream occupies it for the operation's cost, an
//! [`Event`] captures a stream's current ready time, and waiting on an event
//! advances a stream to at least that time. A device's simulated clock is the
//! maximum over its stream timelines; overlap falls out naturally because
//! work on different streams occupies disjoint timelines.

/// Identifier of a stream within one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

/// A stream: an in-order execution timeline.
#[derive(Debug, Clone)]
pub struct Stream {
    /// Simulated time (µs) at which all work enqueued so far completes.
    ready_at_us: f64,
}

impl Stream {
    /// A fresh stream, idle at time `t0`.
    pub fn new(t0: f64) -> Self {
        Stream { ready_at_us: t0 }
    }

    /// Time at which the stream drains.
    pub fn ready_at(&self) -> f64 {
        self.ready_at_us
    }

    /// Enqueue an operation of duration `cost_us`, not beginning before
    /// `not_before` (e.g. data arrival). Returns the completion time.
    pub fn enqueue(&mut self, cost_us: f64, not_before: f64) -> f64 {
        debug_assert!(cost_us >= 0.0, "operation cost must be non-negative");
        let start = self.ready_at_us.max(not_before);
        self.ready_at_us = start + cost_us;
        self.ready_at_us
    }

    /// Record an event capturing the stream's current completion time
    /// (the `cudaEventRecord` analog).
    pub fn record(&self) -> Event {
        Event { at_us: self.ready_at_us }
    }

    /// Make this stream wait for `event` (the `cudaStreamWaitEvent` analog).
    pub fn wait(&mut self, event: Event) {
        self.ready_at_us = self.ready_at_us.max(event.at_us);
    }

    /// Advance the stream's timeline to at least `t` (global synchronization).
    pub fn advance_to(&mut self, t: f64) {
        self.ready_at_us = self.ready_at_us.max(t);
    }
}

/// A recorded timestamp on some stream; cheap to copy across devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    at_us: f64,
}

impl Event {
    /// An event that is already complete at time zero.
    pub fn ready() -> Self {
        Event { at_us: 0.0 }
    }

    /// An event completing at an explicit time (used to propagate transfer
    /// arrival times between devices).
    pub fn at(t_us: f64) -> Self {
        Event { at_us: t_us }
    }

    /// Completion time of the event in microseconds.
    pub fn time(&self) -> f64 {
        self.at_us
    }

    /// The later of two events.
    pub fn max(self, other: Event) -> Event {
        Event { at_us: self.at_us.max(other.at_us) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_is_in_order() {
        let mut s = Stream::new(0.0);
        assert_eq!(s.enqueue(5.0, 0.0), 5.0);
        assert_eq!(s.enqueue(3.0, 0.0), 8.0);
    }

    #[test]
    fn enqueue_respects_not_before() {
        let mut s = Stream::new(0.0);
        assert_eq!(s.enqueue(2.0, 10.0), 12.0);
    }

    #[test]
    fn two_streams_overlap() {
        let mut compute = Stream::new(0.0);
        let mut comm = Stream::new(0.0);
        compute.enqueue(100.0, 0.0);
        comm.enqueue(80.0, 0.0);
        // Overlapped: device time is max, not sum.
        assert_eq!(compute.ready_at().max(comm.ready_at()), 100.0);
    }

    #[test]
    fn event_wait_establishes_dependency() {
        let mut producer = Stream::new(0.0);
        let mut consumer = Stream::new(0.0);
        producer.enqueue(50.0, 0.0);
        let ev = producer.record();
        consumer.wait(ev);
        assert_eq!(consumer.enqueue(10.0, 0.0), 60.0);
    }

    #[test]
    fn event_max_picks_later() {
        assert_eq!(Event::at(3.0).max(Event::at(7.0)).time(), 7.0);
    }
}
