//! Error type for the virtual-GPU substrate.

use std::fmt;

/// Errors raised by the substrate. The interesting one is
/// [`VgpuError::OutOfMemory`]: device memory is capacity-limited exactly so
/// that the paper's memory-management experiments (Fig. 3, §VI-B) are
/// mechanically reproducible — a maximum-allocation scheme really can fail to
/// fit a subgraph that just-enough allocation fits.
#[derive(Debug, Clone, PartialEq)]
pub enum VgpuError {
    /// An allocation would exceed the device's memory capacity.
    OutOfMemory {
        /// Device on which the allocation was attempted.
        device: usize,
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes currently live on the device.
        live: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A stream id referred to a stream that does not exist on the device.
    BadStream {
        /// Offending stream id.
        stream: usize,
        /// Number of streams on the device.
        have: usize,
    },
    /// A transfer referenced a device outside the system.
    BadDevice {
        /// Offending device id.
        device: usize,
        /// Number of devices in the system.
        have: usize,
    },
    /// The device is gone — an injected permanent loss, or a device thread
    /// whose kernel body panicked (the thread is unrecoverable either way).
    DeviceLost {
        /// The lost device.
        device: usize,
    },
    /// A kernel launch failed (transient unless the device is lost).
    KernelFailed {
        /// Device on which the launch failed.
        device: usize,
    },
    /// A peer-to-peer transfer failed on the wire.
    TransferFailed {
        /// Sending device.
        from: usize,
        /// Receiving device.
        to: usize,
    },
    /// An operation exceeded its simulated-time bound (a transfer timeout,
    /// or a straggling device evicted at a rendezvous).
    Timeout {
        /// Device that timed out.
        device: usize,
    },
    /// The run was aborted because a *peer* device thread failed; the peer's
    /// own error carries the root cause.
    Aborted,
}

impl VgpuError {
    /// Is this a permanent device loss (as opposed to a transient fault a
    /// bounded retry may clear)?
    pub fn is_device_loss(&self) -> bool {
        matches!(self, VgpuError::DeviceLost { .. })
    }
}

impl fmt::Display for VgpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VgpuError::OutOfMemory { device, requested, live, capacity } => write!(
                f,
                "device {device} out of memory: requested {requested} B with {live} B live of {capacity} B capacity"
            ),
            VgpuError::BadStream { stream, have } => {
                write!(f, "stream {stream} does not exist (device has {have} streams)")
            }
            VgpuError::BadDevice { device, have } => {
                write!(f, "device {device} does not exist (system has {have} devices)")
            }
            VgpuError::DeviceLost { device } => write!(f, "device {device} was lost"),
            VgpuError::KernelFailed { device } => {
                write!(f, "kernel launch failed on device {device}")
            }
            VgpuError::TransferFailed { from, to } => {
                write!(f, "transfer from device {from} to device {to} failed")
            }
            VgpuError::Timeout { device } => write!(f, "device {device} timed out"),
            VgpuError::Aborted => write!(f, "run aborted because a peer device thread failed"),
        }
    }
}

impl std::error::Error for VgpuError {}

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, VgpuError>;
