//! Deterministic parallel execution of kernel bodies.
//!
//! Kernel closures run *for real* on host threads while their simulated cost
//! is charged from explicit item counts ([`crate::Device::kernel`]). Running a
//! body across several host threads therefore must never change anything the
//! substrate meters, or the simulation would stop being reproducible. This
//! module guarantees that by construction, mirroring how real GPU kernels
//! stay deterministic across launch configurations:
//!
//! * The caller supplies a **chunk plan** derived only from the workload
//!   (degree prefix sums, fixed chunk sizes) — never from the thread count.
//!   Thread count only decides *who* executes the chunks, exactly like the
//!   block count of a grid-stride CUDA launch.
//! * Each chunk produces its own output; results are concatenated in chunk
//!   order, so the concatenation is identical no matter which worker ran
//!   which chunk, or in what order they finished.
//! * Cross-chunk writes go through atomics whose final state is
//!   order-independent (CAS claim, `fetch_min`), or into per-chunk partial
//!   buffers merged in chunk order (the per-block partial-reduction idiom).
//!
//! Workers are scoped threads spawned per launch; callers avoid the spawn
//! overhead for small workloads by planning a single chunk (the plan, being
//! workload-only, makes that cutoff thread-count-independent too).

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Cache budget one chunk's working set should stay inside: roughly half a
/// core-private L2 so the frontier slice, its adjacency columns and the
/// emission buffer all stay resident while the chunk runs. Chunk *plans*
/// remain pure functions of the workload; this constant only sizes them.
pub const CACHE_BLOCK_BYTES: usize = 128 * 1024;

/// Edge-work target for a cache-blocked chunk over items whose unit work
/// touches `bytes_per_item` bytes (column index + emission slot for an
/// advance over `V`-typed ids). Never below 1.
pub const fn cache_block_items(bytes_per_item: usize) -> usize {
    let b = if bytes_per_item == 0 { 1 } else { bytes_per_item };
    let items = CACHE_BLOCK_BYTES / b;
    if items == 0 {
        1
    } else {
        items
    }
}

/// Partition `n_items` positions into contiguous chunks of roughly
/// `target` accumulated `weight` each — the degree-prefix walk that
/// cache-blocks an edge workload instead of slicing flat vertex ranges.
/// The plan sees only the workload (`weight` per item), never the thread
/// count, so it is safe under the determinism contract of [`run_chunks`]:
/// chunk boundaries may change results only if the caller's merge is
/// order-dependent, which chunk-order concatenation never is.
pub fn plan_weighted_chunks(
    n_items: usize,
    target: usize,
    weight: impl Fn(usize) -> usize,
) -> Vec<(usize, usize)> {
    let mut chunks = Vec::new();
    let (mut start, mut acc) = (0usize, 0usize);
    for i in 0..n_items {
        acc += weight(i);
        if acc >= target {
            chunks.push((start, i + 1));
            start = i + 1;
            acc = 0;
        }
    }
    if start < n_items {
        chunks.push((start, n_items));
    }
    chunks
}

/// Default worker count for kernel bodies: `MGPU_KERNEL_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism capped at
/// 8 (beyond that the per-launch spawn cost outweighs the win for the kernel
/// sizes this substrate sees).
pub fn default_kernel_threads() -> usize {
    if let Ok(s) = std::env::var("MGPU_KERNEL_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// Run `n_chunks` independent tasks on up to `threads` workers and return
/// their results **in chunk order**. `task(i)` must depend only on `i` and
/// shared-read state (or atomics with order-independent outcomes); under that
/// contract the returned vector is identical for every `threads` value.
pub fn run_chunks<R, F>(threads: usize, n_chunks: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n_chunks <= 1 {
        return (0..n_chunks).map(task).collect();
    }
    let workers = threads.min(n_chunks);
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        out.push((i, task(i)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("kernel worker panicked")).collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Run one task per slot of `slots`, each task getting exclusive mutable
/// access to its slot (the per-block partial-buffer idiom: scatter into
/// disjoint buffers, merge afterwards in slot order). The atomic work-claim
/// counter hands every index to exactly one worker, so the `&mut` handed to
/// each task is exclusive.
pub fn for_each_slot_mut<T, F>(threads: usize, slots: &mut [T], task: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = slots.len();
    if threads <= 1 || n <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            task(i, slot);
        }
        return;
    }
    struct SendPtr<T>(*mut T);
    unsafe impl<T> Send for SendPtr<T> {}
    unsafe impl<T> Sync for SendPtr<T> {}
    let base = SendPtr(slots.as_mut_ptr());
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let base = &base;
            let next = &next;
            let task = &task;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: the fetch_add hands out each index exactly once,
                // so no two workers ever hold a reference to the same slot,
                // and `slots` outlives the scope.
                let slot = unsafe { &mut *base.0.add(i) };
                task(i, slot);
            });
        }
    });
}

/// View a mutable `u32` slice as atomics so concurrent chunk workers can
/// claim entries with CAS / `fetch_min` (the `atomicCAS`/`atomicMin` analog
/// of the combine and filter kernels). Sound because `AtomicU32` has the
/// same size, alignment and bit validity as `u32`, and the `&mut` borrow
/// guarantees exclusive access for the lifetime of the returned view.
pub fn as_atomic_u32(xs: &mut [u32]) -> &[AtomicU32] {
    unsafe { &*(xs as *mut [u32] as *const [AtomicU32]) }
}

/// `u64` sibling of [`as_atomic_u32`], for bitfield state advanced with
/// `fetch_or` (the `atomicOr` idiom of batched multi-source traversals).
/// Same soundness argument: identical layout and bit validity, exclusive
/// `&mut` borrow for the lifetime of the view.
pub fn as_atomic_u64(xs: &mut [u64]) -> &[AtomicU64] {
    unsafe { &*(xs as *mut [u64] as *const [AtomicU64]) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::Relaxed;

    #[test]
    fn run_chunks_preserves_chunk_order() {
        for threads in [1, 2, 4, 7] {
            let got = run_chunks(threads, 100, |i| vec![i * 2, i * 2 + 1]);
            let flat: Vec<usize> = got.into_iter().flatten().collect();
            assert_eq!(flat, (0..200).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn run_chunks_handles_edge_counts() {
        assert!(run_chunks(4, 0, |i| i).is_empty());
        assert_eq!(run_chunks(4, 1, |i| i), vec![0]);
        assert_eq!(run_chunks(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn for_each_slot_mut_touches_every_slot_once() {
        for threads in [1, 2, 8] {
            let mut slots = vec![0u64; 37];
            for_each_slot_mut(threads, &mut slots, |i, s| *s += i as u64 + 1);
            let expect: Vec<u64> = (0..37).map(|i| i + 1).collect();
            assert_eq!(slots, expect, "{threads} threads");
        }
    }

    #[test]
    fn atomic_view_roundtrips() {
        let mut xs = vec![5u32, 6, 7];
        {
            let a = as_atomic_u32(&mut xs);
            assert_eq!(a[1].load(Relaxed), 6);
            a[1].store(60, Relaxed);
            assert_eq!(a[2].compare_exchange(7, 70, Relaxed, Relaxed), Ok(7));
        }
        assert_eq!(xs, vec![5, 60, 70]);
    }

    #[test]
    fn atomic_u64_view_or_accumulates() {
        let mut xs = vec![0u64; 3];
        {
            let a = as_atomic_u64(&mut xs);
            a[0].fetch_or(0b101, Relaxed);
            a[0].fetch_or(0b010, Relaxed);
            assert_eq!(a[2].fetch_or(1 << 63, Relaxed), 0);
        }
        assert_eq!(xs, vec![0b111, 0, 1 << 63]);
    }

    #[test]
    fn cas_claims_are_exclusive_across_workers() {
        let mut claims = vec![u32::MAX; 512];
        let atoms = as_atomic_u32(&mut claims);
        let wins: Vec<usize> = run_chunks(8, 64, |chunk| {
            let mut won = 0usize;
            for a in atoms.iter() {
                if a.compare_exchange(u32::MAX, chunk as u32, Relaxed, Relaxed).is_ok() {
                    won += 1;
                }
            }
            won
        });
        assert_eq!(wins.iter().sum::<usize>(), 512, "every entry claimed exactly once");
    }

    #[test]
    fn weighted_plan_blocks_on_accumulated_weight() {
        // uniform weight 3, target 10: chunks close at >=10 accumulated
        let chunks = plan_weighted_chunks(10, 10, |_| 3);
        assert_eq!(chunks, vec![(0, 4), (4, 8), (8, 10)]);
        // a single heavy item still closes its own chunk
        let heavy = plan_weighted_chunks(4, 10, |i| if i == 1 { 100 } else { 1 });
        assert_eq!(heavy, vec![(0, 2), (2, 4)]);
        assert!(plan_weighted_chunks(0, 10, |_| 1).is_empty());
        // plan covers every position exactly once, in order
        let plan = plan_weighted_chunks(137, 7, |i| i % 5);
        let mut pos = 0;
        for &(lo, hi) in &plan {
            assert_eq!(lo, pos);
            assert!(hi > lo);
            pos = hi;
        }
        assert_eq!(pos, 137);
    }

    #[test]
    fn cache_block_items_is_positive_and_scales() {
        assert_eq!(cache_block_items(8), CACHE_BLOCK_BYTES / 8);
        assert!(cache_block_items(usize::MAX) >= 1);
        assert!(cache_block_items(0) >= 1);
    }

    #[test]
    fn env_override_is_clamped_to_one() {
        // can't set the env var safely under the parallel test harness; just
        // exercise the default path
        assert!(default_kernel_threads() >= 1);
    }
}
