//! The inter-device fabric: bandwidth/latency matrix with peer groups.
//!
//! The paper's testbed connects K40s under a PCIe 3 root hub; enabling peer
//! access within a hub raises GPU–GPU bandwidth from ~16 GB/s to ~20 GB/s and
//! drops latency from ~25 µs to ~7.5 µs (§V-A). Peer access is "enabled in
//! groups of 4 GPUs where appropriate" (§VII-A), so a 6-GPU node has two
//! peer groups with slower host-staged transfers between them.

/// Classification of a link between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkClass {
    /// The "link" from a device to itself (local copy).
    Local,
    /// Direct peer-to-peer access (same PCIe root hub, peer access enabled).
    Peer,
    /// Host-staged transfer through CPU memory (different peer groups).
    HostStaged,
}

/// Bandwidth/latency description of one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
    /// One-way latency in microseconds.
    pub latency_us: f64,
}

/// The inter-device fabric of a node.
#[derive(Debug, Clone)]
pub struct Interconnect {
    n: usize,
    /// Peer-group id of each device; devices in the same group use
    /// [`Interconnect::peer`] links, others use [`Interconnect::host_staged`].
    group: Vec<usize>,
    peer: Link,
    host_staged: Link,
    /// Multiplier applied to transfer *sizes* when charging time — used by
    /// the §V-A experiment that artificially inflates communication volume H.
    pub h_multiplier: f64,
    /// Extra latency added to every transfer — used by the §V-A experiment
    /// that artificially inflates communication latency (10× latency showed
    /// "no appreciable difference").
    pub extra_latency_us: f64,
}

impl Interconnect {
    /// PCIe 3 fabric with peer access enabled in groups of `group_size`
    /// devices (the paper's configuration: groups of 4).
    pub fn pcie3(n: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "peer group size must be positive");
        Interconnect {
            n,
            group: (0..n).map(|i| i / group_size).collect(),
            peer: Link { bandwidth_gb_s: 20.0, latency_us: 7.5 },
            host_staged: Link { bandwidth_gb_s: 16.0, latency_us: 25.0 },
            h_multiplier: 1.0,
            extra_latency_us: 0.0,
        }
    }

    /// PCIe 3 fabric with *no* peer access anywhere (all transfers staged
    /// through host memory).
    pub fn pcie3_no_peer(n: usize) -> Self {
        let mut ic = Self::pcie3(n, 1);
        // group size 1 puts every device in its own group already
        ic.group = (0..n).collect();
        ic
    }

    /// An inter-node cluster fabric (InfiniBand-class): lower bandwidth and
    /// much higher latency than intra-node PCIe. Used by the cluster-style
    /// baselines of Table III to reflect the paper's note that "inter-GPU
    /// bandwidth within a node is larger than inter-node bandwidth".
    pub fn cluster(n: usize) -> Self {
        Interconnect {
            n,
            group: (0..n).collect(),
            peer: Link { bandwidth_gb_s: 6.0, latency_us: 60.0 },
            host_staged: Link { bandwidth_gb_s: 6.0, latency_us: 60.0 },
            h_multiplier: 1.0,
            extra_latency_us: 0.0,
        }
    }

    /// A two-level scale-out fabric: `nodes × gpus_per_node` devices with
    /// PCIe peer links inside a node and an InfiniBand-class link between
    /// nodes — the topology of the paper's "second key next step" ("can we
    /// achieve further scalability (scale-out) with multiple nodes, and
    /// given the increased latency and decreased bandwidth of those nodes,
    /// is it profitable to do so?", §VIII). Intra-node pairs use the peer
    /// link; cross-node pairs the network link.
    pub fn two_level(nodes: usize, gpus_per_node: usize) -> Self {
        let n = nodes * gpus_per_node;
        Interconnect {
            n,
            group: (0..n).map(|i| i / gpus_per_node).collect(),
            peer: Link { bandwidth_gb_s: 20.0, latency_us: 7.5 },
            host_staged: Link { bandwidth_gb_s: 6.0, latency_us: 60.0 },
            h_multiplier: 1.0,
            extra_latency_us: 0.0,
        }
    }

    /// Number of devices this fabric connects.
    pub fn n_devices(&self) -> usize {
        self.n
    }

    /// Divide per-message wire latencies by `scale` — the interconnect half
    /// of [`crate::HardwareProfile::with_overhead_scale`]'s dimensional
    /// scaling (latency is a fixed per-message cost, bandwidth terms scale
    /// with the workload automatically).
    pub fn with_latency_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0, "latency scale is a shrink factor");
        self.peer.latency_us /= scale;
        self.host_staged.latency_us /= scale;
        self
    }

    /// Classify the link between `src` and `dst`.
    pub fn link_class(&self, src: usize, dst: usize) -> LinkClass {
        if src == dst {
            LinkClass::Local
        } else if self.group[src] == self.group[dst] {
            LinkClass::Peer
        } else {
            LinkClass::HostStaged
        }
    }

    /// The host-staged link parameters — the path a device uses to spill
    /// buffers to host memory under memory pressure (D2H at the staged
    /// bandwidth/latency, independent of any peer).
    pub fn host_link(&self) -> Link {
        self.host_staged
    }

    /// Link parameters between `src` and `dst`.
    pub fn link(&self, src: usize, dst: usize) -> Link {
        match self.link_class(src, dst) {
            LinkClass::Local => Link { bandwidth_gb_s: f64::INFINITY, latency_us: 0.0 },
            LinkClass::Peer => self.peer,
            LinkClass::HostStaged => self.host_staged,
        }
    }

    /// Time in microseconds to move `bytes` from `src` to `dst`, including
    /// the artificial §V-A knobs. GB/s == bytes/µs/1e3.
    pub fn transfer_us(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        self.occupancy_us(src, dst, bytes) + self.latency_us(src, dst)
    }

    /// The *bandwidth* component of a transfer: how long the link (and the
    /// sender's copy engine) is occupied. Pipelined transfers to different
    /// peers serialize on this.
    pub fn occupancy_us(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        if src == dst {
            return 0.0;
        }
        let link = self.link(src, dst);
        let eff_bytes = bytes as f64 * self.h_multiplier;
        eff_bytes / (link.bandwidth_gb_s * 1e3)
    }

    /// The *latency* component: the pipeline delay before data is usable at
    /// the receiver. It delays arrival but does not occupy the sender —
    /// which is why the paper's 10× latency experiment shows "no
    /// appreciable difference" (§V-A).
    pub fn latency_us(&self, src: usize, dst: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        self.link(src, dst).latency_us + self.extra_latency_us
    }

    /// Effective (charged) byte count for a transfer of `bytes` — used so BSP
    /// `H` counters agree with what the time model charged.
    pub fn charged_bytes(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.h_multiplier).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_groups_of_four_split_six_gpus() {
        let ic = Interconnect::pcie3(6, 4);
        assert_eq!(ic.link_class(0, 3), LinkClass::Peer);
        assert_eq!(ic.link_class(0, 4), LinkClass::HostStaged);
        assert_eq!(ic.link_class(4, 5), LinkClass::Peer);
        assert_eq!(ic.link_class(2, 2), LinkClass::Local);
    }

    #[test]
    fn peer_link_is_faster_than_host_staged() {
        let ic = Interconnect::pcie3(8, 4);
        let peer = ic.transfer_us(0, 1, 1 << 20);
        let staged = ic.transfer_us(0, 5, 1 << 20);
        assert!(peer < staged);
    }

    #[test]
    fn transfer_cost_scales_linearly_in_bytes_beyond_latency() {
        let ic = Interconnect::pcie3(2, 4);
        let t1 = ic.transfer_us(0, 1, 1 << 20);
        let t2 = ic.transfer_us(0, 1, 2 << 20);
        let lat = ic.link(0, 1).latency_us;
        assert!(((t2 - lat) - 2.0 * (t1 - lat)).abs() < 1e-9);
    }

    #[test]
    fn h_multiplier_inflates_time_but_not_latency() {
        let mut ic = Interconnect::pcie3(2, 4);
        let base = ic.transfer_us(0, 1, 1 << 20);
        ic.h_multiplier = 3.0;
        let inflated = ic.transfer_us(0, 1, 1 << 20);
        let lat = ic.link(0, 1).latency_us;
        assert!(((inflated - lat) - 3.0 * (base - lat)).abs() < 1e-6);
    }

    #[test]
    fn local_transfer_is_free() {
        let ic = Interconnect::pcie3(4, 4);
        assert_eq!(ic.transfer_us(2, 2, 1 << 30), 0.0);
    }

    #[test]
    fn cluster_fabric_is_slower_than_pcie() {
        let pcie = Interconnect::pcie3(4, 4);
        let clus = Interconnect::cluster(4);
        assert!(clus.transfer_us(0, 1, 1 << 20) > pcie.transfer_us(0, 1, 1 << 20));
    }
}
