//! # vgpu — a virtual multi-GPU substrate
//!
//! This crate stands in for the CUDA runtime and the multi-GPU node hardware
//! used by Pan et al., "Multi-GPU Graph Analytics" (IPDPS 2017). It provides:
//!
//! * [`HardwareProfile`] — calibrated per-device parameters (memory capacity
//!   and bandwidth, kernel launch overhead, edge/vertex processing
//!   throughputs) with presets for the paper's Tesla K40, K80 and P100
//!   testbeds plus a Xeon profile for hybrid-placement experiments.
//! * [`Interconnect`] — a per-pair bandwidth/latency matrix with PCIe peer
//!   groups, standing in for `cudaDeviceEnablePeerAccess` topology.
//! * [`Device`] — one virtual GPU: a set of [`Stream`] timelines (the
//!   `cudaStream_t` analog), a [`MemoryPool`] with capacity enforcement and
//!   reallocation accounting, BSP cost counters, and a simulated clock that
//!   every kernel launch and transfer charges against.
//! * [`SimSystem`] — a node of devices plus the interconnect.
//! * [`SyncPoint`] — a bulk-synchronous barrier that aligns simulated clocks
//!   across device threads (the BSP superstep boundary), and [`Mailbox`] —
//!   the peer-to-peer push fabric.
//!
//! Kernels are ordinary Rust closures executed *for real* on the calling
//! thread (each device is driven by a dedicated CPU thread, exactly as the
//! paper drives each GPU from a dedicated CPU thread); the substrate's job is
//! to meter them: each launch charges `launch_overhead + work/throughput`
//! microseconds to a stream timeline, and each transfer charges
//! `latency + bytes/bandwidth`. The resulting simulated wall time follows the
//! BSP model `T = W + H·g + S·l` that the paper itself uses for its
//! scalability analysis (§V).

pub mod arena;
pub mod counters;
pub mod device;
pub mod error;
pub mod fault;
pub mod interconnect;
pub mod memory;
pub mod par;
pub mod profile;
pub mod stream;
pub mod sync;
pub mod system;
pub mod timeline;

pub use arena::{Arena, ArenaStats};
pub use counters::BspCounters;
pub use device::{Device, KernelKind, COMM_STREAM, COMPUTE_STREAM};
pub use error::{Result, VgpuError};
pub use fault::{FaultEvent, FaultInjector, FaultPlan, KernelFault, PressureSite, TransferFault};
pub use interconnect::{Interconnect, LinkClass};
pub use memory::{DeviceArray, MemoryPool};
pub use profile::HardwareProfile;
pub use stream::{Event, Stream, StreamId};
pub use sync::{harvest_device_thread, Contribution, GlobalReduce, Mailbox, SyncPoint};
pub use timeline::{SpanMeta, Timeline, TraceEvent, TraceKind};
pub use system::SimSystem;
