//! BSP cost counters: the W / H / C / S / l bookkeeping of §III-A.
//!
//! The paper analyzes every primitive in the BSP model `T = W + H·g + S·l`
//! with an additional term `C` for *communication computation* (the work
//! required to facilitate inter-GPU communication: frontier splitting,
//! packaging, combining). Each device keeps one [`BspCounters`] instance and
//! every kernel launch / transfer / superstep updates it, so experiments can
//! report measured W, H, C and S next to the paper's analytic orders
//! (Table I).

/// Per-device BSP accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BspCounters {
    /// Local computation items processed by primitive kernels (W).
    pub w_items: u64,
    /// Items processed by communication-computation kernels: split, package,
    /// combine (C).
    pub c_items: u64,
    /// Bytes sent to remote devices (H, outbound).
    pub h_bytes_sent: u64,
    /// Bytes received from remote devices (inbound H).
    pub h_bytes_recv: u64,
    /// Number of outbound messages (package pushes).
    pub h_messages: u64,
    /// Vertices sent to remote devices (the unit Table I counts H in).
    pub h_vertices: u64,
    /// Supersteps (iterations) completed (S).
    pub supersteps: u64,
    /// Kernel launches performed.
    pub kernel_launches: u64,
    /// Simulated microseconds spent inside primitive kernels.
    pub w_time_us: f64,
    /// Simulated microseconds spent inside communication-computation kernels.
    pub c_time_us: f64,
    /// Simulated microseconds of transfer occupancy on this device's
    /// communication stream.
    pub h_time_us: f64,
    /// Simulated microseconds charged as synchronization overhead (S·l).
    pub sync_time_us: f64,
}

impl BspCounters {
    /// Element-wise accumulation (for aggregating a system's devices).
    pub fn merge(&mut self, other: &BspCounters) {
        self.w_items += other.w_items;
        self.c_items += other.c_items;
        self.h_bytes_sent += other.h_bytes_sent;
        self.h_bytes_recv += other.h_bytes_recv;
        self.h_messages += other.h_messages;
        self.h_vertices += other.h_vertices;
        self.supersteps = self.supersteps.max(other.supersteps);
        self.kernel_launches += other.kernel_launches;
        self.w_time_us += other.w_time_us;
        self.c_time_us += other.c_time_us;
        self.h_time_us += other.h_time_us;
        self.sync_time_us += other.sync_time_us;
    }

    /// Reset all counters to zero (between traversals of the same problem).
    pub fn reset(&mut self) {
        *self = BspCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_work_and_maxes_supersteps() {
        let mut a = BspCounters { w_items: 10, supersteps: 5, ..Default::default() };
        let b = BspCounters { w_items: 7, supersteps: 3, h_bytes_sent: 64, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.w_items, 17);
        assert_eq!(a.supersteps, 5, "supersteps are a global iteration count, not additive");
        assert_eq!(a.h_bytes_sent, 64);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = BspCounters { w_items: 1, w_time_us: 2.0, ..Default::default() };
        c.reset();
        assert_eq!(c, BspCounters::default());
    }
}
