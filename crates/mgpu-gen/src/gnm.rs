//! Uniform random G(n, m) graphs (Erdős–Rényi): the neutral test workload.

use mgpu_graph::Coo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate `m` directed edges with endpoints uniform over `n` vertices.
pub fn gnm(n: usize, m: usize, seed: u64) -> Coo<u32> {
    assert!(n > 0, "need at least one vertex");
    assert!(n <= u32::MAX as usize);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let edges = (0..m).map(|_| (rng.gen_range(0..n) as u32, rng.gen_range(0..n) as u32)).collect();
    Coo::from_edges(n, edges, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_range() {
        let coo = gnm(100, 500, 1);
        assert_eq!(coo.n_vertices, 100);
        assert_eq!(coo.n_edges(), 500);
        assert!(coo.edges.iter().all(|&(s, d)| (s as usize) < 100 && (d as usize) < 100));
    }

    #[test]
    fn deterministic() {
        assert_eq!(gnm(50, 100, 9).edges, gnm(50, 100, 9).edges);
        assert_ne!(gnm(50, 100, 9).edges, gnm(50, 100, 10).edges);
    }
}
