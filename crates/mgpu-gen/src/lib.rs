//! # mgpu-gen — synthetic workload generators
//!
//! Standing in for the paper's datasets (Table II: UF sparse matrix
//! collection "soc" and "web" graphs plus GTgraph R-MAT), this crate
//! generates graphs with the structural properties the scalability analysis
//! depends on — degree distribution, diameter and |E|/|V| ratio:
//!
//! * [`rmat`] — an R-MAT generator faithful to GTgraph (the paper's own
//!   generator), with the paper's parameters {A,B,C,D} = {0.57, 0.19, 0.19,
//!   0.05} and Merrill's {0.45, 0.15, 0.15, 0.25} for the B40C comparison.
//! * [`prefattach`] — preferential attachment, the "soc" (online social
//!   network) analog: power-law, low diameter.
//! * [`crawl`] — a copy-model web-crawl analog: power-law with strong
//!   locality and higher diameter, like uk-2002 / arabic-2005.
//! * [`grid`] — 2D lattices, the road-network analog: high diameter, low
//!   constant degree, the known-bad case for GPU traversal (§V-B).
//! * [`gnm`] — uniform random (Erdős–Rényi G(n,m)) for tests.
//! * [`smallworld`] — Watts–Strogatz rings for diameter-controlled tests.
//! * [`weights`] — the paper's SSSP edge weights: uniform integers [0, 64].
//! * [`catalog`] — named, scaled-down analogs of every Table II dataset.
//!
//! All generators are deterministic given a seed (ChaCha8 streams), so every
//! experiment in the repository is exactly reproducible.

pub mod catalog;
pub mod crawl;
pub mod gnm;
pub mod grid;
pub mod prefattach;
pub mod rmat;
pub mod smallworld;
pub mod weights;

pub use catalog::{Dataset, DatasetGroup};
pub use crawl::web_crawl;
pub use gnm::gnm;
pub use grid::grid2d;
pub use prefattach::preferential_attachment;
pub use rmat::{rmat, RmatParams};
pub use smallworld::watts_strogatz;
pub use weights::add_uniform_weights;
