//! Watts–Strogatz small-world rings: diameter-controllable test graphs.
//!
//! Useful for synchronization-cost experiments: with rewiring probability 0
//! the graph is a ring lattice with diameter ~n/(2k); small rewiring
//! probabilities collapse the diameter while keeping degree near-constant.

use mgpu_graph::Coo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate a Watts–Strogatz ring: `n` vertices, each connected to `k`
/// clockwise neighbors, each edge rewired with probability `p`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Coo<u32> {
    assert!(n > 2 * k, "ring needs n > 2k");
    assert!((0.0..=1.0).contains(&p));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    for v in 0..n {
        for j in 1..=k {
            let mut d = (v + j) % n;
            if rng.gen::<f64>() < p {
                // rewire, avoiding self loops
                loop {
                    d = rng.gen_range(0..n);
                    if d != v {
                        break;
                    }
                }
            }
            coo.push(v as u32, d as u32);
        }
    }
    coo
}

/// A simple chain of `n` vertices — the degenerate workload of the §V-B
/// synchronization-latency experiment ("each GPU visits only 1 vertex and
/// 1 edge in each iteration").
pub fn chain(n: usize) -> Coo<u32> {
    let edges = (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1)).collect();
    Coo::from_edges(n, edges, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{estimate_diameter, Csr, GraphBuilder};

    #[test]
    fn ring_edge_count() {
        let coo = watts_strogatz(100, 3, 0.0, 0);
        assert_eq!(coo.n_edges(), 300);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let ring: Csr<u32, u64> = GraphBuilder::undirected(&watts_strogatz(512, 2, 0.0, 1));
        let sw: Csr<u32, u64> = GraphBuilder::undirected(&watts_strogatz(512, 2, 0.1, 1));
        assert!(estimate_diameter(&sw, 6, 3) < estimate_diameter(&ring, 6, 3));
    }

    #[test]
    fn chain_is_a_path() {
        let coo = chain(5);
        assert_eq!(coo.edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }
}
