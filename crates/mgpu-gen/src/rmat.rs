//! R-MAT generator faithful to GTgraph (Bader & Madduri), the generator the
//! paper implements on the GPU (§VII-A).
//!
//! Each edge is placed by `scale` recursive quadrant choices with the
//! probabilities {A, B, C, D}; like GTgraph, the quadrant probabilities are
//! perturbed by ±10% noise at every level and renormalized, which prevents
//! degenerate striping. Generation is embarrassingly parallel across edges
//! (rayon), with one counter-derived ChaCha stream per chunk so results are
//! independent of thread count.

use mgpu_graph::Coo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the (0,0) quadrant.
    pub a: f64,
    /// Probability of the (0,1) quadrant.
    pub b: f64,
    /// Probability of the (1,0) quadrant.
    pub c: f64,
    /// Probability of the (1,1) quadrant.
    pub d: f64,
}

impl RmatParams {
    /// The paper's parameters: {0.57, 0.19, 0.19, 0.05} (§VII-A).
    pub fn paper() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }

    /// Merrill's parameters used for the B40C comparison (Table III):
    /// {0.45, 0.15, 0.15, 0.25}.
    pub fn merrill() -> Self {
        RmatParams { a: 0.45, b: 0.15, c: 0.15, d: 0.25 }
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-9, "R-MAT probabilities must sum to 1, got {sum}");
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "probabilities must be non-negative"
        );
    }
}

/// Generate a directed R-MAT edge list with `2^scale` vertices and
/// `edge_factor × 2^scale` edges. The caller typically symmetrizes and
/// dedups via `GraphBuilder::undirected`, matching the paper's preprocessing
/// — so the final undirected edge count lands somewhat below 2× the raw
/// count (duplicates collapse, exactly as with GTgraph + Gunrock).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Coo<u32> {
    params.validate();
    assert!(scale <= 31, "scale {scale} exceeds u32 vertex ids");
    let n = 1usize << scale;
    let m = edge_factor * n;

    const CHUNK: usize = 1 << 14;
    let n_chunks = m.div_ceil(CHUNK);
    let edges: Vec<(u32, u32)> = (0..n_chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let mut rng = ChaCha8Rng::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(chunk as u64 + 1)),
            );
            let lo = chunk * CHUNK;
            let hi = (lo + CHUNK).min(m);
            (lo..hi).map(move |_| one_edge(scale, &params, &mut rng)).collect::<Vec<_>>()
        })
        .collect();

    Coo::from_edges(n, edges, None)
}

fn one_edge(scale: u32, p: &RmatParams, rng: &mut ChaCha8Rng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        // GTgraph-style ±10% noise, renormalized.
        let va = p.a * (0.9 + 0.2 * rng.gen::<f64>());
        let vb = p.b * (0.9 + 0.2 * rng.gen::<f64>());
        let vc = p.c * (0.9 + 0.2 * rng.gen::<f64>());
        let vd = p.d * (0.9 + 0.2 * rng.gen::<f64>());
        let s = va + vb + vc + vd;
        let r = rng.gen::<f64>() * s;
        let (sbit, dbit) = if r < va {
            (0, 0)
        } else if r < va + vb {
            (0, 1)
        } else if r < va + vb + vc {
            (1, 0)
        } else {
            (1, 1)
        };
        src = (src << 1) | sbit;
        dst = (dst << 1) | dbit;
    }
    (src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{degree_stats, Csr, GraphBuilder};

    #[test]
    fn sizes_match_request() {
        let coo = rmat(10, 8, RmatParams::paper(), 1);
        assert_eq!(coo.n_vertices, 1024);
        assert_eq!(coo.n_edges(), 8 * 1024);
    }

    #[test]
    fn deterministic_for_a_seed_and_chunk_independent() {
        let a = rmat(8, 4, RmatParams::paper(), 7);
        let b = rmat(8, 4, RmatParams::paper(), 7);
        assert_eq!(a.edges, b.edges);
        let c = rmat(8, 4, RmatParams::paper(), 8);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn power_law_skew_with_paper_params() {
        let coo = rmat(12, 16, RmatParams::paper(), 3);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let s = degree_stats(&g);
        // Power-law: the max degree dwarfs the average.
        assert!(
            s.max_degree as f64 > 20.0 * s.avg_degree,
            "max {} vs avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn merrill_params_are_less_skewed_than_paper_params() {
        let skew = |p: RmatParams| {
            let coo = rmat(12, 16, p, 3);
            let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
            let s = degree_stats(&g);
            s.max_degree as f64 / s.avg_degree
        };
        assert!(skew(RmatParams::paper()) > skew(RmatParams::merrill()));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_params_are_rejected() {
        rmat(4, 1, RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5 }, 0);
    }
}
