//! Named analog datasets: every graph the paper's evaluation mentions,
//! reproduced as a scaled synthetic analog with the same structural class
//! and edge factor.
//!
//! The paper's graphs range from 86M to 3.6B edges — far beyond what belongs
//! in a test suite. Each [`Dataset`] records the paper's |V|, |E| and
//! diameter for reporting, and generates an analog scaled down by
//! `2^shift` vertices (the edge factor, degree distribution class and
//! diameter regime are preserved — these are what the scalability analysis
//! depends on, per DESIGN.md). `shift = 0` regenerates paper-scale graphs if
//! you have the memory and patience.

use mgpu_graph::{Coo, Csr, GraphBuilder};

use crate::crawl::web_crawl;
use crate::grid::grid2d;
use crate::prefattach::preferential_attachment;
use crate::rmat::{rmat, RmatParams};

/// Dataset family, as grouped in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetGroup {
    /// Online social networks: power-law, very low diameter.
    Soc,
    /// Web crawls: power-law, high locality, higher diameter.
    Web,
    /// R-MAT / Kronecker synthetic graphs.
    Rmat,
    /// Road networks: high diameter, degree ≤ 4.
    Road,
}

impl DatasetGroup {
    /// Display label used by the figures ("rmat", "soc", "web").
    pub fn label(self) -> &'static str {
        match self {
            DatasetGroup::Soc => "soc",
            DatasetGroup::Web => "web",
            DatasetGroup::Rmat => "rmat",
            DatasetGroup::Road => "road",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    /// R-MAT with given scale/edge-factor and parameter set.
    Rmat { scale: u32, edge_factor: usize, merrill: bool },
    /// Preferential attachment with `m` links per vertex.
    Soc { vertices: usize, m: usize },
    /// Copy-model crawl with ~`m` out-links per page.
    Web { vertices: usize, m: usize },
    /// 2D lattice with slight perturbation.
    Road { side: usize },
}

/// A named dataset analog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dataset {
    /// The paper's dataset name.
    pub name: &'static str,
    /// Family (Table II group).
    pub group: DatasetGroup,
    /// Paper-reported vertex count.
    pub paper_vertices: f64,
    /// Paper-reported (directed) edge count.
    pub paper_edges: f64,
    /// Paper-reported diameter, if listed.
    pub paper_diameter: Option<f64>,
    kind: Kind,
}

const M: f64 = 1e6;
const B: f64 = 1e9;

macro_rules! soc {
    ($name:literal, $v:expr, $e:expr, $d:expr, $vertices:expr, $m:expr) => {
        Dataset {
            name: $name,
            group: DatasetGroup::Soc,
            paper_vertices: $v,
            paper_edges: $e,
            paper_diameter: Some($d),
            kind: Kind::Soc { vertices: $vertices, m: $m },
        }
    };
}

macro_rules! web {
    ($name:literal, $v:expr, $e:expr, $d:expr, $vertices:expr, $m:expr) => {
        Dataset {
            name: $name,
            group: DatasetGroup::Web,
            paper_vertices: $v,
            paper_edges: $e,
            paper_diameter: Some($d),
            kind: Kind::Web { vertices: $vertices, m: $m },
        }
    };
}

macro_rules! rmat_ds {
    ($name:literal, $v:expr, $e:expr, $d:expr, $scale:expr, $ef:expr) => {
        Dataset {
            name: $name,
            group: DatasetGroup::Rmat,
            paper_vertices: $v,
            paper_edges: $e,
            paper_diameter: $d,
            kind: Kind::Rmat { scale: $scale, edge_factor: $ef, merrill: false },
        }
    };
}

/// The Table II evaluation datasets.
pub const TABLE2: &[Dataset] = &[
    soc!("soc-LiveJournal1", 4.85 * M, 85.7 * M, 13.0, 4_850_000, 9),
    soc!("hollywood-2009", 1.14 * M, 113.0 * M, 8.0, 1_140_000, 50),
    soc!("soc-orkut", 3.0 * M, 213.0 * M, 7.0, 3_000_000, 36),
    soc!("soc-sinaweibo", 58.7 * M, 523.0 * M, 5.0, 58_700_000, 4),
    soc!("soc-twitter-2010", 21.3 * M, 530.0 * M, 15.0, 21_300_000, 12),
    web!("indochina-2004", 7.41 * M, 302.0 * M, 24.0, 7_410_000, 20),
    web!("uk-2002", 18.5 * M, 524.0 * M, 25.0, 18_500_000, 14),
    web!("arabic-2005", 22.7 * M, 1.11 * B, 28.0, 22_700_000, 24),
    web!("uk-2005", 39.5 * M, 1.57 * B, 23.0, 39_500_000, 20),
    web!("webbase-2001", 118.0 * M, 1.71 * B, 379.0, 118_000_000, 7),
    rmat_ds!("rmat_n20_512", 1.05 * M, 728.0 * M, Some(6.26), 20, 512),
    rmat_ds!("rmat_n21_256", 2.10 * M, 839.0 * M, Some(7.22), 21, 256),
    rmat_ds!("rmat_n22_128", 4.19 * M, 925.0 * M, Some(7.56), 22, 128),
    rmat_ds!("rmat_n23_64", 8.39 * M, 985.0 * M, Some(8.32), 23, 64),
    rmat_ds!("rmat_n24_32", 16.8 * M, 1.02 * B, Some(8.61), 24, 32),
    rmat_ds!("rmat_n25_16", 33.6 * M, 1.05 * B, Some(9.06), 25, 16),
];

/// Additional graphs referenced by the comparison tables (III–V).
pub const COMPARISON: &[Dataset] = &[
    rmat_ds!("kron_n24_32", 16.8 * M, 1.07 * B, None, 24, 32),
    rmat_ds!("kron_n23_16", 8.0 * M, 256.0 * M, None, 23, 16),
    rmat_ds!("kron_n25_16", 32.0 * M, 1.07 * B, None, 25, 16),
    rmat_ds!("kron_n25_32", 32.0 * M, 1.07 * B, None, 25, 32),
    rmat_ds!("kron_n23_32", 8.0 * M, 256.0 * M, None, 23, 32),
    Dataset {
        name: "rmat_2Mv_128Me",
        group: DatasetGroup::Rmat,
        paper_vertices: 2.0 * M,
        paper_edges: 128.0 * M,
        paper_diameter: None,
        kind: Kind::Rmat { scale: 21, edge_factor: 64, merrill: true },
    },
    soc!("coPapersCiteseer", 0.43 * M, 32.1 * M, 26.0, 430_000, 37),
    soc!("com-orkut", 3.0 * M, 117.0 * M, 9.0, 3_000_000, 20),
    soc!("com-Friendster", 66.0 * M, 1.81 * B, 32.0, 66_000_000, 14),
    soc!("twitter-mpi", 52.6 * M, 1.96 * B, 14.0, 52_600_000, 19),
    soc!("twitter-rv", 42.0 * M, 1.5 * B, 15.0, 42_000_000, 18),
    soc!("LiveJournal1", 5.0 * M, 68.0 * M, 13.0, 5_000_000, 7),
    soc!("friendster", 125.0 * M, 3.62 * B, 32.0, 125_000_000, 14),
    web!("sk-2005", 50.6 * M, 1.9 * B, 40.0, 50_600_000, 19),
    Dataset {
        name: "road-analog",
        group: DatasetGroup::Road,
        paper_vertices: 23.9 * M,
        paper_edges: 57.7 * M,
        paper_diameter: Some(6000.0),
        kind: Kind::Road { side: 4_886 },
    },
];

impl Dataset {
    /// Look up a dataset by paper name across both catalogs.
    pub fn by_name(name: &str) -> Option<Dataset> {
        TABLE2.iter().chain(COMPARISON).copied().find(|d| d.name == name)
    }

    /// The three representative datasets of Fig. 2 / Fig. 3 ("kron",
    /// "soc-orkut", "uk-2002").
    pub fn figure_trio() -> [Dataset; 3] {
        [
            Dataset::by_name("kron_n24_32").unwrap(),
            Dataset::by_name("soc-orkut").unwrap(),
            Dataset::by_name("uk-2002").unwrap(),
        ]
    }

    /// Generate the raw (directed) analog edge list, scaled down by
    /// `2^shift` vertices.
    pub fn generate(&self, shift: u32, seed: u64) -> Coo<u32> {
        match self.kind {
            Kind::Rmat { scale, edge_factor, merrill } => {
                let s = scale.saturating_sub(shift).max(4);
                let p = if merrill { RmatParams::merrill() } else { RmatParams::paper() };
                rmat(s, edge_factor, p, seed)
            }
            Kind::Soc { vertices, m } => {
                let v = (vertices >> shift).max(16);
                preferential_attachment(v, m, seed)
            }
            Kind::Web { vertices, m } => {
                let v = (vertices >> shift).max(16);
                web_crawl(v, m, seed)
            }
            Kind::Road { side } => {
                let s = (side >> (shift / 2)).max(4);
                grid2d(s, s, 0.95, seed)
            }
        }
    }

    /// Generate and apply the paper's preprocessing (undirected, dedup,
    /// no self-loops).
    pub fn build_undirected(&self, shift: u32, seed: u64) -> Csr<u32, u64> {
        GraphBuilder::undirected(&self.generate(shift, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::degree_stats;

    #[test]
    fn catalog_covers_table2() {
        assert_eq!(TABLE2.len(), 16, "5 soc + 5 web + 6 rmat");
        assert!(Dataset::by_name("soc-orkut").is_some());
        assert!(Dataset::by_name("rmat_n20_512").is_some());
        assert!(Dataset::by_name("nope").is_none());
    }

    #[test]
    fn scaled_analog_tracks_edge_factor() {
        let ds = Dataset::by_name("soc-orkut").unwrap();
        let g = ds.build_undirected(9, 1);
        let s = degree_stats(&g);
        let paper_ef = ds.paper_edges / ds.paper_vertices; // ~71
        assert!(
            (s.avg_degree - paper_ef).abs() / paper_ef < 0.15,
            "edge factor {} vs paper {}",
            s.avg_degree,
            paper_ef
        );
    }

    #[test]
    fn rmat_analog_shrinks_scale() {
        let ds = Dataset::by_name("rmat_n20_512").unwrap();
        let coo = ds.generate(8, 1);
        assert_eq!(coo.n_vertices, 1 << 12);
        assert_eq!(coo.n_edges(), 512 << 12);
    }

    #[test]
    fn figure_trio_is_kron_orkut_uk() {
        let names: Vec<_> = Dataset::figure_trio().iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["kron_n24_32", "soc-orkut", "uk-2002"]);
    }

    #[test]
    fn generation_is_deterministic() {
        let ds = Dataset::by_name("uk-2002").unwrap();
        assert_eq!(ds.generate(10, 5).edges, ds.generate(10, 5).edges);
    }

    #[test]
    fn road_analog_has_low_degree() {
        let ds = Dataset::by_name("road-analog").unwrap();
        let g = ds.build_undirected(8, 1);
        let s = degree_stats(&g);
        assert!(s.max_degree <= 4);
        assert!(s.avg_degree < 4.0);
    }
}
