//! Copy-model web-crawl analog: the "web" group of Table II.
//!
//! Web crawls (uk-2002, indochina-2004, arabic-2005, …) are power-law like
//! social graphs but with two distinguishing properties the paper's Fig. 6
//! analysis leans on: strong *locality* (links stay within a site, so a
//! locality-aware partitioner has something to exploit) and noticeably
//! higher diameter (23–28 vs 5–15 for soc graphs). The copy model
//! reproduces both: an arriving page either copies an out-link of a
//! *nearby* prototype page or links within its neighborhood.

use mgpu_graph::Coo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate a crawl-like directed graph: `n` pages, about `m` out-links per
/// page. Pages arrive in order; most links stay within a sliding window of
/// recent pages (site locality), a copy step reproduces the power-law
/// in-degree tail, and a small fraction of global links keeps the graph
/// connected.
pub fn web_crawl(n: usize, m: usize, seed: u64) -> Coo<u32> {
    assert!(n >= 4 && m >= 1);
    assert!(n <= u32::MAX as usize);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let window = (n / 64).max(8);
    let copy_prob = 0.5;
    let local_prob = 0.85;
    let mut coo = Coo::new(n);
    // row_bounds[v] = (start, end) of v's out-edges in coo.edges; edges are
    // appended in page order so each page's links are contiguous.
    let mut row_bounds: Vec<(usize, usize)> = Vec::with_capacity(n);
    // seed pages form a small ring
    for v in 0..4u32 {
        let start = coo.edges.len();
        coo.push(v, (v + 1) % 4);
        row_bounds.push((start, coo.edges.len()));
    }
    for v in 4..n {
        let vv = v as u32;
        let lo = v.saturating_sub(window);
        let prototype = rng.gen_range(lo..v);
        let (ps, pe) = row_bounds[prototype];
        // links per page: 1..=2m, mean ~m; the power-law tail comes from
        // hubs' link lists being copied repeatedly.
        let k = rng.gen_range(1..=2 * m);
        let start = coo.edges.len();
        for _ in 0..k {
            let dst = if rng.gen::<f64>() < copy_prob && pe > ps {
                // copy one of the prototype's out-links
                coo.edges[rng.gen_range(ps..pe)].1
            } else if rng.gen::<f64>() < local_prob {
                rng.gen_range(lo..v) as u32
            } else {
                // Global links attach preferentially by in-degree (a uniform
                // pick over edge endpoints), which is what gives real crawls
                // their heavy in-degree tail even outside the copy step.
                coo.edges[rng.gen_range(0..coo.edges.len())].1
            };
            coo.push(vv, dst);
        }
        row_bounds.push((start, coo.edges.len()));
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{degree_stats, estimate_diameter, Csr, GraphBuilder};

    #[test]
    fn sizes_are_near_target() {
        let coo = web_crawl(2000, 8, 3);
        assert_eq!(coo.n_vertices, 2000);
        let per_page = coo.n_edges() as f64 / 2000.0;
        assert!((4.0..=12.0).contains(&per_page), "mean out-links {per_page}");
    }

    #[test]
    fn higher_diameter_than_soc_analog() {
        let web = web_crawl(4096, 8, 7);
        let soc = crate::prefattach::preferential_attachment(4096, 8, 7);
        let gw: Csr<u32, u64> = GraphBuilder::undirected(&web);
        let gs: Csr<u32, u64> = GraphBuilder::undirected(&soc);
        let dw = estimate_diameter(&gw, 8, 2);
        let ds = estimate_diameter(&gs, 8, 2);
        assert!(dw > ds, "web {dw} should exceed soc {ds}");
    }

    #[test]
    fn locality_links_cluster_near_the_page() {
        let coo = web_crawl(4096, 8, 9);
        let near = coo
            .edges
            .iter()
            .filter(|&&(s, d)| (s as i64 - d as i64).abs() <= (4096 / 64) as i64)
            .count();
        assert!(near * 2 > coo.n_edges(), "a majority of links are local");
    }

    #[test]
    fn still_power_law() {
        let coo = web_crawl(4096, 8, 11);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let s = degree_stats(&g);
        assert!(s.max_degree as f64 > 5.0 * s.avg_degree);
    }

    #[test]
    fn large_generation_is_fast_and_linear() {
        // Regression guard for the O(n·E) prototype scan this generator once
        // had: 100k pages must generate in well under a second.
        let t0 = std::time::Instant::now();
        let coo = web_crawl(100_000, 8, 1);
        assert!(coo.n_edges() > 400_000);
        assert!(t0.elapsed().as_secs_f64() < 5.0, "took {:?}", t0.elapsed());
    }
}
