//! 2D lattice graphs: the road-network analog.
//!
//! Road networks are the paper's pathological case: "high-diameter,
//! low-degree graphs … have insufficient parallelism to saturate even 1 GPU,
//! much less mGPUs; as a result, iteration overhead occupies a significant
//! portion of the runtime, and we observed performance *decreases* on mGPU"
//! (§VII-A). A `rows × cols` 4-neighbor lattice has diameter
//! `rows + cols - 2` and degree ≤ 4 — exactly that regime.

use mgpu_graph::Coo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate a `rows × cols` 4-neighbor lattice (directed edges in both
/// orientations). `perturb` removes each edge independently with probability
/// `1 - keep` to emulate irregular road topology; `keep = 1.0` gives the
/// full lattice.
pub fn grid2d(rows: usize, cols: usize, keep: f64, seed: u64) -> Coo<u32> {
    assert!(rows * cols <= u32::MAX as usize);
    assert!((0.0..=1.0).contains(&keep), "keep probability in [0,1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut coo = Coo::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.gen::<f64>() < keep {
                coo.push(at(r, c), at(r, c + 1));
                coo.push(at(r, c + 1), at(r, c));
            }
            if r + 1 < rows && rng.gen::<f64>() < keep {
                coo.push(at(r, c), at(r + 1, c));
                coo.push(at(r + 1, c), at(r, c));
            }
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{stats::bfs_depths, Csr, GraphBuilder};

    #[test]
    fn full_grid_edge_count() {
        let coo = grid2d(4, 5, 1.0, 0);
        // horizontal: 4 rows × 4, vertical: 3 × 5, each both ways
        assert_eq!(coo.n_edges(), 2 * (4 * 4 + 3 * 5));
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let coo = grid2d(8, 8, 1.0, 0);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (_, ecc) = bfs_depths(&g, 0u32);
        assert_eq!(ecc, 14, "corner-to-corner distance on an 8x8 grid");
    }

    #[test]
    fn degree_bounded_by_four() {
        let coo = grid2d(6, 6, 1.0, 1);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        for v in 0..36u32 {
            assert!(g.degree(v) <= 4);
        }
    }

    #[test]
    fn perturbed_grid_has_fewer_edges() {
        let full = grid2d(10, 10, 1.0, 2).n_edges();
        let cut = grid2d(10, 10, 0.7, 2).n_edges();
        assert!(cut < full);
    }
}
