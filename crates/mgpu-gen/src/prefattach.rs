//! Preferential attachment (Barabási–Albert-style): the "soc" analog.
//!
//! Online social networks (soc-orkut, soc-LiveJournal1, hollywood-2009, …)
//! are power-law graphs with very low diameter (5–15 in Table II). A
//! preferential-attachment process reproduces both: each arriving vertex
//! attaches `m` edges to existing vertices chosen proportionally to degree
//! (implemented with the repeated-endpoint trick: sampling a uniform element
//! of the running edge list is degree-proportional).

use mgpu_graph::Coo;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Generate a preferential-attachment graph over `n` vertices with `m` edges
/// per arriving vertex.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Coo<u32> {
    assert!(n >= 2 && m >= 1, "need n >= 2 and m >= 1");
    assert!(n <= u32::MAX as usize);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // endpoints: flattened list of edge endpoints; uniform sampling from it
    // is degree-proportional sampling of vertices.
    let mut endpoints: Vec<u32> = vec![0, 1, 1, 0];
    let mut coo = Coo::new(n);
    coo.push(0, 1);
    for v in 2..n as u32 {
        for _ in 0..m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            coo.push(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{degree_stats, estimate_diameter, Csr, GraphBuilder};

    #[test]
    fn sizes() {
        let coo = preferential_attachment(1000, 8, 4);
        assert_eq!(coo.n_vertices, 1000);
        assert_eq!(coo.n_edges(), 1 + 998 * 8);
    }

    #[test]
    fn power_law_hubs_emerge() {
        let coo = preferential_attachment(4096, 8, 5);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let s = degree_stats(&g);
        assert!(s.max_degree as f64 > 10.0 * s.avg_degree);
    }

    #[test]
    fn low_diameter_like_social_networks() {
        let coo = preferential_attachment(4096, 8, 6);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let d = estimate_diameter(&g, 8, 1);
        assert!(d <= 8, "soc analogs are shallow, got {d}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment(500, 4, 11).edges,
            preferential_attachment(500, 4, 11).edges
        );
    }
}
