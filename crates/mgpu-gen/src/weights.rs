//! Edge weights: "for SSSP, edge values are randomly generated integers
//! from [0, 64]" (§VII-A).

use mgpu_graph::{Coo, Id};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The paper's SSSP weight range (inclusive lower, exclusive upper bound 65
/// so that 64 is attainable).
pub const PAPER_WEIGHT_RANGE: std::ops::Range<u32> = 0..65;

/// Attach uniform integer weights from `range` to every edge of `coo`.
pub fn add_uniform_weights<V: Id>(coo: &mut Coo<V>, range: std::ops::Range<u32>, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    coo.weights = Some((0..coo.n_edges()).map(|_| rng.gen_range(range.clone())).collect());
}

/// Attach the paper's [0, 64] weights.
pub fn add_paper_weights<V: Id>(coo: &mut Coo<V>, seed: u64) {
    add_uniform_weights(coo, PAPER_WEIGHT_RANGE, seed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_cover_paper_range() {
        let mut coo = crate::gnm::gnm(100, 5000, 1);
        add_paper_weights(&mut coo, 2);
        let w = coo.weights.as_ref().unwrap();
        assert_eq!(w.len(), 5000);
        assert!(w.iter().all(|&x| x <= 64));
        assert!(w.contains(&0), "range is inclusive of 0");
        assert!(w.contains(&64), "range is inclusive of 64");
    }

    #[test]
    fn deterministic() {
        let mut a = crate::gnm::gnm(50, 200, 3);
        let mut b = crate::gnm::gnm(50, 200, 3);
        add_paper_weights(&mut a, 4);
        add_paper_weights(&mut b, 4);
        assert_eq!(a.weights, b.weights);
    }
}
