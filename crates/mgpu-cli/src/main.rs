//! `mgpu` — command-line driver for the multi-GPU graph analytics library.
//!
//! ```text
//! mgpu datasets                               list the Table II analog catalog
//! mgpu run --primitive bfs --dataset soc-orkut --gpus 4
//! mgpu run --primitive sssp --mtx graph.mtx --gpus 2 --partitioner metis
//! mgpu run --primitive pr --dataset uk-2002 --gpus 6 --json
//! ```
//!
//! Flags for `run`:
//!
//! ```text
//!   --primitive {bfs|dobfs|sssp|bc|cc|pr}   (required)
//!   --dataset <name> | --mtx <path>          (one required)
//!   --gpus N            virtual GPU count              [default 4]
//!   --partitioner {random|biased|metis|chunked}        [default random]
//!   --profile {k40|k80|p100}                           [default k40]
//!   --shift N           dataset scale-down exponent    [default 8]
//!   --seed S            generator/partitioner seed     [default 42]
//!   --src V             source vertex ("auto" = highest degree) [auto]
//!   --sources N|id,..   batched multi-source traversal (bfs and bc only):
//!                       a bare count N spreads N sources evenly over the
//!                       vertex space, a comma list names them; all sources
//!                       ride one enact, one u64 bitfield lane each (max 64)
//!   --json              emit the report as JSON instead of text
//!   --comm {selective|broadcast}  override the primitive's communication
//!                       strategy
//!   --fault-plan SPEC   deterministic fault injection; SPEC is either a
//!                       comma-separated event list (`kfail:D@N`, `oom:D@N`,
//!                       `slow:D@N:US`, `lose:D@N`, `tfail:S>D@N`,
//!                       `ttimeout:S>D@N`, `spill:D@N`, `pass:D@N`,
//!                       `lease:D@N`), the shorthand `random:SEED:COUNT:HORIZON`
//!                       (transient-only), or `randomp:SEED:COUNT:HORIZON`
//!                       (transients plus pressure-path sites)
//!   --recovery          enact through the resilient runner: bounded retry,
//!                       superstep checkpoints, degrade on device loss
//!   --mem-cap BYTES     cap each device's memory pool at BYTES and enable
//!                       the memory-pressure governor (admission downgrades,
//!                       host spill, chunked multi-pass advance)
//!   --alloc-scheme {just-enough|fixed|max|prealloc-fusion}
//!                       override the primitive's frontier allocation scheme
//!   --sizing-factor F   preallocation sizing factor for fixed /
//!                       prealloc-fusion schemes                   [default 1.0]
//!   --comm-topology {direct|butterfly}  broadcast collective shape
//!                       (butterfly = log2(n)-stage dissemination) [default direct]
//!   --wire-encoding {legacy|auto|list|bitmap|delta}  package wire format;
//!                       auto picks the smallest per package       [default legacy]
//!   --suppression       drop sends a monotone combiner would reject anyway
//!   --trace-out PATH    record a structured trace and write it to PATH
//!                       (`.jsonl` → compact JSONL, anything else → Chrome
//!                       trace_event JSON for chrome://tracing / Perfetto)
//!   --profile           (no value) record a trace, print the per-superstep
//!                       BSP cost attribution table (W, H·g, S·l, waits) and
//!                       verify it reconciles exactly with the report
//! ```
//!
//! Both tracing flags verify the trace↔report reconciliation invariant and
//! exit non-zero on any mismatch.
//!
//! `serve` runs a multi-tenant query mix against one shared residency
//! through the deterministic [`mgpu_core::service`] scheduler:
//!
//! ```text
//! mgpu serve --dataset soc-orkut --queries "bfs:0,sssp:5@resilient,cc,pr" --gpus 4
//! ```
//!
//! Flags for `serve`:
//!
//! ```text
//!   --queries LIST      comma list of `prim[:source][@mode]` entries;
//!                       prim ∈ {bfs|dobfs|sssp|bc|cc|pr}, mode ∈
//!                       {bsp|async|resilient} (default bsp; async is
//!                       bfs/sssp/cc only)              (required)
//!   --dataset <name> | --mtx <path>                    (one required)
//!   --gpus N            virtual GPU count              [default 4]
//!   --partitioner {random|biased|metis|chunked}        [default random]
//!   --profile {k40|k80|p100}                           [default k40]
//!   --shift N           dataset scale-down exponent    [default 8]
//!   --seed S            generator/partitioner seed     [default 42]
//!   --sched-seed S      dispatch-permutation seed      [default --seed]
//!   --lanes N           concurrent queries per wave (0 = unbounded)
//!                                                      [default 4]
//!   --workers N         host threads per wave (wall-clock only; results
//!                       and reports are identical at every value)
//!                                                      [default 1]
//!   --mem-cap BYTES     per-device capacity: the admission ledger queues
//!                       queries past the soft watermark and rejects with
//!                       a typed OOM only those that cannot fit alone
//!   --comm-topology {direct|butterfly}                 [default direct]
//!   --json              emit the service report as JSON
//! ```
//!
//! The scheduler is deterministic given `(--sched-seed, submission order)`:
//! per-query reports and result words are bit-equal to one-at-a-time runs
//! at any `--workers` and `--lanes` value.

use std::process::ExitCode;

use mgpu_bench::runners::{run_primitive_resilient, scaled_system, MultiSourceMode, Primitive};
use mgpu_bench::service::{build_query_specs, parse_query_list, residency_bytes};
use mgpu_bench::{pick_source, run_multi_source, run_primitive};
use mgpu_core::{AllocScheme, EnactConfig, PressurePolicy, RecoveryPolicy, Service, ServicePolicy};
use mgpu_gen::catalog::{COMPARISON, TABLE2};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::Dataset;
use mgpu_graph::{read_mtx, Csr, GraphBuilder};
use mgpu_partition::{
    BiasedRandomPartitioner, ChunkedPartitioner, DistGraph, Duplication, MultilevelPartitioner,
    Partitioner, RandomPartitioner,
};
use vgpu::{FaultPlan, HardwareProfile};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  mgpu datasets\n  mgpu run --primitive <bfs|dobfs|sssp|bc|cc|pr> \
         (--dataset <name> | --mtx <path>) [--gpus N] [--partitioner random|biased|metis|chunked]\n\
         \x20         [--profile k40|k80|p100] [--shift N] [--seed S] [--src V|auto] [--sources N|id,id,...] [--json]\n\
         \x20         [--comm selective|broadcast] [--fault-plan <spec|random:SEED:COUNT:HORIZON>] [--recovery]\n\
         \x20         [--mem-cap BYTES] [--alloc-scheme just-enough|fixed|max|prealloc-fusion] [--sizing-factor F]\n\
         \x20         [--comm-topology direct|butterfly] [--wire-encoding legacy|auto|list|bitmap|delta] [--suppression]\n\
         \x20         [--trace-out PATH.jsonl|PATH.json] [--profile]\n\
         \x20 mgpu serve --queries \"bfs:0,sssp:5@resilient,cc\" (--dataset <name> | --mtx <path>)\n\
         \x20         [--gpus N] [--partitioner random|biased|metis|chunked] [--profile k40|k80|p100]\n\
         \x20         [--shift N] [--seed S] [--sched-seed S] [--lanes N] [--workers N]\n\
         \x20         [--mem-cap BYTES] [--comm-topology direct|butterfly] [--json]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("datasets") => {
            println!("{:<20} {:<6} {:>12} {:>12}", "name", "group", "paper |V|", "paper |E|");
            for ds in TABLE2.iter().chain(COMPARISON) {
                println!(
                    "{:<20} {:<6} {:>11.2}M {:>11.0}M",
                    ds.name,
                    ds.group.label(),
                    ds.paper_vertices / 1e6,
                    ds.paper_edges / 1e6
                );
            }
            ExitCode::SUCCESS
        }
        Some("run") => run(&args[1..]),
        Some("serve") => serve(&args[1..]),
        _ => usage(),
    }
}

/// Parse `--fault-plan`: the event grammar understood by
/// [`FaultPlan::parse`], the shorthand `random:SEED:COUNT:HORIZON` for a
/// seed-derived transient-only plan, or `randomp:SEED:COUNT:HORIZON` for a
/// seed-derived plan that also targets the pressure paths (spill transfers,
/// chunked-advance passes, arena leases).
fn parse_fault_plan(spec: &str, n_devices: usize) -> Result<FaultPlan, String> {
    let random = |rest: &str, pressure: bool| -> Result<FaultPlan, String> {
        let parts: Vec<&str> = rest.split(':').collect();
        let [seed, count, horizon] = parts.as_slice() else {
            return Err(format!("expected SEED:COUNT:HORIZON after the prefix, got {spec}"));
        };
        let seed = seed.parse::<u64>().map_err(|e| format!("seed: {e}"))?;
        let count = count.parse::<usize>().map_err(|e| format!("count: {e}"))?;
        let horizon = horizon.parse::<u64>().map_err(|e| format!("horizon: {e}"))?;
        Ok(if pressure {
            FaultPlan::random_with_pressure(seed, n_devices, count, horizon)
        } else {
            FaultPlan::random(seed, n_devices, count, horizon)
        })
    };
    if let Some(rest) = spec.strip_prefix("randomp:") {
        random(rest, true)
    } else if let Some(rest) = spec.strip_prefix("random:") {
        random(rest, false)
    } else {
        FaultPlan::parse(spec)
    }
}

#[derive(Default)]
struct RunArgs {
    primitive: Option<String>,
    dataset: Option<String>,
    mtx: Option<String>,
    gpus: usize,
    partitioner: String,
    profile: String,
    shift: u32,
    seed: u64,
    src: String,
    sources: Option<String>,
    json: bool,
    comm: Option<String>,
    fault_plan: Option<String>,
    recovery: bool,
    mem_cap: Option<u64>,
    alloc_scheme: Option<String>,
    sizing_factor: f64,
    comm_topology: Option<String>,
    wire_encoding: Option<String>,
    suppression: bool,
    trace_out: Option<String>,
    bsp_profile: bool,
}

fn run(args: &[String]) -> ExitCode {
    let mut a = RunArgs {
        gpus: 4,
        partitioner: "random".into(),
        profile: "k40".into(),
        shift: 8,
        seed: 42,
        src: "auto".into(),
        sizing_factor: 1.0,
        ..Default::default()
    };
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--primitive" => a.primitive = Some(value("--primitive")),
            "--dataset" => a.dataset = Some(value("--dataset")),
            "--mtx" => a.mtx = Some(value("--mtx")),
            "--gpus" => a.gpus = value("--gpus").parse().expect("--gpus N"),
            "--partitioner" => a.partitioner = value("--partitioner"),
            // `--profile <k40|k80|p100>` selects hardware (historic form);
            // bare `--profile` enables the BSP cost attribution output.
            "--profile" => match it.peek().map(|s| s.as_str()) {
                Some("k40" | "k80" | "p100") => a.profile = it.next().cloned().unwrap_or_default(),
                _ => a.bsp_profile = true,
            },
            "--shift" => a.shift = value("--shift").parse().expect("--shift N"),
            "--seed" => a.seed = value("--seed").parse().expect("--seed S"),
            "--src" => a.src = value("--src"),
            "--sources" => a.sources = Some(value("--sources")),
            "--json" => a.json = true,
            "--comm" => a.comm = Some(value("--comm")),
            "--fault-plan" => a.fault_plan = Some(value("--fault-plan")),
            "--recovery" => a.recovery = true,
            "--mem-cap" => a.mem_cap = Some(value("--mem-cap").parse().expect("--mem-cap BYTES")),
            "--alloc-scheme" => a.alloc_scheme = Some(value("--alloc-scheme")),
            "--sizing-factor" => {
                a.sizing_factor = value("--sizing-factor").parse().expect("--sizing-factor F")
            }
            "--comm-topology" => a.comm_topology = Some(value("--comm-topology")),
            "--wire-encoding" => a.wire_encoding = Some(value("--wire-encoding")),
            "--suppression" => a.suppression = true,
            "--trace-out" => a.trace_out = Some(value("--trace-out")),
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
    }

    let prim = match a.primitive.as_deref() {
        Some("bfs") => Primitive::Bfs,
        Some("dobfs") => Primitive::Dobfs,
        Some("sssp") => Primitive::Sssp,
        Some("bc") => Primitive::Bc,
        Some("cc") => Primitive::Cc,
        Some("pr") => Primitive::Pr,
        _ => return usage(),
    };

    // --- graph ---
    let graph: Csr<u32, u64> = match (&a.dataset, &a.mtx) {
        (Some(name), None) => {
            let Some(ds) = Dataset::by_name(name) else {
                eprintln!("unknown dataset {name}; try `mgpu datasets`");
                return ExitCode::FAILURE;
            };
            let mut coo = ds.generate(a.shift, a.seed);
            if prim == Primitive::Sssp {
                add_paper_weights(&mut coo, a.seed ^ 0x77);
            }
            GraphBuilder::undirected(&coo)
        }
        (None, Some(path)) => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match read_mtx::<u32, _>(std::io::BufReader::new(file)) {
                Ok(mut coo) => {
                    if prim == Primitive::Sssp && coo.weights.is_none() {
                        add_paper_weights(&mut coo, a.seed ^ 0x77);
                    }
                    GraphBuilder::undirected(&coo)
                }
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    };

    // --- hardware ---
    let profile = match a.profile.as_str() {
        "k40" => HardwareProfile::k40(),
        "k80" => HardwareProfile::k80_gpu(),
        "p100" => HardwareProfile::p100(),
        other => {
            eprintln!("unknown profile {other}");
            return ExitCode::FAILURE;
        }
    };
    // --mem-cap shrinks every device's pool and arms the pressure governor
    let profile = match a.mem_cap {
        Some(cap) => profile.with_capacity(cap),
        None => profile,
    };
    let mut system = scaled_system(a.gpus, profile.clone(), a.shift);

    // --- fault injection / recovery ---
    let plan = match a.fault_plan.as_deref() {
        Some(spec) => match parse_fault_plan(spec, a.gpus) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("bad --fault-plan: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let comm = match a.comm.as_deref() {
        None => None,
        Some("selective") => Some(mgpu_core::CommStrategy::Selective),
        Some("broadcast") => Some(mgpu_core::CommStrategy::Broadcast),
        Some(other) => {
            eprintln!("unknown comm strategy {other}");
            return ExitCode::FAILURE;
        }
    };
    let alloc_scheme = match a.alloc_scheme.as_deref() {
        None => None,
        Some("just-enough") => Some(AllocScheme::JustEnough),
        Some("fixed") => Some(AllocScheme::Fixed { sizing_factor: a.sizing_factor }),
        Some("max") => Some(AllocScheme::Max),
        Some("prealloc-fusion") => {
            Some(AllocScheme::PreallocFusion { sizing_factor: a.sizing_factor })
        }
        Some(other) => {
            eprintln!("unknown alloc scheme {other}");
            return ExitCode::FAILURE;
        }
    };
    let comm_topology = match a.comm_topology.as_deref() {
        None | Some("direct") => mgpu_core::CommTopology::Direct,
        Some("butterfly") => mgpu_core::CommTopology::Butterfly,
        Some(other) => {
            eprintln!("unknown comm topology {other}");
            return ExitCode::FAILURE;
        }
    };
    let wire_encoding = match a.wire_encoding.as_deref() {
        None | Some("legacy") => mgpu_core::WireEncoding::Legacy,
        Some("auto") => mgpu_core::WireEncoding::Auto,
        Some("list") => mgpu_core::WireEncoding::List,
        Some("bitmap") => mgpu_core::WireEncoding::Bitmap,
        Some("delta") => mgpu_core::WireEncoding::DeltaVarint,
        Some(other) => {
            eprintln!("unknown wire encoding {other}");
            return ExitCode::FAILURE;
        }
    };
    let config = EnactConfig {
        alloc_scheme,
        comm,
        comm_topology,
        wire_encoding,
        suppression: a.suppression,
        tracing: a.trace_out.is_some() || a.bsp_profile,
        recovery: if a.recovery { RecoveryPolicy::resilient() } else { RecoveryPolicy::default() },
        pressure: if a.mem_cap.is_some() {
            PressurePolicy::governed()
        } else {
            PressurePolicy::default()
        },
        ..Default::default()
    };
    if let (Some(p), false) = (&plan, a.recovery) {
        // No recovery requested: inject into the plain BSP enactor and let
        // the run succeed (transients absorbed by retry=0 → fail) or fail.
        system.attach_fault_plan(p);
    }

    // --- multi-source batch (--sources) ---
    let sources: Option<Vec<usize>> = match a.sources.as_deref() {
        None => None,
        Some(spec) => {
            if !matches!(prim, Primitive::Bfs | Primitive::Bc) {
                eprintln!("--sources needs a source-parallel primitive (bfs or bc)");
                return ExitCode::FAILURE;
            }
            if a.recovery {
                eprintln!("--sources does not combine with --recovery");
                return ExitCode::FAILURE;
            }
            let parsed = if spec.contains(',') {
                spec.split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .ok()
            } else {
                // A bare count spreads that many sources evenly (clamped to
                // the 64 bitfield lanes and the vertex count).
                spec.parse::<usize>()
                    .ok()
                    .filter(|&k| k > 0)
                    .map(|k| mgpu_primitives::MsBfs::spread_sources(k, graph.n_vertices()))
            };
            match parsed {
                Some(v)
                    if !v.is_empty()
                        && v.len() <= mgpu_primitives::ms_bfs::LANES
                        && v.iter().all(|&s| s < graph.n_vertices()) =>
                {
                    Some(v)
                }
                _ => {
                    eprintln!(
                        "bad --sources {spec}: want a count >= 1 or a comma list of at most {} \
                         in-range vertex ids",
                        mgpu_primitives::ms_bfs::LANES
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    // --- partition + run (partitioners are statically dispatched) ---
    macro_rules! dispatch {
        ($partitioner:expr) => {
            if let Some(srcs) = &sources {
                run_multi_source(
                    prim,
                    &graph,
                    system,
                    $partitioner,
                    config,
                    srcs,
                    MultiSourceMode::Batched,
                )
            } else if let (Some(p), true) = (&plan, a.recovery) {
                let s = (1u64 << a.shift.min(40)) as f64;
                run_primitive_resilient(
                    prim,
                    &graph,
                    a.gpus,
                    profile.clone().with_overhead_scale(s),
                    $partitioner,
                    config,
                    p.clone(),
                )
            } else {
                run_primitive(prim, &graph, system, $partitioner, config)
            }
        };
    }
    let outcome = match a.partitioner.as_str() {
        "random" => dispatch!(&RandomPartitioner { seed: a.seed }),
        "biased" => dispatch!(&BiasedRandomPartitioner { seed: a.seed, slack: 0.05 }),
        "metis" => dispatch!(&MultilevelPartitioner { seed: a.seed, ..Default::default() }),
        "chunked" => dispatch!(&ChunkedPartitioner),
        other => {
            eprintln!("unknown partitioner {other}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // --- trace export + BSP cost attribution ---
    if let Some(trace) = &outcome.report.trace {
        let profile = mgpu_core::Profile::from_trace(trace);
        if let Err(e) = profile.reconcile(&outcome.report) {
            eprintln!("trace reconciliation failed: {e}");
            return ExitCode::FAILURE;
        }
        if let Some(path) = &a.trace_out {
            let body =
                if path.ends_with(".jsonl") { trace.to_jsonl() } else { trace.to_chrome_json() };
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("trace written to {path} ({} events)", trace.n_events());
        }
        if a.bsp_profile {
            print!("{}", profile.format_table());
        }
    }

    // `--src` is accepted for interface completeness; the dispatcher picks
    // the highest-degree source, which `auto` names explicitly.
    if a.src != "auto" {
        eprintln!(
            "note: run_primitive picks the highest-degree source (vertex {}); --src is advisory",
            pick_source::<u32, u64>(&graph)
        );
    }

    if a.json {
        println!("{}", outcome.report.to_json());
    } else {
        let r = &outcome.report;
        println!("primitive      {}", r.primitive);
        if let Some(srcs) = &sources {
            println!("sources        {} (one u64 bitfield lane each, one enact)", srcs.len());
        }
        println!("graph          |V|={} |E|={}", graph.n_vertices(), graph.n_edges());
        println!("devices        {} × {}", a.gpus, a.profile);
        println!("partitioner    {}", a.partitioner);
        println!("supersteps     {}", r.iterations);
        println!("simulated      {:.3} ms", r.sim_time_us / 1e3);
        println!("wall clock     {:.3} ms", r.wall_time_us / 1e3);
        println!("GTEPS          {:.2}", outcome.gteps());
        println!(
            "communication  {} vertices, {} KiB",
            r.totals.h_vertices,
            r.totals.h_bytes_sent / 1024
        );
        if r.comm != mgpu_core::CommReduction::default() {
            let cm = &r.comm;
            println!(
                "wire reduction {} vertices suppressed ({} KiB), encodings {} list / {} bitmap / {} delta, {} collective stages",
                cm.suppressed_vertices,
                cm.suppressed_bytes / 1024,
                cm.enc_list,
                cm.enc_bitmap,
                cm.enc_delta,
                cm.collective_stages
            );
        }
        println!("peak mem/GPU   {} KiB", r.peak_memory_per_device / 1024);
        for (gpu, m) in r.mem_per_device.iter().enumerate() {
            println!(
                "  gpu {gpu}        peak {} KiB, live {} KiB, {} reallocs ({} KiB copied)",
                m.peak / 1024,
                m.live / 1024,
                m.reallocs,
                m.realloc_copied / 1024
            );
        }
        if !r.governor.is_quiet() {
            let g = &r.governor;
            println!(
                "governor       {} downgrades, {} chunked advances ({} passes), \
                 {} spills ({} KiB), {} reclaim retries",
                g.downgrades.len(),
                g.chunked_advances,
                g.chunk_passes,
                g.spill_events,
                g.spilled_bytes / 1024,
                g.reclaim_retries
            );
            for d in &g.downgrades {
                let scope = match d.device {
                    Some(i) => format!("gpu {i}"),
                    None => "global".into(),
                };
                println!(
                    "  downgrade    {scope}: {} {} -> {} (est {} KiB vs budget {} KiB)",
                    d.kind,
                    d.from,
                    d.to,
                    d.estimated_bytes / 1024,
                    d.budget_bytes / 1024
                );
            }
        }
        if !r.recovery.is_quiet() {
            let rec = &r.recovery;
            println!(
                "recovery       {} kernel + {} transfer retries, {} checkpoints, {} failovers",
                rec.kernel_retries, rec.transfer_retries, rec.checkpoints_taken, rec.failovers
            );
            if rec.butterfly_fallbacks > 0 {
                println!(
                    "               {} butterfly superstep(s) fell back to direct broadcast",
                    rec.butterfly_fallbacks
                );
            }
            if !rec.lost_devices.is_empty() {
                println!(
                    "lost devices   {:?} ({:.3} ms of work discarded)",
                    rec.lost_devices,
                    rec.lost_time_us / 1e3
                );
            }
        }
    }
    ExitCode::SUCCESS
}

#[derive(Default)]
struct ServeArgs {
    dataset: Option<String>,
    mtx: Option<String>,
    queries: Option<String>,
    gpus: usize,
    partitioner: String,
    profile: String,
    shift: u32,
    seed: u64,
    sched_seed: Option<u64>,
    lanes: usize,
    workers: usize,
    mem_cap: Option<u64>,
    comm_topology: Option<String>,
    json: bool,
}

/// `mgpu serve` — admit a `--queries` mix through the deterministic
/// multi-tenant scheduler over one shared partitioned residency.
fn serve(args: &[String]) -> ExitCode {
    let mut a = ServeArgs {
        gpus: 4,
        partitioner: "random".into(),
        profile: "k40".into(),
        shift: 8,
        seed: 42,
        lanes: 4,
        workers: 1,
        ..Default::default()
    };
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--dataset" => a.dataset = Some(value("--dataset")),
            "--mtx" => a.mtx = Some(value("--mtx")),
            "--queries" => a.queries = Some(value("--queries")),
            "--gpus" => a.gpus = value("--gpus").parse().expect("--gpus N"),
            "--partitioner" => a.partitioner = value("--partitioner"),
            "--profile" => a.profile = value("--profile"),
            "--shift" => a.shift = value("--shift").parse().expect("--shift N"),
            "--seed" => a.seed = value("--seed").parse().expect("--seed S"),
            "--sched-seed" => {
                a.sched_seed = Some(value("--sched-seed").parse().expect("--sched-seed S"))
            }
            "--lanes" => a.lanes = value("--lanes").parse().expect("--lanes N"),
            "--workers" => a.workers = value("--workers").parse().expect("--workers N"),
            "--mem-cap" => a.mem_cap = Some(value("--mem-cap").parse().expect("--mem-cap BYTES")),
            "--comm-topology" => a.comm_topology = Some(value("--comm-topology")),
            "--json" => a.json = true,
            other => {
                eprintln!("unknown flag {other}");
                return usage();
            }
        }
    }

    let Some(spec) = &a.queries else {
        eprintln!("serve needs --queries");
        return usage();
    };
    let descs = match parse_query_list(spec) {
        Ok(d) if !d.is_empty() => d,
        Ok(_) => {
            eprintln!("--queries is empty");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bad --queries: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wants_weights = descs.iter().any(|d| d.prim == Primitive::Sssp);
    let wants_csc = descs.iter().any(|d| d.prim == Primitive::Dobfs);

    // --- graph (weights whenever the mix contains SSSP) ---
    let graph: Csr<u32, u64> = match (&a.dataset, &a.mtx) {
        (Some(name), None) => {
            let Some(ds) = Dataset::by_name(name) else {
                eprintln!("unknown dataset {name}; try `mgpu datasets`");
                return ExitCode::FAILURE;
            };
            let mut coo = ds.generate(a.shift, a.seed);
            if wants_weights {
                add_paper_weights(&mut coo, a.seed ^ 0x77);
            }
            GraphBuilder::undirected(&coo)
        }
        (None, Some(path)) => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot open {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match read_mtx::<u32, _>(std::io::BufReader::new(file)) {
                Ok(mut coo) => {
                    if wants_weights && coo.weights.is_none() {
                        add_paper_weights(&mut coo, a.seed ^ 0x77);
                    }
                    GraphBuilder::undirected(&coo)
                }
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    };

    let profile = match a.profile.as_str() {
        "k40" => HardwareProfile::k40(),
        "k80" => HardwareProfile::k80_gpu(),
        "p100" => HardwareProfile::p100(),
        other => {
            eprintln!("unknown profile {other}");
            return ExitCode::FAILURE;
        }
    };
    // --mem-cap shrinks the per-query device pools too: admitted queries
    // that outgrow their estimate hit the runtime pressure machinery
    // (spill, chunking) rather than silently exceeding the cap.
    let profile = match a.mem_cap {
        Some(cap) => profile.with_capacity(cap),
        None => profile,
    };
    let comm_topology = match a.comm_topology.as_deref() {
        None | Some("direct") => mgpu_core::CommTopology::Direct,
        Some("butterfly") => mgpu_core::CommTopology::Butterfly,
        Some(other) => {
            eprintln!("unknown comm topology {other}");
            return ExitCode::FAILURE;
        }
    };
    let config = EnactConfig {
        comm_topology,
        pressure: if a.mem_cap.is_some() {
            PressurePolicy::governed()
        } else {
            PressurePolicy::default()
        },
        ..Default::default()
    };

    // --- one shared residency for every query ---
    macro_rules! build {
        ($p:expr) => {{
            let p = $p;
            (DistGraph::partition(&graph, &p, a.gpus, Duplication::All), p.assign(&graph, a.gpus))
        }};
    }
    let (mut dist, owner) = match a.partitioner.as_str() {
        "random" => build!(RandomPartitioner { seed: a.seed }),
        "biased" => build!(BiasedRandomPartitioner { seed: a.seed, slack: 0.05 }),
        "metis" => build!(MultilevelPartitioner { seed: a.seed, ..Default::default() }),
        "chunked" => build!(ChunkedPartitioner),
        other => {
            eprintln!("unknown partitioner {other}");
            return ExitCode::FAILURE;
        }
    };
    if wants_csc {
        dist.build_cscs();
    }

    let specs = match build_query_specs(&graph, &dist, &owner, profile, a.shift, config, &descs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad query mix: {e}");
            return ExitCode::FAILURE;
        }
    };

    let policy = ServicePolicy {
        seed: a.sched_seed.unwrap_or(a.seed),
        workers: a.workers,
        lanes: a.lanes,
        mem_cap: a.mem_cap,
        residency_bytes: residency_bytes(&dist),
        pressure: PressurePolicy::governed(),
    };
    let report = Service::new(policy).run(&specs);

    if a.json {
        println!("{}", report.to_json());
    } else {
        println!(
            "serving {} queries on {} GPUs over {} (|V|={} |E|={}, shift {})\n",
            specs.len(),
            a.gpus,
            a.dataset.as_deref().unwrap_or("mtx"),
            graph.n_vertices(),
            graph.n_edges(),
            a.shift
        );
        println!("{:<3} {:<22} {:>4} {:>10} {:>6}  status", "q", "name", "wave", "sim ms", "iters");
        for o in &report.outcomes {
            match &o.result {
                Ok(r) => println!(
                    "{:<3} {:<22} {:>4} {:>10.3} {:>6}  ok",
                    o.query,
                    o.name,
                    o.wave,
                    r.sim_time_us / 1e3,
                    r.iterations
                ),
                Err(e) if o.wave == usize::MAX => {
                    println!(
                        "{:<3} {:<22} {:>4} {:>10} {:>6}  rejected: {e}",
                        o.query, o.name, "-", "-", "-"
                    )
                }
                Err(e) => println!(
                    "{:<3} {:<22} {:>4} {:>10} {:>6}  error: {e}",
                    o.query, o.name, o.wave, "-", "-"
                ),
            }
        }
        println!("\nadmission:");
        for rec in &report.admission {
            let disposition = if rec.rejected {
                "rejected".to_string()
            } else if rec.queued {
                format!("queued -> wave {}", rec.wave.unwrap_or(0))
            } else {
                format!("admitted -> wave {}", rec.wave.unwrap_or(0))
            };
            let budget = if rec.budget_bytes == u64::MAX {
                "unbounded".to_string()
            } else {
                format!("{} KiB", rec.budget_bytes / 1024)
            };
            println!(
                "  q{:<2} {:<22} {:<20} (est {} KiB vs budget {})",
                rec.query,
                rec.name,
                disposition,
                rec.estimated_bytes / 1024,
                budget
            );
        }
        println!(
            "\n{} wave(s) | serial {:.3} ms | concurrent {:.3} ms | throughput {:.2}x",
            report.waves,
            report.serial_sim_us / 1e3,
            report.concurrent_sim_us / 1e3,
            report.throughput_x()
        );
    }

    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
