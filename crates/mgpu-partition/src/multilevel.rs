//! A from-scratch multilevel graph partitioner — the "Metis" stand-in.
//!
//! The paper evaluates Metis [11] as its third partitioner (Fig. 2): it
//! "only wins in a few situations, with small margins, but takes a much
//! longer time to partition". We reproduce the *mechanism* that produces
//! that behaviour with the classic multilevel scheme Metis introduced:
//!
//! 1. **Coarsening** — repeated heavy-edge matching: match each vertex with
//!    the neighbor sharing the heaviest (multi-)edge; contract matched pairs.
//! 2. **Initial partition** — greedy region growing on the coarsest graph:
//!    BFS-grow each part from a random seed until its vertex-weight budget
//!    fills.
//! 3. **Uncoarsening with refinement** — project the partition back level by
//!    level, running boundary Kernighan–Lin/Fiduccia–Mattheyses-style gain
//!    passes under a balance cap at each level.
//!
//! Like Metis, it minimizes *edge cut* — which §V-C argues is the wrong
//! objective for this system (border vertex count is what matters) — so in
//! the Fig. 2 reproduction it wins only where cut and border correlate.

use mgpu_graph::{Csr, Id};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::partitioner::Partitioner;

/// Multilevel (Metis-style) partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelPartitioner {
    /// RNG seed (coarse seeds and tie-breaking).
    pub seed: u64,
    /// Allowed imbalance on vertex weight per part.
    pub slack: f64,
    /// Stop coarsening when the graph has at most this many vertices per
    /// part.
    pub coarse_vertices_per_part: usize,
    /// Refinement passes per level.
    pub refine_passes: usize,
}

impl Default for MultilevelPartitioner {
    fn default() -> Self {
        MultilevelPartitioner {
            seed: 0x5eed,
            slack: 0.05,
            coarse_vertices_per_part: 32,
            refine_passes: 4,
        }
    }
}

/// Weighted working graph used across levels.
struct Level {
    /// Vertex weights (number of original vertices contracted into each).
    vw: Vec<u64>,
    /// Adjacency with merged edge weights.
    adj: Vec<Vec<(u32, u64)>>,
    /// Mapping from this level's vertices to the coarser level's vertices
    /// (filled when the next level is built).
    to_coarse: Vec<u32>,
}

impl Level {
    fn n(&self) -> usize {
        self.vw.len()
    }
}

impl Partitioner for MultilevelPartitioner {
    fn assign<V: Id, O: Id>(&self, graph: &Csr<V, O>, n_parts: usize) -> Vec<u32> {
        assert!(n_parts > 0);
        let n = graph.n_vertices();
        if n_parts == 1 {
            return vec![0; n];
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Level 0 from the CSR (merge parallel edges).
        let mut levels = vec![level_from_csr(graph)];
        let target = (self.coarse_vertices_per_part * n_parts).max(n_parts * 2);
        loop {
            let cur = levels.last().unwrap();
            if cur.n() <= target {
                break;
            }
            let (coarse, mapping) = coarsen(cur, &mut rng);
            // Stalled coarsening (e.g. a star graph matches almost nothing).
            if coarse.n() as f64 > cur.n() as f64 * 0.95 {
                break;
            }
            levels.last_mut().unwrap().to_coarse = mapping;
            levels.push(coarse);
        }

        // Initial partition on the coarsest level.
        let coarsest = levels.last().unwrap();
        let total_w: u64 = coarsest.vw.iter().sum();
        let budget = (total_w as f64 / n_parts as f64 * (1.0 + self.slack)).ceil() as u64;
        let mut part = grow_regions(coarsest, n_parts, budget, &mut rng);
        refine(coarsest, &mut part, n_parts, budget, self.refine_passes);

        // Project back and refine at each finer level.
        for li in (0..levels.len() - 1).rev() {
            let fine = &levels[li];
            let mut fine_part = vec![0u32; fine.n()];
            for v in 0..fine.n() {
                fine_part[v] = part[fine.to_coarse[v] as usize];
            }
            refine(fine, &mut fine_part, n_parts, budget, self.refine_passes);
            part = fine_part;
        }
        part
    }

    fn name(&self) -> &'static str {
        "metis-like"
    }
}

fn level_from_csr<V: Id, O: Id>(graph: &Csr<V, O>) -> Level {
    let n = graph.n_vertices();
    let adj: Vec<Vec<(u32, u64)>> = (0..n)
        .map(|v| {
            let mut nbrs: Vec<u32> =
                graph.neighbors(V::from_usize(v)).iter().map(|u| u.idx() as u32).collect();
            nbrs.sort_unstable();
            let mut merged: Vec<(u32, u64)> = Vec::with_capacity(nbrs.len());
            for u in nbrs {
                if u as usize == v {
                    continue;
                }
                match merged.last_mut() {
                    Some((lu, w)) if *lu == u => *w += 1,
                    _ => merged.push((u, 1)),
                }
            }
            merged
        })
        .collect();
    Level { vw: vec![1; n], adj, to_coarse: Vec::new() }
}

/// Heavy-edge matching + contraction.
fn coarsen(level: &Level, rng: &mut ChaCha8Rng) -> (Level, Vec<u32>) {
    let n = level.n();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for &v in &order {
        if mate[v] != UNMATCHED {
            continue;
        }
        // heaviest unmatched neighbor
        let mut best: Option<(u32, u64)> = None;
        for &(u, w) in &level.adj[v] {
            if mate[u as usize] == UNMATCHED && u as usize != v && best.is_none_or(|(_, bw)| w > bw)
            {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                mate[v] = u;
                mate[u as usize] = v as u32;
            }
            None => mate[v] = v as u32, // matched with itself
        }
    }

    // Number coarse vertices.
    let mut to_coarse = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n {
        if to_coarse[v] != u32::MAX {
            continue;
        }
        to_coarse[v] = nc;
        let m = mate[v] as usize;
        if m != v {
            to_coarse[m] = nc;
        }
        nc += 1;
    }

    // Contract.
    let mut vw = vec![0u64; nc as usize];
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); nc as usize];
    for v in 0..n {
        let cv = to_coarse[v];
        vw[cv as usize] += level.vw[v];
        for &(u, w) in &level.adj[v] {
            let cu = to_coarse[u as usize];
            if cu != cv {
                adj[cv as usize].push((cu, w));
            }
        }
    }
    for row in &mut adj {
        row.sort_unstable_by_key(|&(u, _)| u);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(row.len());
        for &(u, w) in row.iter() {
            match merged.last_mut() {
                Some((lu, lw)) if *lu == u => *lw += w,
                _ => merged.push((u, w)),
            }
        }
        *row = merged;
    }
    (Level { vw, adj, to_coarse: Vec::new() }, to_coarse)
}

/// Greedy region growing for the initial partition.
fn grow_regions(level: &Level, n_parts: usize, budget: u64, rng: &mut ChaCha8Rng) -> Vec<u32> {
    let n = level.n();
    const FREE: u32 = u32::MAX;
    let mut part = vec![FREE; n];
    let mut load = vec![0u64; n_parts];
    for p in 0..n_parts as u32 {
        // random unassigned seed
        let mut seed = None;
        for _ in 0..8 {
            let v = rng.gen_range(0..n);
            if part[v] == FREE {
                seed = Some(v);
                break;
            }
        }
        let seed = match seed.or_else(|| (0..n).find(|&v| part[v] == FREE)) {
            Some(s) => s,
            None => break,
        };
        let mut queue = std::collections::VecDeque::from([seed]);
        while let Some(v) = queue.pop_front() {
            if part[v] != FREE || load[p as usize] + level.vw[v] > budget {
                continue;
            }
            part[v] = p;
            load[p as usize] += level.vw[v];
            for &(u, _) in &level.adj[v] {
                if part[u as usize] == FREE {
                    queue.push_back(u as usize);
                }
            }
        }
    }
    // leftovers → least-loaded part
    for (v, pv) in part.iter_mut().enumerate() {
        if *pv == FREE {
            let p = (0..n_parts).min_by_key(|&p| load[p]).unwrap();
            *pv = p as u32;
            load[p] += level.vw[v];
        }
    }
    part
}

/// Boundary FM-lite refinement: move boundary vertices to the neighboring
/// part with the highest positive cut gain, respecting the balance budget.
fn refine(level: &Level, part: &mut [u32], n_parts: usize, budget: u64, passes: usize) {
    let n = level.n();
    let mut load = vec![0u64; n_parts];
    for v in 0..n {
        load[part[v] as usize] += level.vw[v];
    }
    let mut conn = vec![0u64; n_parts];
    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let home = part[v] as usize;
            for c in conn.iter_mut() {
                *c = 0;
            }
            let mut boundary = false;
            for &(u, w) in &level.adj[v] {
                let pu = part[u as usize] as usize;
                conn[pu] += w;
                if pu != home {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            let internal = conn[home];
            let best = (0..n_parts)
                .filter(|&p| p != home && load[p] + level.vw[v] <= budget)
                .max_by_key(|&p| conn[p]);
            if let Some(p) = best {
                if conn[p] > internal {
                    part[v] = p as u32;
                    load[home] -= level.vw[v];
                    load[p] += level.vw[v];
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitioner::RandomPartitioner;
    use mgpu_graph::{Coo, GraphBuilder};

    fn two_clusters(k: usize) -> Csr<u32, u64> {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * k as u32;
            for i in 0..k as u32 {
                for j in (i + 1)..k as u32 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, k as u32));
        GraphBuilder::undirected(&Coo::from_edges(2 * k, edges, None))
    }

    fn edge_cut(g: &Csr<u32, u64>, owner: &[u32]) -> usize {
        let mut cut = 0;
        for v in 0..g.n_vertices() {
            for &u in g.neighbors(v as u32) {
                if owner[v] != owner[u as usize] {
                    cut += 1;
                }
            }
        }
        cut / 2
    }

    #[test]
    fn finds_the_natural_two_way_split() {
        let g = two_clusters(24);
        let owner = MultilevelPartitioner::default().assign(&g, 2);
        assert_eq!(edge_cut(&g, &owner), 1, "only the bridge edge should be cut");
    }

    #[test]
    fn beats_random_on_cut() {
        let g = two_clusters(32);
        let ml = MultilevelPartitioner::default().assign(&g, 2);
        let rd = RandomPartitioner::default().assign(&g, 2);
        assert!(edge_cut(&g, &ml) < edge_cut(&g, &rd) / 4);
    }

    #[test]
    fn respects_balance() {
        let g = two_clusters(32);
        let owner = MultilevelPartitioner::default().assign(&g, 4);
        let budget = (64.0 / 4.0 * 1.05f64).ceil() as usize + 1;
        for p in 0..4u32 {
            let load = owner.iter().filter(|&&o| o == p).count();
            assert!(load <= budget, "part {p} load {load} > {budget}");
        }
    }

    #[test]
    fn one_part_is_trivial() {
        let g = two_clusters(8);
        assert!(MultilevelPartitioner::default().assign(&g, 1).iter().all(|&o| o == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = two_clusters(16);
        let p = MultilevelPartitioner::default();
        assert_eq!(p.assign(&g, 3), p.assign(&g, 3));
    }

    #[test]
    fn handles_disconnected_and_isolated_vertices() {
        let coo = Coo::from_edges(10, vec![(0, 1), (2, 3)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let owner = MultilevelPartitioner::default().assign(&g, 2);
        assert_eq!(owner.len(), 10);
        assert!(owner.iter().all(|&o| o < 2));
    }
}
