//! Multi-GPU host graphs: vertex duplication, renumbering, conversion
//! tables and border sets (§III-C).
//!
//! After a 1D edge-cut partition assigns every vertex (with its outgoing
//! edges) to a GPU, each GPU needs local *proxies* for the remote vertices
//! its edges point at, so that "the computation is isolated to local data
//! only". The paper implements two strategies, both reproduced here:
//!
//! * **Duplicate-all** — every GPU's vertex space is the full global space;
//!   remote vertices simply have zero out-edges. No id conversion anywhere
//!   (local id = global id), at the cost of `O(|V|)` per-vertex state on
//!   every GPU.
//! * **Duplicate-1-hop** — each GPU holds only its own vertices plus proxies
//!   for the immediate remote neighbors; "vertices in V_i are renumbered
//!   with continuous IDs" (owned first, then proxies), and conversion tables
//!   translate between spaces.
//!
//! The id convention for communication follows §III-C: *selective* sends
//! carry owner-local ids (the sender resolves each proxy through its
//! conversion table, so the receiver can use the id directly); *broadcast*
//! sends carry global ids (which under duplicate-all are already local ids
//! everywhere, which is why the paper pairs broadcast with duplicate-all).

use std::collections::HashMap;
use std::sync::Arc;

use mgpu_graph::{Coo, Csr, Id};

use crate::partitioner::Partitioner;

/// Vertex-duplication strategy (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Duplication {
    /// A proxy for every remote vertex: `V_i = V`, no id conversion.
    All,
    /// Proxies only for immediate remote neighbors; continuous renumbering.
    OneHop,
}

/// The per-GPU slice of a partitioned graph.
#[derive(Debug)]
pub struct SubGraph<V: Id, O: Id> {
    /// This GPU's id.
    pub gpu: usize,
    /// Total number of GPUs.
    pub n_parts: usize,
    /// Duplication strategy this subgraph was built with.
    pub duplication: Duplication,
    /// Local adjacency over `V_i` (owned vertices carry their out-edges;
    /// proxies have out-degree zero).
    pub csr: Csr<V, O>,
    /// Reverse adjacency (built lazily via [`SubGraph::build_csc`]) for
    /// pull-mode traversal.
    pub csc: Option<Csr<V, O>>,
    /// Number of *owned* vertices `|L_i|`. Under duplicate-1-hop, owned
    /// vertices occupy local ids `0..n_local`. Under duplicate-all, owned
    /// vertices are scattered through the global id space — use
    /// [`SubGraph::is_owned`].
    pub n_local: usize,
    /// Local id → global id (identity under duplicate-all).
    local_to_global: Option<Vec<V>>,
    /// Local id → owning GPU. Under duplicate-all this is the global
    /// partition table (shared); under duplicate-1-hop it is per-subgraph.
    owner_of: OwnerMap<V>,
    /// Local id → owner-local id (what to put on the wire for selective
    /// communication). `None` = identity (duplicate-all).
    owner_local: Option<Vec<V>>,
    /// Global id → local id for broadcast receive under duplicate-1-hop.
    global_to_local: Option<HashMap<V, V>>,
    /// `|B_{i,j}|` for each peer j: the number of distinct remote vertices
    /// owned by j that this GPU's edges point at (outgoing vertex border,
    /// §III-A). `border_out[gpu] == 0`.
    pub border_out: Vec<usize>,
}

#[derive(Debug)]
enum OwnerMap<V> {
    /// Shared global partition table indexed by global (= local) id.
    Global(Arc<Vec<u32>>),
    /// Per-local-id owners (duplicate-1-hop).
    Local(Vec<u32>, std::marker::PhantomData<V>),
}

impl<V: Id, O: Id> SubGraph<V, O> {
    /// Total vertices in the local space `|V_i|` (owned + proxies).
    pub fn n_vertices(&self) -> usize {
        self.csr.n_vertices()
    }

    /// Local edge count `|E_i|`.
    pub fn n_edges(&self) -> usize {
        self.csr.n_edges()
    }

    /// Is local vertex `v` owned (hosted) by this GPU?
    #[inline]
    pub fn is_owned(&self, v: V) -> bool {
        match self.duplication {
            Duplication::All => self.owner(v) as usize == self.gpu,
            Duplication::OneHop => v.idx() < self.n_local,
        }
    }

    /// Owning GPU of local vertex `v`.
    #[inline]
    pub fn owner(&self, v: V) -> u32 {
        match &self.owner_of {
            OwnerMap::Global(t) => t[v.idx()],
            OwnerMap::Local(t, _) => t[v.idx()],
        }
    }

    /// Global id of local vertex `v`.
    #[inline]
    pub fn to_global(&self, v: V) -> V {
        match &self.local_to_global {
            None => v,
            Some(t) => t[v.idx()],
        }
    }

    /// Owner-local id of local vertex `v` — the id to send for selective
    /// communication.
    #[inline]
    pub fn to_owner_local(&self, v: V) -> V {
        match &self.owner_local {
            None => v,
            Some(t) => t[v.idx()],
        }
    }

    /// Resolve a *global* id received via broadcast to a local id, if this
    /// GPU hosts the vertex or a proxy of it.
    #[inline]
    pub fn from_global(&self, g: V) -> Option<V> {
        match &self.global_to_local {
            None => Some(g), // duplicate-all: global ids are local ids
            Some(map) => map.get(&g).copied(),
        }
    }

    /// Total outgoing border size `|B_i|` (union over peers, with
    /// duplication — a vertex bordering two peers counts twice, matching the
    /// paper's definition).
    pub fn border_total(&self) -> usize {
        self.border_out.iter().sum()
    }

    /// Build and cache the reverse (CSC) adjacency for pull traversal.
    pub fn build_csc(&mut self) {
        if self.csc.is_none() {
            self.csc = Some(self.csr.transpose());
        }
    }

    /// Device-memory footprint of the graph topology in bytes (CSR + CSC if
    /// built + conversion tables).
    pub fn topology_bytes(&self) -> u64 {
        let tables = self.local_to_global.as_ref().map_or(0, |t| t.len() * V::BYTES)
            + self.owner_local.as_ref().map_or(0, |t| t.len() * V::BYTES)
            + match &self.owner_of {
                OwnerMap::Global(_) => 0, // shared, counted once host-side
                OwnerMap::Local(t, _) => t.len() * 4,
            };
        self.csr.bytes() + self.csc.as_ref().map_or(0, |c| c.bytes()) + tables as u64
    }
}

/// A graph partitioned across `n_parts` GPUs.
#[derive(Debug)]
pub struct DistGraph<V: Id, O: Id> {
    /// Global vertex count.
    pub n_global: usize,
    /// Global (directed) edge count.
    pub n_global_edges: usize,
    /// Number of parts (GPUs).
    pub n_parts: usize,
    /// Duplication strategy used.
    pub duplication: Duplication,
    /// Global partition table: global id → owning GPU.
    pub partition_table: Arc<Vec<u32>>,
    /// Conversion table: global id → owner-local id (identity under
    /// duplicate-all).
    pub convert: Arc<Vec<V>>,
    /// The per-GPU subgraphs, indexed by GPU id.
    pub parts: Vec<SubGraph<V, O>>,
}

impl<V: Id, O: Id> DistGraph<V, O> {
    /// Partition `graph` with `partitioner` and build host graphs.
    pub fn partition(
        graph: &Csr<V, O>,
        partitioner: &impl Partitioner,
        n_parts: usize,
        duplication: Duplication,
    ) -> Self {
        let owner = partitioner.assign(graph, n_parts);
        Self::build(graph, owner, n_parts, duplication)
    }

    /// Build host graphs from an explicit assignment.
    pub fn build(
        graph: &Csr<V, O>,
        owner: Vec<u32>,
        n_parts: usize,
        duplication: Duplication,
    ) -> Self {
        let n = graph.n_vertices();
        assert_eq!(owner.len(), n, "one owner per vertex");
        assert!(owner.iter().all(|&o| (o as usize) < n_parts), "owner in range");
        let partition_table = Arc::new(owner);
        match duplication {
            Duplication::All => Self::build_dup_all(graph, partition_table, n_parts),
            Duplication::OneHop => Self::build_one_hop(graph, partition_table, n_parts),
        }
    }

    fn build_dup_all(graph: &Csr<V, O>, table: Arc<Vec<u32>>, n_parts: usize) -> Self {
        let n = graph.n_vertices();
        let convert: Arc<Vec<V>> = Arc::new((0..n).map(V::from_usize).collect());
        let mut parts = Vec::with_capacity(n_parts);
        for gpu in 0..n_parts {
            let mut coo = Coo::<V>::new(n);
            let weighted = graph.is_weighted();
            if weighted {
                coo.weights = Some(Vec::new());
            }
            let mut border_seen: Vec<HashMap<V, ()>> =
                (0..n_parts).map(|_| HashMap::new()).collect();
            let mut n_local = 0usize;
            for v in 0..n {
                if table[v] as usize != gpu {
                    continue;
                }
                n_local += 1;
                let vid = V::from_usize(v);
                for e in graph.edge_range(vid) {
                    let d = graph.col_indices()[e];
                    coo.edges.push((vid, d));
                    if let Some(w) = &mut coo.weights {
                        w.push(graph.edge_weight(e));
                    }
                    let od = table[d.idx()] as usize;
                    if od != gpu {
                        border_seen[od].insert(d, ());
                    }
                }
            }
            let border_out = border_seen.iter().map(|s| s.len()).collect();
            parts.push(SubGraph {
                gpu,
                n_parts,
                duplication: Duplication::All,
                csr: Csr::from_coo(&coo),
                csc: None,
                n_local,
                local_to_global: None,
                owner_of: OwnerMap::Global(Arc::clone(&table)),
                owner_local: None,
                global_to_local: None,
                border_out,
            });
        }
        DistGraph {
            n_global: n,
            n_global_edges: graph.n_edges(),
            n_parts,
            duplication: Duplication::All,
            partition_table: table,
            convert,
            parts,
        }
    }

    fn build_one_hop(graph: &Csr<V, O>, table: Arc<Vec<u32>>, n_parts: usize) -> Self {
        let n = graph.n_vertices();
        // Owner-local ids: rank of each vertex among its GPU's owned set,
        // in global-id order ("renumbered with continuous IDs").
        let mut convert = vec![V::zero(); n];
        let mut counts = vec![0usize; n_parts];
        for v in 0..n {
            let p = table[v] as usize;
            convert[v] = V::from_usize(counts[p]);
            counts[p] += 1;
        }
        let convert = Arc::new(convert);

        let mut parts = Vec::with_capacity(n_parts);
        for gpu in 0..n_parts {
            // Collect owned vertices (in global order) and discover proxies.
            let owned: Vec<usize> = (0..n).filter(|&v| table[v] as usize == gpu).collect();
            let n_local = owned.len();
            let mut proxy_of_global: HashMap<V, V> = HashMap::new();
            let mut proxies: Vec<V> = Vec::new();
            for &v in &owned {
                for &d in graph.neighbors(V::from_usize(v)) {
                    if table[d.idx()] as usize != gpu && !proxy_of_global.contains_key(&d) {
                        proxy_of_global.insert(d, V::zero()); // placeholder
                        proxies.push(d);
                    }
                }
            }
            proxies.sort_unstable();
            for (i, &g) in proxies.iter().enumerate() {
                proxy_of_global.insert(g, V::from_usize(n_local + i));
            }

            let n_vi = n_local + proxies.len();
            let mut local_to_global: Vec<V> = Vec::with_capacity(n_vi);
            local_to_global.extend(owned.iter().map(|&v| V::from_usize(v)));
            local_to_global.extend(proxies.iter().copied());

            let mut owner_of: Vec<u32> = Vec::with_capacity(n_vi);
            owner_of.extend(std::iter::repeat_n(gpu as u32, n_local));
            owner_of.extend(proxies.iter().map(|g| table[g.idx()]));

            let mut owner_local: Vec<V> = Vec::with_capacity(n_vi);
            owner_local.extend((0..n_local).map(V::from_usize));
            owner_local.extend(proxies.iter().map(|g| convert[g.idx()]));

            // Remap edges into the local space.
            let mut coo = Coo::<V>::new(n_vi);
            if graph.is_weighted() {
                coo.weights = Some(Vec::new());
            }
            let mut border_seen: Vec<HashMap<V, ()>> =
                (0..n_parts).map(|_| HashMap::new()).collect();
            for (li, &v) in owned.iter().enumerate() {
                let vid = V::from_usize(v);
                for e in graph.edge_range(vid) {
                    let d = graph.col_indices()[e];
                    let dl = if table[d.idx()] as usize == gpu {
                        convert[d.idx()]
                    } else {
                        let od = table[d.idx()] as usize;
                        border_seen[od].insert(d, ());
                        proxy_of_global[&d]
                    };
                    coo.edges.push((V::from_usize(li), dl));
                    if let Some(w) = &mut coo.weights {
                        w.push(graph.edge_weight(e));
                    }
                }
            }

            // global → local for broadcast receive: owned + proxies.
            let mut global_to_local: HashMap<V, V> = proxy_of_global;
            for (li, &v) in owned.iter().enumerate() {
                global_to_local.insert(V::from_usize(v), V::from_usize(li));
            }

            let border_out = border_seen.iter().map(|s| s.len()).collect();
            parts.push(SubGraph {
                gpu,
                n_parts,
                duplication: Duplication::OneHop,
                csr: Csr::from_coo(&coo),
                csc: None,
                n_local,
                local_to_global: Some(local_to_global),
                owner_of: OwnerMap::Local(owner_of, std::marker::PhantomData),
                owner_local: Some(owner_local),
                global_to_local: Some(global_to_local),
                border_out,
            });
        }
        DistGraph {
            n_global: n,
            n_global_edges: graph.n_edges(),
            n_parts,
            duplication: Duplication::OneHop,
            partition_table: table,
            convert,
            parts,
        }
    }

    /// The GPU hosting global vertex `g` and its owner-local id — how a
    /// source vertex is located at reset time (the `Reset` logic in the
    /// paper's Appendix A).
    pub fn locate(&self, g: V) -> (usize, V) {
        (self.partition_table[g.idx()] as usize, self.convert[g.idx()])
    }

    /// Build the reverse adjacency on every part — required before running
    /// pull-mode (direction-optimizing) primitives.
    pub fn build_cscs(&mut self) {
        for p in &mut self.parts {
            p.build_csc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::GraphBuilder;

    /// 6-cycle partitioned in halves: 0,1,2 on GPU0; 3,4,5 on GPU1.
    fn cycle6() -> (Csr<u32, u64>, Vec<u32>) {
        let edges: Vec<(u32, u32)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = GraphBuilder::undirected(&Coo::from_edges(6, edges, None));
        (g, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn dup_all_keeps_global_ids_and_all_vertices() {
        let (g, owner) = cycle6();
        let dg = DistGraph::build(&g, owner, 2, Duplication::All);
        for part in &dg.parts {
            assert_eq!(part.n_vertices(), 6, "duplicate-all forces V_i = V");
            assert_eq!(part.to_global(4), 4, "identity mapping");
            assert_eq!(part.to_owner_local(4), 4);
            assert_eq!(part.from_global(3), Some(3));
        }
        assert_eq!(dg.parts[0].n_local, 3);
        // edges: each GPU holds out-edges of its own 3 vertices only
        assert_eq!(dg.parts[0].n_edges() + dg.parts[1].n_edges(), g.n_edges());
        assert_eq!(dg.parts[0].csr.degree(0), 2);
        assert_eq!(dg.parts[0].csr.degree(4), 0, "remote vertices have no local out-edges");
    }

    #[test]
    fn dup_all_borders_are_cut_endpoints() {
        let (g, owner) = cycle6();
        let dg = DistGraph::build(&g, owner, 2, Duplication::All);
        // GPU0 owns {0,1,2}; its cut edges are 0→5 and 2→3 ⇒ border to GPU1 = {5,3}
        assert_eq!(dg.parts[0].border_out, vec![0, 2]);
        assert_eq!(dg.parts[1].border_out, vec![2, 0]);
        assert_eq!(dg.parts[0].border_total(), 2);
    }

    #[test]
    fn one_hop_renumbers_continuously() {
        let (g, owner) = cycle6();
        let dg = DistGraph::build(&g, owner, 2, Duplication::OneHop);
        let p0 = &dg.parts[0];
        // owned: 0,1,2 → local 0,1,2; proxies 3 and 5 → local 3,4 (global order)
        assert_eq!(p0.n_local, 3);
        assert_eq!(p0.n_vertices(), 5);
        assert_eq!(p0.to_global(0), 0);
        assert_eq!(p0.to_global(3), 3, "first proxy is global 3");
        assert_eq!(p0.to_global(4), 5, "second proxy is global 5");
        assert!(p0.is_owned(2));
        assert!(!p0.is_owned(3));
        assert_eq!(p0.owner(3), 1);
    }

    #[test]
    fn one_hop_owner_local_resolves_proxies() {
        let (g, owner) = cycle6();
        let dg = DistGraph::build(&g, owner, 2, Duplication::OneHop);
        let p0 = &dg.parts[0];
        // global 3 is GPU1's first owned vertex → owner-local 0
        assert_eq!(p0.to_owner_local(3), 0);
        // global 5 is GPU1's third owned vertex → owner-local 2
        assert_eq!(p0.to_owner_local(4), 2);
        // receiving GPU1 can use those ids directly
        let p1 = &dg.parts[1];
        assert_eq!(p1.to_global(0), 3);
        assert_eq!(p1.to_global(2), 5);
    }

    #[test]
    fn one_hop_edges_are_remapped() {
        let (g, owner) = cycle6();
        let dg = DistGraph::build(&g, owner, 2, Duplication::OneHop);
        let p0 = &dg.parts[0];
        // local 0 (global 0) points at global 1 (local 1) and global 5 (proxy local 4)
        let mut nbrs = p0.csr.neighbors(0).to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 4]);
        // proxies carry no out-edges
        assert_eq!(p0.csr.degree(3), 0);
        assert_eq!(p0.csr.degree(4), 0);
    }

    #[test]
    fn one_hop_global_resolution() {
        let (g, owner) = cycle6();
        let dg = DistGraph::build(&g, owner, 2, Duplication::OneHop);
        let p0 = &dg.parts[0];
        assert_eq!(p0.from_global(5), Some(4));
        assert_eq!(p0.from_global(1), Some(1));
        assert_eq!(p0.from_global(4), None, "global 4 has no proxy on GPU0");
    }

    #[test]
    fn locate_finds_host_and_owner_local_id() {
        let (g, owner) = cycle6();
        let dg = DistGraph::build(&g, owner, 2, Duplication::OneHop);
        assert_eq!(dg.locate(4), (1, 1), "global 4 is GPU1's second owned vertex");
        assert_eq!(dg.locate(0), (0, 0));
    }

    #[test]
    fn weights_follow_their_edges() {
        let coo = Coo::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)], Some(vec![1, 2, 3, 4]));
        let g: Csr<u32, u64> = Csr::from_coo(&coo);
        let dg = DistGraph::build(&g, vec![0, 0, 1, 1], 2, Duplication::OneHop);
        let p1 = &dg.parts[1];
        // GPU1 owns globals 2,3 (locals 0,1); edge 2→3 weight 3; 3→0 weight 4
        let w: Vec<(u32, u32)> = p1.csr.neighbors_weighted(0).collect();
        assert_eq!(w, vec![(1, 3)]);
        let w: Vec<(u32, u32)> = p1.csr.neighbors_weighted(1).collect();
        assert_eq!(w[0].1, 4);
    }

    #[test]
    fn csc_builds_reverse_adjacency() {
        let (g, owner) = cycle6();
        let mut dg = DistGraph::build(&g, owner, 2, Duplication::All);
        dg.parts[0].build_csc();
        let csc = dg.parts[0].csc.as_ref().unwrap();
        // reverse of GPU0's edges: who points at global 1? locals 0 and 2
        let mut preds = csc.neighbors(1).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![0, 2]);
    }

    #[test]
    fn single_part_build_is_the_whole_graph() {
        let (g, _) = cycle6();
        let dg = DistGraph::build(&g, vec![0; 6], 1, Duplication::OneHop);
        assert_eq!(dg.parts[0].n_vertices(), 6);
        assert_eq!(dg.parts[0].n_edges(), g.n_edges());
        assert_eq!(dg.parts[0].border_total(), 0);
    }
}
