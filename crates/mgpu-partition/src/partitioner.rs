//! The partitioner interface plus the random and biased-random partitioners.

use mgpu_graph::{Csr, Id};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A 1D edge-cut partitioner: assigns every vertex (and implicitly its
/// outgoing edges) to one of `n_parts` GPUs.
///
/// The paper deliberately leaves the choice modular: "we ensure that the
/// framework and primitives will run correctly regardless of the choice of
/// partitioner" (§V-C). Implementations must return one owner in
/// `0..n_parts` per vertex.
pub trait Partitioner {
    /// Produce the owner of every vertex.
    fn assign<V: Id, O: Id>(&self, graph: &Csr<V, O>, n_parts: usize) -> Vec<u32>;

    /// Human-readable name for reports (e.g. Fig. 2's legend).
    fn name(&self) -> &'static str;
}

/// Uniform random assignment: "captures no graph locality, but … achieves
/// excellent load balancing, and performs fairly well across our tests"
/// (§V-C). The paper's default partitioner for all experiments.
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    /// RNG seed; the partition is deterministic given the seed.
    pub seed: u64,
}

impl Default for RandomPartitioner {
    fn default() -> Self {
        RandomPartitioner { seed: 0x5eed }
    }
}

impl Partitioner for RandomPartitioner {
    fn assign<V: Id, O: Id>(&self, graph: &Csr<V, O>, n_parts: usize) -> Vec<u32> {
        assert!(n_parts > 0);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        (0..graph.n_vertices()).map(|_| rng.gen_range(0..n_parts) as u32).collect()
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Biased random: "like random, but biased toward assigning a vertex to a
/// GPU that contains more of its neighbors" (§V-C) — reduce border size
/// without giving up load balance. Vertices are visited in random order;
/// each is assigned to the part holding most of its already-assigned
/// neighbors, unless that part is over the balance cap, in which case the
/// least-loaded part wins.
#[derive(Debug, Clone, Copy)]
pub struct BiasedRandomPartitioner {
    /// RNG seed.
    pub seed: u64,
    /// Allowed imbalance: a part may hold at most `(1 + slack) · |V|/n`
    /// vertices. The paper wants the bias "without affecting the load
    /// balancing too much".
    pub slack: f64,
}

impl Default for BiasedRandomPartitioner {
    fn default() -> Self {
        BiasedRandomPartitioner { seed: 0x5eed, slack: 0.05 }
    }
}

impl Partitioner for BiasedRandomPartitioner {
    fn assign<V: Id, O: Id>(&self, graph: &Csr<V, O>, n_parts: usize) -> Vec<u32> {
        assert!(n_parts > 0);
        let n = graph.n_vertices();
        let cap = (((n as f64 / n_parts as f64) * (1.0 + self.slack)).ceil() as usize).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        // Fisher-Yates shuffle for a random visit order.
        for i in (1..n).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        const UNASSIGNED: u32 = u32::MAX;
        let mut owner = vec![UNASSIGNED; n];
        let mut load = vec![0usize; n_parts];
        let mut votes = vec![0u32; n_parts];
        for &v in &order {
            for p in votes.iter_mut() {
                *p = 0;
            }
            for &u in graph.neighbors(V::from_usize(v)) {
                let o = owner[u.idx()];
                if o != UNASSIGNED {
                    votes[o as usize] += 1;
                }
            }
            let biased =
                (0..n_parts).filter(|&p| load[p] < cap && votes[p] > 0).max_by_key(|&p| votes[p]);
            let part = match biased {
                Some(p) => p,
                None => {
                    // No informative neighbors (or all preferred parts full):
                    // fall back to the least-loaded part, breaking ties
                    // randomly. Using load rather than a uniform draw keeps
                    // seeds of distinct clusters apart, which is what gives
                    // the bias something to snowball from.
                    let min_load = load.iter().copied().min().unwrap();
                    let candidates: Vec<usize> =
                        (0..n_parts).filter(|&p| load[p] == min_load).collect();
                    candidates[rng.gen_range(0..candidates.len())]
                }
            };
            owner[v] = part as u32;
            load[part] += 1;
        }
        owner
    }

    fn name(&self) -> &'static str {
        "biased-random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{Coo, GraphBuilder};

    fn clustered_graph() -> Csr<u32, u64> {
        // two dense clusters joined by one edge: locality to exploit
        let mut edges = Vec::new();
        for i in 0..16u32 {
            for j in 0..16u32 {
                if i != j {
                    edges.push((i, j));
                    edges.push((16 + i, 16 + j));
                }
            }
        }
        edges.push((0, 16));
        GraphBuilder::undirected(&Coo::from_edges(32, edges, None))
    }

    #[test]
    fn random_assigns_every_vertex_in_range() {
        let g = clustered_graph();
        let owner = RandomPartitioner::default().assign(&g, 4);
        assert_eq!(owner.len(), 32);
        assert!(owner.iter().all(|&o| o < 4));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let g = clustered_graph();
        let a = RandomPartitioner { seed: 7 }.assign(&g, 3);
        let b = RandomPartitioner { seed: 7 }.assign(&g, 3);
        let c = RandomPartitioner { seed: 8 }.assign(&g, 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn biased_respects_balance_cap() {
        let g = clustered_graph();
        let part = BiasedRandomPartitioner { seed: 1, slack: 0.05 };
        let owner = part.assign(&g, 2);
        let cap = ((32.0 / 2.0) * 1.05f64).ceil() as usize;
        for p in 0..2u32 {
            let load = owner.iter().filter(|&&o| o == p).count();
            assert!(load <= cap, "part {p} holds {load} > cap {cap}");
        }
    }

    #[test]
    fn biased_cuts_fewer_edges_than_random_on_clustered_graph() {
        let g = clustered_graph();
        let cut = |owner: &[u32]| {
            let mut cut = 0usize;
            for v in 0..g.n_vertices() {
                for &u in g.neighbors(v as u32) {
                    if owner[v] != owner[u as usize] {
                        cut += 1;
                    }
                }
            }
            cut
        };
        let r = cut(&RandomPartitioner { seed: 3 }.assign(&g, 2));
        let b = cut(&BiasedRandomPartitioner { seed: 3, slack: 0.1 }.assign(&g, 2));
        assert!(b < r, "biased cut {b} should beat random cut {r}");
    }

    #[test]
    fn single_part_puts_everything_on_part_zero() {
        let g = clustered_graph();
        let owner = BiasedRandomPartitioner::default().assign(&g, 1);
        assert!(owner.iter().all(|&o| o == 0));
    }
}

/// Contiguous chunks: vertex `v` goes to part `v·n/|V|`. Zero partitioning
/// cost and perfect vertex balance; exploits whatever locality the input
/// ordering carries (web crawls are crawl-ordered, so this does well there
/// and poorly on randomized orderings). Gunrock ships the same "chunked"
/// option.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkedPartitioner;

impl Partitioner for ChunkedPartitioner {
    fn assign<V: Id, O: Id>(&self, graph: &Csr<V, O>, n_parts: usize) -> Vec<u32> {
        assert!(n_parts > 0);
        let n = graph.n_vertices().max(1);
        (0..graph.n_vertices()).map(|v| ((v * n_parts) / n).min(n_parts - 1) as u32).collect()
    }

    fn name(&self) -> &'static str {
        "chunked"
    }
}

#[cfg(test)]
mod chunked_tests {
    use super::*;
    use crate::metrics::PartitionQuality;
    use mgpu_graph::{Coo, GraphBuilder};

    #[test]
    fn chunks_are_contiguous_and_balanced() {
        let coo = Coo::<u32>::from_edges(10, vec![(0, 9)], None);
        let g: mgpu_graph::Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let owner = ChunkedPartitioner.assign(&g, 3);
        assert_eq!(owner, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn beats_random_on_an_ordered_path() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let g: mgpu_graph::Csr<u32, u64> =
            GraphBuilder::undirected(&Coo::from_edges(100, edges, None));
        let qc = PartitionQuality::measure(&g, &ChunkedPartitioner.assign(&g, 4), 4);
        let qr = PartitionQuality::measure(&g, &RandomPartitioner { seed: 1 }.assign(&g, 4), 4);
        assert!(qc.edge_cut < qr.edge_cut / 5, "chunked {} vs random {}", qc.edge_cut, qr.edge_cut);
        assert_eq!(qc.edge_cut, 6, "a path cut at 3 boundaries, both directions");
    }

    #[test]
    fn single_part_and_tiny_graphs() {
        let g: mgpu_graph::Csr<u32, u64> = mgpu_graph::Csr::empty(2);
        assert_eq!(ChunkedPartitioner.assign(&g, 1), vec![0, 0]);
        assert_eq!(ChunkedPartitioner.assign(&g, 5), vec![0, 2]);
    }
}
