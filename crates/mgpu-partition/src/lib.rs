//! # mgpu-partition — partitioners and multi-GPU host graphs
//!
//! The paper treats the partitioner as a pluggable pre-processing stage
//! (§III, design decision 3; §V-C): vertices are distributed to GPUs together
//! with their outgoing edges (an *edge-cut* 1D partition), and the framework
//! must "run correctly regardless of the choice of partitioner". Three
//! partitioners are evaluated (Fig. 2):
//!
//! * [`RandomPartitioner`] — uniform random assignment: no locality, but
//!   excellent load balance; the paper's default for all experiments.
//! * [`BiasedRandomPartitioner`] — biased toward the GPU already holding
//!   more of a vertex's neighbors, under a balance cap.
//! * [`MultilevelPartitioner`] — a from-scratch Metis-style multilevel
//!   partitioner: heavy-edge-matching coarsening, greedy region-growing
//!   initial partition, boundary refinement.
//!
//! [`DistGraph::build`] then constructs the per-GPU host graphs under either
//! vertex-duplication strategy of §III-C:
//!
//! * [`Duplication::All`] — every GPU's vertex space is the full `V` (remote
//!   vertices have zero out-edges); no id conversion needed.
//! * [`Duplication::OneHop`] — only immediate remote neighbors get local
//!   proxies; vertices are renumbered with continuous local ids, and
//!   conversion tables map between spaces.
//!
//! The border sets `B_{i,j}` — whose size, not the edge cut, is what
//! actually drives communication volume in this system (§V-C) — are
//! computed at build time and exposed for the Fig. 2 analysis.

pub mod dist;
pub mod metrics;
pub mod multilevel;
pub mod partitioner;

pub use dist::{DistGraph, Duplication, SubGraph};
pub use metrics::PartitionQuality;
pub use multilevel::MultilevelPartitioner;
pub use partitioner::{BiasedRandomPartitioner, ChunkedPartitioner, Partitioner, RandomPartitioner};
