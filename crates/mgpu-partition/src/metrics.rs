//! Partition quality metrics: edge cut vs border size (§V-C).
//!
//! "Most partitioners attempt to minimize the number of edges cut across
//! partitions. However, in our system, it is instead the size of partition
//! borders (B_i …) that is most important to our performance" — because the
//! framework communicates *per-vertex* values, and multiple cut edges to the
//! same remote vertex transmit one value. These metrics let the Fig. 2
//! experiment report both objectives side by side.

use std::collections::HashSet;

use mgpu_graph::{Csr, Id};

/// Quality measures of a 1D vertex assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Number of parts.
    pub n_parts: usize,
    /// Directed edges whose endpoints live on different parts.
    pub edge_cut: usize,
    /// Per-part outgoing border size `|B_i|` (distinct remote neighbors,
    /// counted once per (part, peer) pair, per the paper's union-with-
    /// duplication definition).
    pub border: Vec<usize>,
    /// Per-part owned vertex count `|L_i|`.
    pub vertices: Vec<usize>,
    /// Per-part local edge count `|E_i|`.
    pub edges: Vec<usize>,
}

impl PartitionQuality {
    /// Measure an assignment.
    pub fn measure<V: Id, O: Id>(graph: &Csr<V, O>, owner: &[u32], n_parts: usize) -> Self {
        assert_eq!(owner.len(), graph.n_vertices());
        let mut edge_cut = 0usize;
        let mut vertices = vec![0usize; n_parts];
        let mut edges = vec![0usize; n_parts];
        // distinct (src_part, dst_part, dst_vertex)
        let mut border_sets: Vec<Vec<HashSet<V>>> =
            (0..n_parts).map(|_| (0..n_parts).map(|_| HashSet::new()).collect()).collect();
        for v in 0..graph.n_vertices() {
            let pv = owner[v] as usize;
            vertices[pv] += 1;
            let vid = V::from_usize(v);
            edges[pv] += graph.degree(vid);
            for &u in graph.neighbors(vid) {
                let pu = owner[u.idx()] as usize;
                if pu != pv {
                    edge_cut += 1;
                    border_sets[pv][pu].insert(u);
                }
            }
        }
        let border =
            border_sets.iter().map(|per_peer| per_peer.iter().map(HashSet::len).sum()).collect();
        PartitionQuality { n_parts, edge_cut, border, vertices, edges }
    }

    /// Max border over parts — the paper's scalability-relevant objective.
    pub fn max_border(&self) -> usize {
        self.border.iter().copied().max().unwrap_or(0)
    }

    /// Vertex load imbalance: `max |L_i| / (|V| / n)`.
    pub fn vertex_imbalance(&self) -> f64 {
        let total: usize = self.vertices.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.n_parts as f64;
        self.vertices.iter().copied().max().unwrap_or(0) as f64 / ideal
    }

    /// Edge load imbalance: `max |E_i| / (|E| / n)` — what actually
    /// determines per-iteration compute balance (W ∈ O(|E_i|)).
    pub fn edge_imbalance(&self) -> f64 {
        let total: usize = self.edges.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.n_parts as f64;
        self.edges.iter().copied().max().unwrap_or(0) as f64 / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{Coo, GraphBuilder};

    fn cycle(n: usize) -> Csr<u32, u64> {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        GraphBuilder::undirected(&Coo::from_edges(n, edges, None))
    }

    #[test]
    fn contiguous_halves_of_a_cycle_cut_four_directed_edges() {
        let g = cycle(8);
        let owner = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let q = PartitionQuality::measure(&g, &owner, 2);
        assert_eq!(q.edge_cut, 4, "two undirected cut edges, counted per direction");
        assert_eq!(q.border, vec![2, 2]);
        assert_eq!(q.vertices, vec![4, 4]);
        assert!((q.vertex_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn border_counts_distinct_vertices_not_edges() {
        // star: hub 0 on part 0; leaves on part 1 all point at the hub
        let mut coo = Coo::<u32>::new(5);
        for leaf in 1..5u32 {
            coo.push(leaf, 0);
        }
        let g: Csr<u32, u64> = GraphBuilder::build(&coo, mgpu_graph::BuildOptions::raw());
        let q = PartitionQuality::measure(&g, &[0, 1, 1, 1, 1], 2);
        assert_eq!(q.edge_cut, 4, "four cut edges");
        assert_eq!(q.border[1], 1, "but only one border vertex — the paper's point in §V-C");
    }

    #[test]
    fn imbalance_detects_skew() {
        let g = cycle(8);
        let owner = vec![0, 0, 0, 0, 0, 0, 1, 1];
        let q = PartitionQuality::measure(&g, &owner, 2);
        assert!((q.vertex_imbalance() - 1.5).abs() < 1e-12);
        assert!(q.edge_imbalance() > 1.0);
    }
}
