//! Fig. 3 — memory consumption of the four allocation schemes.
//!
//! BFS on the kron / soc-orkut / uk-2002 analogs under just-enough, fixed,
//! max and prealloc+fusion allocation; reports the peak per-GPU device
//! memory. The paper's shape: max ≫ fixed > just-enough ≥ prealloc+fusion,
//! with near-identical computation times across schemes.

use mgpu_bench::{BenchArgs, Primitive, Table};
use mgpu_bench::fmt::fmt_bytes;
use mgpu_core::{AllocScheme, EnactConfig};
use mgpu_gen::Dataset;
use mgpu_partition::RandomPartitioner;
use vgpu::{HardwareProfile, SimSystem};

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 3 reproduction — BFS peak memory per GPU under 4 allocation schemes (4 GPUs)\n");
    let schemes = [
        AllocScheme::JustEnough,
        AllocScheme::Fixed { sizing_factor: 3.0 },
        AllocScheme::Max,
        AllocScheme::PreallocFusion { sizing_factor: 3.0 },
    ];
    let mut t =
        Table::new(&["dataset", "scheme", "peak mem/GPU", "reallocs", "sim time", "relative mem"]);
    for ds in Dataset::figure_trio() {
        let g = ds.build_undirected(args.shift, args.seed);
        let mut base_mem = 0u64;
        for scheme in schemes {
            let sys = SimSystem::homogeneous(4, HardwareProfile::k40());
            let config = EnactConfig { alloc_scheme: Some(scheme), ..Default::default() };
            let out = mgpu_bench::run_primitive(
                Primitive::Bfs,
                &g,
                sys,
                &RandomPartitioner { seed: args.seed },
                config,
            )
            .expect("run");
            let mem = out.report.peak_memory_per_device;
            if scheme == AllocScheme::JustEnough {
                base_mem = mem;
            }
            t.row(&[
                ds.name.to_string(),
                scheme.label().to_string(),
                fmt_bytes(mem),
                format!("{}", out.report.pool_reallocs),
                format!("{:.2} ms", out.report.sim_time_us / 1e3),
                format!("{:.2}x", mem as f64 / base_mem as f64),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper shape (Fig. 3, K40 12 GB): just-enough uses the least memory, enabling larger\n\
         subgraphs per GPU; max allocation can exceed device capacity; computation times are\n\
         near-identical across schemes."
    );
}
