//! §V-A — communication-volume and latency sensitivity.
//!
//! Artificially inflates H by {1, 2, 4, 8}× on a 4-GPU rmat run of BFS,
//! DOBFS and PR. The paper finds runtime varies linearly with H, DOBFS is
//! the most sensitive (its W and H are both ~O(|V|)), and a 10× latency
//! increase shows "no appreciable difference".

use mgpu_bench::{BenchArgs, Primitive, Table};
use mgpu_core::EnactConfig;
use mgpu_gen::{rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::RandomPartitioner;
use vgpu::{HardwareProfile, Interconnect, SimSystem};

fn run(
    prim: Primitive,
    g: &Csr<u32, u64>,
    h_multiplier: f64,
    extra_latency_us: f64,
    seed: u64,
) -> f64 {
    let mut ic = Interconnect::pcie3(4, 4);
    ic.h_multiplier = h_multiplier;
    ic.extra_latency_us = extra_latency_us;
    let sys = SimSystem::new(vec![HardwareProfile::k40(); 4], ic).unwrap();
    mgpu_bench::run_primitive(prim, g, sys, &RandomPartitioner { seed }, EnactConfig::default())
        .expect("run")
        .report
        .sim_time_us
}

fn main() {
    let args = BenchArgs::parse();
    // This experiment needs bandwidth-dominated transfers (MB-scale
    // packages, as on the paper's billion-edge graphs), so it scales down
    // less aggressively than the others.
    let scale = 24u32.saturating_sub(args.shift).max(14);
    let g: Csr<u32, u64> =
        GraphBuilder::undirected(&rmat(scale, 32, RmatParams::paper(), args.seed));
    println!(
        "Sec. V-A reproduction — H sensitivity, rmat 2^{scale}/32, 4 GPUs (runtime, normalized to H=1x)\n"
    );

    let mut t = Table::new(&["primitive", "H=1x", "H=2x", "H=4x", "H=8x", "latency 10x"]);
    for prim in [Primitive::Bfs, Primitive::Dobfs, Primitive::Pr] {
        let base = run(prim, &g, 1.0, 0.0, args.seed);
        let h2 = run(prim, &g, 2.0, 0.0, args.seed);
        let h4 = run(prim, &g, 4.0, 0.0, args.seed);
        let h8 = run(prim, &g, 8.0, 0.0, args.seed);
        // 10× latency = 9 extra one-way latencies on the peer link (7.5 µs)
        let lat = run(prim, &g, 1.0, 9.0 * 7.5, args.seed);
        t.row(&[
            prim.name().to_string(),
            "1.00".into(),
            format!("{:.2}", h2 / base),
            format!("{:.2}", h4 / base),
            format!("{:.2}", h8 / base),
            format!("{:.2}", lat / base),
        ]);
    }
    t.print();
    println!(
        "\nShapes to check: runtime grows ~linearly in H; DOBFS grows fastest (W≈H≈O(|V|));\n\
         the latency column stays ≈1.00 (\"no appreciable difference\")."
    );
}
