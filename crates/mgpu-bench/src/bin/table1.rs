//! Table I — measured BSP cost counters against the analytic orders.
//!
//! Runs every primitive on an rmat analog over 4 virtual GPUs and prints
//! the measured W (primitive computation items), C (communication-
//! computation items), H (vertices transmitted) and S (supersteps), next to
//! the paper's analytic expressions. A ✓ marks counters consistent with
//! the analytic order (within small constant factors).

use mgpu_bench::{run_on_k, BenchArgs, Primitive, Table};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::{rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::RandomPartitioner;
use vgpu::HardwareProfile;

fn main() {
    let args = BenchArgs::parse();
    let scale = 18u32.saturating_sub(args.shift).max(8);
    let mut coo = rmat(scale, 16, RmatParams::paper(), args.seed);
    add_paper_weights(&mut coo, args.seed + 1);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let n_gpus = 4usize;
    let v = g.n_vertices() as f64;
    let e = g.n_edges() as f64;
    println!(
        "Table I reproduction — rmat scale {scale}, |V|={}, |E|={}, {} GPUs\n",
        g.n_vertices(),
        g.n_edges(),
        n_gpus
    );

    let analytic = |p: Primitive| -> (&'static str, &'static str, &'static str, &'static str) {
        match p {
            Primitive::Bfs => ("O(|Ei|)", "O(|Vi|)", "O(|Bi|)", "~D/2"),
            Primitive::Dobfs => ("O(a·|Ei|)", "O((n-1)|V|)", "O((n-1)|V|)", "~D/2"),
            Primitive::Sssp => ("O(b·|Ei|)", "O(b·|Vi|)", "O(2b·|Bi|)", "~b·D/2"),
            Primitive::Bc => ("O(2|Ei|)", "O(2|Vi|+|V|)", "O(5|Bi|+2(n-1)|Li|)", "~D/2"),
            Primitive::Cc => ("log(D/2)·O(|Ei|)", "S·O(|Vi|)", "S·O(2|Vi|)", "2-5"),
            Primitive::Pr => ("S·O(|Ei|)", "S·O(|Bi|)", "S·O(|Bi|)", "data-dep"),
        }
    };

    let mut t = Table::new(&[
        "primitive",
        "analytic W",
        "W meas",
        "analytic C",
        "C meas",
        "analytic H",
        "H meas (vtx)",
        "analytic S",
        "S meas",
        "order ok",
    ]);
    for prim in [
        Primitive::Bfs,
        Primitive::Dobfs,
        Primitive::Sssp,
        Primitive::Bc,
        Primitive::Cc,
        Primitive::Pr,
    ] {
        let out = run_on_k(prim, &g, n_gpus, HardwareProfile::k40(), &RandomPartitioner::default())
            .expect("run");
        let c = &out.report.totals;
        let (aw, ac, ah, as_) = analytic(prim);
        let s = out.report.iterations as f64;
        // Qualitative order checks (generous constant factors).
        let ok = match prim {
            Primitive::Bfs => {
                // selective H is bounded by the summed borders Σ|B_i|,
                // itself at most (n-1)·|V| with duplication across peers
                (c.w_items as f64) < 8.0 * e && (c.h_vertices as f64) < (n_gpus as f64 - 1.0) * v
            }
            Primitive::Dobfs => {
                (c.w_items as f64) < 4.0 * e
                    && (c.h_vertices as f64) < 2.0 * (n_gpus as f64 - 1.0) * v
            }
            Primitive::Sssp => (c.w_items as f64) < 40.0 * e,
            Primitive::Bc => (c.w_items as f64) < 16.0 * e,
            Primitive::Cc => out.report.iterations <= 6,
            Primitive::Pr => (c.w_items as f64) < 2.0 * s * e,
        };
        t.row(&[
            prim.name().to_string(),
            aw.to_string(),
            format!("{:.2}|E| tot", c.w_items as f64 / e),
            ac.to_string(),
            format!("{:.2}|V| tot", c.c_items as f64 / v),
            ah.to_string(),
            format!("{:.2}|V| tot", c.h_vertices as f64 / v),
            as_.to_string(),
            format!("{}", out.report.iterations),
            if ok { "✓".into() } else { "✗".into() },
        ]);
    }
    t.print();
    println!("\nW/C/H normalized by the global |E| or |V|; 'tot' = summed over the {n_gpus} GPUs.");
}
