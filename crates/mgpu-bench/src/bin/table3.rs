//! Table III — comparison with previous in-core GPU BFS work.
//!
//! Each row pairs a paper-reported reference result with (a) our framework
//! primitive on the same dataset analog and (b) where the reference
//! system's *mechanism* is re-implemented in `mgpu-baselines`, that
//! baseline measured on the same substrate — so the ratio compares
//! mechanisms under one cost model. Cluster-based references run their
//! baseline on the slower inter-node fabric.

use mgpu_bench::fmt::fmt_us;
use mgpu_bench::runners::{run_scaled, scaled_system};
use mgpu_bench::{pick_source, BenchArgs, Primitive, Table};
use mgpu_baselines::{Bfs2d, HardwiredDobfs};
use mgpu_gen::Dataset;
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication, RandomPartitioner};
use vgpu::{HardwareProfile, Interconnect, SimSystem};

fn graph(name: &str, shift: u32, seed: u64) -> Csr<u32, u64> {
    GraphBuilder::undirected(&Dataset::by_name(name).expect(name).generate(shift, seed))
}

fn main() {
    let args = BenchArgs::parse();
    let part = RandomPartitioner { seed: args.seed };
    println!(
        "Table III reproduction — vs previous in-core GPU BFS (analogs at shift {})\n",
        args.shift
    );
    let mut t = Table::new(&[
        "graph",
        "reference",
        "ref hw",
        "ref perf (paper)",
        "baseline here",
        "ours",
        "ours vs baseline",
    ]);

    // --- Enterprise (Liu & Huang): hardwired DOBFS, {2,4} GPUs ---
    let kron = graph("kron_n24_32", args.shift, args.seed);
    for n in [2usize, 4] {
        let owner: Vec<u32> = (0..kron.n_vertices()).map(|v| (v % n) as u32).collect();
        let mut dist = DistGraph::build(&kron, owner, n, Duplication::All);
        dist.build_cscs();
        let mut sys = scaled_system(n, HardwareProfile::k40(), args.shift);
        let (hw, _) =
            HardwiredDobfs::default().run(&mut sys, &dist, pick_source(&kron)).expect("hardwired");
        let ours =
            run_scaled(Primitive::Dobfs, &kron, n, HardwareProfile::k40(), &part, args.shift)
                .unwrap();
        let ref_perf = if n == 2 { "15 GTEPS" } else { "18 GTEPS" };
        t.row(&[
            "kron_n24_32".into(),
            "Enterprise".into(),
            format!("{n}xK40"),
            ref_perf.into(),
            format!("{:.2} GTEPS", hw.gteps(kron.n_edges())),
            format!("{:.2} GTEPS", ours.gteps()),
            format!(
                "{:.2}x (paper: {})",
                ours.gteps() / hw.gteps(kron.n_edges()),
                if n == 2 { "5.18x" } else { "3.76x" }
            ),
        ]);
    }

    // --- B40C (Merrill): expand-contract BFS without DO, 4 GPUs ---
    let rm = graph("rmat_2Mv_128Me", args.shift, args.seed);
    let ours_do =
        run_scaled(Primitive::Dobfs, &rm, 4, HardwareProfile::k40(), &part, args.shift).unwrap();
    let ours_bfs =
        run_scaled(Primitive::Bfs, &rm, 4, HardwareProfile::k40(), &part, args.shift).unwrap();
    t.row(&[
        "rmat_2Mv_128Me".into(),
        "B40C (Merrill)".into(),
        "4xK40".into(),
        "11.2 GTEPS".into(),
        format!("{:.2} GTEPS (our plain BFS)", ours_bfs.gteps()),
        format!("{:.2} GTEPS (DOBFS)", ours_do.gteps()),
        format!("{:.2}x (paper: 2.67x)", ours_do.gteps() / ours_bfs.gteps()),
    ]);

    // --- 2D-partitioned cluster BFS (Fu; Bisson; Bernaschi analogs) ---
    for (name, reference, refhw, refperf, paper_ratio) in [
        ("kron_n23_32", "Fu et al. (2D)", "2xK20 x2 nodes", "6.3 GTEPS", "4.43x"),
        ("kron_n25_32", "Fu et al. (2D)", "2xK20 x32 nodes", "22.7 GTEPS", "1.41x"),
        ("kron_n23_16", "Bernaschi (2D)", "1xK20X x4 nodes", "~1.3 GTEPS", "23.7x"),
        ("kron_n25_16", "Bernaschi (2D)", "1xK20X x16 nodes", "~3.2 GTEPS", "9.69x"),
    ] {
        let g = graph(name, args.shift, args.seed);
        // the 2D mechanism on a cluster fabric
        let engine = Bfs2d::for_gpus(4);
        let scale = (1u64 << args.shift) as f64;
        let mut sys = SimSystem::new(
            vec![HardwareProfile::k40().with_overhead_scale(scale); 4],
            Interconnect::cluster(4).with_latency_scale(scale),
        )
        .unwrap();
        let (b2d, _) = engine.run(&mut sys, &g, pick_source(&g)).expect("2d bfs");
        let ours =
            run_scaled(Primitive::Dobfs, &g, 4, HardwareProfile::k40(), &part, args.shift).unwrap();
        t.row(&[
            name.into(),
            reference.into(),
            refhw.into(),
            refperf.into(),
            format!("{:.2} GTEPS", b2d.gteps(g.n_edges())),
            format!("{:.2} GTEPS", ours.gteps()),
            format!("{:.2}x (paper: {paper_ratio})", ours.gteps() / b2d.gteps(g.n_edges())),
        ]);
    }

    // --- Bisson twitter-scale, time-based row (Bebee) ---
    let tw = graph("twitter-mpi", args.shift, args.seed);
    let ours =
        run_scaled(Primitive::Dobfs, &tw, 3, HardwareProfile::k40(), &part, args.shift).unwrap();
    t.row(&[
        "twitter-mpi".into(),
        "Bebee (Blazegraph)".into(),
        "1xK40 x16 nodes".into(),
        "224.2 ms".into(),
        "-".into(),
        fmt_us(ours.report.sim_time_us),
        "(paper: 2.38x)".into(),
    ]);

    t.print();
    println!(
        "\nAbsolute GTEPS shrink with the analog scale (smaller graphs are overhead-bound);\n\
         the mechanism ratios in the last column are the comparable quantity."
    );
}
