//! Wall-clock kernel benchmark — the host-side cost of the cache-conscious
//! backend, measured for real (no simulated clocks).
//!
//! Five benches, each pitting the legacy kernel shape (replicated in this
//! binary exactly as the old operators ran it) against the current one:
//!
//! * `backward_maintenance` — the per-superstep unvisited-set work of the
//!   DOBFS backward pass in its dense regime, at a fixed 2M-vertex universe
//!   (shift-independent, so the memory traffic is real): the legacy sorted
//!   `Vec<usize>` (filter into a fresh vec, re-materialize `Vec<V>`, then
//!   iterate) vs the bitmap [`Frontier`]'s fused `retain_visit`. This row
//!   deliberately measures the bitmap's *worst* case — trivial per-vertex
//!   work, where sequential vec streaming is bandwidth-competitive with
//!   bit decode on a host CPU — so the gate pins the known tradeoff (the
//!   bitmap buys a 64x footprint reduction, not wall clock, here).
//! * `record_intermediate` — the per-superstep intermediate-frontier
//!   residency recording: the legacy `clear()` + full refill vs the
//!   length-only resize `FrontierBufs` does now.
//! * `dobfs_backward` — the backward pass end to end (maintenance + pull)
//!   on the rmat analog; pull scans dominate here, so this row mostly
//!   checks the bitmap never *loses*.
//! * `advance` — push-advance emission with the legacy 4096-edge chunk
//!   target and fresh per-chunk `Vec`s vs cache-blocked chunks
//!   (`par::cache_block_items`) with arena-leased buffers.
//! * `csr_width` — the same advance over `Csr<u32, u64>` vs `Csr<u32, u32>`
//!   offsets (the Table V experiment, wall-clock edition).
//!
//! Every arm computes a checksum and the binary aborts if legacy and
//! optimized disagree — a speedup that changes results is a bug, not a win.
//!
//! With `--json-out FILE` the rows are written as JSON; with `--baseline
//! FILE` the measured speedups are gated against the committed baseline
//! (failing only on drops past tolerance or below the floor — wall clocks
//! are noisy, so the tolerance is wide where the sim gates are tight).

use std::fmt::Write as _;
use std::time::Instant;

use mgpu_bench::{BenchArgs, Table};
use mgpu_core::{Frontier, FrontierMode};
use mgpu_gen::Dataset;
use mgpu_graph::{Csr, GraphBuilder, Id};
use vgpu::{par, Arena};

const INF: u32 = u32::MAX;
/// Independent timing repetitions; the minimum is reported (standard
/// practice for wall-clock microbenches — the minimum is the least noisy
/// estimator of the true cost).
const REPS: usize = 3;
/// Supersteps per advance measurement, enough for arena reuse to reach
/// steady state.
const ADVANCE_SUPERSTEPS: usize = 12;

struct Row {
    bench: &'static str,
    base_ms: f64,
    opt_ms: f64,
    speedup: f64,
    note: String,
}

/// Min-of-reps wall time of `work`, in milliseconds.
fn time_ms(mut work: impl FnMut() -> u64, expect: u64, label: &str) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        let got = work();
        let el = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(got, expect, "{label}: checksum diverged between reps");
        best = best.min(el);
    }
    best
}

/// Universe for the shift-independent maintenance/recording benches: big
/// enough that the working sets live in memory, not cache.
const MAINT_N: usize = 1 << 21;
const MAINT_ROUNDS: u32 = 8;

/// Synthetic discovery labels: vertex `v` is discovered at superstep
/// `labels[v]` (uniform over rounds). The maintenance predicate reads this
/// array exactly like the real backward pass reads its depth labels.
fn maint_labels() -> Vec<u32> {
    (0..MAINT_N)
        .map(|v| {
            (((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % MAINT_ROUNDS as u64) as u32
        })
        .collect()
}

/// Legacy unvisited-set maintenance: one filter into a fresh `Vec<usize>`,
/// one `Vec<V>` materialization, one iteration per superstep — the exact
/// shape the old backward pass ran between pulls.
#[allow(clippy::manual_retain)] // deliberately replicates the legacy shape
fn maintenance_legacy(labels: &[u32]) -> u64 {
    let mut unvisited: Vec<usize> = (0..MAINT_N).collect();
    let mut acc = 0u64;
    for r in 0..MAINT_ROUNDS {
        unvisited = unvisited.into_iter().filter(|&v| labels[v] > r).collect();
        let as_ids: Vec<u32> = unvisited.iter().map(|&v| v as u32).collect();
        for &v in &as_ids {
            acc = acc.wrapping_add(v as u64);
        }
    }
    acc
}

/// Current maintenance: fused in-place bitmap shrink + traversal — one
/// decode pass per superstep where the legacy shape streams three vectors.
fn maintenance_frontier(labels: &[u32]) -> u64 {
    let mut fr: Frontier<u32> = Frontier::from_fn(MAINT_N, FrontierMode::Auto, |_| true);
    let mut acc = 0u64;
    for r in 0..MAINT_ROUNDS {
        fr.retain_visit(|v: u32| labels[v.idx()] > r, |v: u32| acc = acc.wrapping_add(v as u64));
    }
    acc
}

/// Intermediate-frontier lengths over a superstep sequence: ramp up, decay.
fn intermediate_lens() -> Vec<usize> {
    (0..ADVANCE_SUPERSTEPS)
        .map(|s| if s < 3 { MAINT_N >> (3 - s) } else { MAINT_N >> (s - 2).min(4) })
        .collect()
}

/// Legacy `record_intermediate`: clear + resize refills the whole buffer
/// with zeros every superstep.
fn record_legacy(lens: &[usize]) -> u64 {
    let mut buf: Vec<u32> = Vec::new();
    let mut acc = 0u64;
    for &len in lens {
        buf.clear();
        buf.resize(len, 0);
        acc = acc.wrapping_add(buf.len() as u64);
    }
    acc
}

/// Current `record_intermediate`: length-only resize — the contents are
/// residency modeling, never read, so only the length delta is touched.
fn record_current(lens: &[usize]) -> u64 {
    let mut buf: Vec<u32> = Vec::new();
    let mut acc = 0u64;
    for &len in lens {
        buf.resize(len, 0);
        acc = acc.wrapping_add(buf.len() as u64);
    }
    acc
}

/// Plain host BFS for the ground-truth depth array the backward bench
/// starts from.
fn host_bfs(g: &Csr<u32, u64>, src: u32) -> Vec<u32> {
    let mut depth = vec![INF; g.n_vertices()];
    depth[src as usize] = 0;
    let mut queue = vec![src];
    let mut d = 0u32;
    while !queue.is_empty() {
        let mut next = Vec::new();
        for &u in &queue {
            for &v in g.neighbors(u) {
                if depth[v as usize] == INF {
                    depth[v as usize] = d + 1;
                    next.push(v);
                }
            }
        }
        queue = next;
        d += 1;
    }
    depth
}

/// The legacy backward pass: unvisited as a sorted `Vec<usize>`, filtered
/// into a fresh vec and re-materialized as `Vec<u32>` every superstep —
/// exactly the shape the old DOBFS operator ran.
#[allow(clippy::manual_retain)] // deliberately replicates the legacy shape
fn backward_legacy(csc: &Csr<u32, u64>, labels: &mut [u32], cur0: u32) -> u64 {
    let mut unvisited: Vec<usize> = (0..labels.len()).filter(|&v| labels[v] == INF).collect();
    let mut cur = cur0;
    let mut found = 0u64;
    loop {
        let unvisited_v: Vec<u32> = unvisited.iter().map(|&v| v as u32).collect();
        let mut newly = Vec::new();
        for &v in &unvisited_v {
            for &p in csc.neighbors(v) {
                if labels[p as usize] == cur {
                    newly.push(v);
                    break;
                }
            }
        }
        if newly.is_empty() {
            break;
        }
        found += newly.len() as u64;
        for &v in &newly {
            labels[v as usize] = cur + 1;
        }
        cur += 1;
        unvisited = unvisited.into_iter().filter(|&v| labels[v] == INF).collect();
        if unvisited.is_empty() {
            break;
        }
    }
    found
}

/// The current backward pass: bitmap frontier with the fused shrink + pull
/// (one decode pass per superstep), no per-superstep materialization —
/// the shape `ops::retain_pull_frontier` runs.
fn backward_frontier(csc: &Csr<u32, u64>, labels: &mut [u32], cur0: u32) -> u64 {
    let mut fr: Frontier<u32> =
        Frontier::from_fn(labels.len(), FrontierMode::Auto, |v| labels[v] == INF);
    let mut cur = cur0;
    let mut found = 0u64;
    let mut first = true;
    loop {
        let mut newly = Vec::new();
        {
            let labels = &*labels;
            let pull = |v: u32| {
                for &p in csc.neighbors(v) {
                    if labels[p as usize] == cur {
                        newly.push(v);
                        break;
                    }
                }
            };
            if first {
                first = false;
                fr.for_each(pull);
            } else {
                fr.retain_visit(|v: u32| labels[v.idx()] == INF, pull);
            }
        }
        if newly.is_empty() {
            break;
        }
        found += newly.len() as u64;
        for &v in &newly {
            labels[v as usize] = cur + 1;
        }
        cur += 1;
    }
    found
}

/// Sources for the multi-source arms: 64 evenly spread vertex ids, the same
/// spread `MsBfs::spread_sources` produces.
const MS_LANES: usize = 64;

fn ms_sources(n: usize) -> Vec<u32> {
    (0..MS_LANES).map(|i| (i * n / MS_LANES) as u32).collect()
}

/// Mixes a vertex id into the depth checksum so legacy and batched arms must
/// agree per (source, vertex) pair, not just in aggregate counts.
fn depth_mix(v: usize, lane: usize, d: u32) -> u64 {
    (d as u64 ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(lane as u64)
}

/// Legacy multi-source shape: one full BFS sweep per source, each paying its
/// own frontier loop over the same edges. Returns (checksum, supersteps).
fn ms_bfs_legacy(g: &Csr<u32, u64>, sources: &[u32]) -> (u64, u64) {
    let mut acc = 0u64;
    let mut steps = 0u64;
    for (lane, &s) in sources.iter().enumerate() {
        let mut depth = vec![INF; g.n_vertices()];
        depth[s as usize] = 0;
        let mut queue = vec![s];
        let mut d = 0u32;
        while !queue.is_empty() {
            steps += 1;
            let mut next = Vec::new();
            for &u in &queue {
                for &v in g.neighbors(u) {
                    if depth[v as usize] == INF {
                        depth[v as usize] = d + 1;
                        next.push(v);
                    }
                }
            }
            queue = next;
            d += 1;
        }
        for (v, &dv) in depth.iter().enumerate() {
            if dv != INF {
                acc = acc.wrapping_add(depth_mix(v, lane, dv));
            }
        }
    }
    (acc, steps)
}

/// Batched multi-source: one `u64` reached-bitfield per vertex carries all 64
/// lanes through a single frontier loop — the host-side shape of the `MsBfs`
/// primitive's seen/visit/prop state machine. Returns (checksum, supersteps).
fn ms_bfs_batched(g: &Csr<u32, u64>, sources: &[u32]) -> (u64, u64) {
    let n = g.n_vertices();
    let lanes = sources.len();
    let mut seen = vec![0u64; n];
    let mut visit = vec![0u64; n];
    let mut depth = vec![INF; n * lanes];
    let mut frontier: Vec<u32> = Vec::new();
    for (b, &s) in sources.iter().enumerate() {
        let si = s as usize;
        if visit[si] == 0 {
            frontier.push(s);
        }
        seen[si] |= 1 << b;
        visit[si] |= 1 << b;
        depth[si * lanes + b] = 0;
    }
    let mut d = 0u32;
    let mut steps = 0u64;
    while !frontier.is_empty() {
        steps += 1;
        let prop: Vec<u64> =
            frontier.iter().map(|&u| std::mem::take(&mut visit[u as usize])).collect();
        let mut next = Vec::new();
        for (i, &u) in frontier.iter().enumerate() {
            let p = prop[i];
            for &v in g.neighbors(u) {
                let vi = v as usize;
                let new = p & !seen[vi];
                if new != 0 {
                    seen[vi] |= new;
                    let mut bits = new;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        depth[vi * lanes + b] = d + 1;
                        bits &= bits - 1;
                    }
                    if visit[vi] == 0 {
                        next.push(v);
                    }
                    visit[vi] |= new;
                }
            }
        }
        frontier = next;
        d += 1;
    }
    let mut acc = 0u64;
    for v in 0..n {
        for (b, &dv) in depth[v * lanes..(v + 1) * lanes].iter().enumerate() {
            if dv != INF {
                acc = acc.wrapping_add(depth_mix(v, b, dv));
            }
        }
    }
    (acc, steps)
}

/// Legacy push-advance: degree-weighted chunks at the old 4096-edge target,
/// a fresh `Vec` per chunk per superstep.
fn advance_legacy<O: Id>(g: &Csr<u32, O>, frontier: &[u32], dist: &[u32], threads: usize) -> u64 {
    let mut total = 0u64;
    for _ in 0..ADVANCE_SUPERSTEPS {
        let chunks = par::plan_weighted_chunks(frontier.len(), 4096, |i| g.degree(frontier[i]) + 1);
        let parts = par::run_chunks(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            let mut out = Vec::new();
            for &u in &frontier[lo..hi] {
                for &v in g.neighbors(u) {
                    if dist[v as usize] == INF {
                        out.push(v);
                    }
                }
            }
            out
        });
        let n: usize = parts.iter().map(Vec::len).sum();
        let mut all = Vec::with_capacity(n);
        for p in parts {
            all.extend(p);
        }
        total += all.len() as u64;
    }
    total
}

/// Current push-advance: cache-blocked chunk target, arena-leased buffers
/// reused across supersteps.
fn advance_cache_blocked<O: Id>(
    g: &Csr<u32, O>,
    frontier: &[u32],
    dist: &[u32],
    threads: usize,
) -> u64 {
    let arena: Arena<u32> = Arena::new();
    let target = par::cache_block_items(2 * 4).max(4096);
    let mut total = 0u64;
    for _ in 0..ADVANCE_SUPERSTEPS {
        let chunks =
            par::plan_weighted_chunks(frontier.len(), target, |i| g.degree(frontier[i]) + 1);
        let parts = par::run_chunks(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            let mut out = arena.lease();
            for &u in &frontier[lo..hi] {
                for &v in g.neighbors(u) {
                    if dist[v as usize] == INF {
                        out.push(v);
                    }
                }
            }
            out
        });
        let mut all = arena.lease();
        for p in parts {
            all.extend_from_slice(&p);
            arena.reclaim(p);
        }
        total += all.len() as u64;
        arena.reclaim(all);
    }
    total
}

fn main() {
    let args = BenchArgs::parse();
    let threads = par::default_kernel_threads();
    println!("Wall-clock kernel bench — rmat analog, shift {}, {threads} threads\n", args.shift);

    let ds = Dataset::by_name("rmat_2Mv_128Me").expect("catalog dataset");
    let coo = ds.generate(args.shift, args.seed);
    let wide: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let narrow: Csr<u32, u32> = GraphBuilder::undirected(&coo);
    let n = wide.n_vertices();
    let mut rows: Vec<Row> = Vec::new();

    // --- backward_maintenance: the dense-superstep set work, full scale --
    {
        let labels = maint_labels();
        let expect = maintenance_legacy(&labels);
        let base_ms = time_ms(|| maintenance_legacy(&labels), expect, "maintenance legacy");
        let opt_ms = time_ms(|| maintenance_frontier(&labels), expect, "maintenance frontier");
        rows.push(Row {
            bench: "backward_maintenance",
            base_ms,
            opt_ms,
            speedup: base_ms / opt_ms.max(1e-9),
            note: format!("{MAINT_N} vertices x {MAINT_ROUNDS} dense supersteps"),
        });
    }

    // --- record_intermediate: length-only resize vs clear + refill -------
    {
        let lens = intermediate_lens();
        let expect = record_legacy(&lens);
        let base_ms = time_ms(|| record_legacy(&lens), expect, "record legacy");
        let opt_ms = time_ms(|| record_current(&lens), expect, "record current");
        rows.push(Row {
            bench: "record_intermediate",
            base_ms,
            opt_ms,
            speedup: base_ms / opt_ms.max(1e-9),
            note: format!("peak {} entries x {} supersteps", MAINT_N >> 1, lens.len()),
        });
    }

    // --- dobfs_backward: bitmap frontier vs legacy vec maintenance -------
    {
        let src = mgpu_bench::pick_source(&wide);
        let depth = host_bfs(&wide, src);
        // Switch to backward at the first depth where the traversal has a
        // real foothold (>= 5% visited): from there the unvisited set is
        // dense — the regime the bitmap representation targets — and the
        // visited side is large enough that pulls early-exit quickly.
        let mut d0 = 1u32;
        loop {
            let visited = depth.iter().filter(|&&d| d < d0).count();
            if visited * 20 >= n || d0 > 64 {
                break;
            }
            d0 += 1;
        }
        let init: Vec<u32> = depth.iter().map(|&d| if d < d0 { d } else { INF }).collect();
        let unvisited0 = init.iter().filter(|&&l| l == INF).count();
        let csc = wide.transpose();
        // The pass itself is fast at analog scale, so each measurement runs
        // it several times — keeps the row well above timer noise on CI.
        let inner = 10u64;
        let expect = inner * {
            let mut l = init.clone();
            backward_legacy(&csc, &mut l, d0 - 1)
        };
        let base_ms = time_ms(
            || (0..inner).map(|_| backward_legacy(&csc, &mut init.clone(), d0 - 1)).sum(),
            expect,
            "dobfs_backward legacy",
        );
        let opt_ms = time_ms(
            || (0..inner).map(|_| backward_frontier(&csc, &mut init.clone(), d0 - 1)).sum(),
            expect,
            "dobfs_backward frontier",
        );
        rows.push(Row {
            bench: "dobfs_backward",
            base_ms,
            opt_ms,
            speedup: base_ms / opt_ms.max(1e-9),
            note: format!(
                "{unvisited0}/{n} unvisited at switch ({:.0}% dense)",
                100.0 * unvisited0 as f64 / n as f64
            ),
        });
    }

    // --- advance: cache-blocked + arena vs legacy chunking ---------------
    // Full frontier, everything unvisited: the max-emission superstep where
    // per-superstep buffer churn is at its worst (every edge emits).
    let frontier: Vec<u32> = (0..n as u32).collect();
    let dist: Vec<u32> = vec![INF; n];
    {
        let expect = advance_legacy(&wide, &frontier, &dist, threads);
        let base_ms =
            time_ms(|| advance_legacy(&wide, &frontier, &dist, threads), expect, "advance legacy");
        let opt_ms = time_ms(
            || advance_cache_blocked(&wide, &frontier, &dist, threads),
            expect,
            "advance cache-blocked",
        );
        rows.push(Row {
            bench: "advance",
            base_ms,
            opt_ms,
            speedup: base_ms / opt_ms.max(1e-9),
            note: format!("{} frontier vertices x {ADVANCE_SUPERSTEPS} supersteps", frontier.len()),
        });
    }

    // --- csr_width: u32 vs u64 offsets, same cache-blocked kernel --------
    {
        let expect = advance_cache_blocked(&wide, &frontier, &dist, threads);
        let base_ms = time_ms(
            || advance_cache_blocked(&wide, &frontier, &dist, threads),
            expect,
            "csr_width u64",
        );
        let opt_ms = time_ms(
            || advance_cache_blocked(&narrow, &frontier, &dist, threads),
            expect,
            "csr_width u32",
        );
        rows.push(Row {
            bench: "csr_width",
            base_ms,
            opt_ms,
            speedup: base_ms / opt_ms.max(1e-9),
            note: format!("offsets {} KiB -> {} KiB", (n + 1) * 8 / 1024, (n + 1) * 4 / 1024),
        });
    }

    // --- ms_bfs: 64 sequential sweeps vs one batched bitfield pass -------
    // Two rows: wall clock (noisy, wide tolerance like every row here) and
    // the superstep count (pure graph structure, exactly reproducible) — the
    // batched engine's headline claim is that 64 sources finish in the
    // supersteps of the deepest single traversal.
    {
        let sources = ms_sources(n);
        let (expect, legacy_steps) = ms_bfs_legacy(&wide, &sources);
        let (got, batched_steps) = ms_bfs_batched(&wide, &sources);
        assert_eq!(got, expect, "ms_bfs: batched depths diverged from sequential sweeps");
        let base_ms = time_ms(|| ms_bfs_legacy(&wide, &sources).0, expect, "ms_bfs legacy");
        let opt_ms = time_ms(|| ms_bfs_batched(&wide, &sources).0, expect, "ms_bfs batched");
        rows.push(Row {
            bench: "ms_bfs",
            base_ms,
            opt_ms,
            speedup: base_ms / opt_ms.max(1e-9),
            note: format!("{MS_LANES} sources, {legacy_steps} -> {batched_steps} supersteps"),
        });
        rows.push(Row {
            bench: "ms_bfs_supersteps",
            base_ms: legacy_steps as f64,
            opt_ms: batched_steps as f64,
            speedup: legacy_steps as f64 / (batched_steps as f64).max(1.0),
            note: "superstep counts, not ms (deterministic)".to_string(),
        });
    }

    let mut t = Table::new(&["bench", "legacy ms", "optimized ms", "speedup", "note"]);
    for r in &rows {
        t.row(&[
            r.bench.to_string(),
            format!("{:.2}", r.base_ms),
            format!("{:.2}", r.opt_ms),
            format!("{:.2}x", r.speedup),
            r.note.clone(),
        ]);
    }
    t.print();

    let mut j = String::from("{\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        write!(
            j,
            "{{\"bench\":\"{}\",\"base_ms\":{:.3},\"opt_ms\":{:.3},\"speedup\":{:.3}}}",
            r.bench, r.base_ms, r.opt_ms, r.speedup
        )
        .unwrap();
    }
    j.push_str("]}\n");

    if let Some(path) = &args.json_out {
        std::fs::write(path, &j).expect("write --json-out file");
        println!("\nwrote {path}");
    }

    // The wall-clock gate: only a *drop* in speedup is a regression, and
    // the tolerance is wide (these are real clocks on shared CI machines).
    // The floor catches the catastrophic case where an "optimization" has
    // become a slowdown, whatever the baseline says.
    if let Some(path) = &args.baseline {
        let tol = args.tolerance.unwrap_or(0.35);
        let text = std::fs::read_to_string(path).expect("read --baseline file");
        let result = mgpu_bench::Json::parse(&text).and_then(|base| {
            let cur = mgpu_bench::Json::parse(&j)?;
            mgpu_bench::compare_speedups(&cur, &base, &["bench"], "speedup", tol, 0.4)
        });
        let code = mgpu_bench::gate_report("kernel_bench", result);
        std::process::exit(code);
    }
}
