//! Comm-volume study — what the wire-reduction stack buys per primitive.
//!
//! Runs DOBFS, SSSP, delta-stepping SSSP and CC at six GPUs on two analog
//! datasets, comparing the default configuration against monotone send
//! suppression + `Auto` wire encoding + the butterfly broadcast collective.
//! Reports simulated milliseconds, total H bytes on the wire, the fraction
//! of sends the suppression cache dropped, and the butterfly stage count.
//!
//! With `--json-out FILE` the same rows are written as JSON (the CI
//! comm-reduction job archives `BENCH_comm.json`).

use std::fmt::Write as _;

use mgpu_bench::{
    pick_source, run_multi_source, run_primitive, BenchArgs, MultiSourceMode, Primitive, Table,
};
use mgpu_core::{CommTopology, EnactConfig, EnactReport, Runner, WireEncoding};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::Dataset;
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_primitives::{MsBfs, SsspDelta};
use vgpu::HardwareProfile;

const GPUS: usize = 6;

fn enabled_config() -> EnactConfig {
    EnactConfig {
        suppression: true,
        wire_encoding: WireEncoding::Auto,
        comm_topology: CommTopology::Butterfly,
        ..EnactConfig::default()
    }
}

struct Row {
    dataset: &'static str,
    primitive: String,
    config: &'static str,
    sim_ms: f64,
    supersteps: u64,
    h_bytes: u64,
    suppressed_pct: f64,
    collective_stages: u64,
}

fn row(dataset: &'static str, primitive: &str, config: &'static str, report: &EnactReport) -> Row {
    let sent = report.totals.h_vertices;
    let supp = report.comm.suppressed_vertices;
    let denom = (sent + supp).max(1);
    Row {
        dataset,
        primitive: primitive.to_string(),
        config,
        sim_ms: report.sim_time_us / 1000.0,
        supersteps: report.iterations as u64,
        h_bytes: report.totals.h_bytes_sent,
        suppressed_pct: 100.0 * supp as f64 / denom as f64,
        collective_stages: report.comm.collective_stages,
    }
}

/// Delta-stepping is not in the `Primitive` CLI enum (it shares SSSP's
/// reference results), so run it directly — it is the one primitive whose
/// sender-side suppression fires.
fn run_sssp_delta(g: &Csr<u32, u64>, seed: u64, shift: u32, cfg: EnactConfig) -> EnactReport {
    let dist = DistGraph::partition(g, &RandomPartitioner { seed }, GPUS, Duplication::All);
    let sys = mgpu_bench::runners::scaled_system(GPUS, HardwareProfile::k40(), shift);
    let mut runner = Runner::new(sys, &dist, SsspDelta::default(), cfg).expect("runner");
    runner.enact(Some(pick_source(g))).expect("enact")
}

/// The batched multi-source engine against the 64-sequential-enact shape it
/// replaces, on the same partition (one `DistGraph`, both modes): the
/// committed rows carry the superstep/byte economics of 8-byte bitfield
/// payloads vs 64 rounds of 4-byte labels.
fn run_ms_bfs(
    g: &Csr<u32, u64>,
    seed: u64,
    shift: u32,
    cfg: EnactConfig,
    mode: MultiSourceMode,
) -> EnactReport {
    let part = RandomPartitioner { seed };
    let sys = mgpu_bench::runners::scaled_system(GPUS, HardwareProfile::k40(), shift);
    let sources = MsBfs::spread_sources(64, g.n_vertices());
    run_multi_source(Primitive::Bfs, g, sys, &part, cfg, &sources, mode).expect("run").report
}

fn main() {
    let args = BenchArgs::parse();
    println!("Comm-volume study — default vs suppression+auto-encoding+butterfly at {GPUS} GPUs\n");

    let datasets = ["rmat_2Mv_128Me", "soc-orkut"];
    let prims = [Primitive::Dobfs, Primitive::Sssp, Primitive::Cc];
    let part = RandomPartitioner { seed: args.seed };
    let mut rows: Vec<Row> = Vec::new();

    for name in datasets {
        let ds = Dataset::by_name(name).expect("catalog dataset");
        let mut coo = ds.generate(args.shift, args.seed);
        add_paper_weights(&mut coo, args.seed ^ 0xabc);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);

        for prim in prims {
            for (cname, cfg) in [("default", EnactConfig::default()), ("reduced", enabled_config())]
            {
                let sys =
                    mgpu_bench::runners::scaled_system(GPUS, HardwareProfile::k40(), args.shift);
                let out = run_primitive(prim, &g, sys, &part, cfg).expect("run");
                rows.push(row(name, prim.name(), cname, &out.report));
            }
        }
        for (cname, cfg) in [("default", EnactConfig::default()), ("reduced", enabled_config())] {
            let report = run_sssp_delta(&g, args.seed, args.shift, cfg);
            rows.push(row(name, "SSSP(Δ)", cname, &report));
        }
        // The multi-source pair: same partition, same 64 spread sources —
        // "repeated" pays 64 sequential enacts of 4-byte labels, "batched"
        // pays one bitfield sweep of 8-byte lane masks. The pair prints in
        // the byte-reduction summary like every (default, reduced) pair.
        for (cname, mode) in
            [("repeated", MultiSourceMode::Repeated), ("batched", MultiSourceMode::Batched)]
        {
            let report = run_ms_bfs(&g, args.seed, args.shift, EnactConfig::default(), mode);
            rows.push(row(name, "MS-BFS(64)", cname, &report));
        }
    }

    let mut t = Table::new(&[
        "dataset",
        "primitive",
        "config",
        "sim ms",
        "supersteps",
        "H bytes",
        "suppressed %",
        "stages",
    ]);
    for r in &rows {
        t.row(&[
            r.dataset.to_string(),
            r.primitive.clone(),
            r.config.to_string(),
            format!("{:.2}", r.sim_ms),
            format!("{}", r.supersteps),
            format!("{}", r.h_bytes),
            format!("{:.1}", r.suppressed_pct),
            format!("{}", r.collective_stages),
        ]);
    }
    t.print();

    println!("\nByte reduction (default / reduced):");
    for pair in rows.chunks(2) {
        if let [base, opt] = pair {
            println!(
                "  {:>16} {:>8}: {:.2}x",
                base.dataset,
                base.primitive,
                base.h_bytes as f64 / opt.h_bytes.max(1) as f64
            );
        }
    }

    let mut j = String::from("{\"gpus\":6,\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        write!(
            j,
            "{{\"dataset\":\"{}\",\"primitive\":\"{}\",\"config\":\"{}\",\
             \"sim_ms\":{:.3},\"supersteps\":{},\"h_bytes\":{},\"suppressed_pct\":{:.2},\
             \"collective_stages\":{}}}",
            r.dataset,
            r.primitive,
            r.config,
            r.sim_ms,
            r.supersteps,
            r.h_bytes,
            r.suppressed_pct,
            r.collective_stages
        )
        .unwrap();
    }
    j.push_str("]}\n");

    if let Some(path) = &args.json_out {
        std::fs::write(path, &j).expect("write --json-out file");
        println!("\nwrote {path}");
    }

    // The regression gate: simulated costs are pure f64 arithmetic and
    // reproduce exactly across machines, so the tolerance is tight — any
    // drift means the cost model's behavior changed and the committed
    // baseline must be refreshed on purpose.
    if let Some(path) = &args.baseline {
        let tol = args.tolerance.unwrap_or(0.005);
        let text = std::fs::read_to_string(path).expect("read --baseline file");
        let result = mgpu_bench::Json::parse(&text).and_then(|base| {
            let cur = mgpu_bench::Json::parse(&j)?;
            mgpu_bench::compare_rows(
                &cur,
                &base,
                &["dataset", "primitive", "config"],
                &["sim_ms", "supersteps", "h_bytes", "suppressed_pct", "collective_stages"],
                tol,
            )
        });
        let code = mgpu_bench::gate_report("comm_volume", result);
        std::process::exit(code);
    }
}
