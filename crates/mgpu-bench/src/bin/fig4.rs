//! Fig. 4 — multi-GPU speedup over one GPU for all six primitives.
//!
//! For each primitive and each GPU count 2–6, reports the geometric mean of
//! the speedup over the 1-GPU run across all Table II dataset analogs —
//! the paper's headline scalability figure. Paper-reported 6-GPU numbers:
//! BFS 2.63×, SSSP 2.57×, CC 2.00×, BC 1.96×, PR 3.86×; DOBFS stays flat.

use mgpu_bench::runners::run_scaled;
use mgpu_bench::{geomean, BenchArgs, Primitive, Table};
use mgpu_gen::catalog::TABLE2;
use mgpu_gen::weights::add_paper_weights;
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::RandomPartitioner;
use vgpu::HardwareProfile;

fn main() {
    let args = BenchArgs::parse();
    println!(
        "Fig. 4 reproduction — geomean speedup over 1 GPU across {} datasets (shift {})\n",
        TABLE2.len(),
        args.shift
    );
    let gpu_counts = [2usize, 3, 4, 5, 6];
    let paper6 = [
        (Primitive::Bc, Some(1.96)),
        (Primitive::Bfs, Some(2.63)),
        (Primitive::Cc, Some(2.00)),
        (Primitive::Dobfs, None),
        (Primitive::Pr, Some(3.86)),
        (Primitive::Sssp, Some(2.57)),
    ];

    // Pre-build all graphs once (SSSP variants carry weights).
    let graphs: Vec<(String, Csr<u32, u64>)> = TABLE2
        .iter()
        .map(|ds| {
            let mut coo = ds.generate(args.shift, args.seed);
            add_paper_weights(&mut coo, args.seed ^ 0xabc);
            (ds.name.to_string(), GraphBuilder::undirected(&coo))
        })
        .collect();

    let part = RandomPartitioner { seed: args.seed };
    let mut t = Table::new(&["primitive", "2", "3", "4", "5", "6", "paper @6"]);
    for (prim, paper) in paper6 {
        let base: Vec<f64> = graphs
            .iter()
            .map(|(_, g)| {
                run_scaled(prim, g, 1, HardwareProfile::k40(), &part, args.shift)
                    .expect("run")
                    .report
                    .sim_time_us
            })
            .collect();
        let mut cells = vec![prim.name().to_string()];
        for &n in &gpu_counts {
            let speedups: Vec<f64> = graphs
                .iter()
                .zip(&base)
                .map(|((_, g), &b)| {
                    let time = run_scaled(prim, g, n, HardwareProfile::k40(), &part, args.shift)
                        .expect("run")
                        .report
                        .sim_time_us;
                    b / time
                })
                .collect();
            cells.push(format!("{:.2}x", geomean(&speedups)));
        }
        cells.push(paper.map_or("flat".into(), |p| format!("{p:.2}x")));
        t.row(&cells);
    }
    t.print();
    println!(
        "\nShape to check: every primitive except DOBFS scales with GPU count; DOBFS stays\n\
         mostly flat (its communication is O((n-1)|V|), on par with its computation)."
    );
}
