//! BSP vs asynchronous execution — the Groute comparison (§II-A).
//!
//! The paper compares against Groute on its website rather than in the
//! text, noting Groute's asynchronous model wins "particularly on
//! high-diameter, road-network-like graphs, and primitives that can
//! benefit from prioritized data communication, such as SSSP and CC".
//! This experiment runs SSSP and CC through both enactors on a road
//! analog and a social analog, 2 and 4 GPUs.
//!
//! Shapes to check: async wins clearly on the road network (no `S·l`
//! barrier tax across hundreds of levels); on the shallow social graph
//! the BSP schedule is competitive (few supersteps, and async pays stale
//! re-relaxations).

use mgpu_bench::{BenchArgs, Table};
use mgpu_core::{AsyncRunner, EnactConfig, Runner};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::{grid2d, preferential_attachment};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_primitives::{Cc, Sssp};
use vgpu::{HardwareProfile, Interconnect, SimSystem};

/// Mildly overhead-scaled systems (2^4): enough that the soc graph's
/// compute dominates its barrier cost, while the deep road traversal stays
/// barrier-bound — the regime split the Groute comparison is about.
fn scaled(n: usize) -> SimSystem {
    SimSystem::new(
        vec![HardwareProfile::k40().with_overhead_scale(16.0); n],
        Interconnect::pcie3(n, 4).with_latency_scale(16.0),
    )
    .unwrap()
}

fn main() {
    let args = BenchArgs::parse();
    let side = 1usize << (9u32.saturating_sub(args.shift / 4).max(6));
    let mut road_coo = grid2d(side, side, 1.0, args.seed);
    add_paper_weights(&mut road_coo, args.seed + 1);
    let road: Csr<u32, u64> = GraphBuilder::undirected(&road_coo);
    // the soc analog is sized so its per-superstep work dominates the
    // barrier cost (as at paper scale), while the road network stays
    // barrier-bound — road graphs are sync-bound even at full scale
    // (S ~ thousands of levels)
    let mut soc_coo = preferential_attachment((side * side * 8).max(64), 8, args.seed);
    add_paper_weights(&mut soc_coo, args.seed + 2);
    let soc: Csr<u32, u64> = GraphBuilder::undirected(&soc_coo);

    println!(
        "BSP vs async (Groute-style) — road {side}x{side} grid vs soc analog, runtime in ms\n"
    );
    let part = RandomPartitioner { seed: args.seed };
    let mut t = Table::new(&[
        "graph",
        "algo",
        "GPUs",
        "BSP (ms)",
        "BSP supersteps",
        "async (ms)",
        "async advantage",
    ]);
    for (gname, g) in [("road", &road), ("soc", &soc)] {
        for n in [2usize, 4] {
            let dist = DistGraph::partition(g, &part, n, Duplication::All);
            // SSSP
            let sys = scaled(n);
            let mut bsp = Runner::new(sys, &dist, Sssp, EnactConfig::default()).unwrap();
            let rb = bsp.enact(Some(0u32)).unwrap();
            let sys = scaled(n);
            let mut asy = AsyncRunner::new(sys, &dist, Sssp).unwrap();
            let ra = asy.enact(Some(0u32)).unwrap();
            t.row(&[
                gname.into(),
                "SSSP".into(),
                format!("{n}"),
                format!("{:.2}", rb.sim_time_us / 1e3),
                format!("{}", rb.iterations),
                format!("{:.2}", ra.sim_time_us / 1e3),
                format!("{:.2}x", rb.sim_time_us / ra.sim_time_us),
            ]);
            // CC
            let sys = scaled(n);
            let mut bsp = Runner::new(sys, &dist, Cc, EnactConfig::default()).unwrap();
            let rb = bsp.enact(None).unwrap();
            let sys = scaled(n);
            let mut asy = AsyncRunner::new(sys, &dist, Cc).unwrap();
            let ra = asy.enact(None).unwrap();
            t.row(&[
                gname.into(),
                "CC".into(),
                format!("{n}"),
                format!("{:.2}", rb.sim_time_us / 1e3),
                format!("{}", rb.iterations),
                format!("{:.2}", ra.sim_time_us / 1e3),
                format!("{:.2}x", rb.sim_time_us / ra.sim_time_us),
            ]);
        }
    }
    t.print();
    println!(
        "\nShape: async wins where S (supersteps) is large — the road network's deep SSSP —\n\
         and is merely competitive on shallow social graphs, matching the published\n\
         Gunrock-vs-Groute comparison."
    );
}
