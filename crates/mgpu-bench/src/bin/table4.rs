//! Table IV — comparison with out-of-core GPU and CPU systems.
//!
//! The out-of-core rows run the GraphReduce-like GAS engine from
//! `mgpu-baselines` on the same dataset analogs as our in-core framework;
//! the Totem row runs the unmodified primitives on a hybrid CPU+GPU
//! system. Shapes to check: out-of-core is orders of magnitude slower than
//! in-core on graphs that fit in device memory; the all-GPU node beats the
//! same processor count in hybrid form.

use mgpu_bench::fmt::fmt_us;
use mgpu_bench::runners::run_scaled;
use mgpu_bench::{pick_source, BenchArgs, Primitive, Table};
use mgpu_baselines::{DegreePartitioner, OocBfs, OocCc, OocEngine, OocPagerank, OocSssp};
use mgpu_core::{EnactConfig, Runner};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::Dataset;
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_primitives::Bfs;
use vgpu::HardwareProfile;

fn weighted_graph(name: &str, shift: u32, seed: u64) -> Csr<u32, u64> {
    let mut coo = Dataset::by_name(name).expect(name).generate(shift, seed);
    add_paper_weights(&mut coo, seed ^ 0x77);
    GraphBuilder::undirected(&coo)
}

fn main() {
    let args = BenchArgs::parse();
    let part = RandomPartitioner { seed: args.seed };
    println!(
        "Table IV reproduction — vs out-of-core GPU / CPU systems (analogs at shift {})\n",
        args.shift
    );

    let mut t = Table::new(&[
        "graph",
        "algo",
        "reference (paper)",
        "out-of-core here",
        "ours (in-core)",
        "in-core speedup",
    ]);

    // --- GraphReduce on uk-2002: {BFS, SSSP, CC, PR} = {49, 80, 153, 162} s ---
    // --- Frog on twitter-rv: {46, 40, 29, 80} s; on LiveJournal1: ms-scale ---
    let rows = [
        ("uk-2002", "GraphReduce 1xK40: {49, 80, 153, 162} s"),
        ("twitter-rv", "Frog 1xK40: {46, 40, 29, 80} s"),
        ("LiveJournal1", "Frog 1xK40: {66.4, 245, 213, 105} ms"),
    ];
    for (name, reference) in rows {
        let g = weighted_graph(name, args.shift, args.seed);
        let src = pick_source(&g);
        for (algo, prim) in [
            ("BFS", Primitive::Bfs),
            ("SSSP", Primitive::Sssp),
            ("CC", Primitive::Cc),
            ("PR", Primitive::Pr),
        ] {
            let mut engine = OocEngine::k40_scaled(args.shift);
            let ooc_us = match algo {
                "BFS" => engine.run(&g, &OocBfs, Some(src)).unwrap().0.sim_time_us,
                "SSSP" => engine.run(&g, &OocSssp, Some(src)).unwrap().0.sim_time_us,
                "CC" => engine.run(&g, &OocCc, None).unwrap().0.sim_time_us,
                _ => engine.run(&g, &OocPagerank::default(), None).unwrap().0.sim_time_us,
            };
            let ours = run_scaled(prim, &g, 1, HardwareProfile::k40(), &part, args.shift).unwrap();
            t.row(&[
                name.into(),
                algo.into(),
                reference.into(),
                fmt_us(ooc_us),
                fmt_us(ours.report.sim_time_us),
                format!("{:.0}x", ooc_us / ours.report.sim_time_us),
            ]);
        }
    }
    t.print();

    // --- Totem row: 2 CPUs + 2 GPUs vs our 4 GPUs ---
    println!("\nTotem comparison (same processor count: 2 Xeon + 2 K40 hybrid vs 4x K40):\n");
    let g = weighted_graph("twitter-mpi", args.shift, args.seed);
    let dist_h = DistGraph::partition(&g, &DegreePartitioner::default(), 3, Duplication::All);
    let scale = (1u64 << args.shift) as f64;
    let sys_h = {
        let mut profiles = vec![HardwareProfile::xeon_e5().with_overhead_scale(scale)];
        profiles.extend(vec![HardwareProfile::k40().with_overhead_scale(scale); 2]);
        vgpu::SimSystem::new(profiles, vgpu::Interconnect::pcie3(3, 3).with_latency_scale(scale))
            .unwrap()
    };
    let mut run_h = Runner::new(sys_h, &dist_h, Bfs::default(), EnactConfig::default()).unwrap();
    let hybrid = run_h.enact(Some(pick_source(&g))).unwrap();
    let ours =
        run_scaled(Primitive::Bfs, &g, 4, HardwareProfile::k40(), &part, args.shift).unwrap();
    let mut t2 = Table::new(&["config", "BFS time", "paper"]);
    t2.row(&[
        "Totem-like hybrid (CPU+2xK40)".into(),
        fmt_us(hybrid.sim_time_us),
        "0.698 s (2xK40+2xXeon, twitter-mpi)".into(),
    ]);
    t2.row(&["ours 4xK40".into(), fmt_us(ours.report.sim_time_us), "0.0785 s".into()]);
    t2.print();
    println!(
        "\nShape: in-core beats out-of-core by orders of magnitude when the graph fits in\n\
         device memory; the all-GPU node beats the hybrid at equal processor count."
    );
}
