//! Table V — large graphs and the cost of 64-bit vertex/edge ids.
//!
//! Runs BFS and PR on the friendster / sk-2005 analogs (4 GPUs), then BFS
//! on rmat_n24_32 with the three id-width configurations of the paper:
//! 32-bit edge ids, 64-bit edge ids, 64-bit vertex ids. The paper measures
//! {67.6, 52.6, 33.9} GTEPS — i.e. ~0.78× for 64-bit eIDs and ~0.5× for
//! 64-bit vIDs, which is the bandwidth ratio; the same ratios should
//! appear here.

use mgpu_bench::fmt::fmt_us;
use mgpu_bench::runners::{run_scaled, scaled_system};
use mgpu_bench::{pick_source, BenchArgs, Primitive, Table};
use mgpu_core::{EnactConfig, Runner};
use mgpu_gen::Dataset;
use mgpu_graph::{Csr, GraphBuilder, Id};
use mgpu_partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_primitives::{Bfs, Pagerank};
use vgpu::{HardwareProfile, SimSystem};

fn bfs_gteps<V: Id, O: Id>(g: &Csr<V, O>, n: usize, shift: u32) -> f64 {
    let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n) as u32).collect();
    let dist = DistGraph::build(g, owner, n, Duplication::All);
    let scale = (1u64 << shift) as f64;
    let system = SimSystem::new(
        vec![HardwareProfile::k40().with_overhead_scale(scale); n],
        vgpu::Interconnect::pcie3(n, 4).with_latency_scale(scale),
    )
    .unwrap();
    let mut runner = Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).unwrap();
    let src = pick_source(g);
    let report = runner.enact(Some(src)).unwrap();
    report.gteps(g.n_edges())
}

fn main() {
    let args = BenchArgs::parse();
    let part = RandomPartitioner { seed: args.seed };
    println!("Table V reproduction — large graphs on 4 GPUs (analogs at shift {})\n", args.shift);

    let mut t = Table::new(&["graph", "algo", "ours (analog)", "x2^shift est.", "paper"]);
    for (name, algo, paper) in [
        ("friendster", "BFS", "339 ms"),
        ("friendster", "PR (per iter)", "1024 ms/iter"),
        ("sk-2005", "BFS", "2717 ms"),
        ("sk-2005", "PR (per iter)", "154 ms/iter"),
    ] {
        let g: Csr<u32, u64> = GraphBuilder::undirected(
            &Dataset::by_name(name).unwrap().generate(args.shift, args.seed),
        );
        let (us, suffix) = if algo == "BFS" {
            let out = run_scaled(Primitive::Bfs, &g, 4, HardwareProfile::k40(), &part, args.shift)
                .unwrap();
            (out.report.sim_time_us, "")
        } else {
            let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % 4) as u32).collect();
            let dist = DistGraph::build(&g, owner, 4, Duplication::All);
            let system = scaled_system(4, HardwareProfile::k40(), args.shift);
            let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 10 };
            let mut runner = Runner::new(system, &dist, pr, EnactConfig::default()).unwrap();
            let report = runner.enact(None).unwrap();
            (report.sim_time_us / report.iterations.max(1) as f64, "/iter")
        };
        let scaled_up = us * (1u64 << args.shift) as f64;
        t.row(&[
            name.into(),
            algo.into(),
            format!("{}{suffix}", fmt_us(us)),
            format!("{}{suffix}", fmt_us(scaled_up)),
            paper.into(),
        ]);
    }
    t.print();

    println!("\nId-width cost on rmat_n24_32 (BFS, 4 GPUs):\n");
    let coo = Dataset::by_name("rmat_n24_32").unwrap().generate(args.shift, args.seed);
    let g32e: Csr<u32, u32> = GraphBuilder::undirected(&coo);
    let g64e: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let coo64 = mgpu_graph::Coo::<u64>::from_edges(
        coo.n_vertices,
        coo.edges.iter().map(|&(s, d)| (s as u64, d as u64)).collect(),
        None,
    );
    let g64v: Csr<u64, u64> = GraphBuilder::undirected(&coo64);

    let r32e = bfs_gteps(&g32e, 4, args.shift);
    let r64e = bfs_gteps(&g64e, 4, args.shift);
    let r64v = bfs_gteps(&g64v, 4, args.shift);
    let mut t2 =
        Table::new(&["id widths", "ours GTEPS", "relative", "paper GTEPS", "paper relative"]);
    t2.row(&[
        "32-bit eID".into(),
        format!("{r32e:.2}"),
        "1.00x".into(),
        "67.6".into(),
        "1.00x".into(),
    ]);
    t2.row(&[
        "64-bit eID".into(),
        format!("{r64e:.2}"),
        format!("{:.2}x", r64e / r32e),
        "52.6".into(),
        "0.78x".into(),
    ]);
    t2.row(&[
        "64-bit vID".into(),
        format!("{r64v:.2}"),
        format!("{:.2}x", r64v / r32e),
        "33.9".into(),
        "0.50x".into(),
    ]);
    t2.print();
    println!("\nShape: 64-bit vertex ids double per-edge bandwidth and halve GTEPS.");
}
