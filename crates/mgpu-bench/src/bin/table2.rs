//! Table II — the evaluation datasets.
//!
//! Prints the scaled synthetic analog of every Table II graph next to the
//! paper's reported |V|, |E| and diameter. The analogs preserve the edge
//! factor and the structural class (power-law skew, diameter regime); the
//! absolute sizes shrink by `2^shift`.

use mgpu_bench::{BenchArgs, Table};
use mgpu_gen::catalog::TABLE2;
use mgpu_graph::{degree_stats, estimate_diameter};

fn main() {
    let args = BenchArgs::parse();
    println!("Table II reproduction — dataset analogs at shift {}\n", args.shift);
    let mut t = Table::new(&[
        "group",
        "name",
        "paper |V|",
        "paper |E|",
        "paper D",
        "analog |V|",
        "analog |E|",
        "analog D*",
        "edge factor",
    ]);
    for ds in TABLE2 {
        let g = ds.build_undirected(args.shift, args.seed);
        let s = degree_stats(&g);
        let d = estimate_diameter(&g, 6, args.seed);
        t.row(&[
            ds.group.label().to_string(),
            ds.name.to_string(),
            format!("{:.2}M", ds.paper_vertices / 1e6),
            format!("{:.0}M", ds.paper_edges / 1e6),
            ds.paper_diameter.map_or("-".into(), |x| format!("{x}")),
            format!("{}", s.n_vertices),
            format!("{}", s.n_edges),
            format!("{d}"),
            format!("{:.1}", s.avg_degree),
        ]);
    }
    t.print();
    println!("\n* diameter approximated by multiple runs of random-sourced BFS (as in the paper)");
}
