//! Fig. 2 — performance impact of partitioners.
//!
//! 3 primitives (BFS, DOBFS, PR) × 3 datasets (kron, soc-orkut, uk-2002
//! analogs) × 3 partitioners (random, biased-random, metis-like). Reports
//! the 4-GPU speedup over the 1-GPU run, the paper's metric, plus each
//! partitioner's border size and edge cut — illustrating §V-C's point that
//! border size (not edge cut) is the objective that matters here.

use mgpu_bench::{BenchArgs, Primitive, Table};
use mgpu_core::EnactConfig;
use mgpu_gen::Dataset;
use mgpu_partition::{
    BiasedRandomPartitioner, MultilevelPartitioner, PartitionQuality, Partitioner,
    RandomPartitioner,
};
use mgpu_graph::Csr;
use vgpu::HardwareProfile;

fn run_with(
    prim: Primitive,
    g: &Csr<u32, u64>,
    n: usize,
    part: &impl Partitioner,
    shift: u32,
) -> f64 {
    let sys = mgpu_bench::runners::scaled_system(n, HardwareProfile::k40(), shift);
    mgpu_bench::run_primitive(prim, g, sys, part, EnactConfig::default())
        .expect("run")
        .report
        .sim_time_us
}

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 2 reproduction — partitioner impact, 4-GPU speedup over 1 GPU\n");
    let datasets = Dataset::figure_trio();
    let prims = [Primitive::Bfs, Primitive::Dobfs, Primitive::Pr];

    let random = RandomPartitioner { seed: args.seed };
    let biased = BiasedRandomPartitioner { seed: args.seed, slack: 0.05 };
    let metis = MultilevelPartitioner { seed: args.seed, ..Default::default() };

    let mut t = Table::new(&["primitive+dataset", "random", "biased-random", "metis-like"]);
    let mut quality =
        Table::new(&["dataset", "partitioner", "edge cut", "max |Bi|", "edge imbalance"]);

    for ds in &datasets {
        let g = ds.build_undirected(args.shift, args.seed);
        for (pname, owner) in [
            ("random", random.assign(&g, 4)),
            ("biased-random", biased.assign(&g, 4)),
            ("metis-like", metis.assign(&g, 4)),
        ] {
            let q = PartitionQuality::measure(&g, &owner, 4);
            quality.row(&[
                ds.name.to_string(),
                pname.to_string(),
                format!("{}", q.edge_cut),
                format!("{}", q.max_border()),
                format!("{:.2}", q.edge_imbalance()),
            ]);
        }
        for prim in prims {
            let base = run_with(prim, &g, 1, &random, args.shift);
            let s_random = base / run_with(prim, &g, 4, &random, args.shift);
            let s_biased = base / run_with(prim, &g, 4, &biased, args.shift);
            let s_metis = base / run_with(prim, &g, 4, &metis, args.shift);
            t.row(&[
                format!("{}+{}", prim.name().to_lowercase(), ds.name),
                format!("{s_random:.2}x"),
                format!("{s_biased:.2}x"),
                format!("{s_metis:.2}x"),
            ]);
        }
    }
    t.print();
    println!("\nPartition quality (why edge cut is the wrong objective, §V-C):\n");
    quality.print();
    println!(
        "\nPaper's conclusion: random performs fairly well across the board; biased-random is\n\
         very close; metis-like wins only in a few situations with small margins (and costs\n\
         far more partitioning time — see `cargo bench -p mgpu-bench` partitioners bench)."
    );
}
