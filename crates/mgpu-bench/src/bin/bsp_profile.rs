//! BSP cost-attribution study — where the simulated milliseconds go.
//!
//! Runs BFS, SSSP and CC at 2/4/8 GPUs under the direct and butterfly
//! broadcast topologies with structured tracing enabled, folds every trace
//! into the per-device/per-superstep attribution tables, and verifies the
//! exact trace↔report reconciliation invariant for every configuration —
//! any bitwise mismatch between the profiled `W + H·g + S·l` buckets and
//! the `EnactReport` counters aborts the binary with a non-zero exit.
//!
//! With `--json-out FILE` the rows are written as JSON (the CI trace job
//! archives `BENCH_profile.json`).

use std::fmt::Write as _;

use mgpu_bench::{pick_source, run_primitive, BenchArgs, Primitive, Table};
use mgpu_core::{CommTopology, EnactConfig, Profile};
use mgpu_graph::Csr;
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::Dataset;
use mgpu_graph::GraphBuilder;
use mgpu_partition::RandomPartitioner;
use vgpu::HardwareProfile;

struct Row {
    primitive: &'static str,
    gpus: usize,
    topology: &'static str,
    supersteps: usize,
    sim_ms: f64,
    w_ms: f64,
    c_ms: f64,
    h_ms: f64,
    sync_ms: f64,
    wait_ms: f64,
    events: usize,
}

fn main() {
    let args = BenchArgs::parse();
    println!("BSP cost attribution — traced runs, exact reconciliation enforced\n");

    let ds = Dataset::by_name("soc-orkut").expect("catalog dataset");
    let mut coo = ds.generate(args.shift, args.seed);
    add_paper_weights(&mut coo, args.seed ^ 0xabc);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let _ = pick_source(&g);
    let part = RandomPartitioner { seed: args.seed };

    let prims = [Primitive::Bfs, Primitive::Sssp, Primitive::Cc];
    let topologies = [(CommTopology::Direct, "direct"), (CommTopology::Butterfly, "butterfly")];
    let mut rows: Vec<Row> = Vec::new();

    for prim in prims {
        for gpus in [2usize, 4, 8] {
            for (topology, tname) in topologies {
                let cfg =
                    EnactConfig { tracing: true, comm_topology: topology, ..Default::default() };
                let sys =
                    mgpu_bench::runners::scaled_system(gpus, HardwareProfile::k40(), args.shift);
                let out = run_primitive(prim, &g, sys, &part, cfg).expect("run");
                let trace = out.report.trace.as_ref().expect("tracing was enabled");
                let profile = Profile::from_trace(trace);
                if let Err(e) = profile.reconcile(&out.report) {
                    eprintln!("reconciliation FAILED for {} x{gpus} {tname}: {e}", prim.name());
                    std::process::exit(1);
                }
                let t = &profile.total;
                rows.push(Row {
                    primitive: prim.name(),
                    gpus,
                    topology: tname,
                    supersteps: profile.n_supersteps(),
                    sim_ms: out.report.sim_time_us / 1e3,
                    w_ms: t.w_us / 1e3,
                    c_ms: t.c_us / 1e3,
                    h_ms: t.h_us / 1e3,
                    sync_ms: t.sync_us / 1e3,
                    wait_ms: t.wait_us / 1e3,
                    events: trace.n_events(),
                });
            }
        }
    }

    let mut t = Table::new(&[
        "primitive",
        "gpus",
        "topology",
        "steps",
        "sim ms",
        "W ms",
        "C ms",
        "H ms",
        "S*l ms",
        "wait ms",
        "events",
    ]);
    for r in &rows {
        t.row(&[
            r.primitive.to_string(),
            r.gpus.to_string(),
            r.topology.to_string(),
            r.supersteps.to_string(),
            format!("{:.3}", r.sim_ms),
            format!("{:.3}", r.w_ms),
            format!("{:.3}", r.c_ms),
            format!("{:.3}", r.h_ms),
            format!("{:.3}", r.sync_ms),
            format!("{:.3}", r.wait_ms),
            r.events.to_string(),
        ]);
    }
    t.print();
    println!("\nall {} configurations reconciled exactly", rows.len());

    let mut j = String::from("{\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        write!(
            j,
            "{{\"primitive\":\"{}\",\"gpus\":{},\"topology\":\"{}\",\
             \"supersteps\":{},\"sim_ms\":{:.4},\"w_ms\":{:.4},\"c_ms\":{:.4},\
             \"h_ms\":{:.4},\"sync_ms\":{:.4},\"wait_ms\":{:.4},\"events\":{}}}",
            r.primitive,
            r.gpus,
            r.topology,
            r.supersteps,
            r.sim_ms,
            r.w_ms,
            r.c_ms,
            r.h_ms,
            r.sync_ms,
            r.wait_ms,
            r.events
        )
        .unwrap();
    }
    j.push_str("],\"reconciled\":true}\n");

    if let Some(path) = &args.json_out {
        std::fs::write(path, &j).expect("write --json-out file");
        println!("wrote {path}");
    }

    // The regression gate: every bucket of the W/C/H/S attribution (and the
    // superstep/event counts) must match the committed baseline exactly up
    // to a tight tolerance — these are deterministic simulated costs, so
    // drift in either direction means the substrate changed behavior.
    if let Some(path) = &args.baseline {
        let tol = args.tolerance.unwrap_or(0.005);
        let text = std::fs::read_to_string(path).expect("read --baseline file");
        let result = mgpu_bench::Json::parse(&text).and_then(|base| {
            let cur = mgpu_bench::Json::parse(&j)?;
            mgpu_bench::compare_rows(
                &cur,
                &base,
                &["primitive", "gpus", "topology"],
                &["supersteps", "sim_ms", "w_ms", "c_ms", "h_ms", "sync_ms", "wait_ms", "events"],
                tol,
            )
        });
        let code = mgpu_bench::gate_report("bsp_profile", result);
        std::process::exit(code);
    }
}
