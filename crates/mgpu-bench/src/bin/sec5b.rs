//! §V-B — per-iteration synchronization overhead `l`.
//!
//! BFS on a chain graph visits one vertex and one edge per iteration — the
//! smallest possible per-iteration workload — so the per-iteration time *is*
//! `l`. The paper measures {66.8, 124, 142, 188} µs per iteration for
//! 1–4 GPUs, with the 1→2 jump reflecting inter-GPU synchronization and
//! communication latency.

use mgpu_bench::{BenchArgs, Table};
use mgpu_core::{EnactConfig, Runner};
use mgpu_gen::smallworld::chain;
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication};
use mgpu_primitives::Bfs;
use vgpu::{HardwareProfile, SimSystem};

fn main() {
    let args = BenchArgs::parse();
    let len = 1usize << (12u32.saturating_sub(args.shift / 4).max(8));
    let g: Csr<u32, u64> = GraphBuilder::undirected(&chain(len));
    println!("Sec. V-B reproduction — per-iteration overhead, chain of {len} vertices\n");

    let paper = [66.8, 124.0, 142.0, 188.0];
    let mut t = Table::new(&["GPUs", "iterations", "total", "per-iteration", "paper"]);
    for n in 1..=4usize {
        // contiguous partition so the chain still advances one hop per
        // superstep wherever the frontier lives
        let owner: Vec<u32> = (0..len).map(|v| (v * n / len).min(n - 1) as u32).collect();
        let dist = DistGraph::build(&g, owner, n, Duplication::All);
        let system = SimSystem::homogeneous(n, HardwareProfile::k40());
        let mut runner =
            Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let report = runner.enact(Some(0u32)).unwrap();
        let per_iter = report.sim_time_us / report.iterations.max(1) as f64;
        t.row(&[
            format!("{n}"),
            format!("{}", report.iterations),
            format!("{:.1} ms", report.sim_time_us / 1e3),
            format!("{per_iter:.1} µs"),
            format!("{:.1} µs", paper[n - 1]),
        ]);
    }
    t.print();
    println!(
        "\nShapes to check: per-iteration time is flat in the iteration count (runtime linear\n\
         in S), and jumps 1→2 GPUs then grows roughly linearly with the peer count."
    );
}
