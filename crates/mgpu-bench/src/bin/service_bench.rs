//! Service throughput benchmark — concurrent multi-tenant query scheduling
//! vs one-at-a-time execution over one shared graph residency.
//!
//! A fixed mix of eight heterogeneous queries (BFS, DOBFS, SSSP, BC, CC,
//! PR, a second BFS source, and a resilient SSSP) runs against a single
//! partitioned hollywood-2009 analog on 4 simulated GPUs, three ways:
//!
//! * `mixed8_lanes4` — the default 4-lane policy (two waves of four);
//! * `mixed8_unbounded` — unbounded lanes (one wave of eight, the ideal
//!   overlap ceiling);
//! * `mixed8_capped` — a per-device `mem_cap` chosen so the admission
//!   ledger must split the mix across extra waves (queue, not fail).
//!
//! The baseline arm for every row is the same service run at `lanes = 1`:
//! strictly serial dispatch of the identical specs. Throughput is measured
//! on *simulated* makespans — each wave costs the max of its members'
//! simulated times, serial costs their sum — because the scheduler's claim
//! is overlap of independent per-query device timelines, not host-thread
//! parallelism (see DESIGN.md §15 for the model and its caveat).
//!
//! Every concurrent outcome is asserted bit-equal (`same_simulation` plus
//! harvested result words) to its serial counterpart before any row is
//! reported — a throughput win that perturbs results would be a bug, not a
//! win. The binary aborts on any mismatch.
//!
//! With `--json-out FILE` rows are written as JSON; with `--baseline FILE`
//! both makespans and speedups are gated (simulated clocks are
//! deterministic, so the tolerance is essentially zero).

use std::fmt::Write as _;

use mgpu_bench::service::{build_query_specs, parse_query_list, residency_bytes};
use mgpu_bench::{BenchArgs, Table};
use mgpu_core::{EnactConfig, PressurePolicy, Service, ServicePolicy, ServiceReport};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::Dataset;
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication, Partitioner, RandomPartitioner};
use vgpu::HardwareProfile;

const GPUS: usize = 4;
const MIX: &str = "bfs,dobfs,sssp,bc,cc,pr,bfs:1,sssp:1@resilient";

struct Row {
    bench: &'static str,
    base_ms: f64,
    opt_ms: f64,
    speedup: f64,
    note: String,
}

/// Assert every query of `conc` is bit-equal to its serial counterpart.
fn assert_bit_equal(serial: &ServiceReport, conc: &ServiceReport, label: &str) {
    assert_eq!(serial.outcomes.len(), conc.outcomes.len());
    for (s, c) in serial.outcomes.iter().zip(conc.outcomes.iter()) {
        assert_eq!(s.query, c.query);
        let (sr, cr) = match (&s.result, &c.result) {
            (Ok(sr), Ok(cr)) => (sr, cr),
            _ => panic!("{label}: query '{}' did not succeed in both arms", s.name),
        };
        assert!(
            sr.same_simulation(cr),
            "{label}: query '{}' report diverged from the serial run",
            s.name
        );
        assert_eq!(
            s.values, c.values,
            "{label}: query '{}' result words diverged from the serial run",
            s.name
        );
    }
}

fn main() {
    let args = BenchArgs::parse();
    let ds = Dataset::by_name("hollywood-2009").expect("catalog");
    let mut coo = ds.generate(args.shift, args.seed);
    add_paper_weights(&mut coo, args.seed ^ 0xabc);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);

    let part = RandomPartitioner { seed: args.seed };
    let mut dist = DistGraph::partition(&g, &part, GPUS, Duplication::All);
    dist.build_cscs(); // the mix includes DOBFS
    let owner = part.assign(&g, GPUS);

    let descs = parse_query_list(MIX).expect("query mix");
    let specs = build_query_specs(
        &g,
        &dist,
        &owner,
        HardwareProfile::k40(),
        args.shift,
        EnactConfig::default(),
        &descs,
    )
    .expect("build specs");
    let rb = residency_bytes(&dist);
    let fps: Vec<u64> = specs.iter().map(|s| s.footprint_bytes).collect();
    let sum_fp: u64 = fps.iter().sum();
    let max_fp: u64 = fps.iter().copied().max().unwrap_or(0);

    println!(
        "service_bench — {} queries on {} GPUs, |V|={} |E|={} (shift {})\n\
         residency {} B/device, dynamic footprints {}..{} B\n",
        specs.len(),
        GPUS,
        g.n_vertices(),
        g.n_edges(),
        args.shift,
        rb,
        fps.iter().min().unwrap_or(&0),
        max_fp,
    );

    let policy = |lanes: usize, mem_cap: Option<u64>| ServicePolicy {
        seed: args.seed,
        workers: 1,
        lanes,
        mem_cap,
        residency_bytes: rb,
        pressure: PressurePolicy::governed(),
    };

    let serial = Service::new(policy(1, None)).run(&specs);
    assert!(serial.all_ok(), "serial service run failed");

    // A cap that admits any query alone with room to spare but cannot hold
    // the whole mix in one wave even at the soft watermark: the admission
    // ledger must queue, never reject.
    let cap = (rb + max_fp + (sum_fp - max_fp) / 2).max((rb + 2 * max_fp) * 100 / 85) + 1;
    let arms: [(&'static str, ServicePolicy); 3] = [
        ("mixed8_lanes4", policy(4, None)),
        ("mixed8_unbounded", policy(0, None)),
        ("mixed8_capped", policy(0, Some(cap))),
    ];

    let mut rows = Vec::new();
    for (name, pol) in arms {
        let rep = Service::new(pol).run(&specs);
        assert!(rep.all_ok(), "{name}: service run failed");
        assert_bit_equal(&serial, &rep, name);
        let queued = rep.admission.iter().filter(|a| a.queued).count();
        rows.push(Row {
            bench: name,
            base_ms: serial.concurrent_sim_us / 1e3,
            opt_ms: rep.concurrent_sim_us / 1e3,
            speedup: serial.concurrent_sim_us / rep.concurrent_sim_us.max(1e-9),
            note: format!("{} waves, {} queued", rep.waves, queued),
        });
    }

    let mut t = Table::new(&["bench", "serial ms", "concurrent ms", "speedup", "note"]);
    for r in &rows {
        t.row(&[
            r.bench.to_string(),
            format!("{:.3}", r.base_ms),
            format!("{:.3}", r.opt_ms),
            format!("{:.2}x", r.speedup),
            r.note.clone(),
        ]);
    }
    t.print();
    println!(
        "\nAll concurrent outcomes verified bit-equal to the serial dispatch\n\
         (same_simulation + harvested result words, all {} queries per arm).",
        specs.len()
    );

    let mut j = String::from("{\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        write!(
            j,
            "{{\"bench\":\"{}\",\"base_ms\":{:.3},\"opt_ms\":{:.3},\"speedup\":{:.3}}}",
            r.bench, r.base_ms, r.opt_ms, r.speedup
        )
        .unwrap();
    }
    j.push_str("]}\n");

    if let Some(path) = &args.json_out {
        std::fs::write(path, &j).expect("write --json-out file");
        println!("\nwrote {path}");
    }

    // Simulated makespans are deterministic: any drift at all is a
    // behavioural change, so the default tolerance is near-zero and the
    // speedup floor is 1.0 — concurrency must never lose to serial.
    if let Some(path) = &args.baseline {
        let tol = args.tolerance.unwrap_or(1e-6);
        let text = std::fs::read_to_string(path).expect("read --baseline file");
        let result = mgpu_bench::Json::parse(&text).and_then(|base| {
            let cur = mgpu_bench::Json::parse(&j)?;
            mgpu_bench::compare_rows(&cur, &base, &["bench"], &["base_ms", "opt_ms"], tol)?;
            mgpu_bench::compare_speedups(&cur, &base, &["bench"], "speedup", tol, 1.0)
        });
        let code = mgpu_bench::gate_report("service_bench", result);
        std::process::exit(code);
    }
}
