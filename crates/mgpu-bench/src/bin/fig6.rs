//! Fig. 6 — speedups by graph type (rmat / soc / web).
//!
//! Geomean multi-GPU speedup over 1 GPU for BFS, DOBFS and PR, split by the
//! three Table II dataset groups. Paper shapes: DOBFS suffers most on rmat
//! (communication on par with computation); the larger |E|/|V| of rmat
//! *helps* BFS and PR scale.

use mgpu_bench::runners::run_scaled;
use mgpu_bench::{geomean, BenchArgs, Primitive, Table};
use mgpu_gen::catalog::TABLE2;
use mgpu_gen::DatasetGroup;
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::RandomPartitioner;
use vgpu::HardwareProfile;

fn main() {
    let args = BenchArgs::parse();
    let part = RandomPartitioner { seed: args.seed };
    let gpu_counts = [2usize, 3, 4, 5, 6];
    println!(
        "Fig. 6 reproduction — geomean speedup over 1 GPU by graph type (shift {})\n",
        args.shift
    );

    for prim in [Primitive::Bfs, Primitive::Dobfs, Primitive::Pr] {
        let mut t = Table::new(&["group", "2", "3", "4", "5", "6"]);
        let mut all_rows: Vec<(String, Vec<f64>)> = Vec::new();
        for group in [DatasetGroup::Rmat, DatasetGroup::Soc, DatasetGroup::Web] {
            let graphs: Vec<Csr<u32, u64>> = TABLE2
                .iter()
                .filter(|d| d.group == group)
                .map(|d| GraphBuilder::undirected(&d.generate(args.shift, args.seed)))
                .collect();
            let base: Vec<f64> = graphs
                .iter()
                .map(|g| {
                    run_scaled(prim, g, 1, HardwareProfile::k40(), &part, args.shift)
                        .expect("run")
                        .report
                        .sim_time_us
                })
                .collect();
            let mut speeds = Vec::new();
            for &n in &gpu_counts {
                let s: Vec<f64> = graphs
                    .iter()
                    .zip(&base)
                    .map(|(g, &b)| {
                        b / run_scaled(prim, g, n, HardwareProfile::k40(), &part, args.shift)
                            .expect("run")
                            .report
                            .sim_time_us
                    })
                    .collect();
                speeds.push(geomean(&s));
            }
            all_rows.push((group.label().to_string(), speeds));
        }
        // the "all" row: geomean over the three groups' geomeans
        let all: Vec<f64> = (0..gpu_counts.len())
            .map(|i| geomean(&all_rows.iter().map(|(_, s)| s[i]).collect::<Vec<_>>()))
            .collect();
        let mut cells = vec!["all".to_string()];
        cells.extend(all.iter().map(|s| format!("{s:.2}x")));
        t.row(&cells);
        for (label, speeds) in &all_rows {
            let mut cells = vec![label.clone()];
            cells.extend(speeds.iter().map(|s| format!("{s:.2}x")));
            t.row(&cells);
        }
        println!("--- {} ---", prim.name());
        t.print();
        println!();
    }
    println!(
        "Shapes to check: DOBFS scales worst on rmat; BFS/PR scale best on rmat (high |E|/|V|\n\
         lowers communication relative to computation)."
    );
}
