//! §VI-A ablation — direction-switch threshold sweep.
//!
//! Sweeps `do_a` and `do_b` for DOBFS on a soc analog across 1/2/4 GPUs.
//! The paper's claims to check: the optimum for a graph family is broad
//! (do_a=0.01, do_b=0.1 works for social graphs), and the best parameters
//! are "mostly mGPU-independent — the same set of parameters can be used
//! for different numbers of GPUs".

use mgpu_bench::{pick_source, BenchArgs, Table};
use mgpu_core::direction::DirectionConfig;
use mgpu_core::{EnactConfig, Runner};
use mgpu_gen::Dataset;
use mgpu_graph::Csr;
use mgpu_partition::{DistGraph, Duplication};
use mgpu_primitives::Dobfs;
use vgpu::{HardwareProfile, SimSystem};

fn run(g: &Csr<u32, u64>, n: usize, do_a: f64, do_b: f64) -> f64 {
    let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n) as u32).collect();
    let mut dist = DistGraph::build(g, owner, n, Duplication::All);
    dist.build_cscs();
    let system = SimSystem::homogeneous(n, HardwareProfile::k40());
    let dobfs =
        Dobfs { direction: DirectionConfig { do_a, do_b, enabled: true }, ..Dobfs::default() };
    let mut runner = Runner::new(system, &dist, dobfs, EnactConfig::default()).unwrap();
    runner.enact(Some(pick_source(g))).unwrap().sim_time_us
}

fn main() {
    let args = BenchArgs::parse();
    let g = Dataset::by_name("soc-orkut").unwrap().build_undirected(args.shift, args.seed);
    println!("Sec. VI-A ablation — DOBFS do_a/do_b sweep on soc-orkut analog (runtime in ms)\n");
    // Wide sweep: tiny do_a switches to pull almost immediately; huge do_a
    // never switches (plain BFS); huge do_b snaps back to push right away.
    let do_as = [0.0001, 0.01, 1.0, 1e6];
    let do_bs = [0.001, 0.1, 10.0];
    for n in [1usize, 2, 4] {
        let mut t = Table::new(&["do_a \\ do_b", "0.001", "0.1", "10.0"]);
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for &a in &do_as {
            let mut cells = vec![format!("{a}")];
            for &b in &do_bs {
                let us = run(&g, n, a, b);
                if us < best.0 {
                    best = (us, a, b);
                }
                cells.push(format!("{:.2}", us / 1e3));
            }
            t.row(&cells);
        }
        println!("--- {n} GPU(s): best (do_a={}, do_b={}) ---", best.1, best.2);
        t.print();
        println!();
    }
    println!(
        "Shape to check: the best cell is the same (or within noise) across GPU counts —\n\
         the thresholds are mGPU-independent."
    );
}
