//! Fig. 5 — strong and weak scaling of DOBFS, BFS and PR in GTEPS.
//!
//! Strong scaling: rmat with 2^24 vertices (scaled by shift), edge factor
//! 32, fixed as GPUs grow. Weak-edge scaling: 2^19 vertices, edge factor
//! 256·n. Weak-vertex scaling: 2^19·n vertices, edge factor 256. Both K80
//! and P100 device profiles, 1–8 GPUs.
//!
//! Paper shapes: BFS and PR scale almost linearly in all modes; DOBFS is
//! flat-to-declining (communication-bound), *worse* on P100 because
//! computation sped up ~2.5× while inter-GPU bandwidth stayed the same.

use mgpu_bench::runners::run_scaled;
use mgpu_bench::{BenchArgs, Primitive, Table};
use mgpu_gen::{rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::RandomPartitioner;
use vgpu::HardwareProfile;

fn main() {
    let args = BenchArgs::parse();
    let part = RandomPartitioner { seed: args.seed };
    let gpu_counts = [1usize, 2, 3, 4, 5, 6, 7, 8];
    let strong_scale = 24u32.saturating_sub(args.shift).max(10);
    let weak_scale = 19u32.saturating_sub(args.shift).max(8);

    println!(
        "Fig. 5 reproduction — GTEPS scaling, rmat strong 2^{strong_scale}/32, weak 2^{weak_scale} base (shift {})\n",
        args.shift
    );

    for (profile_name, profile) in
        [("K80", HardwareProfile::k80_gpu()), ("P100", HardwareProfile::p100())]
    {
        for prim in [Primitive::Dobfs, Primitive::Bfs, Primitive::Pr] {
            let mut t = Table::new(&["GPUs", "strong", "weak-edge", "weak-vertex"]);
            let strong: Csr<u32, u64> =
                GraphBuilder::undirected(&rmat(strong_scale, 32, RmatParams::paper(), args.seed));
            // PR is credited per iteration (|E|·iters / time), the metric
            // the paper's Fig. 5c uses; traversals are credited with |E|.
            let gteps = |out: &mgpu_bench::RunOutcome| {
                if prim == Primitive::Pr {
                    out.report.gteps(out.edges * out.report.iterations.max(1))
                } else {
                    out.gteps()
                }
            };
            for &n in &gpu_counts {
                let s = run_scaled(prim, &strong, n, profile.clone(), &part, args.shift)
                    .expect("strong");
                let we_graph: Csr<u32, u64> = GraphBuilder::undirected(&rmat(
                    weak_scale,
                    32 * n, // paper: 256·n, scaled to keep runs short
                    RmatParams::paper(),
                    args.seed,
                ));
                let we = run_scaled(prim, &we_graph, n, profile.clone(), &part, args.shift)
                    .expect("weak-edge");
                let wv_scale = weak_scale + (n as f64).log2().ceil() as u32;
                let wv_graph: Csr<u32, u64> =
                    GraphBuilder::undirected(&rmat(wv_scale, 32, RmatParams::paper(), args.seed));
                let wv = run_scaled(prim, &wv_graph, n, profile.clone(), &part, args.shift)
                    .expect("weak-vertex");
                t.row(&[
                    format!("{n}"),
                    format!("{:.2}", gteps(&s)),
                    format!("{:.2}", gteps(&we)),
                    format!("{:.2}", gteps(&wv)),
                ]);
            }
            println!("--- {} on {} (GTEPS) ---", prim.name(), profile_name);
            t.print();
            println!();
        }
    }
    println!(
        "Shapes to check: BFS/PR GTEPS grow with GPUs in every mode; DOBFS strong scaling is\n\
         flat, and flatter on P100 than K80 (compute faster, interconnect unchanged)."
    );
}
