//! Seeded chaos soak: the differential oracle for the unified recovery
//! layer. Sweeps random fault plans × memory caps × {direct, butterfly} ×
//! {sync, async} × 2/4/8 GPUs and asserts that every faulty run's *results*
//! are bit-equal to the fault-free run under the identical configuration —
//! and that `same_simulation` holds whenever recovery stayed inert (sync
//! only: async simulated time is scheduling-dependent by design).
//!
//! A failing scenario is **shrunk**: events are greedily removed from the
//! fault plan while the failure persists, so the report names a minimal
//! `FaultPlan` replayable via the CLI's `--fault-plan` flag (the printed
//! spec is `Display`, the exact inverse of `FaultPlan::parse`).
//!
//! ```text
//! chaos_soak [--scenarios N] [--seed S] [--fast] [--json-out FILE]
//! ```
//!
//! `--fast` caps the sweep at 60 scenarios (the PR-CI subset); the default
//! 240 is the full pinned bank. Exit code is non-zero if any scenario
//! fails.

use std::process::ExitCode;

use mgpu_core::{
    AsyncRunner, CommTopology, EnactConfig, PressurePolicy, RecoveryPolicy, ResilientRunner,
};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::{gnm, preferential_attachment};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_primitives::{bfs::gather_labels, cc::gather_components, sssp::gather_dists, Bfs, Cc, Sssp};
use vgpu::{FaultPlan, HardwareProfile, SimSystem};

/// splitmix64 — the same generator the fault plans use, so the scenario
/// bank is a pure function of the bank seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exec {
    Sync,
    Async,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prim {
    Bfs,
    Sssp,
    Cc,
}

impl Prim {
    fn name(self) -> &'static str {
        match self {
            Prim::Bfs => "bfs",
            Prim::Sssp => "sssp",
            Prim::Cc => "cc",
        }
    }
}

/// One soak scenario: everything but the fault plan under test (the shrink
/// loop replays the same scenario with candidate plans).
#[derive(Debug, Clone)]
struct Scenario {
    id: usize,
    gpus: usize,
    exec: Exec,
    prim: Prim,
    topology: CommTopology,
    /// Cap device memory at 3/4 of the clean run's peak and enable the
    /// pressure governor (sync only).
    capped: bool,
    graph_seed: u64,
}

impl Scenario {
    fn label(&self) -> String {
        format!(
            "#{:03} {:5} {:4} {}gpu {:9} capped={} gseed={}",
            self.id,
            match self.exec {
                Exec::Sync => "sync",
                Exec::Async => "async",
            },
            self.prim.name(),
            self.gpus,
            match self.topology {
                CommTopology::Butterfly => "butterfly",
                _ => "direct",
            },
            self.capped,
            self.graph_seed,
        )
    }
}

/// Build the scenario's graph (weighted iff the primitive needs weights).
fn graph_for(s: &Scenario) -> Csr<u32, u64> {
    let nv = 300 + (s.graph_seed % 3) as usize * 300; // 300 / 600 / 900
    match s.prim {
        Prim::Sssp => {
            let mut coo = gnm(nv, nv * 5, s.graph_seed);
            add_paper_weights(&mut coo, s.graph_seed + 1);
            GraphBuilder::undirected(&coo)
        }
        _ => GraphBuilder::undirected(&preferential_attachment(nv, 4, s.graph_seed)),
    }
}

/// Derive the scenario's fault plan from the bank stream. Butterfly
/// scenarios occasionally get a consecutive-index transfer burst that
/// exhausts the per-send retry budget and forces the direct-broadcast
/// fallback; capped scenarios draw from the pressure-aware pool.
fn plan_for(s: &Scenario, rng: &mut u64) -> FaultPlan {
    let seed = splitmix(rng);
    let count = 1 + (splitmix(rng) % 4) as usize;
    let horizon = 8 + splitmix(rng) % 40;
    match s.exec {
        Exec::Async => FaultPlan::random(seed, s.gpus, count, horizon),
        Exec::Sync => {
            // The burst only makes sense where the butterfly actually
            // engages: broadcast-comm primitives (CC here). Elsewhere a
            // 4-deep consecutive burst on one link is correctly fatal —
            // there is no collective to degrade.
            if s.prim == Prim::Cc
                && s.topology == CommTopology::Butterfly
                && splitmix(rng).is_multiple_of(3)
            {
                // 4 consecutive faults on one link = max_retries(3) + 1:
                // the stage send exhausts its in-place retries and the
                // superstep must degrade to direct broadcast.
                let b = splitmix(rng) % 3;
                let spec =
                    (0..4).map(|k| format!("tfail:0>1@{}", b + k)).collect::<Vec<_>>().join(",");
                FaultPlan::parse(&spec).expect("burst spec is well-formed")
            } else if s.capped {
                FaultPlan::random_with_pressure(seed, s.gpus, count, horizon)
            } else {
                FaultPlan::random(seed, s.gpus, count, horizon)
            }
        }
    }
}

/// The scenario bank: a pure function of the bank seed and the count.
fn bank(seed: u64, n: usize) -> Vec<(Scenario, FaultPlan)> {
    let mut rng = seed;
    (0..n)
        .map(|id| {
            let gpus = [2usize, 4, 8][(splitmix(&mut rng) % 3) as usize];
            let exec = if splitmix(&mut rng).is_multiple_of(3) { Exec::Async } else { Exec::Sync };
            let prim = match exec {
                // async needs label-correcting primitives
                Exec::Async => [Prim::Sssp, Prim::Cc][(splitmix(&mut rng) % 2) as usize],
                Exec::Sync => [Prim::Bfs, Prim::Sssp, Prim::Cc][(splitmix(&mut rng) % 3) as usize],
            };
            let topology = if exec == Exec::Sync && splitmix(&mut rng).is_multiple_of(2) {
                CommTopology::Butterfly
            } else {
                CommTopology::Direct
            };
            let capped = exec == Exec::Sync && splitmix(&mut rng).is_multiple_of(3);
            let graph_seed = splitmix(&mut rng) % 1000;
            let s = Scenario { id, gpus, exec, prim, topology, capped, graph_seed };
            let plan = plan_for(&s, &mut rng);
            (s, plan)
        })
        .collect()
}

fn config_for(s: &Scenario, capped: bool) -> EnactConfig {
    EnactConfig {
        recovery: RecoveryPolicy::resilient(),
        comm_topology: s.topology,
        pressure: if capped { PressurePolicy::governed() } else { PressurePolicy::default() },
        ..EnactConfig::default()
    }
}

/// Run the sync executor under `profile`/`config` with an optional fault
/// plan; returns the gathered global-order result (canonicalized to u64)
/// plus the report.
fn run_sync(
    s: &Scenario,
    g: &Csr<u32, u64>,
    profile: HardwareProfile,
    config: EnactConfig,
    plan: Option<&FaultPlan>,
) -> Result<(Vec<u64>, mgpu_core::EnactReport), String> {
    macro_rules! drive {
        ($prim:expr, $gather:expr) => {{
            let mut runner = ResilientRunner::homogeneous(g, $prim, s.gpus, profile, config);
            if let Some(p) = plan {
                runner = runner.with_fault_plan(p.clone());
            }
            runner
                .enact_with(Some(0u32), $gather)
                .map(|(rep, out)| (out.into_iter().map(|x| x as u64).collect(), rep))
                .map_err(|e| format!("{e:?}"))
        }};
    }
    match s.prim {
        Prim::Bfs => drive!(Bfs::default(), gather_labels),
        Prim::Sssp => drive!(Sssp, gather_dists),
        Prim::Cc => drive!(Cc, gather_components),
    }
}

/// Run the async executor; returns the gathered fixpoint (canonicalized to
/// u64). No report comparison — async clocks are scheduling-dependent.
fn run_async(
    s: &Scenario,
    g: &Csr<u32, u64>,
    config: EnactConfig,
    plan: Option<&FaultPlan>,
) -> Result<Vec<u64>, String> {
    let dist = DistGraph::partition(g, &RandomPartitioner { seed: 4 }, s.gpus, Duplication::All);
    let mut system = SimSystem::homogeneous(s.gpus, HardwareProfile::k40());
    if let Some(p) = plan {
        system.attach_fault_plan(p);
    }
    match s.prim {
        Prim::Sssp => {
            let mut runner = AsyncRunner::with_config(system, &dist, Sssp, &config)
                .map_err(|e| format!("{e:?}"))?;
            runner.enact(Some(0u32)).map_err(|e| format!("{e:?}"))?;
            Ok((0..g.n_vertices())
                .map(|v| {
                    let (gpu, local) = dist.locate(v as u32);
                    runner.state(gpu).dists[local as usize] as u64
                })
                .collect())
        }
        Prim::Cc => {
            let mut runner = AsyncRunner::with_config(system, &dist, Cc, &config)
                .map_err(|e| format!("{e:?}"))?;
            runner.enact(None).map_err(|e| format!("{e:?}"))?;
            Ok((0..g.n_vertices())
                .map(|v| {
                    let (gpu, local) = dist.locate(v as u32);
                    runner.state(gpu).comp[local as usize] as u64
                })
                .collect())
        }
        Prim::Bfs => Err("bfs is not label-correcting; no async scenario generates it".into()),
    }
}

/// Execute one scenario under `plan` and return `Err(reason)` on any oracle
/// violation. Pure in (scenario, plan), so the shrink loop can replay it.
fn soak(s: &Scenario, plan: &FaultPlan) -> Result<(), String> {
    let g = graph_for(s);
    match s.exec {
        Exec::Async => {
            let clean = run_async(s, &g, config_for(s, false), None)?;
            let faulty = run_async(s, &g, config_for(s, false), Some(plan))
                .map_err(|e| format!("faulty run failed: {e}"))?;
            if clean != faulty {
                return Err(format!(
                    "async results diverge ({} of {} vertices)",
                    clean.iter().zip(&faulty).filter(|(a, b)| a != b).count(),
                    clean.len()
                ));
            }
            Ok(())
        }
        Exec::Sync => {
            // Fault-free oracle, uncapped.
            let (clean, clean_rep) =
                run_sync(s, &g, HardwareProfile::k40(), config_for(s, false), None)?;
            // Pick the scenario's real profile/config: a tight cap derived
            // from the clean run's peak. If even the fault-free capped run
            // is infeasible (typed OOM at admission), fall back to uncapped
            // for this scenario — deterministically, from the clean run.
            let peak = clean_rep.peak_memory_per_device;
            let mut profile = HardwareProfile::k40();
            let mut config = config_for(s, false);
            let mut baseline = (clean.clone(), clean_rep);
            if s.capped {
                let capped_profile = HardwareProfile::k40().with_capacity(peak * 3 / 4);
                let capped_config = config_for(s, true);
                if let Ok(capped_base) =
                    run_sync(s, &g, capped_profile.clone(), capped_config, None)
                {
                    if capped_base.0 != clean {
                        return Err("capped fault-free run diverges from uncapped".into());
                    }
                    profile = capped_profile;
                    config = capped_config;
                    baseline = capped_base;
                }
            }
            let (faulty, faulty_rep) = run_sync(s, &g, profile, config, Some(plan))
                .map_err(|e| format!("faulty run failed: {e}"))?;
            if faulty != baseline.0 {
                return Err(format!(
                    "sync results diverge ({} of {} vertices)",
                    baseline.0.iter().zip(&faulty).filter(|(a, b)| a != b).count(),
                    faulty.len()
                ));
            }
            // Inert recovery must be invisible: when nothing fired and no
            // failover happened, the simulation is bit-identical.
            let rec = &faulty_rep.recovery;
            if rec.faults_injected == 0
                && rec.failovers == 0
                && !faulty_rep.same_simulation(&baseline.1)
            {
                return Err("recovery was inert but the simulation diverged".into());
            }
            Ok(())
        }
    }
}

/// Greedy delta-debug: repeatedly drop single events while the failure
/// persists. Works on the `Display` spec so the minimized plan is exactly
/// what `--fault-plan` replays.
fn shrink(s: &Scenario, plan: &FaultPlan) -> FaultPlan {
    let mut events: Vec<String> = plan.to_string().split(',').map(str::to_string).collect();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < events.len() {
            let mut cand = events.clone();
            cand.remove(i);
            let cand_plan = if cand.is_empty() {
                FaultPlan::new()
            } else {
                match FaultPlan::parse(&cand.join(",")) {
                    Ok(p) => p,
                    Err(_) => {
                        i += 1;
                        continue;
                    }
                }
            };
            if soak(s, &cand_plan).is_err() {
                events = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced || events.is_empty() {
            break;
        }
    }
    if events.is_empty() {
        FaultPlan::new()
    } else {
        FaultPlan::parse(&events.join(",")).expect("display output re-parses")
    }
}

struct Args {
    scenarios: usize,
    seed: u64,
    json_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args { scenarios: 240, seed: 42, json_out: None };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--scenarios" => {
                a.scenarios =
                    value("--scenarios")?.parse().map_err(|e| format!("--scenarios: {e}"))?
            }
            "--seed" => a.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--fast" => a.scenarios = a.scenarios.min(60),
            "--json-out" => a.json_out = Some(value("--json-out")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(a)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos_soak: {e}");
            eprintln!("usage: chaos_soak [--scenarios N] [--seed S] [--fast] [--json-out FILE]");
            return ExitCode::FAILURE;
        }
    };
    println!("chaos soak: {} scenarios, bank seed {}", args.scenarios, args.seed);
    let mut failures: Vec<(Scenario, FaultPlan, FaultPlan, String)> = Vec::new();
    let mut passed = 0usize;
    for (s, plan) in bank(args.seed, args.scenarios) {
        match soak(&s, &plan) {
            Ok(()) => {
                passed += 1;
                println!("  ok   {}  plan [{}]", s.label(), plan);
            }
            Err(reason) => {
                let min = shrink(&s, &plan);
                println!("  FAIL {}  plan [{}]", s.label(), plan);
                println!("       reason: {reason}");
                println!("       minimized: --fault-plan '{min}'");
                failures.push((s, plan, min, reason));
            }
        }
    }
    println!("\n{passed}/{} scenarios passed", passed + failures.len());
    if let Some(path) = &args.json_out {
        let rows: Vec<String> = failures
            .iter()
            .map(|(s, plan, min, reason)| {
                format!(
                    "{{\"scenario\":\"{}\",\"plan\":\"{}\",\"minimized\":\"{}\",\"reason\":\"{}\"}}",
                    s.label().trim(),
                    plan,
                    min,
                    reason.replace('"', "'"),
                )
            })
            .collect();
        let json = format!(
            "{{\"seed\":{},\"scenarios\":{},\"passed\":{},\"failures\":[{}]}}\n",
            args.seed,
            passed + failures.len(),
            passed,
            rows.join(",")
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("chaos_soak: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("report written to {path}");
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
