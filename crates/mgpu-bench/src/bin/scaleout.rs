//! Scale-out study — the paper's §VIII second "key next step": "can we
//! achieve further scalability (scale-out) with multiple nodes, and given
//! the increased latency and decreased bandwidth of those nodes, is it
//! profitable to do so?"
//!
//! Compares, at a fixed total GPU count, a single node (all-PCIe fabric)
//! against 2- and 4-node arrangements (PCIe inside a node, InfiniBand-class
//! link between nodes) for BFS, DOBFS and PR — quantifying exactly when
//! scale-up beats scale-out, the trade the paper's §VII-C comparison with
//! cluster systems gestures at.

use mgpu_bench::runners::Primitive;
use mgpu_bench::{BenchArgs, Table};
use mgpu_core::EnactConfig;
use mgpu_gen::{rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::RandomPartitioner;
use vgpu::{HardwareProfile, Interconnect, SimSystem};

fn run(
    prim: Primitive,
    g: &Csr<u32, u64>,
    nodes: usize,
    gpus_per_node: usize,
    shift: u32,
    seed: u64,
) -> f64 {
    let n = nodes * gpus_per_node;
    let s = (1u64 << shift) as f64;
    let ic = if nodes == 1 {
        Interconnect::pcie3(n, 4).with_latency_scale(s)
    } else {
        Interconnect::two_level(nodes, gpus_per_node).with_latency_scale(s)
    };
    let profile = HardwareProfile::k40().with_overhead_scale(s);
    let sys = SimSystem::new(vec![profile; n], ic).unwrap();
    mgpu_bench::run_primitive(prim, g, sys, &RandomPartitioner { seed }, EnactConfig::default())
        .expect("run")
        .report
        .sim_time_us
}

fn main() {
    let args = BenchArgs::parse();
    let scale = 22u32.saturating_sub(args.shift).max(12);
    let g: Csr<u32, u64> =
        GraphBuilder::undirected(&rmat(scale, 32, RmatParams::paper(), args.seed));
    println!(
        "Scale-out study (§VIII future work) — 8 GPUs total, rmat 2^{scale}/32, runtime in ms\n"
    );
    let mut t = Table::new(&[
        "primitive",
        "1 node x 8 GPUs",
        "2 nodes x 4",
        "4 nodes x 2",
        "scale-out penalty",
    ]);
    for prim in [Primitive::Bfs, Primitive::Dobfs, Primitive::Pr] {
        let one = run(prim, &g, 1, 8, args.shift, args.seed);
        let two = run(prim, &g, 2, 4, args.shift, args.seed);
        let four = run(prim, &g, 4, 2, args.shift, args.seed);
        t.row(&[
            prim.name().into(),
            format!("{:.3}", one / 1e3),
            format!("{:.3}", two / 1e3),
            format!("{:.3}", four / 1e3),
            format!("{:.2}x at 4 nodes", four / one),
        ]);
    }
    t.print();
    println!(
        "\nShape: every primitive pays for crossing the node boundary (the paper's\n\
         \"increased latency and decreased bandwidth\"); with bitmap-compressed broadcast\n\
         frontiers DOBFS's penalty is bandwidth-small but its combine work stays, so the\n\
         list-encoded primitives (BFS, PR) pay mostly bandwidth. Either way a single\n\
         node wins at equal GPU count — the paper's scale-up-first position (§VII-C)."
    );
}
