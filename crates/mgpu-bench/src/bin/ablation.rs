//! Ablation study — isolating the design choices DESIGN.md calls out.
//!
//! 1. **Kernel fusion (§VI-C)**: fused vs unfused BFS pipeline — launch
//!    count, memory and time.
//! 2. **Load-balanced advance (§II-B)**: Gunrock-style load balancing vs
//!    naive thread-mapped advance on power-law vs uniform frontiers.
//! 3. **Communication strategy (§III-C)**: BFS with selective vs broadcast
//!    communication — volume and time.
//! 4. **Prioritized SSSP**: delta-stepping vs frontier Bellman–Ford on a
//!    road-network analog (the Groute effect, §II-A).

use mgpu_bench::fmt::fmt_bytes;
use mgpu_bench::runners::scaled_system;
use mgpu_bench::{BenchArgs, Table};
use mgpu_core::alloc::AllocScheme;
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops::{self, AdvanceMode};
use mgpu_core::{EnactConfig, FrontierBufs, Runner};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::{grid2d, rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication, RandomPartitioner};
use mgpu_primitives::{Bfs, Sssp, SsspDelta};
use vgpu::{Device, HardwareProfile};

fn main() {
    let args = BenchArgs::parse();
    let scale = 18u32.saturating_sub(args.shift).max(12);
    let g: Csr<u32, u64> =
        GraphBuilder::undirected(&rmat(scale, 16, RmatParams::paper(), args.seed));
    let part = RandomPartitioner { seed: args.seed };

    // ---------- 1. kernel fusion ----------
    println!("1. Kernel fusion (BFS, 4 GPUs, rmat 2^{scale}/16)\n");
    let mut t = Table::new(&["pipeline", "kernel launches", "peak mem/GPU", "sim time (ms)"]);
    for (label, scheme) in [
        ("advance→filter (unfused, max alloc)", AllocScheme::Max),
        ("fused advance+filter", AllocScheme::PreallocFusion { sizing_factor: 1.0 }),
    ] {
        let dist = DistGraph::partition(&g, &part, 4, Duplication::All);
        let sys = scaled_system(4, HardwareProfile::k40(), args.shift);
        let config = EnactConfig { alloc_scheme: Some(scheme), ..Default::default() };
        let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
        let r = runner.enact(Some(mgpu_bench::pick_source(&g))).unwrap();
        t.row(&[
            label.into(),
            format!("{}", r.totals.kernel_launches),
            fmt_bytes(r.peak_memory_per_device),
            format!("{:.3}", r.sim_time_us / 1e3),
        ]);
    }
    t.print();

    // ---------- 2. load-balanced vs thread-mapped advance ----------
    println!("\n2. Advance work mapping (single full-frontier advance, 1 GPU)\n");
    let mut t = Table::new(&["frontier", "load-balanced (µs)", "thread-mapped (µs)", "penalty"]);
    let uniform: Csr<u32, u64> = GraphBuilder::undirected(&grid2d(128, 128, 1.0, args.seed));
    for (label, graph) in [("rmat (power-law)", &g), ("grid (uniform)", &uniform)] {
        let dist = DistGraph::build(graph, vec![0; graph.n_vertices()], 1, Duplication::All);
        let sub = &dist.parts[0];
        let frontier: Vec<u32> = (0..graph.n_vertices() as u32).collect();
        let time = |mode| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs =
                FrontierBufs::new(&mut dev, AllocScheme::Max, sub.n_vertices(), sub.n_edges())
                    .unwrap();
            ops::advance_with_mode(&mut dev, sub, &mut bufs, &frontier, mode, |_, _, d| Some(d))
                .unwrap();
            dev.now()
        };
        let lb = time(AdvanceMode::LoadBalanced);
        let tm = time(AdvanceMode::ThreadMapped);
        t.row(&[label.into(), format!("{lb:.1}"), format!("{tm:.1}"), format!("{:.1}x", tm / lb)]);
    }
    t.print();

    // ---------- 3. selective vs broadcast communication ----------
    println!("\n3. Communication strategy (BFS, 4 GPUs)\n");
    let mut t = Table::new(&["strategy", "H (vertices)", "H (bytes)", "sim time (ms)"]);
    for (label, comm) in [
        ("selective (BFS's choice)", CommStrategy::Selective),
        ("broadcast", CommStrategy::Broadcast),
    ] {
        let dist = DistGraph::partition(&g, &part, 4, Duplication::All);
        let sys = scaled_system(4, HardwareProfile::k40(), args.shift);
        let config = EnactConfig { comm: Some(comm), ..Default::default() };
        let mut runner = Runner::new(sys, &dist, Bfs::default(), config).unwrap();
        let r = runner.enact(Some(mgpu_bench::pick_source(&g))).unwrap();
        t.row(&[
            label.into(),
            format!("{}", r.totals.h_vertices),
            fmt_bytes(r.totals.h_bytes_sent),
            format!("{:.3}", r.sim_time_us / 1e3),
        ]);
    }
    t.print();

    // ---------- 4. prioritized SSSP ----------
    println!("\n4. Prioritized SSSP on a road analog (2 GPUs, weights [0,64])\n");
    let side = (1usize << (10u32.saturating_sub(args.shift / 2).max(6))).min(512);
    let mut coo = grid2d(side, side, 1.0, args.seed);
    add_paper_weights(&mut coo, args.seed + 1);
    let road: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let mut t = Table::new(&["algorithm", "supersteps", "W items", "sim time (ms)"]);

    let dist = DistGraph::partition(&road, &part, 2, Duplication::All);
    let sys = scaled_system(2, HardwareProfile::k40(), args.shift);
    let mut bf = Runner::new(sys, &dist, Sssp, EnactConfig::default()).unwrap();
    let r_bf = bf.enact(Some(0u32)).unwrap();
    t.row(&[
        "Bellman-Ford frontier".into(),
        format!("{}", r_bf.iterations),
        format!("{}", r_bf.totals.w_items),
        format!("{:.3}", r_bf.sim_time_us / 1e3),
    ]);
    let sys = scaled_system(2, HardwareProfile::k40(), args.shift);
    let mut ds = Runner::new(sys, &dist, SsspDelta { delta: 16 }, EnactConfig::default()).unwrap();
    let r_ds = ds.enact(Some(0u32)).unwrap();
    t.row(&[
        "delta-stepping (Δ=16)".into(),
        format!("{}", r_ds.iterations),
        format!("{}", r_ds.totals.w_items),
        format!("{:.3}", r_ds.sim_time_us / 1e3),
    ]);
    t.print();
    println!(
        "\nShapes: fusion cuts launches and the intermediate buffer; thread mapping only hurts\n\
         on skewed frontiers; broadcast touches ~2.5x more vertices than selective (though\n\
         uniform-payload broadcasts compress to bitmaps, so BYTES can be lower — combine\n\
         work is what broadcast really costs); delta-stepping wastes fewer relaxations (W)\n\
         at the cost of more supersteps."
    );
}
