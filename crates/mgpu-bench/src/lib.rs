//! # mgpu-bench — the experiment harness
//!
//! One binary per table and figure of the paper's evaluation (§VII), each
//! printing the same rows/series the paper reports with paper-reported
//! values alongside the measured ones:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — measured W/C/H/S counters vs analytic orders |
//! | `table2` | Table II — dataset inventory of the scaled analogs |
//! | `fig2` | Fig. 2 — partitioner impact, 3 primitives × 3 datasets |
//! | `fig3` | Fig. 3 — memory use of the four allocation schemes |
//! | `fig4` | Fig. 4 — speedup over 1 GPU for all six primitives |
//! | `fig5` | Fig. 5 — strong/weak scaling of DOBFS, BFS, PR (K80+P100) |
//! | `fig6` | Fig. 6 — speedups split by graph type |
//! | `table3` | Table III — vs in-core GPU BFS baselines |
//! | `table4` | Table IV — vs out-of-core / CPU systems |
//! | `table5` | Table V — large graphs and 64-bit id cost |
//! | `sec5a` | §V-A — runtime vs artificial H inflation |
//! | `sec5b` | §V-B — per-iteration overhead (1 vertex + 1 edge/iter) |
//! | `sec6a` | §VI-A — do_a/do_b threshold sweep across GPU counts |
//!
//! All binaries accept `--shift N` (vertex-count scale-down of `2^N`;
//! default 8) and `--seed S`.

pub mod args;
pub mod baseline;
pub mod fmt;
pub mod runners;
pub mod service;

pub use args::BenchArgs;
pub use baseline::{compare_rows, compare_speedups, gate_report, Json};
pub use fmt::{geomean, Table};
pub use runners::{
    pick_source, run_multi_source, run_on_k, run_primitive, MultiSourceMode, Primitive, RunOutcome,
};
pub use service::{build_query_specs, parse_query_list, residency_bytes, ExecMode, QueryDesc};
