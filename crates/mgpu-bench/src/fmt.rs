//! Plain-text table rendering and the geometric mean the paper's speedup
//! figures aggregate with.

/// Geometric mean of a non-empty slice (the aggregation used by Fig. 4 and
/// Fig. 6: "geometric means of runtime speedup over all datasets").
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", c, w = width[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a microsecond duration human-readably.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    const GIB: f64 = (1u64 << 30) as f64;
    const MIB: f64 = (1u64 << 20) as f64;
    let b = b as f64;
    if b >= GIB {
        format!("{:.2} GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else {
        format!("{:.1} KiB", b / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_reciprocal_pair_is_one() {
        assert!((geomean(&[4.0, 0.25]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn humane_units() {
        assert_eq!(fmt_us(1500.0), "1.50 ms");
        assert_eq!(fmt_us(2.5e6), "2.50 s");
        assert_eq!(fmt_bytes(3 << 30), "3.00 GiB");
    }
}
