//! Uniform primitive dispatch for the experiment binaries.

use std::sync::Arc;

use mgpu_core::{CommStrategy, Downgrade, EnactConfig, EnactReport, ResilientRunner, Runner};
use mgpu_graph::{Csr, CsrAuto, Id};
use mgpu_partition::{DistGraph, Duplication, Partitioner};
use mgpu_primitives::{Bc, BcBatch, Bfs, Cc, Dobfs, MsBfs, Pagerank, Sssp};
use mgpu_core::problem::MgpuProblem;
use vgpu::{FaultPlan, Result, SimSystem, VgpuError};

/// The six evaluated primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Breadth-first search.
    Bfs,
    /// Direction-optimizing BFS.
    Dobfs,
    /// Single-source shortest paths.
    Sssp,
    /// Betweenness centrality (single source).
    Bc,
    /// Connected components.
    Cc,
    /// PageRank (fixed 20 iterations for comparability).
    Pr,
}

impl Primitive {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Primitive::Bfs => "BFS",
            Primitive::Dobfs => "DOBFS",
            Primitive::Sssp => "SSSP",
            Primitive::Bc => "BC",
            Primitive::Cc => "CC",
            Primitive::Pr => "PR",
        }
    }

    /// All six, in the paper's Fig. 4 order.
    pub fn all() -> [Primitive; 6] {
        [
            Primitive::Bc,
            Primitive::Bfs,
            Primitive::Cc,
            Primitive::Dobfs,
            Primitive::Pr,
            Primitive::Sssp,
        ]
    }

    /// Does this primitive take a source vertex?
    pub fn needs_source(self) -> bool {
        !matches!(self, Primitive::Cc | Primitive::Pr)
    }

    /// The vertex-duplication strategy the primitive requests (Table I).
    pub fn duplication(self) -> Duplication {
        Duplication::All
    }
}

/// The outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The enact report (sim time, counters, memory, iterations).
    pub report: EnactReport,
    /// Edge count the run is credited with (the graph's |E|).
    pub edges: usize,
}

impl RunOutcome {
    /// GTEPS under the paper's crediting convention.
    pub fn gteps(&self) -> f64 {
        self.report.gteps(self.edges)
    }

    /// Simulated milliseconds.
    pub fn ms(&self) -> f64 {
        self.report.sim_ms()
    }
}

/// The highest-degree vertex — the conventional BFS source for power-law
/// graphs (guarantees the traversal covers the giant component).
pub fn pick_source<V: Id, O: Id>(g: &Csr<V, O>) -> V {
    let mut best = 0usize;
    let mut best_deg = 0usize;
    for v in 0..g.n_vertices() {
        let d = g.degree(V::from_usize(v));
        if d > best_deg {
            best_deg = d;
            best = v;
        }
    }
    V::from_usize(best)
}

/// Bind + enact one attempt, recording any global downgrade `notes` the
/// caller already took so they show up in the report's governor log.
fn dispatch<O: Id>(
    prim: Primitive,
    system: SimSystem,
    dist: &DistGraph<u32, O>,
    config: EnactConfig,
    src: Option<u32>,
    notes: &[Downgrade],
    one_hop: bool,
) -> Result<EnactReport> {
    macro_rules! go {
        ($p:expr) => {{
            let mut r = Runner::new(system, dist, $p, config)?;
            for d in notes {
                r.note_downgrade(d.clone());
            }
            r.enact(src)
        }};
    }
    match prim {
        Primitive::Bfs => go!(Bfs { one_hop }),
        Primitive::Dobfs => go!(Dobfs::default()),
        Primitive::Sssp => go!(Sssp),
        Primitive::Bc => go!(Bc),
        Primitive::Cc => go!(Cc),
        Primitive::Pr => go!(Pagerank { damping: 0.85, threshold: 0.0, max_iters: 20 }),
    }
}

/// Does `prim`'s own communication preference allow dropping a broadcast
/// override? (CC and DOBFS *require* broadcast wire ids.)
fn prefers_selective(prim: Primitive) -> bool {
    matches!(prim, Primitive::Bfs | Primitive::Sssp | Primitive::Bc | Primitive::Pr)
}

/// Partition `g` for `prim` and run it once on `system`.
///
/// Under an enabled [`mgpu_core::PressurePolicy`] this layer owns the
/// *global* links of the admission downgrade chain, which need a re-bind the
/// enactor cannot do itself: an admission `OutOfMemory` first drops a
/// `broadcast` comm override back to the primitive's preferred `selective`
/// (wire formats permitting), then re-partitions `duplicate-all →
/// duplicate-1-hop` (BFS supports both). Each step is recorded in the
/// report's governor log; only when the chain is exhausted does the typed
/// OOM reach the caller.
pub fn run_primitive<O: Id>(
    prim: Primitive,
    g: &Csr<u32, O>,
    system: SimSystem,
    partitioner: &impl Partitioner,
    config: EnactConfig,
) -> Result<RunOutcome> {
    let n = system.n_devices();
    let src = prim.needs_source().then(|| pick_source(g));
    // A governed retry consumes the system, so capture what a rebuild needs
    // up front (profiles, fabric, fault injector).
    let rebuild = config.pressure.enabled.then(|| {
        (
            system.devices.iter().map(|d| d.profile().clone()).collect::<Vec<_>>(),
            (*system.interconnect).clone(),
            system.fault_injector(),
        )
    });
    let mut system = Some(system);
    let mut cfg = config;
    let mut dup = prim.duplication();
    let mut notes: Vec<Downgrade> = Vec::new();
    loop {
        let sys = match system.take() {
            Some(s) => s,
            None => {
                let (profiles, ic, inj) = rebuild.as_ref().expect("governed retries only");
                let mut s = SimSystem::new(profiles.clone(), ic.clone())?;
                if let Some(inj) = inj {
                    for d in &mut s.devices {
                        d.set_fault_injector(Some(Arc::clone(inj)));
                    }
                }
                s
            }
        };
        let mut dist = DistGraph::partition(g, partitioner, n, dup);
        if prim == Primitive::Dobfs {
            dist.build_cscs();
        }
        let one_hop = dup == Duplication::OneHop;
        match dispatch(prim, sys, &dist, cfg, src, &notes, one_hop) {
            Ok(report) => return Ok(RunOutcome { report, edges: g.n_edges() }),
            Err(VgpuError::OutOfMemory { requested, capacity, .. })
                if cfg.pressure.enabled
                    && cfg.comm == Some(CommStrategy::Broadcast)
                    && prefers_selective(prim) =>
            {
                notes.push(Downgrade {
                    device: None,
                    kind: "comm",
                    from: "broadcast",
                    to: "selective",
                    estimated_bytes: requested,
                    budget_bytes: capacity,
                });
                cfg.comm = None;
            }
            Err(VgpuError::OutOfMemory { requested, capacity, .. })
                if cfg.pressure.enabled && prim == Primitive::Bfs && dup == Duplication::All =>
            {
                notes.push(Downgrade {
                    device: None,
                    kind: "duplication",
                    from: "duplicate-all",
                    to: "duplicate-1-hop",
                    estimated_bytes: requested,
                    budget_bytes: capacity,
                });
                dup = Duplication::OneHop;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Partition `g` for `prim` and run it under a fault plan through the
/// self-healing [`ResilientRunner`] — the path `mgpu run --fault-plan
/// --recovery` takes. The enact retries transient faults and degrades to
/// the surviving devices on a permanent loss, per `config.recovery`.
pub fn run_primitive_resilient(
    prim: Primitive,
    g: &Csr<u32, u64>,
    n: usize,
    profile: vgpu::HardwareProfile,
    partitioner: &impl Partitioner,
    config: EnactConfig,
    plan: FaultPlan,
) -> Result<RunOutcome> {
    let owner = partitioner.assign(g, n);
    let src = prim.needs_source().then(|| pick_source(g));
    macro_rules! resilient {
        ($problem:expr) => {
            ResilientRunner::homogeneous(g, $problem, n, profile, config)
                .with_owner(owner)
                .with_fault_plan(plan)
        };
    }
    let report = match prim {
        Primitive::Bfs => resilient!(Bfs::default()).enact(src)?,
        Primitive::Dobfs => resilient!(Dobfs::default()).with_csc().enact(src)?,
        Primitive::Sssp => resilient!(Sssp).enact(src)?,
        Primitive::Bc => resilient!(Bc).enact(src)?,
        Primitive::Cc => resilient!(Cc).enact(src)?,
        Primitive::Pr => {
            let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 20 };
            resilient!(pr).enact(None)?
        }
    };
    Ok(RunOutcome { report, edges: g.n_edges() })
}

/// How a multi-source campaign is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiSourceMode {
    /// One enact per source on a *single* runner: the graph is partitioned
    /// and made resident once, then every source reuses that residency —
    /// the fix for the old shape where each source paid a fresh partition.
    Repeated,
    /// The batched bitfield engine (`MsBfs` / `BcBatch`): all sources ride
    /// one enact, one `u64` lane per source.
    Batched,
}

/// Run a source-parallel primitive (BFS or BC) over `sources`, partitioning
/// the graph exactly once whichever mode is chosen. `Repeated` absorbs the
/// per-source reports into one aggregate ([`EnactReport::absorb`]);
/// `Batched` enacts the bitfield-packed engine once. The two modes answer
/// the same question, so their per-source results agree bit-for-bit — the
/// aggregate *costs* are what differ.
pub fn run_multi_source<O: Id>(
    prim: Primitive,
    g: &Csr<u32, O>,
    system: SimSystem,
    partitioner: &impl Partitioner,
    config: EnactConfig,
    sources: &[usize],
    mode: MultiSourceMode,
) -> Result<RunOutcome> {
    assert!(!sources.is_empty(), "multi-source run needs at least one source");
    assert!(
        matches!(prim, Primitive::Bfs | Primitive::Bc),
        "multi-source dispatch covers the source-parallel primitives (BFS, BC), not {}",
        prim.name()
    );
    let n = system.n_devices();
    let dist = DistGraph::partition(g, partitioner, n, prim.duplication());
    let report = match (mode, prim) {
        (MultiSourceMode::Repeated, Primitive::Bfs) => {
            let mut runner = Runner::new(system, &dist, Bfs::default(), config)?;
            absorb_enacts(&mut runner, sources)?
        }
        (MultiSourceMode::Repeated, Primitive::Bc) => {
            let mut runner = Runner::new(system, &dist, Bc, config)?;
            absorb_enacts(&mut runner, sources)?
        }
        (MultiSourceMode::Batched, Primitive::Bfs) => {
            Runner::new(system, &dist, MsBfs::new(sources.to_vec()), config)?.enact(None)?
        }
        (MultiSourceMode::Batched, Primitive::Bc) => {
            Runner::new(system, &dist, BcBatch::new(sources.to_vec()), config)?.enact(None)?
        }
        _ => unreachable!(),
    };
    // The repeated aggregate still credits one |E|: both modes answer the
    // same batch of traversals, so GTEPS comparisons stay apples-to-apples.
    Ok(RunOutcome { report, edges: g.n_edges() })
}

/// Enact every source on the already-bound runner, folding the reports.
fn absorb_enacts<V: Id, O: Id, P: MgpuProblem<V, O>>(
    runner: &mut Runner<'_, V, O, P>,
    sources: &[usize],
) -> Result<EnactReport> {
    let mut agg: Option<EnactReport> = None;
    for &s in sources {
        let r = runner.enact(Some(V::from_usize(s)))?;
        match &mut agg {
            None => agg = Some(r),
            Some(a) => a.absorb(&r),
        }
    }
    Ok(agg.expect("at least one source"))
}

/// Run at the offset width [`mgpu_graph::GraphBuilder::build_auto`] chose:
/// the narrow (u32) layout when the graph fits — `Runner::new` credits its
/// halved index bandwidth in the cost model (paper Table V) — or the u64
/// fallback otherwise.
pub fn run_primitive_auto(
    prim: Primitive,
    g: &CsrAuto<u32>,
    system: SimSystem,
    partitioner: &impl Partitioner,
    config: EnactConfig,
) -> Result<RunOutcome> {
    match g {
        CsrAuto::Narrow(g) => run_primitive(prim, g, system, partitioner, config),
        CsrAuto::Wide(g) => run_primitive(prim, g, system, partitioner, config),
    }
}

/// Convenience: run on `n` homogeneous devices of `profile`.
pub fn run_on_k<O: Id>(
    prim: Primitive,
    g: &Csr<u32, O>,
    n: usize,
    profile: vgpu::HardwareProfile,
    partitioner: &impl Partitioner,
) -> Result<RunOutcome> {
    run_primitive(prim, g, SimSystem::homogeneous(n, profile), partitioner, EnactConfig::default())
}

/// Build an `n`-device system whose fixed overheads are shrunk by
/// `2^shift`, matching a dataset that was shrunk by `2^shift` — the
/// dimensional scaling that preserves the paper's work-to-overhead ratios
/// (see `HardwareProfile::with_overhead_scale`).
pub fn scaled_system(n: usize, profile: vgpu::HardwareProfile, shift: u32) -> SimSystem {
    let s = (1u64 << shift.min(40)) as f64;
    let profile = profile.with_overhead_scale(s);
    let ic = vgpu::Interconnect::pcie3(n, 4).with_latency_scale(s);
    SimSystem::new(vec![profile; n], ic).expect("sizes match")
}

/// Run on `n` overhead-scaled devices (the standard figure configuration).
pub fn run_scaled<O: Id>(
    prim: Primitive,
    g: &Csr<u32, O>,
    n: usize,
    profile: vgpu::HardwareProfile,
    partitioner: &impl Partitioner,
    shift: u32,
) -> Result<RunOutcome> {
    run_primitive(prim, g, scaled_system(n, profile, shift), partitioner, EnactConfig::default())
}

/// Expose each primitive's requested duplication/communication description
/// for the Table I printout.
pub fn primitive_comm_label(prim: Primitive) -> &'static str {
    match prim {
        Primitive::Bfs => {
            let p = Bfs::default();
            match <Bfs as MgpuProblem<u32, u64>>::comm(&p) {
                mgpu_core::CommStrategy::Selective => "selective",
                mgpu_core::CommStrategy::Broadcast => "broadcast",
            }
        }
        Primitive::Dobfs | Primitive::Cc => "broadcast",
        Primitive::Bc => "selective fwd / broadcast bwd",
        _ => "selective",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::governor::estimate_footprint;
    use mgpu_core::{AllocScheme, PressurePolicy};
    use mgpu_gen::weights::add_paper_weights;
    use mgpu_gen::{gnm, grid2d, preferential_attachment};
    use mgpu_graph::GraphBuilder;
    use mgpu_partition::{ChunkedPartitioner, RandomPartitioner};
    use vgpu::HardwareProfile;

    /// The admission floor estimate `Runner::new` compares against the hard
    /// watermark for BFS (u32 ids, u32 messages, 4 state bytes/vertex),
    /// maximized over devices.
    fn bfs_floor_estimate(dist: &DistGraph<u32, u64>, comm: CommStrategy) -> u64 {
        dist.parts
            .iter()
            .map(|sub| {
                estimate_footprint(
                    AllocScheme::JustEnough,
                    comm,
                    dist.n_parts,
                    sub.n_vertices(),
                    sub.n_edges(),
                    sub.topology_bytes(),
                    4,
                    4,
                    4,
                )
                .total()
            })
            .max()
            .unwrap()
    }

    #[test]
    fn every_primitive_runs_through_the_dispatcher() {
        let mut coo = preferential_attachment(200, 6, 1);
        add_paper_weights(&mut coo, 2);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        for prim in Primitive::all() {
            let out = run_on_k(prim, &g, 2, HardwareProfile::k40(), &RandomPartitioner::default())
                .unwrap_or_else(|e| panic!("{}: {e}", prim.name()));
            assert!(out.report.sim_time_us > 0.0, "{}", prim.name());
            assert!(out.gteps() > 0.0, "{}", prim.name());
        }
    }

    #[test]
    fn admission_refusal_downgrades_bfs_duplication_to_one_hop() {
        // A grid cut into contiguous strips: duplicate-all replicates the
        // whole vertex space on every device, while duplicate-1-hop keeps a
        // strip plus two boundary rows — a large, certain memory gap.
        let g: Csr<u32, u64> = GraphBuilder::undirected(&grid2d(32, 32, 1.0, 1));
        let n = 4;
        let all = DistGraph::<u32, u64>::partition(&g, &ChunkedPartitioner, n, Duplication::All);
        let hop = DistGraph::<u32, u64>::partition(&g, &ChunkedPartitioner, n, Duplication::OneHop);
        let all_floor = bfs_floor_estimate(&all, CommStrategy::Selective);
        let hop_floor = bfs_floor_estimate(&hop, CommStrategy::Selective);
        assert!(hop_floor < all_floor, "the test graph must make 1-hop strictly cheaper");
        // Between the two floors: duplicate-all is refused even at the
        // JustEnough floor, duplicate-1-hop is admitted.
        let cap = (hop_floor + all_floor) / 2;
        let system = SimSystem::homogeneous(n, HardwareProfile::k40().with_capacity(cap));
        let config = EnactConfig { pressure: PressurePolicy::governed(), ..EnactConfig::default() };
        let out = run_primitive(Primitive::Bfs, &g, system, &ChunkedPartitioner, config)
            .expect("the duplication downgrade must rescue the run");
        let gov = &out.report.governor;
        let dup = gov
            .downgrades
            .iter()
            .find(|d| d.kind == "duplication")
            .expect("the re-partition must be recorded in the governor log");
        assert_eq!(dup.device, None, "duplication is a global decision");
        assert_eq!((dup.from, dup.to), ("duplicate-all", "duplicate-1-hop"));
        assert!(out.report.iterations > 0);
        // The uncapped run is never downgraded.
        let uncapped = run_primitive(
            Primitive::Bfs,
            &g,
            SimSystem::homogeneous(n, HardwareProfile::k40()),
            &ChunkedPartitioner,
            config,
        )
        .unwrap();
        assert!(uncapped.report.governor.downgrades.is_empty());
        assert_eq!(uncapped.report.iterations, out.report.iterations);
    }

    #[test]
    fn admission_refusal_drops_a_broadcast_override_before_failing() {
        let g = GraphBuilder::undirected(&gnm(4000, 8000, 7));
        let n = 4;
        let dist = DistGraph::<u32, u64>::partition(
            &g,
            &RandomPartitioner { seed: 11 },
            n,
            Duplication::All,
        );
        let sel_floor = bfs_floor_estimate(&dist, CommStrategy::Selective);
        let bro_floor = bfs_floor_estimate(&dist, CommStrategy::Broadcast);
        assert!(sel_floor < bro_floor, "broadcast staging must cost more than selective");
        // Between the floors: a broadcast override is refused at admission,
        // the primitive's own selective preference is admitted.
        let cap = (sel_floor + bro_floor) / 2;
        let system = SimSystem::homogeneous(n, HardwareProfile::k40().with_capacity(cap));
        let config = EnactConfig {
            comm: Some(CommStrategy::Broadcast),
            pressure: PressurePolicy::governed(),
            ..EnactConfig::default()
        };
        let out =
            run_primitive(Primitive::Bfs, &g, system, &RandomPartitioner { seed: 11 }, config)
                .expect("dropping the comm override must rescue the run");
        let gov = &out.report.governor;
        let comm = gov
            .downgrades
            .iter()
            .find(|d| d.kind == "comm")
            .expect("the dropped override must be recorded in the governor log");
        assert_eq!(comm.device, None, "the comm strategy is a global decision");
        assert_eq!((comm.from, comm.to), ("broadcast", "selective"));
        // Degraded ≠ different: the selective run does the same supersteps as
        // an unconstrained selective run.
        let selective = run_primitive(
            Primitive::Bfs,
            &g,
            SimSystem::homogeneous(n, HardwareProfile::k40()),
            &RandomPartitioner { seed: 11 },
            EnactConfig::default(),
        )
        .unwrap();
        assert_eq!(out.report.iterations, selective.report.iterations);
    }

    #[test]
    fn auto_width_runs_narrow_and_matches_wide_results() {
        let coo = preferential_attachment(200, 6, 1);
        let auto = GraphBuilder::undirected_auto(&coo);
        assert_eq!(auto.label(), "u32", "a 200-vertex graph fits narrow offsets");
        let part = RandomPartitioner::default();
        let narrow = run_primitive_auto(
            Primitive::Bfs,
            &auto,
            SimSystem::homogeneous(2, HardwareProfile::k40()),
            &part,
            EnactConfig::default(),
        )
        .unwrap();
        let wide: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let wide = run_on_k(Primitive::Bfs, &wide, 2, HardwareProfile::k40(), &part).unwrap();
        assert_eq!(narrow.report.iterations, wide.report.iterations);
        assert!(
            narrow.ms() < wide.ms(),
            "the cost model must credit narrow offsets with less index bandwidth \
             (narrow {} ms vs wide {} ms)",
            narrow.ms(),
            wide.ms()
        );
    }

    #[test]
    fn multi_source_batched_beats_repeated_on_supersteps_and_time() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(120, 480, 3));
        let sources = MsBfs::spread_sources(16, 120);
        let part = RandomPartitioner::default();
        let run = |mode| {
            run_multi_source(
                Primitive::Bfs,
                &g,
                SimSystem::homogeneous(2, HardwareProfile::k40()),
                &part,
                EnactConfig::default(),
                &sources,
                mode,
            )
            .unwrap()
        };
        let rep = run(MultiSourceMode::Repeated);
        let bat = run(MultiSourceMode::Batched);
        assert!(
            bat.report.iterations * 4 <= rep.report.iterations,
            "the batch must finish in the deepest traversal's supersteps \
             (batched {} vs repeated {})",
            bat.report.iterations,
            rep.report.iterations
        );
        assert!(
            bat.ms() < rep.ms(),
            "one batched sweep must be simulated-cheaper than 16 sequential enacts \
             (batched {} ms vs repeated {} ms)",
            bat.ms(),
            rep.ms()
        );
        assert_eq!(
            rep.report.totals.supersteps as usize, rep.report.iterations,
            "absorb must accumulate sequential supersteps, not max them"
        );
    }

    #[test]
    fn pick_source_finds_the_hub() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(100, 4, 5));
        let s = pick_source(&g);
        let smax = (0..100u32).map(|v| g.degree(v)).max().unwrap();
        assert_eq!(g.degree(s), smax);
    }
}
