//! Uniform primitive dispatch for the experiment binaries.

use mgpu_core::{EnactConfig, EnactReport, ResilientRunner, Runner};
use mgpu_graph::{Csr, Id};
use mgpu_partition::{DistGraph, Duplication, Partitioner};
use mgpu_primitives::{Bc, Bfs, Cc, Dobfs, Pagerank, Sssp};
use mgpu_core::problem::MgpuProblem;
use vgpu::{FaultPlan, Result, SimSystem};

/// The six evaluated primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Primitive {
    /// Breadth-first search.
    Bfs,
    /// Direction-optimizing BFS.
    Dobfs,
    /// Single-source shortest paths.
    Sssp,
    /// Betweenness centrality (single source).
    Bc,
    /// Connected components.
    Cc,
    /// PageRank (fixed 20 iterations for comparability).
    Pr,
}

impl Primitive {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Primitive::Bfs => "BFS",
            Primitive::Dobfs => "DOBFS",
            Primitive::Sssp => "SSSP",
            Primitive::Bc => "BC",
            Primitive::Cc => "CC",
            Primitive::Pr => "PR",
        }
    }

    /// All six, in the paper's Fig. 4 order.
    pub fn all() -> [Primitive; 6] {
        [
            Primitive::Bc,
            Primitive::Bfs,
            Primitive::Cc,
            Primitive::Dobfs,
            Primitive::Pr,
            Primitive::Sssp,
        ]
    }

    /// Does this primitive take a source vertex?
    pub fn needs_source(self) -> bool {
        !matches!(self, Primitive::Cc | Primitive::Pr)
    }

    /// The vertex-duplication strategy the primitive requests (Table I).
    pub fn duplication(self) -> Duplication {
        Duplication::All
    }
}

/// The outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The enact report (sim time, counters, memory, iterations).
    pub report: EnactReport,
    /// Edge count the run is credited with (the graph's |E|).
    pub edges: usize,
}

impl RunOutcome {
    /// GTEPS under the paper's crediting convention.
    pub fn gteps(&self) -> f64 {
        self.report.gteps(self.edges)
    }

    /// Simulated milliseconds.
    pub fn ms(&self) -> f64 {
        self.report.sim_ms()
    }
}

/// The highest-degree vertex — the conventional BFS source for power-law
/// graphs (guarantees the traversal covers the giant component).
pub fn pick_source<V: Id, O: Id>(g: &Csr<V, O>) -> V {
    let mut best = 0usize;
    let mut best_deg = 0usize;
    for v in 0..g.n_vertices() {
        let d = g.degree(V::from_usize(v));
        if d > best_deg {
            best_deg = d;
            best = v;
        }
    }
    V::from_usize(best)
}

/// Partition `g` for `prim` and run it once on `system`.
pub fn run_primitive(
    prim: Primitive,
    g: &Csr<u32, u64>,
    system: SimSystem,
    partitioner: &impl Partitioner,
    config: EnactConfig,
) -> Result<RunOutcome> {
    let n = system.n_devices();
    let mut dist = DistGraph::partition(g, partitioner, n, prim.duplication());
    if prim == Primitive::Dobfs {
        dist.build_cscs();
    }
    let src = prim.needs_source().then(|| pick_source(g));
    let report = match prim {
        Primitive::Bfs => Runner::new(system, &dist, Bfs::default(), config)?.enact(src)?,
        Primitive::Dobfs => Runner::new(system, &dist, Dobfs::default(), config)?.enact(src)?,
        Primitive::Sssp => Runner::new(system, &dist, Sssp, config)?.enact(src)?,
        Primitive::Bc => Runner::new(system, &dist, Bc, config)?.enact(src)?,
        Primitive::Cc => Runner::new(system, &dist, Cc, config)?.enact(src)?,
        Primitive::Pr => {
            let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 20 };
            Runner::new(system, &dist, pr, config)?.enact(None)?
        }
    };
    Ok(RunOutcome { report, edges: g.n_edges() })
}

/// Partition `g` for `prim` and run it under a fault plan through the
/// self-healing [`ResilientRunner`] — the path `mgpu run --fault-plan
/// --recovery` takes. The enact retries transient faults and degrades to
/// the surviving devices on a permanent loss, per `config.recovery`.
pub fn run_primitive_resilient(
    prim: Primitive,
    g: &Csr<u32, u64>,
    n: usize,
    profile: vgpu::HardwareProfile,
    partitioner: &impl Partitioner,
    config: EnactConfig,
    plan: FaultPlan,
) -> Result<RunOutcome> {
    let owner = partitioner.assign(g, n);
    let src = prim.needs_source().then(|| pick_source(g));
    macro_rules! resilient {
        ($problem:expr) => {
            ResilientRunner::homogeneous(g, $problem, n, profile, config)
                .with_owner(owner)
                .with_fault_plan(plan)
        };
    }
    let report = match prim {
        Primitive::Bfs => resilient!(Bfs::default()).enact(src)?,
        Primitive::Dobfs => resilient!(Dobfs::default()).with_csc().enact(src)?,
        Primitive::Sssp => resilient!(Sssp).enact(src)?,
        Primitive::Bc => resilient!(Bc).enact(src)?,
        Primitive::Cc => resilient!(Cc).enact(src)?,
        Primitive::Pr => {
            let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 20 };
            resilient!(pr).enact(None)?
        }
    };
    Ok(RunOutcome { report, edges: g.n_edges() })
}

/// Convenience: run on `n` homogeneous devices of `profile`.
pub fn run_on_k(
    prim: Primitive,
    g: &Csr<u32, u64>,
    n: usize,
    profile: vgpu::HardwareProfile,
    partitioner: &impl Partitioner,
) -> Result<RunOutcome> {
    run_primitive(prim, g, SimSystem::homogeneous(n, profile), partitioner, EnactConfig::default())
}

/// Build an `n`-device system whose fixed overheads are shrunk by
/// `2^shift`, matching a dataset that was shrunk by `2^shift` — the
/// dimensional scaling that preserves the paper's work-to-overhead ratios
/// (see `HardwareProfile::with_overhead_scale`).
pub fn scaled_system(n: usize, profile: vgpu::HardwareProfile, shift: u32) -> SimSystem {
    let s = (1u64 << shift.min(40)) as f64;
    let profile = profile.with_overhead_scale(s);
    let ic = vgpu::Interconnect::pcie3(n, 4).with_latency_scale(s);
    SimSystem::new(vec![profile; n], ic).expect("sizes match")
}

/// Run on `n` overhead-scaled devices (the standard figure configuration).
pub fn run_scaled(
    prim: Primitive,
    g: &Csr<u32, u64>,
    n: usize,
    profile: vgpu::HardwareProfile,
    partitioner: &impl Partitioner,
    shift: u32,
) -> Result<RunOutcome> {
    run_primitive(prim, g, scaled_system(n, profile, shift), partitioner, EnactConfig::default())
}

/// Expose each primitive's requested duplication/communication description
/// for the Table I printout.
pub fn primitive_comm_label(prim: Primitive) -> &'static str {
    match prim {
        Primitive::Bfs => {
            let p = Bfs::default();
            match <Bfs as MgpuProblem<u32, u64>>::comm(&p) {
                mgpu_core::CommStrategy::Selective => "selective",
                mgpu_core::CommStrategy::Broadcast => "broadcast",
            }
        }
        Primitive::Dobfs | Primitive::Cc => "broadcast",
        Primitive::Bc => "selective fwd / broadcast bwd",
        _ => "selective",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_gen::weights::add_paper_weights;
    use mgpu_gen::preferential_attachment;
    use mgpu_graph::GraphBuilder;
    use mgpu_partition::RandomPartitioner;
    use vgpu::HardwareProfile;

    #[test]
    fn every_primitive_runs_through_the_dispatcher() {
        let mut coo = preferential_attachment(200, 6, 1);
        add_paper_weights(&mut coo, 2);
        let g = GraphBuilder::undirected(&coo);
        for prim in Primitive::all() {
            let out = run_on_k(prim, &g, 2, HardwareProfile::k40(), &RandomPartitioner::default())
                .unwrap_or_else(|e| panic!("{}: {e}", prim.name()));
            assert!(out.report.sim_time_us > 0.0, "{}", prim.name());
            assert!(out.gteps() > 0.0, "{}", prim.name());
        }
    }

    #[test]
    fn pick_source_finds_the_hub() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(100, 4, 5));
        let s = pick_source(&g);
        let smax = (0..100u32).map(|v| g.degree(v)).max().unwrap();
        assert_eq!(g.degree(s), smax);
    }
}
