//! Committed-baseline comparison — the perf-regression gate.
//!
//! The experiment binaries emit machine-readable JSON (`--json-out`); the
//! repo commits those files as `BENCH_*.json` baselines and CI re-runs the
//! binaries with `--baseline <path>`, failing the job when a metric drifts
//! past tolerance. Simulated costs are pure f64 arithmetic and reproduce
//! exactly across machines, so the sim gates run tight (default 0.5%);
//! wall-clock gates use wide tolerances and speedup floors instead.
//!
//! The workspace deliberately vendors no JSON library, so this module
//! carries a small recursive-descent parser for the subset the binaries
//! emit (objects, arrays, strings, numbers, booleans, null).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64 — the binaries emit nothing wider).
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render a value as a row-key fragment (numbers print integrally when
    /// they are integral, so `4` and `4.0` key identically).
    fn key_fragment(&self) -> String {
        match self {
            Json::Str(s) => s.clone(),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("{}", *n as i64),
            Json::Num(n) => format!("{n}"),
            Json::Bool(b) => format!("{b}"),
            Json::Null => "null".into(),
            _ => "?".into(),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'r') => s.push('\r'),
                            Some(c) => return Err(format!("unsupported escape \\{}", *c as char)),
                            None => return Err("unterminated escape".into()),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        // multi-byte UTF-8 passes through byte by byte; the
                        // input came from a &str so it is valid
                        let start = *pos;
                        let len = utf8_len(c);
                        *pos += len;
                        s.push_str(std::str::from_utf8(&b[start..start + len]).unwrap());
                    }
                }
            }
        }
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).unwrap();
            text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}'"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {pos}"))
    }
}

/// One metric that moved past tolerance between a baseline row and the
/// matching current row.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The row key (joined key fields).
    pub row: String,
    /// The metric field name.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Signed relative change, `(current - baseline) / |baseline|`.
    pub rel: f64,
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} {} -> {} ({:+.2}%)",
            self.row,
            self.metric,
            self.baseline,
            self.current,
            100.0 * self.rel
        )
    }
}

fn keyed_rows<'a>(
    doc: &'a Json,
    key_fields: &[&str],
) -> Result<BTreeMap<String, &'a Json>, String> {
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or_else(|| "document has no \"rows\" array".to_string())?;
    let mut out = BTreeMap::new();
    for row in rows {
        let mut key = String::new();
        for (i, f) in key_fields.iter().enumerate() {
            if i > 0 {
                key.push('/');
            }
            let frag = row
                .get(f)
                .map(|v| v.key_fragment())
                .ok_or_else(|| format!("row is missing key field \"{f}\""))?;
            key.push_str(&frag);
        }
        if out.insert(key.clone(), row).is_some() {
            return Err(format!("duplicate row key \"{key}\""));
        }
    }
    Ok(out)
}

/// Compare every `metrics` field of every row against the baseline,
/// matching rows on `key_fields`. Returns the deltas whose relative change
/// exceeds `tolerance` in **either** direction — the sim-cost gate, where
/// any unexplained drift (even an "improvement") means behavior changed and
/// the committed baseline must be refreshed deliberately. A row present in
/// one document but not the other is an error: the configuration matrix
/// itself changed.
pub fn compare_rows(
    current: &Json,
    baseline: &Json,
    key_fields: &[&str],
    metrics: &[&str],
    tolerance: f64,
) -> Result<Vec<Delta>, String> {
    let cur = keyed_rows(current, key_fields)?;
    let base = keyed_rows(baseline, key_fields)?;
    for key in base.keys() {
        if !cur.contains_key(key) {
            return Err(format!("baseline row \"{key}\" missing from current run"));
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            return Err(format!("current row \"{key}\" missing from baseline (refresh it?)"));
        }
    }
    let mut deltas = Vec::new();
    for (key, brow) in &base {
        let crow = cur[key];
        for m in metrics {
            let b = brow
                .get(m)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("baseline row \"{key}\" has no numeric \"{m}\""))?;
            let c = crow
                .get(m)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("current row \"{key}\" has no numeric \"{m}\""))?;
            let rel = (c - b) / b.abs().max(1e-12);
            if rel.abs() > tolerance {
                deltas.push(Delta {
                    row: key.clone(),
                    metric: m.to_string(),
                    baseline: b,
                    current: c,
                    rel,
                });
            }
        }
    }
    Ok(deltas)
}

/// The wall-clock gate: a single `metric` (a speedup ratio) per row must
/// not fall below `baseline * (1 - tolerance)` nor below `floor`. Only
/// drops fail — wall-clock getting *faster* is never a regression.
pub fn compare_speedups(
    current: &Json,
    baseline: &Json,
    key_fields: &[&str],
    metric: &str,
    tolerance: f64,
    floor: f64,
) -> Result<Vec<Delta>, String> {
    let cur = keyed_rows(current, key_fields)?;
    let base = keyed_rows(baseline, key_fields)?;
    for key in base.keys() {
        if !cur.contains_key(key) {
            return Err(format!("baseline row \"{key}\" missing from current run"));
        }
    }
    let mut deltas = Vec::new();
    for (key, brow) in &base {
        let b = brow
            .get(metric)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("baseline row \"{key}\" has no numeric \"{metric}\""))?;
        let c = cur[key]
            .get(metric)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("current row \"{key}\" has no numeric \"{metric}\""))?;
        if c < b * (1.0 - tolerance) || c < floor {
            deltas.push(Delta {
                row: key.clone(),
                metric: metric.to_string(),
                baseline: b,
                current: c,
                rel: (c - b) / b.abs().max(1e-12),
            });
        }
    }
    Ok(deltas)
}

/// Run a comparison and report: prints a pass line or every offending
/// delta, and returns the process exit code (0 pass, 1 fail). The caller
/// hands this straight to `std::process::exit`.
pub fn gate_report(label: &str, result: Result<Vec<Delta>, String>) -> i32 {
    match result {
        Err(e) => {
            eprintln!("{label}: baseline comparison failed: {e}");
            1
        }
        Ok(deltas) if deltas.is_empty() => {
            println!("{label}: within tolerance of committed baseline");
            0
        }
        Ok(deltas) => {
            let mut msg =
                format!("{label}: {} metric(s) regressed past tolerance:\n", deltas.len());
            for d in &deltas {
                let _ = writeln!(msg, "  {d}");
            }
            eprint!("{msg}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{"gpus":6,"rows":[
        {"dataset":"rmat","primitive":"BFS","config":"default","sim_ms":10.5,"h_bytes":1000},
        {"dataset":"rmat","primitive":"BFS","config":"reduced","sim_ms":8.25,"h_bytes":400}
    ]}"#;

    #[test]
    fn parses_the_bench_json_shape() {
        let doc = Json::parse(DOC).unwrap();
        assert_eq!(doc.get("gpus").unwrap().as_f64(), Some(6.0));
        let rows = doc.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("config").unwrap().as_str(), Some("reduced"));
        assert_eq!(rows[1].get("h_bytes").unwrap().as_f64(), Some(400.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,").is_err());
    }

    #[test]
    fn identical_documents_pass() {
        let a = Json::parse(DOC).unwrap();
        let b = Json::parse(DOC).unwrap();
        let deltas = compare_rows(
            &a,
            &b,
            &["dataset", "primitive", "config"],
            &["sim_ms", "h_bytes"],
            0.005,
        )
        .unwrap();
        assert!(deltas.is_empty());
    }

    #[test]
    fn drift_past_tolerance_is_flagged_in_both_directions() {
        let base = Json::parse(DOC).unwrap();
        let cur =
            Json::parse(&DOC.replace("10.5", "11.5").replace("\"h_bytes\":400", "\"h_bytes\":300"))
                .unwrap();
        let mut deltas = compare_rows(
            &cur,
            &base,
            &["dataset", "primitive", "config"],
            &["sim_ms", "h_bytes"],
            0.005,
        )
        .unwrap();
        deltas.sort_by(|x, y| x.row.cmp(&y.row).then(x.metric.cmp(&y.metric)));
        assert_eq!(deltas.len(), 2);
        // sim_ms grew in the "default" row, h_bytes shrank in "reduced".
        assert_eq!(deltas[0].metric, "sim_ms");
        assert!(deltas[0].rel > 0.09);
        assert_eq!(deltas[1].metric, "h_bytes");
        assert!(deltas[1].rel < 0.0, "shrinking is still drift for the sim gate");
    }

    #[test]
    fn tiny_drift_within_tolerance_passes() {
        let base = Json::parse(DOC).unwrap();
        let cur = Json::parse(&DOC.replace("10.5", "10.51")).unwrap();
        let deltas =
            compare_rows(&cur, &base, &["dataset", "primitive", "config"], &["sim_ms"], 0.005)
                .unwrap();
        assert!(deltas.is_empty());
    }

    #[test]
    fn row_set_changes_are_errors_not_silently_ignored() {
        let base = Json::parse(DOC).unwrap();
        let cur = Json::parse(
            r#"{"rows":[{"dataset":"rmat","primitive":"BFS","config":"default","sim_ms":10.5}]}"#,
        )
        .unwrap();
        let err = compare_rows(&cur, &base, &["dataset", "primitive", "config"], &["sim_ms"], 0.1)
            .unwrap_err();
        assert!(err.contains("missing from current run"), "{err}");
    }

    #[test]
    fn speedup_gate_only_fails_on_drops_or_floor() {
        let base = Json::parse(r#"{"rows":[{"bench":"advance","speedup":2.0}]}"#).unwrap();
        let same = Json::parse(r#"{"rows":[{"bench":"advance","speedup":1.9}]}"#).unwrap();
        assert!(compare_speedups(&same, &base, &["bench"], "speedup", 0.25, 1.0)
            .unwrap()
            .is_empty());
        let faster = Json::parse(r#"{"rows":[{"bench":"advance","speedup":3.5}]}"#).unwrap();
        assert!(compare_speedups(&faster, &base, &["bench"], "speedup", 0.25, 1.0)
            .unwrap()
            .is_empty());
        let slower = Json::parse(r#"{"rows":[{"bench":"advance","speedup":1.2}]}"#).unwrap();
        assert_eq!(
            compare_speedups(&slower, &base, &["bench"], "speedup", 0.25, 1.0).unwrap().len(),
            1
        );
        let below_floor = Json::parse(r#"{"rows":[{"bench":"advance","speedup":0.9}]}"#).unwrap();
        assert_eq!(
            compare_speedups(&below_floor, &base, &["bench"], "speedup", 0.9, 1.0).unwrap().len(),
            1,
            "a slowdown below 1.0 fails even inside the relative tolerance"
        );
    }

    #[test]
    fn mixed_key_types_join_into_stable_keys() {
        let doc = Json::parse(
            r#"{"rows":[{"primitive":"BFS","gpus":4,"topology":"direct","sim_ms":1.0}]}"#,
        )
        .unwrap();
        let rows = keyed_rows(&doc, &["primitive", "gpus", "topology"]).unwrap();
        assert!(rows.contains_key("BFS/4/direct"));
    }
}
