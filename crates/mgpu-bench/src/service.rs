//! Bridge from [`Primitive`] descriptors to [`mgpu_core::service`] query
//! specs: the piece the `service_bench` bin, the CLI `serve` subcommand,
//! and the concurrency test-suite all share.
//!
//! The shared residency is one immutable [`DistGraph`] (plus the raw CSR
//! and an ownership table for resilient queries). Each descriptor turns
//! into a [`QuerySpec`] whose factory builds a fresh executor — BSP
//! [`Runner`], [`AsyncRunner`], or [`ResilientRunner`] per its mode — on a
//! fresh overhead-scaled simulated system borrowing that residency, so
//! every query's simulated clocks are deterministic and independent of
//! co-scheduled queries.
//!
//! Footprints fed to the service admission ledger come from the same
//! [`mgpu_core::governor::estimate_footprint`] the enactor's admission
//! walk uses: the per-device estimate *minus* the topology bytes (the
//! topology is the shared residency, charged once per wave).

use mgpu_core::governor::estimate_footprint;
use mgpu_core::problem::Wire;
use mgpu_core::{AsyncRunner, EnactConfig, Executor, MgpuProblem, QuerySpec, ResilientRunner, Runner};
use mgpu_graph::{Csr, Id};
use mgpu_partition::DistGraph;
use mgpu_primitives::{Bc, Bfs, Cc, Dobfs, Pagerank, Sssp};
use vgpu::{FaultPlan, HardwareProfile};

use crate::runners::{pick_source, scaled_system, Primitive};

/// Which executor engine a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic BSP supersteps ([`Runner`]).
    Bsp,
    /// Asynchronous label-correcting relaxation ([`AsyncRunner`]) —
    /// label-correcting primitives only (bfs/sssp/cc), and excluded from
    /// bit-equality assertions (async simulated time is
    /// scheduling-dependent).
    Async,
    /// Checkpoint/re-home/failover driver ([`ResilientRunner`]).
    Resilient,
}

impl ExecMode {
    /// Short label, as written in `--queries` specs.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Bsp => "bsp",
            ExecMode::Async => "async",
            ExecMode::Resilient => "resilient",
        }
    }
}

/// One query descriptor, as parsed from a `--queries` spec entry.
#[derive(Debug, Clone)]
pub struct QueryDesc {
    /// Which primitive to run.
    pub prim: Primitive,
    /// Global source vertex; `None` picks the highest-degree vertex for
    /// primitives that need one.
    pub source: Option<usize>,
    /// Executor engine.
    pub mode: ExecMode,
    /// Per-query fault plan (injected into the query's own simulated
    /// system; co-scheduled queries are unaffected).
    pub plan: Option<FaultPlan>,
}

impl QueryDesc {
    /// A plain BSP query.
    pub fn bsp(prim: Primitive, source: Option<usize>) -> Self {
        QueryDesc { prim, source, mode: ExecMode::Bsp, plan: None }
    }
}

/// Parse a comma-separated query list: each entry is
/// `prim[:source][@mode]`, e.g. `bfs:0,sssp:5@resilient,cc,pr@bsp`.
/// Primitives are `bfs|dobfs|sssp|bc|cc|pr`; modes are
/// `bsp|async|resilient` (default `bsp`).
pub fn parse_query_list(spec: &str) -> Result<Vec<QueryDesc>, String> {
    spec.split(',').filter(|s| !s.trim().is_empty()).map(parse_query).collect()
}

fn parse_query(entry: &str) -> Result<QueryDesc, String> {
    let entry = entry.trim();
    let (body, mode) = match entry.split_once('@') {
        Some((b, m)) => (b, m),
        None => (entry, "bsp"),
    };
    let mode = match mode {
        "bsp" => ExecMode::Bsp,
        "async" => ExecMode::Async,
        "resilient" => ExecMode::Resilient,
        other => return Err(format!("unknown exec mode '{other}' in '{entry}'")),
    };
    let (prim_s, source) = match body.split_once(':') {
        Some((p, v)) => {
            let src: usize = v.parse().map_err(|_| format!("bad source '{v}' in '{entry}'"))?;
            (p, Some(src))
        }
        None => (body, None),
    };
    let prim = match prim_s {
        "bfs" => Primitive::Bfs,
        "dobfs" => Primitive::Dobfs,
        "sssp" => Primitive::Sssp,
        "bc" => Primitive::Bc,
        "cc" => Primitive::Cc,
        "pr" => Primitive::Pr,
        other => return Err(format!("unknown primitive '{other}' in '{entry}'")),
    };
    if mode == ExecMode::Async && !matches!(prim, Primitive::Bfs | Primitive::Sssp | Primitive::Cc)
    {
        return Err(format!(
            "'{entry}': async mode requires a label-correcting primitive (bfs/sssp/cc)"
        ));
    }
    Ok(QueryDesc { prim, source, mode, plan: None })
}

/// The shared-residency topology bytes per device: the max partition's
/// CSR footprint (what [`mgpu_core::ServicePolicy::residency_bytes`]
/// should carry).
pub fn residency_bytes<O: Id>(dist: &DistGraph<u32, O>) -> u64 {
    dist.parts.iter().map(|s| s.topology_bytes()).max().unwrap_or(0)
}

/// A query's *dynamic* per-device footprint (state + frontiers + comm
/// staging, excluding shared topology), via the governor's pre-flight
/// estimate maxed over partitions.
fn dynamic_footprint<O: Id, P: MgpuProblem<u32, O>>(
    p: &P,
    dist: &DistGraph<u32, O>,
    config: &EnactConfig,
) -> u64 {
    let scheme = config.alloc_scheme.unwrap_or_else(|| p.alloc_scheme());
    let comm = config.comm.unwrap_or_else(|| p.comm());
    dist.parts
        .iter()
        .map(|sub| {
            estimate_footprint(
                scheme,
                comm,
                dist.n_parts,
                sub.n_vertices(),
                sub.n_edges(),
                sub.topology_bytes(),
                p.state_bytes_per_vertex(),
                4,
                <P::Msg as Wire>::BYTES,
            )
            .total()
            .saturating_sub(sub.topology_bytes())
        })
        .max()
        .unwrap_or(0)
}

/// Build service query specs for `descs` against one shared residency:
/// `dist` (with CSCs built if any descriptor is `dobfs`), the raw `graph`
/// plus `owner` table for resilient queries, a hardware `profile` and
/// overhead `shift` (see [`scaled_system`]), and the per-query enact
/// `config`.
#[allow(clippy::too_many_arguments)]
pub fn build_query_specs<'g, O: Id>(
    graph: &'g Csr<u32, O>,
    dist: &'g DistGraph<u32, O>,
    owner: &[u32],
    profile: HardwareProfile,
    shift: u32,
    config: EnactConfig,
    descs: &[QueryDesc],
) -> Result<Vec<QuerySpec<'g, u32>>, String> {
    let n = dist.n_parts;
    let mut specs = Vec::with_capacity(descs.len());
    for desc in descs {
        let prim = desc.prim;
        let source: Option<u32> = match desc.source {
            Some(s) => {
                if s >= graph.n_vertices() {
                    return Err(format!(
                        "source {s} out of range for {} vertices",
                        graph.n_vertices()
                    ));
                }
                Some(s as u32)
            }
            None => prim.needs_source().then(|| pick_source(graph)),
        };
        let name = match source {
            Some(s) => format!("{}:{}@{}", prim.name(), s, desc.mode.label()),
            None => format!("{}@{}", prim.name(), desc.mode.label()),
        };
        let plan = desc.plan.clone();
        let mode = desc.mode;
        let needs_csc = prim == Primitive::Dobfs;
        let profile = profile.clone();
        let owner: Vec<u32> = owner.to_vec();
        macro_rules! spec {
            ($problem:expr) => {{
                let problem = $problem;
                let fp = dynamic_footprint(&problem, dist, &config);
                specs.push(QuerySpec::new(name, source, fp, move || match mode {
                    ExecMode::Bsp => {
                        let mut system = scaled_system(n, profile.clone(), shift);
                        if let Some(p) = &plan {
                            system.attach_fault_plan(p);
                        }
                        let runner = Runner::new(system, dist, problem, config)?;
                        Ok(Box::new(runner) as Box<dyn Executor<u32> + Send + 'g>)
                    }
                    ExecMode::Async => {
                        let mut system = scaled_system(n, profile.clone(), shift);
                        if let Some(p) = &plan {
                            system.attach_fault_plan(p);
                        }
                        let runner = AsyncRunner::with_config(system, dist, problem, &config)?;
                        Ok(Box::new(runner) as Box<dyn Executor<u32> + Send + 'g>)
                    }
                    ExecMode::Resilient => {
                        let s = (1u64 << shift.min(40)) as f64;
                        let mut runner = ResilientRunner::homogeneous(
                            graph,
                            problem,
                            n,
                            profile.clone().with_overhead_scale(s),
                            config,
                        )
                        .with_owner(owner.clone());
                        if needs_csc {
                            runner = runner.with_csc();
                        }
                        if let Some(p) = &plan {
                            runner = runner.with_fault_plan(p.clone());
                        }
                        Ok(Box::new(runner) as Box<dyn Executor<u32> + Send + 'g>)
                    }
                }));
            }};
        }
        match prim {
            Primitive::Bfs => spec!(Bfs::default()),
            Primitive::Dobfs => spec!(Dobfs::default()),
            Primitive::Sssp => spec!(Sssp),
            Primitive::Bc => spec!(Bc),
            Primitive::Cc => spec!(Cc),
            Primitive::Pr => spec!(Pagerank { damping: 0.85, threshold: 0.0, max_iters: 20 }),
        }
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let qs = parse_query_list("bfs:0,sssp:5@resilient,cc,pr@bsp, bc:2 ").unwrap();
        assert_eq!(qs.len(), 5);
        assert_eq!(qs[0].prim, Primitive::Bfs);
        assert_eq!(qs[0].source, Some(0));
        assert_eq!(qs[0].mode, ExecMode::Bsp);
        assert_eq!(qs[1].mode, ExecMode::Resilient);
        assert_eq!(qs[2].prim, Primitive::Cc);
        assert_eq!(qs[2].source, None);
        assert_eq!(qs[4].source, Some(2));
        assert!(parse_query_list("zork").is_err());
        assert!(parse_query_list("bfs@warp").is_err());
        assert!(parse_query_list("bfs:x").is_err());
        assert!(parse_query_list("bc@async").is_err(), "bc is not label-correcting");
    }
}
