//! Minimal flag parsing shared by the experiment binaries.

/// Common experiment knobs.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Scale-down shift: datasets shrink by `2^shift` vertices relative to
    /// the paper (0 = paper scale).
    pub shift: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { shift: 8, seed: 42 }
    }
}

impl BenchArgs {
    /// Parse `--shift N` / `--seed S` from `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--shift" => {
                    out.shift =
                        args.next().and_then(|v| v.parse().ok()).expect("--shift needs an integer");
                }
                "--seed" => {
                    out.seed =
                        args.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer");
                }
                other => panic!("unknown flag {other}; supported: --shift N, --seed S"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(std::iter::empty());
        assert_eq!(a.shift, 8);
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parses_flags() {
        let a =
            BenchArgs::parse_from(["--shift", "5", "--seed", "7"].iter().map(|s| s.to_string()));
        assert_eq!(a.shift, 5);
        assert_eq!(a.seed, 7);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        BenchArgs::parse_from(["--bogus"].iter().map(|s| s.to_string()));
    }
}
