//! Minimal flag parsing shared by the experiment binaries.

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Scale-down shift: datasets shrink by `2^shift` vertices relative to
    /// the paper (0 = paper scale).
    pub shift: u32,
    /// Generator seed.
    pub seed: u64,
    /// Optional machine-readable output path (`--json-out FILE`); binaries
    /// that support it write their results as JSON alongside the table.
    pub json_out: Option<String>,
    /// Optional committed baseline to compare against (`--baseline FILE`);
    /// the binary exits non-zero when a metric regresses past tolerance.
    pub baseline: Option<String>,
    /// Gate tolerance override (`--tolerance F`, a relative fraction);
    /// each binary picks its own default when unset.
    pub tolerance: Option<f64>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { shift: 8, seed: 42, json_out: None, baseline: None, tolerance: None }
    }
}

impl BenchArgs {
    /// Parse `--shift N` / `--seed S` / `--json-out FILE` from
    /// `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--shift" => {
                    out.shift =
                        args.next().and_then(|v| v.parse().ok()).expect("--shift needs an integer");
                }
                "--seed" => {
                    out.seed =
                        args.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer");
                }
                "--json-out" => {
                    out.json_out = Some(args.next().expect("--json-out needs a path"));
                }
                "--baseline" => {
                    out.baseline = Some(args.next().expect("--baseline needs a path"));
                }
                "--tolerance" => {
                    let v: f64 = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--tolerance needs a fraction (e.g. 0.005)");
                    out.tolerance = Some(v);
                }
                other => {
                    panic!(
                        "unknown flag {other}; supported: --shift N, --seed S, \
                         --json-out FILE, --baseline FILE, --tolerance F"
                    )
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(std::iter::empty());
        assert_eq!(a.shift, 8);
        assert_eq!(a.seed, 42);
        assert!(a.json_out.is_none());
    }

    #[test]
    fn parses_flags() {
        let a =
            BenchArgs::parse_from(["--shift", "5", "--seed", "7"].iter().map(|s| s.to_string()));
        assert_eq!(a.shift, 5);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parses_json_out() {
        let a =
            BenchArgs::parse_from(["--json-out", "BENCH_comm.json"].iter().map(|s| s.to_string()));
        assert_eq!(a.json_out.as_deref(), Some("BENCH_comm.json"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        BenchArgs::parse_from(["--bogus"].iter().map(|s| s.to_string()));
    }

    #[test]
    fn parses_baseline_and_tolerance() {
        let a = BenchArgs::parse_from(
            ["--baseline", "BENCH_comm.json", "--tolerance", "0.01"].iter().map(|s| s.to_string()),
        );
        assert_eq!(a.baseline.as_deref(), Some("BENCH_comm.json"));
        assert_eq!(a.tolerance, Some(0.01));
    }
}
