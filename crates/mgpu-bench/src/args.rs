//! Minimal flag parsing shared by the experiment binaries.

/// Common experiment knobs.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Scale-down shift: datasets shrink by `2^shift` vertices relative to
    /// the paper (0 = paper scale).
    pub shift: u32,
    /// Generator seed.
    pub seed: u64,
    /// Optional machine-readable output path (`--json-out FILE`); binaries
    /// that support it write their results as JSON alongside the table.
    pub json_out: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { shift: 8, seed: 42, json_out: None }
    }
}

impl BenchArgs {
    /// Parse `--shift N` / `--seed S` / `--json-out FILE` from
    /// `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl Iterator<Item = String>) -> Self {
        let mut out = BenchArgs::default();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--shift" => {
                    out.shift =
                        args.next().and_then(|v| v.parse().ok()).expect("--shift needs an integer");
                }
                "--seed" => {
                    out.seed =
                        args.next().and_then(|v| v.parse().ok()).expect("--seed needs an integer");
                }
                "--json-out" => {
                    out.json_out = Some(args.next().expect("--json-out needs a path"));
                }
                other => {
                    panic!("unknown flag {other}; supported: --shift N, --seed S, --json-out FILE")
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(std::iter::empty());
        assert_eq!(a.shift, 8);
        assert_eq!(a.seed, 42);
        assert!(a.json_out.is_none());
    }

    #[test]
    fn parses_flags() {
        let a =
            BenchArgs::parse_from(["--shift", "5", "--seed", "7"].iter().map(|s| s.to_string()));
        assert_eq!(a.shift, 5);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parses_json_out() {
        let a =
            BenchArgs::parse_from(["--json-out", "BENCH_comm.json"].iter().map(|s| s.to_string()));
        assert_eq!(a.json_out.as_deref(), Some("BENCH_comm.json"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        BenchArgs::parse_from(["--bogus"].iter().map(|s| s.to_string()));
    }
}
