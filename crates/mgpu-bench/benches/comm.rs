//! Criterion micro-benchmarks of the communication hot path (wall-clock of
//! the real execution, not the simulated clock): the count-then-scatter
//! selective split with its reusable scratch, broadcast packaging with
//! `Arc` fan-out vs the deep-clone fan-out it replaced, the combine
//! loop that appends received vertices straight into the next frontier,
//! the real wire encodings (encode and decode), and the monotone
//! suppression cache on a re-relaxing split.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgpu_core::comm::{
    broadcast_package, broadcast_package_with, split_and_package, split_and_package_with, Package,
    PackagePolicy, SplitScratch, SuppressState, WireEncoding,
};
use mgpu_graph::{Coo, Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication};
use vgpu::{Device, HardwareProfile};

const N_PARTS: usize = 4;
const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// A duplicate-all 4-way partition over `n` vertices. The split only reads
/// ownership, so a sparse ring graph keeps setup cheap at frontier sizes up
/// to 1e6.
fn setup(n: usize) -> (DistGraph<u32, u64>, Vec<u32>) {
    let edges: Vec<(u32, u32)> = (0..1000u32).map(|i| (i, (i + 1) % 1000)).collect();
    let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(n, edges, None));
    let owner: Vec<u32> = (0..n).map(|v| (v % N_PARTS) as u32).collect();
    let dist = DistGraph::build(&g, owner, N_PARTS, Duplication::All);
    let frontier: Vec<u32> = (0..n as u32).collect();
    (dist, frontier)
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/split_and_package");
    for size in SIZES {
        let (dist, frontier) = setup(size);
        let sub = &dist.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| split_and_package(&mut dev, sub, &frontier, &mut scratch, |v| v).unwrap())
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/broadcast");
    for size in SIZES {
        let (dist, frontier) = setup(size);
        let sub = &dist.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40());
        // The shipped path: package once, fan out n−1 Arc pointers.
        group.bench_function(BenchmarkId::new("arc_fanout", size), |b| {
            b.iter(|| {
                let pkg = broadcast_package(&mut dev, sub, &frontier, |v| v).unwrap();
                let pkg = Arc::new(pkg);
                let sends: Vec<Arc<Package<u32, u32>>> =
                    (1..N_PARTS).map(|_| Arc::clone(&pkg)).collect();
                sends
            })
        });
        // The pre-zero-copy behavior: a frontier copy for the local part and
        // a deep package clone per peer.
        group.bench_function(BenchmarkId::new("deep_clone", size), |b| {
            b.iter(|| {
                let pkg = broadcast_package(&mut dev, sub, &frontier, |v| v).unwrap();
                let local = frontier.to_vec();
                let sends: Vec<Package<u32, u32>> = (1..N_PARTS).map(|_| pkg.clone()).collect();
                (local, sends)
            })
        });
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/combine");
    for size in SIZES {
        let (dist, frontier) = setup(size);
        let sub = &dist.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        let (_, pkgs) = split_and_package(&mut dev, sub, &frontier, &mut scratch, |v| v).unwrap();
        let pkgs: Vec<Package<u32, u32>> = pkgs.into_iter().flatten().collect();
        let n = sub.n_vertices();
        // The enactor's combine loop: one pass per received package,
        // appending fresh vertices straight into the next input frontier.
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| {
                let mut labels = vec![u32::MAX; n];
                let mut next: Vec<u32> = Vec::new();
                for pkg in &pkgs {
                    let (vs, ms) = pkg.decode();
                    for (&v, &msg) in vs.iter().zip(ms.iter()) {
                        if msg < labels[v as usize] {
                            labels[v as usize] = msg;
                            next.push(v);
                        }
                    }
                }
                next
            })
        });
    }
    group.finish();
}

/// Encode + decode round trips for each real wire encoding over a sorted
/// uniform-payload broadcast frontier — the shape DOBFS ships every
/// superstep, and the case where DeltaVarint's shared-payload flag pays.
fn bench_encodings(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/encodings");
    let encodings = [
        ("legacy", WireEncoding::Legacy),
        ("list", WireEncoding::List),
        ("bitmap", WireEncoding::Bitmap),
        ("delta", WireEncoding::DeltaVarint),
        ("auto", WireEncoding::Auto),
    ];
    for size in [10_000usize, 1_000_000] {
        // every other vertex of the space: sorted, uniform label
        let vertices: Vec<u32> = (0..size as u32).map(|v| v * 2).collect();
        let msgs: Vec<u32> = vec![7u32; size];
        let space = 2 * size;
        for (name, enc) in encodings {
            group.bench_function(BenchmarkId::new(format!("encode/{name}"), size), |b| {
                b.iter(|| {
                    Package::encode(vertices.clone(), msgs.clone(), enc, Some(space), Some(true))
                })
            });
            let pkg = Package::encode(vertices.clone(), msgs.clone(), enc, Some(space), Some(true));
            group.bench_function(BenchmarkId::new(format!("decode/{name}"), size), |b| {
                b.iter(|| {
                    let (vs, ms) = pkg.decode();
                    (vs.len(), ms.len())
                })
            });
        }
    }
    group.finish();
}

/// The monotone suppression cache on a split whose frontier re-relaxes every
/// vertex twice with a non-improving key the second time — the SSSP
/// duplicate-relaxation shape. The suppressed variant does strictly less
/// packaging work; this measures the cache's own overhead against it.
fn bench_suppression(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/suppression");
    for size in [10_000usize, 100_000] {
        let (dist, _) = setup(size);
        let sub = &dist.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        // every vertex appears twice: second appearance never improves
        let frontier: Vec<u32> = (0..size as u32).chain(0..size as u32).collect();
        let policy = PackagePolicy {
            encoding: WireEncoding::Auto,
            monotone: true,
            ..PackagePolicy::legacy()
        };
        group.bench_function(BenchmarkId::new("off", size), |b| {
            b.iter(|| {
                split_and_package_with(
                    &mut dev,
                    sub,
                    &frontier,
                    &mut scratch,
                    |v| v,
                    policy,
                    None,
                    |&m| u64::from(m),
                    |a, _| *a,
                )
                .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("on", size), |b| {
            b.iter(|| {
                let mut supp = SuppressState::new(sub.n_vertices());
                split_and_package_with(
                    &mut dev,
                    sub,
                    &frontier,
                    &mut scratch,
                    |v| v,
                    policy,
                    Some(&mut supp),
                    |&m| u64::from(m),
                    |a, _| *a,
                )
                .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("broadcast_on", size), |b| {
            b.iter(|| {
                let mut supp = SuppressState::new(sub.n_vertices());
                broadcast_package_with(
                    &mut dev,
                    sub,
                    &frontier,
                    |v| v,
                    policy,
                    Some(&mut supp),
                    |&m| u64::from(m),
                    |a, _| *a,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_split,
    bench_broadcast,
    bench_combine,
    bench_encodings,
    bench_suppression
);
criterion_main!(benches);
