//! Criterion micro-benchmarks of the communication hot path (wall-clock of
//! the real execution, not the simulated clock): the count-then-scatter
//! selective split with its reusable scratch, broadcast packaging with
//! `Arc` fan-out vs the deep-clone fan-out it replaced, and the combine
//! loop that appends received vertices straight into the next frontier.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgpu_core::comm::{broadcast_package, split_and_package, Package, SplitScratch};
use mgpu_graph::{Coo, Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication};
use vgpu::{Device, HardwareProfile};

const N_PARTS: usize = 4;
const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// A duplicate-all 4-way partition over `n` vertices. The split only reads
/// ownership, so a sparse ring graph keeps setup cheap at frontier sizes up
/// to 1e6.
fn setup(n: usize) -> (DistGraph<u32, u64>, Vec<u32>) {
    let edges: Vec<(u32, u32)> = (0..1000u32).map(|i| (i, (i + 1) % 1000)).collect();
    let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(n, edges, None));
    let owner: Vec<u32> = (0..n).map(|v| (v % N_PARTS) as u32).collect();
    let dist = DistGraph::build(&g, owner, N_PARTS, Duplication::All);
    let frontier: Vec<u32> = (0..n as u32).collect();
    (dist, frontier)
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/split_and_package");
    for size in SIZES {
        let (dist, frontier) = setup(size);
        let sub = &dist.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| split_and_package(&mut dev, sub, &frontier, &mut scratch, |v| v).unwrap())
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/broadcast");
    for size in SIZES {
        let (dist, frontier) = setup(size);
        let sub = &dist.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40());
        // The shipped path: package once, fan out n−1 Arc pointers.
        group.bench_function(BenchmarkId::new("arc_fanout", size), |b| {
            b.iter(|| {
                let pkg = broadcast_package(&mut dev, sub, &frontier, |v| v).unwrap();
                let pkg = Arc::new(pkg);
                let sends: Vec<Arc<Package<u32, u32>>> =
                    (1..N_PARTS).map(|_| Arc::clone(&pkg)).collect();
                sends
            })
        });
        // The pre-zero-copy behavior: a frontier copy for the local part and
        // a deep package clone per peer.
        group.bench_function(BenchmarkId::new("deep_clone", size), |b| {
            b.iter(|| {
                let pkg = broadcast_package(&mut dev, sub, &frontier, |v| v).unwrap();
                let local = frontier.to_vec();
                let sends: Vec<Package<u32, u32>> = (1..N_PARTS).map(|_| pkg.clone()).collect();
                (local, sends)
            })
        });
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm/combine");
    for size in SIZES {
        let (dist, frontier) = setup(size);
        let sub = &dist.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40());
        let mut scratch = SplitScratch::default();
        let (_, pkgs) = split_and_package(&mut dev, sub, &frontier, &mut scratch, |v| v).unwrap();
        let pkgs: Vec<Package<u32, u32>> = pkgs.into_iter().flatten().collect();
        let n = sub.n_vertices();
        // The enactor's combine loop: one pass per received package,
        // appending fresh vertices straight into the next input frontier.
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| {
                let mut labels = vec![u32::MAX; n];
                let mut next: Vec<u32> = Vec::new();
                for pkg in &pkgs {
                    for (&v, &msg) in pkg.vertices.iter().zip(&pkg.msgs) {
                        if msg < labels[v as usize] {
                            labels[v as usize] = msg;
                            next.push(v);
                        }
                    }
                }
                next
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split, bench_broadcast, bench_combine);
criterion_main!(benches);
