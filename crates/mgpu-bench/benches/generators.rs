//! Criterion benchmark of the workload generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mgpu_gen::{gnm, grid2d, preferential_attachment, rmat, web_crawl, RmatParams};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let edges = 16 * (1 << 14) as u64;
    group.throughput(Throughput::Elements(edges));
    group.bench_function(BenchmarkId::new("rmat", "2^14x16"), |b| {
        b.iter(|| rmat(14, 16, RmatParams::paper(), 3))
    });
    group.bench_function(BenchmarkId::new("gnm", "2^14x16"), |b| {
        b.iter(|| gnm(1 << 14, 16 << 14, 3))
    });
    group.bench_function(BenchmarkId::new("pref-attach", "2^14x8"), |b| {
        b.iter(|| preferential_attachment(1 << 14, 8, 3))
    });
    group.bench_function(BenchmarkId::new("web-crawl", "2^14x8"), |b| {
        b.iter(|| web_crawl(1 << 14, 8, 3))
    });
    group.bench_function(BenchmarkId::new("grid", "128x128"), |b| {
        b.iter(|| grid2d(128, 128, 0.95, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
