//! Criterion micro-benchmarks of the Gunrock operators (wall-clock of the
//! real execution, not the simulated clock): advance vs fused
//! advance+filter — the §VI-C fusion win — plus filter and pull-advance.

use std::sync::atomic::Ordering::Relaxed;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::ops;
use mgpu_gen::{rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{DistGraph, Duplication};
use vgpu::{Device, HardwareProfile};

fn setup(scale: u32) -> (DistGraph<u32, u64>, Vec<u32>) {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&rmat(scale, 16, RmatParams::paper(), 7));
    let n = g.n_vertices();
    let dist = DistGraph::build(&g, vec![0; n], 1, Duplication::All);
    let frontier: Vec<u32> = (0..n as u32).step_by(4).collect();
    (dist, frontier)
}

fn bench_operators(c: &mut Criterion) {
    let (dist, frontier) = setup(13);
    let sub = &dist.parts[0];
    let mut group = c.benchmark_group("operators");

    group.bench_function(BenchmarkId::new("advance+filter", "rmat13"), |b| {
        b.iter(|| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs =
                FrontierBufs::new(&mut dev, AllocScheme::Max, sub.n_vertices(), sub.n_edges())
                    .unwrap();
            let mut seen = vec![0u32; sub.n_vertices()];
            let seen = vgpu::par::as_atomic_u32(&mut seen);
            let cand =
                ops::advance(&mut dev, sub, &mut bufs, &frontier, |_, _, d| Some(d)).unwrap();
            ops::filter(&mut dev, &cand, |v| {
                seen[v as usize].compare_exchange(0, 1, Relaxed, Relaxed).is_ok()
            })
            .unwrap()
        })
    });

    group.bench_function(BenchmarkId::new("fused", "rmat13"), |b| {
        b.iter(|| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let bufs =
                FrontierBufs::new(&mut dev, AllocScheme::Max, sub.n_vertices(), sub.n_edges())
                    .unwrap();
            let mut seen = vec![0u32; sub.n_vertices()];
            let seen = vgpu::par::as_atomic_u32(&mut seen);
            ops::advance_filter_fused(&mut dev, sub, &bufs, &frontier, |_, _, d| {
                seen[d as usize].compare_exchange(0, 1, Relaxed, Relaxed).is_ok().then_some(d)
            })
            .unwrap()
        })
    });

    group.bench_function(BenchmarkId::new("filter", "rmat13"), |b| {
        b.iter(|| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            ops::filter(&mut dev, &frontier, |v| v % 3 == 0).unwrap()
        })
    });
    group.finish();
}

fn bench_pull(c: &mut Criterion) {
    let (mut dist, frontier) = setup(13);
    dist.build_cscs();
    let sub = &dist.parts[0];
    let csc = sub.csc.as_ref().unwrap();
    let visited: Vec<bool> = (0..sub.n_vertices()).map(|v| v % 4 == 0).collect();
    c.bench_function("operators/advance_pull", |b| {
        b.iter(|| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            ops::advance_pull(&mut dev, csc, &frontier, |_, p| visited[p as usize]).unwrap()
        })
    });
}

criterion_group!(benches, bench_operators, bench_pull);
criterion_main!(benches);
