//! Criterion benchmark of partitioner runtime — the §V-C observation that
//! Metis-style partitioning "takes a much longer time to partition" than
//! random/biased-random.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgpu_gen::{rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::{BiasedRandomPartitioner, MultilevelPartitioner, Partitioner, RandomPartitioner};

fn bench_partitioners(c: &mut Criterion) {
    let g: Csr<u32, u64> = GraphBuilder::undirected(&rmat(13, 16, RmatParams::paper(), 11));
    let mut group = c.benchmark_group("partitioners");
    group.bench_function(BenchmarkId::new("random", "rmat13x4"), |b| {
        let p = RandomPartitioner::default();
        b.iter(|| p.assign(&g, 4))
    });
    group.bench_function(BenchmarkId::new("biased-random", "rmat13x4"), |b| {
        let p = BiasedRandomPartitioner::default();
        b.iter(|| p.assign(&g, 4))
    });
    group.bench_function(BenchmarkId::new("metis-like", "rmat13x4"), |b| {
        let p = MultilevelPartitioner::default();
        b.iter(|| p.assign(&g, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
