//! Criterion benchmark of full primitive enacts (wall-clock of the real
//! execution through the multi-GPU framework, 1 vs 4 virtual GPUs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mgpu_bench::{run_on_k, Primitive};
use mgpu_gen::weights::add_paper_weights;
use mgpu_gen::{rmat, RmatParams};
use mgpu_graph::{Csr, GraphBuilder};
use mgpu_partition::RandomPartitioner;
use vgpu::HardwareProfile;

fn bench_primitives(c: &mut Criterion) {
    let mut coo = rmat(13, 16, RmatParams::paper(), 5);
    add_paper_weights(&mut coo, 6);
    let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
    let part = RandomPartitioner::default();
    let mut group = c.benchmark_group("primitives");
    group.sample_size(10);
    for prim in Primitive::all() {
        for gpus in [1usize, 4] {
            group.bench_function(BenchmarkId::new(prim.name(), format!("{gpus}gpu")), |b| {
                b.iter(|| run_on_k(prim, &g, gpus, HardwareProfile::k40(), &part).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
