//! Batched multi-source betweenness centrality: Brandes over up to 64
//! sources in one enact, the forward sweep riding the MS-BFS bitfield
//! engine (see [`crate::ms_bfs`]).
//!
//! Where [`crate::bc::Bc`] pays `k` full enacts for `k` sources — `k`
//! partition bindings, `k` forward sweeps of ~`D` supersteps each — the
//! batch pays ONE forward sweep of `max_lane_depth` supersteps for all
//! lanes at once, then one σ-sync superstep and one backward sweep over
//! the union of the lanes' depth ranges:
//!
//! * **Forward** — the MS-BFS consume/advance pair, with a per-lane σ
//!   accumulated alongside each depth claim: a destination bit that flips
//!   `INF → d` copies the parent's σ for that lane; an equal-depth re-visit
//!   adds it. All advances are sequential in CSR edge order (like `Bc`'s),
//!   so per-lane σ sums accumulate in exactly the per-source order — and
//!   since σ values are shortest-path *counts* (integers, exact in `f32`
//!   below 2²⁴), the batch's σ is bit-equal to the repeated-enact σ.
//! * **σ-sync** — one broadcast superstep of authoritative per-lane
//!   `(depth, σ)` for owned vertices, so every proxy is correct before the
//!   backward sweep (exactly `Bc`'s `SyncSigma`, widened to the batch).
//! * **Backward** — descending depth `d` from the global max over all
//!   lanes; each owned vertex at depth `d` *in some lane* accumulates that
//!   lane's δ over its out-edges in CSR order, then δ is broadcast. Per
//!   lane this touches the same vertices, the same edges, in the same
//!   order, against bit-equal `(depth, σ, δ)` operands as a single-source
//!   `Bc` backward sweep — so per-lane δ, and therefore the lane-ordered
//!   `bc` sums, are bit-equal to the repeated-enact reference.
//!
//! σ adds are not idempotent, so unlike MS-BFS the batch's forward
//! messages must not be suppressed or merged: the problem reports
//! `monotone = false` and every package is delivered verbatim. The wire
//! message carries the full per-lane payload (`8 + 64·(4+4)` bytes) and is
//! priced at that worst case — batching trades fat messages for a ~`k`×
//! superstep reduction, which is the paper's `S·l` term, not `H·g`.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops;
use mgpu_core::problem::{MgpuProblem, Wire};
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::sync::{Contribution, GlobalReduce};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::ms_bfs::LANES;
use crate::INF;

/// Batched multi-source BC over up to [`LANES`] sources.
#[derive(Debug, Clone)]
pub struct BcBatch {
    /// Global vertex ids, one per lane.
    pub sources: Vec<usize>,
}

impl BcBatch {
    /// A batch over the given global source ids (panics unless 1..=64).
    pub fn new(sources: Vec<usize>) -> Self {
        assert!(
            (1..=LANES).contains(&sources.len()),
            "BC batches 1..={LANES} sources, got {}",
            sources.len()
        );
        BcBatch { sources }
    }

    /// Active lane count.
    pub fn lanes(&self) -> usize {
        self.sources.len()
    }
}

/// Phase of the batched-BC state machine (mirrors [`crate::bc::BcPhase`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcBatchPhase {
    /// MS-BFS + per-lane path counting (selective comm).
    Forward,
    /// One-superstep broadcast of authoritative per-lane (depth, σ).
    SyncSigma,
    /// Per-lane dependency accumulation by descending depth (broadcast).
    Backward,
    /// One superstep folding per-lane δ into `bc` in lane order — the same
    /// order repeated single-source enacts sum in, which is what makes the
    /// final scores bit-equal (f32 addition is order-sensitive).
    Finalize,
    /// Finished.
    Done,
}

/// The batch's wire message: a lane mask plus full per-lane payloads.
/// Forward packages carry σ contributions for the masked lanes (their depth
/// is implied by the superstep); σ-sync and backward packages carry
/// authoritative `(depth, σ)` and δ respectively.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneMsg {
    /// Lanes this message speaks for.
    pub bits: u64,
    /// Per-lane depth (σ-sync only; zeroed otherwise).
    pub depth: [u32; LANES],
    /// Per-lane value: σ (forward, σ-sync) or δ (backward).
    pub val: [f32; LANES],
}

impl LaneMsg {
    fn empty() -> Self {
        LaneMsg { bits: 0, depth: [0; LANES], val: [0.0; LANES] }
    }
}

impl Wire for LaneMsg {
    // Priced at the dense worst case: mask + 64 × (depth + value). The
    // honest price of batching BC's (label, σ) pair across every lane.
    const BYTES: usize = 8 + LANES * (4 + 4);

    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.bits.to_le_bytes());
        for d in &self.depth {
            out.extend_from_slice(&d.to_le_bytes());
        }
        for v in &self.val {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn read_from(buf: &[u8]) -> Self {
        let bits = u64::from_le_bytes(buf[..8].try_into().expect("lane mask"));
        let mut depth = [0u32; LANES];
        let mut val = [0.0f32; LANES];
        for (i, d) in depth.iter_mut().enumerate() {
            let at = 8 + 4 * i;
            *d = u32::from_le_bytes(buf[at..at + 4].try_into().expect("lane depth"));
        }
        for (i, v) in val.iter_mut().enumerate() {
            let at = 8 + 4 * LANES + 4 * i;
            *v = f32::from_le_bytes(buf[at..at + 4].try_into().expect("lane value"));
        }
        LaneMsg { bits, depth, val }
    }
}

/// Per-GPU batched-BC state.
#[derive(Debug)]
pub struct BcBatchState<V: Id> {
    /// Vertex-major per-lane depths (`depth[v·lanes + lane]`, `INF` =
    /// unreached). Doubles as the `seen` set: a claim is `INF → d`.
    pub depth: DeviceArray<u32>,
    /// Per-lane shortest-path counts σ (vertex-major).
    pub sigma: DeviceArray<f32>,
    /// Per-lane dependency values δ (vertex-major).
    pub delta: DeviceArray<f32>,
    /// Accumulated centrality (summed over lanes in lane order).
    pub bc: DeviceArray<f32>,
    /// Lanes newly arrived and not yet propagated (forward phase).
    pub visit: DeviceArray<u64>,
    /// The consume-pass snapshot the forward advance reads.
    pub prop: DeviceArray<u64>,
    /// Remote copies whose pending bits were packaged last superstep.
    sent: Vec<V>,
    /// Owned vertices at each depth in *some* lane (backward frontiers).
    depth_frontiers: Vec<Vec<V>>,
    /// Last depth each vertex was bucketed at (dedups the per-depth push
    /// when several lanes discover a vertex in one superstep).
    bucketed: Vec<u32>,
    /// Current phase.
    pub phase: BcBatchPhase,
    /// Forward: the superstep cursor for combine-side depth stamping.
    /// Backward: the depth being processed.
    cur_depth: u32,
    /// Deepest depth assigned locally, over all lanes.
    max_depth: usize,
}

impl<V: Id> BcBatchState<V> {
    fn note_discovery(&mut self, v: V, depth: u32, owned: bool) {
        let d = depth as usize;
        if owned && self.bucketed[v.idx()] != depth {
            self.bucketed[v.idx()] = depth;
            if d >= self.depth_frontiers.len() {
                self.depth_frontiers.resize_with(d + 1, Vec::new);
            }
            self.depth_frontiers[d].push(v);
        }
        self.max_depth = self.max_depth.max(d);
    }

    /// Lanes in which `v` sits at exactly depth `d`.
    fn lanes_at(&self, v: V, d: u32, lanes: usize) -> u64 {
        let mut mask = 0u64;
        for b in 0..lanes {
            if self.depth[v.idx() * lanes + b] == d {
                mask |= 1 << b;
            }
        }
        mask
    }
}

impl<V: Id, O: Id> MgpuProblem<V, O> for BcBatch {
    type State = BcBatchState<V>;
    type Msg = LaneMsg;

    fn name(&self) -> &'static str {
        "BC-batch"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn comm_now(&self, state: &Self::State) -> CommStrategy {
        match state.phase {
            BcBatchPhase::Forward => CommStrategy::Selective,
            _ => CommStrategy::Broadcast,
        }
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn state_bytes_per_vertex(&self) -> usize {
        // visit + prop words, bc + bucket marker, and per-lane depth/σ/δ —
        // the batch multiplies BC's 16 bytes/vertex by the lane count.
        2 * 8 + 2 * 4 + 12 * self.lanes()
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        assert_eq!(
            sub.duplication,
            Duplication::All,
            "this primitive's local ids must equal global ids (duplicate-all)"
        );
        let n = sub.n_vertices();
        Ok(BcBatchState {
            depth: dev.alloc(n * self.lanes())?,
            sigma: dev.alloc(n * self.lanes())?,
            delta: dev.alloc(n * self.lanes())?,
            bc: dev.alloc(n)?,
            visit: dev.alloc(n)?,
            prop: dev.alloc(n)?,
            sent: Vec::new(),
            depth_frontiers: Vec::new(),
            bucketed: vec![INF; n],
            phase: BcBatchPhase::Forward,
            cur_depth: 0,
            max_depth: 0,
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _src: Option<V>,
    ) -> Result<Vec<V>> {
        let lanes = self.lanes();
        {
            let BcBatchState { depth, sigma, delta, bc, visit, prop, .. } = &mut *state;
            dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                depth.as_mut_slice().fill(INF);
                sigma.as_mut_slice().fill(0.0);
                delta.as_mut_slice().fill(0.0);
                bc.as_mut_slice().fill(0.0);
                visit.as_mut_slice().fill(0);
                prop.as_mut_slice().fill(0);
                let n = visit.len();
                ((), (4 + 3 * lanes) as u64 * n as u64)
            })?;
        }
        state.sent.clear();
        state.depth_frontiers = vec![Vec::new()];
        state.bucketed.fill(INF);
        state.phase = BcBatchPhase::Forward;
        state.cur_depth = 0;
        state.max_depth = 0;
        let mut frontier: Vec<V> = Vec::new();
        for (lane, &s) in self.sources.iter().enumerate() {
            let Some(local) = sub.from_global(V::from_usize(s)) else { continue };
            if !sub.is_owned(local) {
                continue;
            }
            if state.visit[local.idx()] == 0 {
                frontier.push(local);
            }
            state.visit[local.idx()] |= 1 << lane;
            state.depth[local.idx() * lanes + lane] = 0;
            state.sigma[local.idx() * lanes + lane] = 1.0;
            state.note_discovery(local, 0, true);
        }
        Ok(frontier)
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        let lanes = self.lanes();
        match state.phase {
            BcBatchPhase::Forward => {
                let flushed = std::mem::take(&mut state.sent);
                let (active, act) = ops::consume_bits(
                    dev,
                    &flushed,
                    input,
                    state.visit.as_mut_slice(),
                    state.prop.as_mut_slice(),
                )?;
                if dev.timeline.is_enabled() {
                    let at = dev.stream_time(COMPUTE_STREAM);
                    dev.timeline.record(vgpu::TraceEvent {
                        device: dev.id(),
                        stream: COMPUTE_STREAM.0,
                        kind: vgpu::TraceKind::Lanes,
                        name: "lane-occupancy",
                        start_us: at,
                        items: u64::from(active.count_ones()),
                        bytes: active,
                        ..vgpu::TraceEvent::default()
                    });
                }
                let next = iter as u32 + 1;
                let out = {
                    let BcBatchState { depth, sigma, visit, prop, .. } = &mut *state;
                    // Sequential on purpose, like Bc's forward: σ adds are
                    // += over f32 in CSR edge order per lane.
                    ops::advance_filter_fused_seq(dev, sub, &act, |u, _, d| {
                        let bits = prop[u.idx()];
                        let mut claimed = 0u64;
                        let mut w = bits;
                        while w != 0 {
                            let b = w.trailing_zeros() as usize;
                            w &= w - 1;
                            let di = d.idx() * lanes + b;
                            if depth[di] == INF {
                                depth[di] = next;
                                sigma[di] = sigma[u.idx() * lanes + b];
                                claimed |= 1 << b;
                            } else if depth[di] == next {
                                sigma[di] += sigma[u.idx() * lanes + b];
                            }
                        }
                        if claimed == 0 {
                            return None;
                        }
                        let first = visit[d.idx()] == 0;
                        visit[d.idx()] |= claimed;
                        first.then_some(d)
                    })?
                };
                for &v in &out {
                    state.note_discovery(v, next, sub.is_owned(v));
                }
                state.sent = out.iter().copied().filter(|&v| !sub.is_owned(v)).collect();
                Ok(out)
            }
            BcBatchPhase::SyncSigma => {
                let owned: Vec<V> =
                    (0..sub.n_vertices()).map(V::from_usize).filter(|&v| sub.is_owned(v)).collect();
                let count = owned.len() as u64;
                dev.kernel(COMPUTE_STREAM, KernelKind::Compute, || ((), count))?;
                Ok(owned)
            }
            BcBatchPhase::Backward => {
                let d = state.cur_depth;
                let frontier: Vec<V> =
                    state.depth_frontiers.get(d as usize).cloned().unwrap_or_default();
                let next_depth = d + 1;
                {
                    let BcBatchState { depth, sigma, delta, .. } = &mut *state;
                    // Per lane this is exactly Bc's backward advance: the
                    // lane loop is inside the edge loop, so each lane's δ
                    // sum runs in CSR edge order.
                    ops::advance_filter_fused_seq(dev, sub, &frontier, |s, _, w| {
                        for b in 0..lanes {
                            let si = s.idx() * lanes + b;
                            let wi = w.idx() * lanes + b;
                            if depth[si] == d && depth[wi] == next_depth && sigma[wi] > 0.0 {
                                delta[si] += sigma[si] / sigma[wi] * (1.0 + delta[wi]);
                            }
                        }
                        None::<V>
                    })?;
                }
                Ok(frontier)
            }
            BcBatchPhase::Finalize => {
                let owned: Vec<V> =
                    (0..sub.n_vertices()).map(V::from_usize).filter(|&v| sub.is_owned(v)).collect();
                let sources = &self.sources;
                let BcBatchState { delta, bc, .. } = &mut *state;
                let count = owned.len() as u64;
                dev.kernel(COMPUTE_STREAM, KernelKind::Compute, || {
                    for &v in &owned {
                        // dup-all: local id == global id, so `sources` can
                        // be compared directly; a lane's own source never
                        // accumulates its δ (Brandes excludes s).
                        for b in 0..lanes {
                            if sources[b] != v.idx() {
                                bc[v.idx()] += delta[v.idx() * lanes + b];
                            }
                        }
                    }
                    ((), count * lanes as u64)
                })?;
                Ok(Vec::new())
            }
            BcBatchPhase::Done => Ok(Vec::new()),
        }
    }

    fn package(&self, state: &Self::State, v: V) -> LaneMsg {
        let lanes = self.lanes();
        let mut msg = LaneMsg::empty();
        match state.phase {
            BcBatchPhase::Forward => {
                // σ contributions for the lanes claimed this superstep
                // (their depth is the receiver's cur_depth + 1).
                msg.bits = state.visit[v.idx()];
                let mut w = msg.bits;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    msg.val[b] = state.sigma[v.idx() * lanes + b];
                }
            }
            BcBatchPhase::SyncSigma => {
                for b in 0..lanes {
                    let i = v.idx() * lanes + b;
                    if state.depth[i] != INF {
                        msg.bits |= 1 << b;
                        msg.depth[b] = state.depth[i];
                        msg.val[b] = state.sigma[i];
                    }
                }
            }
            BcBatchPhase::Backward | BcBatchPhase::Finalize | BcBatchPhase::Done => {
                msg.bits = state.lanes_at(v, state.cur_depth, lanes);
                let mut w = msg.bits;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    msg.val[b] = state.delta[v.idx() * lanes + b];
                }
            }
        }
        msg
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &LaneMsg) -> bool {
        let lanes = self.lanes();
        match state.phase {
            BcBatchPhase::Forward => {
                // Contributions claimed by the sender this superstep, all
                // at depth cur_depth + 1; late (longer-path) ones are
                // discarded by the depth guard, like Bc's label check.
                let d = state.cur_depth + 1;
                let mut fresh = 0u64;
                let mut w = msg.bits;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let i = v.idx() * lanes + b;
                    if state.depth[i] == INF {
                        state.depth[i] = d;
                        state.sigma[i] = msg.val[b];
                        fresh |= 1 << b;
                    } else if state.depth[i] == d {
                        state.sigma[i] += msg.val[b];
                    }
                }
                if fresh == 0 {
                    return false;
                }
                state.visit[v.idx()] |= fresh;
                state.note_discovery(v, d, true); // selective ⇒ owned
                true
            }
            BcBatchPhase::SyncSigma => {
                // Authoritative override from the owner.
                let mut w = msg.bits;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let i = v.idx() * lanes + b;
                    state.depth[i] = msg.depth[b];
                    state.sigma[i] = msg.val[b];
                }
                false
            }
            BcBatchPhase::Backward => {
                let mut w = msg.bits;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    state.delta[v.idx() * lanes + b] = msg.val[b];
                }
                false
            }
            BcBatchPhase::Finalize | BcBatchPhase::Done => false,
        }
    }

    fn locally_done(&self, state: &Self::State, _next_input: &[V]) -> bool {
        state.phase == BcBatchPhase::Done
    }

    fn contribution(&self, state: &Self::State, next_input: &[V]) -> Contribution {
        Contribution {
            u64_add: next_input.len() as u64,
            f64_max: state.max_depth as f64,
            ..Contribution::default()
        }
    }

    fn after_superstep(&self, state: &mut Self::State, reduce: &GlobalReduce, iter: usize) {
        match state.phase {
            BcBatchPhase::Forward => {
                if reduce.u64_sum == 0 {
                    state.phase = BcBatchPhase::SyncSigma;
                    state.cur_depth = reduce.f64_max.max(0.0) as u32;
                } else {
                    // `iter` is already the next superstep's index: bits
                    // combined during it sit at depth `iter + 1`, so the
                    // combine-side stamp (cur_depth + 1) needs `iter`.
                    state.cur_depth = iter as u32;
                }
            }
            BcBatchPhase::SyncSigma => {
                state.phase = if state.cur_depth == 0 {
                    BcBatchPhase::Finalize // every lane is a single vertex
                } else {
                    BcBatchPhase::Backward
                };
            }
            BcBatchPhase::Backward => {
                if state.cur_depth <= 1 {
                    state.phase = BcBatchPhase::Finalize;
                } else {
                    state.cur_depth -= 1;
                }
            }
            BcBatchPhase::Finalize => state.phase = BcBatchPhase::Done,
            BcBatchPhase::Done => {}
        }
    }
}

/// Gather batch centrality scores into global vertex order.
pub fn gather_bc_batch<V: Id, O: Id>(
    runner: &Runner<'_, V, O, BcBatch>,
    dist: &DistGraph<V, O>,
) -> Vec<f32> {
    crate::bfs::gather(dist, |gpu, local| runner.state(gpu).bc[local.idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::{gather_bc, Bc};
    use mgpu_core::{EnactConfig, EnactReport};
    use mgpu_gen::gnm;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run_batch(g: &Csr<u32, u64>, n_gpus: usize, sources: Vec<usize>) -> (Vec<f32>, EnactReport) {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner =
            Runner::new(system, &dist, BcBatch::new(sources), EnactConfig::default()).unwrap();
        let report = runner.enact(None).unwrap();
        (gather_bc_batch(&runner, &dist), report)
    }

    /// Repeated single-source enacts on ONE partition binding, summed in
    /// f32 in source order — the bit-equality reference for the batch.
    fn repeated_enacts(
        g: &Csr<u32, u64>,
        n_gpus: usize,
        sources: &[usize],
    ) -> (Vec<f32>, Vec<EnactReport>) {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, Bc, EnactConfig::default()).unwrap();
        let mut total = vec![0.0f32; g.n_vertices()];
        let mut reports = Vec::new();
        for &src in sources {
            reports.push(runner.enact(Some(src as u32)).unwrap());
            for (t, &x) in total.iter_mut().zip(gather_bc(&runner, &dist).iter()) {
                *t += x;
            }
        }
        (total, reports)
    }

    fn assert_bit_equal(batch: &[f32], reference: &[f32]) {
        for (i, (&a, &b)) in batch.iter().zip(reference).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "vertex {i}: batch {a} vs repeated {b}");
        }
    }

    #[test]
    fn diamond_batch_matches_repeated_enacts_bitwise() {
        let coo = Coo::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let sources = vec![0usize, 3];
        for n in [1, 2] {
            let (batch, _) = run_batch(&g, n, sources.clone());
            let (expect, _) = repeated_enacts(&g, n, &sources);
            assert_bit_equal(&batch, &expect);
        }
    }

    #[test]
    fn random_graph_batch_is_bit_equal_across_gpu_counts() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(40, 160, 5));
        let sources = vec![0usize, 5, 11, 17, 23, 31];
        for n in [1, 2, 4] {
            let (batch, _) = run_batch(&g, n, sources.clone());
            let (expect, _) = repeated_enacts(&g, n, &sources);
            assert_bit_equal(&batch, &expect);
        }
    }

    #[test]
    fn batch_matches_f64_brandes_within_tolerance() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(40, 160, 5));
        let sources = vec![0usize, 5, 11];
        let (batch, _) = run_batch(&g, 2, sources.clone());
        let mut expect = vec![0.0f64; 40];
        for &src in &sources {
            for (t, x) in expect.iter_mut().zip(crate::reference::bc(&g, src as u32)) {
                *t += x;
            }
        }
        for (i, (&a, &b)) in batch.iter().zip(&expect).enumerate() {
            assert!((a as f64 - b).abs() <= 1e-3 * (1.0 + b.abs()), "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn batch_pays_one_forward_sweep_not_k() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(60, 180, 9));
        let sources: Vec<usize> = (0..16).map(|i| i * 60 / 16).collect();
        let (_, batch_report) = run_batch(&g, 2, sources.clone());
        let (_, reports) = repeated_enacts(&g, 2, &sources);
        let repeated_supersteps: usize = reports.iter().map(|r| r.iterations).sum();
        assert!(
            batch_report.iterations * 4 <= repeated_supersteps,
            "batch {} supersteps vs {} repeated",
            batch_report.iterations,
            repeated_supersteps
        );
    }

    #[test]
    fn lane_msg_wire_roundtrip() {
        let mut m = LaneMsg::empty();
        m.bits = 0b1011;
        m.depth[0] = 7;
        m.depth[3] = 2;
        m.val[1] = 0.625;
        m.val[3] = -3.5;
        let mut buf = Vec::new();
        m.write_to(&mut buf);
        assert_eq!(buf.len(), <LaneMsg as Wire>::BYTES);
        assert_eq!(LaneMsg::read_from(&buf), m);
    }

    #[test]
    fn isolated_sources_score_zero() {
        let coo = Coo::from_edges(5, vec![(1, 2)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (batch, _) = run_batch(&g, 2, vec![0, 4]);
        assert!(batch.iter().all(|&x| x == 0.0));
    }
}
