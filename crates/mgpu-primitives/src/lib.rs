//! # mgpu-primitives — the paper's six graph primitives
//!
//! Each primitive implements [`mgpu_core::MgpuProblem`] with exactly the
//! per-primitive choices of Table I / §IV:
//!
//! | primitive | duplication | communication | W | H |
//! |---|---|---|---|---|
//! | [`bfs::Bfs`] | duplicate-all | selective | O(\|E_i\|) | O(\|B_i\|) |
//! | [`dobfs::Dobfs`] | duplicate-all | broadcast | O(a·\|E_i\|) | O((n−1)·\|V\|) |
//! | [`sssp::Sssp`] | duplicate-all | selective | O(b·\|E_i\|) | O(2b·\|B_i\|) |
//! | [`bc::Bc`] | duplicate-all | selective fwd / broadcast bwd | O(2\|E_i\|) | O(5\|B_i\| + 2(n−1)\|L_i\|) |
//! | [`cc::Cc`] | duplicate-all | broadcast | log(D/2)·O(\|E_i\|) | S·O(2\|V_i\|) |
//! | [`pr::Pagerank`] | duplicate-all | selective | S·O(\|E_i\|) | S·O(\|B_i\|) |
//!
//! [`reference`] holds sequential CPU implementations of every primitive;
//! the test suites validate multi-GPU results against them exactly.

pub mod bc;
pub mod bc_batch;
pub mod bfs;
pub mod bfs_pred;
pub mod cc;
pub mod dobfs;
pub mod ms_bfs;
pub mod pr;
pub mod reference;
pub mod sssp;
pub mod sssp_delta;

pub use bc::Bc;
pub use bc_batch::BcBatch;
pub use bfs::Bfs;
pub use cc::Cc;
pub use dobfs::Dobfs;
pub use ms_bfs::MsBfs;
pub use bfs_pred::BfsPred;
pub use pr::Pagerank;
pub use sssp::Sssp;
pub use sssp_delta::SsspDelta;

/// Unreached/unvisited marker for label and distance arrays.
pub const INF: u32 = u32::MAX;
