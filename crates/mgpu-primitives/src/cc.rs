//! Multi-GPU connected components (Soman et al. hooking + pointer jumping).
//!
//! CC is the paper's example of a primitive that "jumps beyond the n-hop
//! limit" (it reads `comp[comp[v]]`, an arbitrary-distance access), which is
//! why n-hop-replication frameworks like Medusa cannot express it and why it
//! needs **duplicate-all + broadcast** here (§II-A, §III-C).
//!
//! Each superstep runs local hooking (for every edge, hook the larger root
//! under the smaller) and pointer jumping (path halving) to a local
//! fixpoint — `W ∈ log(D/2)·O(|E_i|)` — then broadcasts the component ids
//! that changed; the combiner takes the minimum. Power-law graphs converge
//! in the paper's observed 2–5 supersteps.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::problem::{MgpuProblem, Wire};
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

/// Multi-GPU connected components.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cc;

/// Per-GPU CC state.
#[derive(Debug)]
pub struct CcState<V: Id> {
    /// Component pointer structure over the duplicate-all space: after each
    /// superstep's jumping, `comp[v]` is the smallest known member of `v`'s
    /// component. Values are vertex ids (= local indices under
    /// duplicate-all).
    pub comp: DeviceArray<V>,
    /// Snapshot of `comp` at superstep start, to detect changes.
    prev: Vec<V>,
}

impl<V: Id + Wire, O: Id> MgpuProblem<V, O> for Cc {
    type State = CcState<V>;
    type Msg = V;

    fn name(&self) -> &'static str {
        "CC"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Broadcast
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::Fixed { sizing_factor: 1.0 }
    }

    fn state_bytes_per_vertex(&self) -> usize {
        <V as Id>::BYTES // one component id per vertex
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        assert_eq!(
            sub.duplication,
            Duplication::All,
            "CC's comp[comp[v]] access requires the duplicate-all space"
        );
        Ok(CcState { comp: dev.alloc(sub.n_vertices())?, prev: vec![V::zero(); sub.n_vertices()] })
    }

    fn reset(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _src: Option<V>,
    ) -> Result<Vec<V>> {
        let comp = &mut state.comp;
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            let n = comp.len();
            for v in 0..n {
                comp[v] = V::from_usize(v);
            }
            ((), n as u64)
        })?;
        // CC is frontier-free; seed with the owned set so the first
        // superstep is not skipped as "locally done".
        Ok((0..sub.n_vertices()).map(V::from_usize).filter(|&v| sub.is_owned(v)).collect())
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _bufs: &mut FrontierBufs<V>,
        _input: &[V],
        _iter: usize,
    ) -> Result<Vec<V>> {
        let n = sub.n_vertices();
        // Snapshot for change detection.
        {
            let CcState { comp, prev } = state;
            dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                prev.copy_from_slice(comp.as_slice());
                ((), n as u64)
            })?;
        }
        // Hook + jump to a local fixpoint.
        loop {
            let comp = &mut state.comp;
            // Hooking: for every local edge, hook the larger root under the
            // smaller (Soman et al.'s min-hooking).
            let hooked = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
                let mut hooked = false;
                for v in 0..n {
                    let vid = V::from_usize(v);
                    for &u in sub.csr.neighbors(vid) {
                        let rv = comp[v].idx();
                        let ru = comp[u.idx()].idx();
                        if rv != ru {
                            let (lo, hi) = (rv.min(ru), rv.max(ru));
                            if comp[hi].idx() > lo {
                                comp[hi] = V::from_usize(lo);
                                hooked = true;
                            }
                        }
                    }
                }
                (hooked, sub.n_edges() as u64)
            })?;
            // Pointer jumping (path halving) until flat.
            loop {
                let comp = &mut state.comp;
                let jumped = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                    let mut jumped = false;
                    for v in 0..n {
                        let c = comp[v].idx();
                        let cc = comp[c];
                        if comp[v] != cc {
                            comp[v] = cc;
                            jumped = true;
                        }
                    }
                    (jumped, n as u64)
                })?;
                if !jumped {
                    break;
                }
            }
            if !hooked {
                break;
            }
        }
        // Output frontier: every local vertex whose component changed this
        // superstep (owned *and* proxy — proxies carry remote knowledge back
        // to their owners via the broadcast).
        let CcState { comp, prev } = state;
        let changed = dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
            let changed: Vec<V> =
                (0..n).map(V::from_usize).filter(|&v| comp[v.idx()] != prev[v.idx()]).collect();
            (changed, n as u64)
        })?;
        Ok(changed)
    }

    fn package(&self, state: &Self::State, v: V) -> V {
        state.comp[v.idx()]
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &V) -> bool {
        if *msg < state.comp[v.idx()] {
            state.comp[v.idx()] = *msg;
            true
        } else {
            false
        }
    }

    // Strict min-combine on the component pointer. No uniformity hint:
    // hooking's broadcast payloads differ per vertex (and are only
    // coincidentally uniform on degenerate graphs).
    fn monotone(&self) -> bool {
        true
    }
    fn suppression_key(&self, msg: &V) -> u64 {
        msg.idx() as u64
    }

    // Component pointers are vertex ids, which under duplicate-all are
    // global ids already — they survive re-partitioning unchanged.
    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint_word(&self, state: &Self::State, v: V) -> u64 {
        state.comp[v.idx()].idx() as u64
    }

    fn restore_word(&self, state: &mut Self::State, v: V, word: u64) {
        state.comp[v.idx()] = V::from_usize(word as usize);
    }
}

/// Gather component labels (smallest member id per component) into global
/// vertex order.
pub fn gather_components<V: Id + Wire, O: Id>(
    runner: &Runner<'_, V, O, Cc>,
    dist: &DistGraph<V, O>,
) -> Vec<usize> {
    crate::bfs::gather(dist, |gpu, local| runner.state(gpu).comp[local.idx()].idx())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_gen::{gnm, grid2d};
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run_cc(g: &Csr<u32, u64>, n_gpus: usize) -> (Vec<usize>, mgpu_core::EnactReport) {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, Cc, EnactConfig::default()).unwrap();
        let report = runner.enact(None).unwrap();
        (gather_components(&runner, &dist), report)
    }

    #[test]
    fn labels_components_on_a_disconnected_graph() {
        let coo = Coo::from_edges(8, vec![(0, 1), (1, 2), (4, 5), (6, 7)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        for n in [1, 2, 3] {
            let (comp, _) = run_cc(&g, n);
            assert_eq!(comp, crate::reference::cc(&g), "{n} GPUs");
        }
    }

    #[test]
    fn random_graph_components_match_union_find() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(200, 260, 17));
        let expect = crate::reference::cc(&g);
        for n in [1, 2, 4] {
            let (comp, _) = run_cc(&g, n);
            assert_eq!(comp, expect, "{n} GPUs");
        }
    }

    #[test]
    fn converges_in_few_supersteps_even_on_high_diameter_graphs() {
        // A 30×30 grid has diameter 58, but hooking+jumping converges
        // logarithmically — the paper reports 2–5 supersteps.
        let g: Csr<u32, u64> = GraphBuilder::undirected(&grid2d(30, 30, 1.0, 1));
        let (comp, report) = run_cc(&g, 4);
        assert!(comp.iter().all(|&c| c == 0), "a connected grid is one component");
        assert!(report.iterations <= 8, "expected O(log D) supersteps, got {}", report.iterations);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g: Csr<u32, u64> = Csr::empty(5);
        let (comp, _) = run_cc(&g, 2);
        assert_eq!(comp, vec![0, 1, 2, 3, 4]);
    }
}
