//! Multi-GPU direction-optimizing BFS (Algorithm 2, §VI-A).
//!
//! Forward ("push") iterations are plain BFS advances. Backward ("pull")
//! iterations parallelize across *unvisited* vertices: each scans its
//! incoming edges (CSC) and stops at the first parent discovered in the
//! previous iteration — the "edge skipping" that reduces `W` to
//! `O(a·|E_i|)`, `a < 1`.
//!
//! Direction choice uses the paper's cheap estimates (`FV = |Q|·|E_i|/|V_i|`,
//! `BV = |U|·|V_i|/|P|`) with thresholds `do_a`/`do_b`, and the
//! forward→backward switch is allowed once (it requires a full vertex scan
//! to build the unvisited frontier).
//!
//! Because an upcoming iteration may use either direction, newly discovered
//! vertices must be visible *everywhere*: duplication is all, communication
//! is **broadcast** — `H ∈ O((n−1)·|V|)` and `C ∈ O((n−1)·|V|)`, which is
//! why DOBFS is the one primitive whose multi-GPU scaling stays flat
//! (§VII-B): its computation is already down to `O(|V_i|)`-scale, so
//! communication dominates.
//!
//! Under 1D edge-cut partitioning a GPU only stores the out-edges of its
//! own vertices, so the in-edges of a vertex `v` are scattered across GPUs.
//! Each GPU therefore pulls for *every* unvisited vertex in its (duplicate-
//! all) vertex space using the parents it knows locally; broadcast combines
//! deduplicate concurrent discoveries by atomicMin.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::direction::{Direction, DirectionConfig, DirectionState};
use mgpu_core::frontier::{Frontier, FrontierMode};
use mgpu_core::ops;
use mgpu_core::problem::MgpuProblem;
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::bfs::gather;
use crate::INF;

/// Multi-GPU direction-optimizing BFS.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dobfs {
    /// Switch thresholds (`do_a`, `do_b`); the defaults are the paper's
    /// social-graph values 0.01 / 0.1.
    pub direction: DirectionConfig,
    /// Unvisited-set representation for the backward pass. `Auto` (the
    /// default) holds the near-full set as a bitmap and falls back to the
    /// sorted vec as it drains; all modes are charge- and result-identical
    /// (the frontier iterates ascending either way).
    pub frontier: FrontierMode,
}

/// Per-GPU DOBFS state.
#[derive(Debug)]
pub struct DobfsState<V: Id> {
    /// Depth labels over the (duplicate-all) local vertex space.
    pub labels: DeviceArray<u32>,
    /// Direction machinery.
    pub dir: DirectionState,
    /// Unvisited-vertex frontier for pull mode (rebuilt on the one
    /// forward→backward switch, then shrunk incrementally).
    unvisited: Frontier<V>,
    /// Number of visited vertices in the local space (`|P|`).
    visited: usize,
    /// True once `unvisited` has been materialized.
    unvisited_built: bool,
    /// Edges actually scanned by pull iterations (the `a·|E_i|` numerator,
    /// reported by the Table I experiment).
    pub pull_edges_scanned: u64,
}

impl<V: Id, O: Id> MgpuProblem<V, O> for Dobfs {
    type State = DobfsState<V>;
    type Msg = u32;

    fn name(&self) -> &'static str {
        "DOBFS"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Broadcast
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        assert_eq!(
            sub.duplication,
            Duplication::All,
            "DOBFS broadcast ids must be global ids (duplicate-all)"
        );
        assert!(
            sub.csc.is_some(),
            "DOBFS needs the reverse adjacency: call DistGraph::build_cscs() before Runner::new"
        );
        Ok(DobfsState {
            labels: dev.alloc(sub.n_vertices())?,
            dir: DirectionState::new(self.direction),
            unvisited: Frontier::empty(sub.n_vertices(), self.frontier),
            visited: 0,
            unvisited_built: false,
            pull_edges_scanned: 0,
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        _sub: &SubGraph<V, O>,
        state: &mut Self::State,
        src: Option<V>,
    ) -> Result<Vec<V>> {
        let labels = &mut state.labels;
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            labels.as_mut_slice().fill(INF);
            let n = labels.len();
            ((), n as u64)
        })?;
        state.dir = DirectionState::new(self.direction);
        state.unvisited = Frontier::empty(state.labels.len(), self.frontier);
        state.unvisited_built = false;
        state.visited = 0;
        state.pull_edges_scanned = 0;
        Ok(match src {
            Some(s) => {
                state.labels[s.idx()] = 0;
                state.visited = 1;
                vec![s]
            }
            None => Vec::new(),
        })
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        let n_vi = sub.n_vertices();
        let unvisited_count = n_vi - state.visited;
        let dir =
            state.dir.decide(input.len(), unvisited_count, state.visited, sub.n_edges(), n_vi);
        let cur_label = iter as u32;
        let next_label = cur_label + 1;

        let out = match dir {
            Direction::Forward => {
                use std::sync::atomic::Ordering::Relaxed;
                // CAS-claimed labels as in push BFS: the discovered set is
                // schedule-independent, so the parallel kernels stay
                // deterministic. The pull path below remains sequential
                // (its scanned-edge charge is early-exit order dependent).
                let labels = vgpu::par::as_atomic_u32(state.labels.as_mut_slice());
                if bufs.scheme().fused() {
                    ops::advance_filter_fused(dev, sub, bufs, input, |_, _, d| {
                        labels[d.idx()]
                            .compare_exchange(INF, next_label, Relaxed, Relaxed)
                            .is_ok()
                            .then_some(d)
                    })?
                } else {
                    let cand = ops::advance(dev, sub, bufs, input, |_, _, d| {
                        (labels[d.idx()].load(Relaxed) == INF).then_some(d)
                    })?;
                    ops::filter(dev, &cand, |v| {
                        labels[v.idx()].compare_exchange(INF, next_label, Relaxed, Relaxed).is_ok()
                    })?
                }
            }
            Direction::Backward => {
                let csc = sub.csc.as_ref().expect("checked at init");
                let (newly, scanned) = if !state.unvisited_built {
                    // The one full vertex scan the switch is charged for.
                    let labels = &state.labels;
                    state.unvisited =
                        ops::frontier_scan(dev, n_vi, self.frontier, |v| labels[v] == INF)?;
                    state.unvisited_built = true;
                    ops::advance_pull_frontier(dev, csc, &state.unvisited, |_, p| {
                        labels[p.idx()] == cur_label
                    })?
                } else {
                    // Fused shrink + pull: one decode pass drops the
                    // vertices discovered since the last superstep and
                    // scans parents for the rest — both read the same
                    // label snapshot, so results and charges match the
                    // unfused retain-then-pull exactly.
                    let labels = &state.labels;
                    ops::retain_pull_frontier(
                        dev,
                        csc,
                        &mut state.unvisited,
                        |v: V| labels[v.idx()] == INF,
                        |_, p| labels[p.idx()] == cur_label,
                    )?
                };
                state.pull_edges_scanned += scanned;
                let labels = &mut state.labels;
                let count = newly.len() as u64;
                dev.kernel(COMPUTE_STREAM, KernelKind::Compute, || {
                    for &v in &newly {
                        labels[v.idx()] = next_label;
                    }
                    ((), count)
                })?;
                newly
            }
        };
        state.visited += out.len();
        Ok(out)
    }

    fn package(&self, state: &Self::State, v: V) -> u32 {
        state.labels[v.idx()]
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &u32) -> bool {
        if *msg < state.labels[v.idx()] {
            if state.labels[v.idx()] == INF {
                state.visited += 1;
            }
            state.labels[v.idx()] = *msg;
            true
        } else {
            false
        }
    }

    // Strict min-combine on the depth label; broadcast packages carry one
    // depth for the whole frontier — the shape the DeltaVarint shared
    // payload and the butterfly union both exploit.
    fn monotone(&self) -> bool {
        true
    }
    fn suppression_key(&self, msg: &u32) -> u64 {
        u64::from(*msg)
    }
    fn uniform_broadcast_msgs(&self) -> Option<bool> {
        Some(true)
    }

    /// DOBFS does not checkpoint (direction state is not captured); the
    /// harvest word is the depth label.
    fn result_word(&self, state: &Self::State, v: V) -> u64 {
        u64::from(state.labels[v.idx()])
    }
}

/// Gather final labels from a finished runner into global vertex order.
pub fn gather_labels<V: Id, O: Id>(
    runner: &Runner<'_, V, O, Dobfs>,
    dist: &DistGraph<V, O>,
) -> Vec<u32> {
    gather(dist, |gpu, local| runner.state(gpu).labels[local.idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_gen::preferential_attachment;
    use mgpu_graph::{Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn soc_graph() -> Csr<u32, u64> {
        GraphBuilder::undirected(&preferential_attachment(600, 8, 13))
    }

    fn run_dobfs(
        g: &Csr<u32, u64>,
        n_gpus: usize,
        src: u32,
        cfg: DirectionConfig,
    ) -> (Vec<u32>, mgpu_core::EnactReport, Vec<bool>, u64) {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let mut dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        dist.build_cscs();
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(
            system,
            &dist,
            Dobfs { direction: cfg, ..Dobfs::default() },
            EnactConfig::default(),
        )
        .unwrap();
        let report = runner.enact(Some(src)).unwrap();
        let switched: Vec<bool> =
            (0..n_gpus).map(|g| runner.state(g).dir.switched_to_backward).collect();
        let scanned: u64 = (0..n_gpus).map(|g| runner.state(g).pull_edges_scanned).sum();
        (gather_labels(&runner, &dist), report, switched, scanned)
    }

    #[test]
    fn matches_reference_on_social_graph() {
        let g = soc_graph();
        let expect = crate::reference::bfs(&g, 0u32);
        for n in [1, 2, 4] {
            let (labels, _, _, _) = run_dobfs(&g, n, 0, DirectionConfig::default());
            assert_eq!(labels, expect, "{n} GPUs");
        }
    }

    #[test]
    fn direction_switch_engages_and_skips_edges() {
        let g = soc_graph();
        let (_, _, switched, scanned) = run_dobfs(&g, 2, 0, DirectionConfig::default());
        assert!(switched.iter().any(|&s| s), "pull mode should engage on a power-law graph");
        assert!(scanned > 0);
        assert!(
            (scanned as usize) < g.n_edges(),
            "edge skipping: scanned {scanned} < |E| {}",
            g.n_edges()
        );
    }

    #[test]
    fn disabled_direction_optimization_is_plain_bfs() {
        let g = soc_graph();
        let cfg = DirectionConfig { enabled: false, ..Default::default() };
        let (labels, _, switched, scanned) = run_dobfs(&g, 2, 0, cfg);
        assert_eq!(labels, crate::reference::bfs(&g, 0u32));
        assert!(switched.iter().all(|&s| !s));
        assert_eq!(scanned, 0);
    }

    #[test]
    fn dobfs_does_less_w_work_than_bfs_on_power_law() {
        let g = soc_graph();
        let (_, do_report, _, _) = run_dobfs(&g, 1, 0, DirectionConfig::default());
        let (_, bfs_report, _, _) =
            run_dobfs(&g, 1, 0, DirectionConfig { enabled: false, ..Default::default() });
        assert!(
            do_report.totals.w_items < bfs_report.totals.w_items,
            "DO {} vs plain {}",
            do_report.totals.w_items,
            bfs_report.totals.w_items
        );
    }

    #[test]
    fn broadcast_volume_scales_with_peers() {
        let g = soc_graph();
        let (_, r2, _, _) = run_dobfs(&g, 2, 0, DirectionConfig::default());
        let (_, r4, _, _) = run_dobfs(&g, 4, 0, DirectionConfig::default());
        // H ∈ O((n-1)·|V|): 4 GPUs broadcast to 3 peers each
        assert!(
            r4.totals.h_vertices > 2 * r2.totals.h_vertices,
            "4-GPU H {} should well exceed 2-GPU H {}",
            r4.totals.h_vertices,
            r2.totals.h_vertices
        );
    }
}
