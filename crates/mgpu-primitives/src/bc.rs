//! Multi-GPU betweenness centrality (Brandes, single source per enact).
//!
//! BC is the one primitive whose phases want *different* communication
//! strategies, which is what Table I's `H ∈ O(5|B_i| + 2(n−1)|L_i|)`
//! encodes:
//!
//! * **Forward sweep** — a BFS that also counts shortest paths: selective
//!   communication of `(label, σ)` pairs (the `5|B_i|` term — label +
//!   path-count values over the border).
//! * **σ-synchronization** — one superstep in which every GPU broadcasts the
//!   authoritative `(label, σ)` of its owned vertices so every proxy is
//!   correct before the backward sweep (part of the `2(n−1)|L_i|` term).
//! * **Backward sweep** — dependency accumulation by descending depth;
//!   each depth's `δ` values are broadcast so remote parents can read the
//!   successors they need (the rest of the `2(n−1)|L_i|` term).
//!
//! Phase transitions are driven by the shared superstep reduction
//! ([`MgpuProblem::after_superstep`]), so every GPU switches phase — and
//! therefore communication strategy — in the same superstep.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops;
use mgpu_core::problem::MgpuProblem;
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::sync::{Contribution, GlobalReduce};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::INF;

/// Multi-GPU single-source betweenness centrality.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bc;

/// Phase of the BC state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcPhase {
    /// BFS + path counting (selective comm).
    Forward,
    /// One-superstep broadcast of authoritative (label, σ).
    SyncSigma,
    /// Dependency accumulation by descending depth (broadcast comm).
    Backward,
    /// Finished.
    Done,
}

/// Per-GPU BC state.
#[derive(Debug)]
pub struct BcState<V: Id> {
    /// BFS depth labels over the duplicate-all space.
    pub labels: DeviceArray<u32>,
    /// Shortest-path counts σ.
    pub sigma: DeviceArray<f32>,
    /// Dependency values δ.
    pub delta: DeviceArray<f32>,
    /// Accumulated centrality for owned vertices.
    pub bc: DeviceArray<f32>,
    /// Owned vertices discovered at each depth (the backward sweep's
    /// frontiers).
    depth_frontiers: Vec<Vec<V>>,
    /// Current phase.
    pub phase: BcPhase,
    /// Depth being processed by the backward sweep.
    cur_depth: usize,
    /// Deepest label assigned locally (contributed to the reduction so the
    /// backward sweep starts from the *global* max depth).
    max_depth: usize,
    /// The source's local id if hosted here (its δ is not accumulated).
    src: Option<V>,
}

impl<V: Id> BcState<V> {
    fn note_discovery(&mut self, v: V, depth: u32, owned: bool) {
        let d = depth as usize;
        if d >= self.depth_frontiers.len() {
            self.depth_frontiers.resize_with(d + 1, Vec::new);
        }
        if owned {
            self.depth_frontiers[d].push(v);
        }
        self.max_depth = self.max_depth.max(d);
    }
}

impl<V: Id, O: Id> MgpuProblem<V, O> for Bc {
    type State = BcState<V>;
    /// Forward / sync: `(label, σ)`. Backward: `(label, δ)`.
    type Msg = (u32, f32);

    fn name(&self) -> &'static str {
        "BC"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn comm_now(&self, state: &Self::State) -> CommStrategy {
        match state.phase {
            BcPhase::Forward => CommStrategy::Selective,
            _ => CommStrategy::Broadcast,
        }
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn state_bytes_per_vertex(&self) -> usize {
        16 // labels (u32) + sigma/delta/bc (f32 each)
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        assert_eq!(
            sub.duplication,
            Duplication::All,
            "this primitive's local ids must equal global ids (duplicate-all)"
        );
        let n = sub.n_vertices();
        Ok(BcState {
            labels: dev.alloc(n)?,
            sigma: dev.alloc(n)?,
            delta: dev.alloc(n)?,
            bc: dev.alloc(n)?,
            depth_frontiers: Vec::new(),
            phase: BcPhase::Forward,
            cur_depth: 0,
            max_depth: 0,
            src: None,
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        _sub: &SubGraph<V, O>,
        state: &mut Self::State,
        src: Option<V>,
    ) -> Result<Vec<V>> {
        {
            let BcState { labels, sigma, delta, bc, .. } = state;
            dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                labels.as_mut_slice().fill(INF);
                sigma.as_mut_slice().fill(0.0);
                delta.as_mut_slice().fill(0.0);
                bc.as_mut_slice().fill(0.0);
                let n = labels.len();
                ((), 4 * n as u64)
            })?;
        }
        state.depth_frontiers = vec![Vec::new()];
        state.phase = BcPhase::Forward;
        state.cur_depth = 0;
        state.max_depth = 0;
        state.src = src;
        Ok(match src {
            Some(s) => {
                state.labels[s.idx()] = 0;
                state.sigma[s.idx()] = 1.0;
                state.depth_frontiers[0].push(s);
                vec![s]
            }
            None => Vec::new(),
        })
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        match state.phase {
            BcPhase::Forward => {
                let next = iter as u32 + 1;
                // Fused advance: discover + accumulate σ along tree edges.
                let BcState { labels, sigma, .. } = state;
                // Sequential on purpose: σ accumulation is += over f32 in
                // edge order — parallel chunking would reorder the sums.
                let discovered = ops::advance_filter_fused_seq(dev, sub, input, |s, _, d| {
                    if labels[d.idx()] == INF {
                        labels[d.idx()] = next;
                        sigma[d.idx()] += sigma[s.idx()];
                        Some(d)
                    } else if labels[d.idx()] == next {
                        sigma[d.idx()] += sigma[s.idx()];
                        None
                    } else {
                        None
                    }
                })?;
                for &v in &discovered {
                    let owned = sub.is_owned(v);
                    state.note_discovery(v, next, owned);
                }
                Ok(discovered)
            }
            BcPhase::SyncSigma => {
                // Broadcast authoritative (label, σ) for every owned vertex.
                let owned: Vec<V> =
                    (0..sub.n_vertices()).map(V::from_usize).filter(|&v| sub.is_owned(v)).collect();
                let count = owned.len() as u64;
                dev.kernel(COMPUTE_STREAM, KernelKind::Compute, || ((), count))?;
                Ok(owned)
            }
            BcPhase::Backward => {
                let d = state.cur_depth;
                let frontier: Vec<V> = state.depth_frontiers.get(d).cloned().unwrap_or_default();
                let next_depth = d as u32 + 1;
                {
                    let BcState { labels, sigma, delta, .. } = state;
                    // advance over the frontier's out-edges: accumulate δ
                    // from successors one depth deeper.
                    ops::advance_filter_fused_seq(dev, sub, &frontier, |s, _, w| {
                        if labels[w.idx()] == next_depth && sigma[w.idx()] > 0.0 {
                            delta[s.idx()] +=
                                sigma[s.idx()] / sigma[w.idx()] * (1.0 + delta[w.idx()]);
                        }
                        None::<V>
                    })?;
                }
                // accumulate centrality (the source contributes nothing)
                let src = state.src;
                let BcState { delta, bc, .. } = state;
                let count = frontier.len() as u64;
                dev.kernel(COMPUTE_STREAM, KernelKind::Compute, || {
                    for &v in &frontier {
                        if Some(v) != src {
                            bc[v.idx()] += delta[v.idx()];
                        }
                    }
                    ((), count)
                })?;
                // Broadcast this depth's δ so remote parents can read it.
                Ok(frontier)
            }
            BcPhase::Done => Ok(Vec::new()),
        }
    }

    fn package(&self, state: &Self::State, v: V) -> (u32, f32) {
        match state.phase {
            BcPhase::Forward | BcPhase::SyncSigma => (state.labels[v.idx()], state.sigma[v.idx()]),
            _ => (state.labels[v.idx()], state.delta[v.idx()]),
        }
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &(u32, f32)) -> bool {
        match state.phase {
            BcPhase::Forward => {
                let (label, sig) = *msg;
                if label < state.labels[v.idx()] {
                    state.labels[v.idx()] = label;
                    state.sigma[v.idx()] = sig;
                    state.note_discovery(v, label, true); // selective ⇒ owned
                    true
                } else if label == state.labels[v.idx()] {
                    state.sigma[v.idx()] += sig;
                    false
                } else {
                    false
                }
            }
            BcPhase::SyncSigma => {
                // Authoritative override of proxy values (each vertex is
                // owned by exactly one sender, so no double counting).
                let (label, sig) = *msg;
                state.labels[v.idx()] = label;
                state.sigma[v.idx()] = sig;
                false
            }
            BcPhase::Backward => {
                state.delta[v.idx()] = msg.1;
                false
            }
            BcPhase::Done => false,
        }
    }

    fn locally_done(&self, state: &Self::State, _next_input: &[V]) -> bool {
        state.phase == BcPhase::Done
    }

    fn contribution(&self, state: &Self::State, next_input: &[V]) -> Contribution {
        Contribution {
            u64_add: next_input.len() as u64,
            f64_max: state.max_depth as f64,
            ..Contribution::default()
        }
    }

    fn after_superstep(&self, state: &mut Self::State, reduce: &GlobalReduce, _iter: usize) {
        match state.phase {
            BcPhase::Forward => {
                if reduce.u64_sum == 0 {
                    // BFS exhausted everywhere; the global deepest level is
                    // the reduction's max.
                    state.phase = BcPhase::SyncSigma;
                    state.cur_depth = reduce.f64_max.max(0.0) as usize;
                }
            }
            BcPhase::SyncSigma => {
                state.phase = if state.cur_depth == 0 {
                    BcPhase::Done // single-vertex traversal
                } else {
                    BcPhase::Backward
                };
            }
            BcPhase::Backward => {
                if state.cur_depth <= 1 {
                    state.phase = BcPhase::Done;
                } else {
                    state.cur_depth -= 1;
                }
            }
            BcPhase::Done => {}
        }
    }

    /// BC has no checkpoint encoding (its sigma/delta state spans phases);
    /// the harvest word is the centrality score's bit pattern.
    fn result_word(&self, state: &Self::State, v: V) -> u64 {
        state.bc[v.idx()].to_bits() as u64
    }
}

/// Gather centrality scores into global vertex order.
pub fn gather_bc<V: Id, O: Id>(runner: &Runner<'_, V, O, Bc>, dist: &DistGraph<V, O>) -> Vec<f32> {
    crate::bfs::gather(dist, |gpu, local| runner.state(gpu).bc[local.idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_gen::gnm;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run_bc(g: &Csr<u32, u64>, n_gpus: usize, src: u32) -> Vec<f32> {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, Bc, EnactConfig::default()).unwrap();
        runner.enact(Some(src)).unwrap();
        gather_bc(&runner, &dist)
    }

    fn assert_close(ours: &[f32], reference: &[f64], tol: f64) {
        for (i, (&a, &b)) in ours.iter().zip(reference).enumerate() {
            assert!((a as f64 - b).abs() <= tol * (1.0 + b.abs()), "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn path_graph_dependencies() {
        let coo = Coo::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        for n in [1, 2, 3] {
            let bc = run_bc(&g, n, 0);
            assert_close(&bc, &crate::reference::bc(&g, 0u32), 1e-5);
        }
    }

    #[test]
    fn diamond_splits_dependency() {
        // two shortest paths 0→3: σ(3)=2, each middle vertex carries 0.5
        let coo = Coo::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let bc = run_bc(&g, 2, 0);
        assert_close(&bc, &crate::reference::bc(&g, 0u32), 1e-5);
        assert!((bc[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn random_graph_matches_brandes_across_gpu_counts() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(80, 320, 33));
        let expect = crate::reference::bc(&g, 7u32);
        for n in [1, 2, 4] {
            assert_close(&run_bc(&g, n, 7), &expect, 1e-3);
        }
    }

    #[test]
    fn isolated_source_scores_zero_everywhere() {
        let coo = Coo::from_edges(4, vec![(1, 2)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let bc = run_bc(&g, 2, 0);
        assert!(bc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn multi_source_accumulation_via_repeated_enacts() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(40, 160, 5));
        let owner: Vec<u32> = (0..40).map(|v| (v % 2) as u32).collect();
        let dist = DistGraph::build(&g, owner, 2, Duplication::All);
        let system = SimSystem::homogeneous(2, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, Bc, EnactConfig::default()).unwrap();
        let mut total = vec![0.0f64; 40];
        for src in [0u32, 5, 11] {
            runner.enact(Some(src)).unwrap();
            for (t, &x) in total.iter_mut().zip(gather_bc(&runner, &dist).iter()) {
                *t += x as f64;
            }
        }
        let mut expect = vec![0.0f64; 40];
        for src in [0u32, 5, 11] {
            for (t, x) in expect.iter_mut().zip(crate::reference::bc(&g, src)) {
                *t += x;
            }
        }
        for (i, (&a, &b)) in total.iter().zip(&expect).enumerate() {
            assert!((a - b).abs() <= 1e-3 * (1.0 + b.abs()), "vertex {i}: {a} vs {b}");
        }
    }
}
