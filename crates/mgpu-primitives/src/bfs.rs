//! Multi-GPU breadth-first search (Algorithm 1).
//!
//! * **Vertex duplication:** duplicate-all — "we trade memory usage for
//!   better performance for BFS".
//! * **Computation:** an advance kernel followed by a filter kernel (Merrill
//!   et al.'s expand–contract), fused into one kernel under the
//!   prealloc+fusion allocation scheme the paper uses for BFS. `W ∈ O(|E_i|)`.
//! * **Communication:** selective — only remote vertices are sent, with
//!   their new labels. `H ∈ O(|B_i|)`, `C ∈ O(|V_i|)`.
//! * **Combination:** "if a received vertex has not been visited before,
//!   update its label and place it in the input frontier" (atomicMin).
//! * **Convergence:** all frontiers are empty. `S ≈ D/2`.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops;
use mgpu_core::problem::MgpuProblem;
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::INF;

/// Multi-GPU BFS.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bfs {
    /// Use duplicate-1-hop instead of the paper's duplicate-all (the
    /// framework supports both for BFS since it only touches immediate
    /// out-neighbors; the paper picks duplicate-all for speed).
    pub one_hop: bool,
}

/// Per-GPU BFS state: the label (depth) array over the local vertex space.
#[derive(Debug)]
pub struct BfsState {
    /// Depth labels, `INF` = unvisited. Indexed by local vertex id.
    pub labels: DeviceArray<u32>,
}

impl<V: Id, O: Id> MgpuProblem<V, O> for Bfs {
    type State = BfsState;
    type Msg = u32;

    fn name(&self) -> &'static str {
        "BFS"
    }

    fn duplication(&self) -> Duplication {
        if self.one_hop {
            Duplication::OneHop
        } else {
            Duplication::All
        }
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn state_bytes_per_vertex(&self) -> usize {
        4 // one u32 label per vertex
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        Ok(BfsState { labels: dev.alloc(sub.n_vertices())? })
    }

    fn reset(
        &self,
        dev: &mut Device,
        _sub: &SubGraph<V, O>,
        state: &mut Self::State,
        src: Option<V>,
    ) -> Result<Vec<V>> {
        let labels = &mut state.labels;
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            let n = labels.len();
            labels.as_mut_slice().fill(INF);
            ((), n as u64)
        })?;
        Ok(match src {
            Some(s) => {
                state.labels[s.idx()] = 0;
                vec![s]
            }
            None => Vec::new(),
        })
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        use std::sync::atomic::Ordering::Relaxed;
        let next_label = iter as u32 + 1;
        // Atomic view so the parallel operator kernels can claim vertices
        // with CAS (the GPU atomicCAS idiom): each unvisited vertex is won by
        // exactly one claimant, so the discovered *set* and final labels are
        // schedule-independent.
        let labels = vgpu::par::as_atomic_u32(state.labels.as_mut_slice());
        if bufs.scheme().fused() {
            // §VI-C: one kernel, no intermediate frontier.
            ops::advance_filter_fused(dev, sub, bufs, input, |_, _, d| {
                labels[d.idx()]
                    .compare_exchange(INF, next_label, Relaxed, Relaxed)
                    .is_ok()
                    .then_some(d)
            })
        } else {
            // Merrill-style expand (advance) then contract (filter).
            let candidates = ops::advance(dev, sub, bufs, input, |_, _, d| {
                (labels[d.idx()].load(Relaxed) == INF).then_some(d)
            })?;
            ops::filter(dev, &candidates, |v| {
                labels[v.idx()].compare_exchange(INF, next_label, Relaxed, Relaxed).is_ok()
            })
        }
    }

    fn package(&self, state: &Self::State, v: V) -> u32 {
        state.labels[v.idx()]
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &u32) -> bool {
        if *msg < state.labels[v.idx()] {
            state.labels[v.idx()] = *msg;
            true
        } else {
            false
        }
    }

    // Strict min-combine on the depth label: dominated re-sends are safe to
    // suppress, and every message of a superstep carries the same depth.
    fn monotone(&self) -> bool {
        true
    }
    fn suppression_key(&self, msg: &u32) -> u64 {
        u64::from(*msg)
    }
    fn uniform_broadcast_msgs(&self) -> Option<bool> {
        Some(true)
    }

    // The depth label is BFS's entire recoverable per-vertex state.
    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint_word(&self, state: &Self::State, v: V) -> u64 {
        state.labels[v.idx()] as u64
    }

    fn restore_word(&self, state: &mut Self::State, v: V, word: u64) {
        state.labels[v.idx()] = word as u32;
    }
}

/// Gather per-vertex results from the owning GPUs back into global order —
/// works for either duplication strategy via the conversion tables.
pub fn gather<V: Id, O: Id, T: Copy>(
    dist: &DistGraph<V, O>,
    mut read: impl FnMut(usize, V) -> T,
) -> Vec<T> {
    (0..dist.n_global)
        .map(|g| {
            let (gpu, local) = dist.locate(V::from_usize(g));
            read(gpu, local)
        })
        .collect()
}

/// Convenience: gather BFS labels from a finished runner.
pub fn gather_labels<V: Id, O: Id>(
    runner: &Runner<'_, V, O, Bfs>,
    dist: &DistGraph<V, O>,
) -> Vec<u32> {
    gather(dist, |gpu, local| runner.state(gpu).labels[local.idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run_bfs(
        g: &Csr<u32, u64>,
        n_gpus: usize,
        one_hop: bool,
        src: u32,
    ) -> (Vec<u32>, mgpu_core::EnactReport) {
        let bfs = Bfs { one_hop };
        let dup = <Bfs as MgpuProblem<u32, u64>>::duplication(&bfs);
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, dup);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, bfs, EnactConfig::default()).unwrap();
        let report = runner.enact(Some(src)).unwrap();
        (gather_labels(&runner, &dist), report)
    }

    fn ladder() -> Csr<u32, u64> {
        // 2×8 grid ("ladder"): non-trivial depths, multiple shortest paths
        let mut coo = Coo::<u32>::new(16);
        for i in 0..8u32 {
            if i + 1 < 8 {
                coo.push(i, i + 1);
                coo.push(8 + i, 8 + i + 1);
            }
            coo.push(i, 8 + i);
        }
        GraphBuilder::undirected(&coo)
    }

    #[test]
    fn single_gpu_matches_reference() {
        let g = ladder();
        let (labels, report) = run_bfs(&g, 1, false, 0);
        assert_eq!(labels, crate::reference::bfs(&g, 0u32));
        assert_eq!(report.iterations, 9, "depth 8 + one empty-frontier step");
        assert!(report.totals.h_bytes_sent == 0, "no communication on 1 GPU");
    }

    #[test]
    fn multi_gpu_matches_reference_dup_all() {
        let g = ladder();
        for n in [2, 3, 4] {
            let (labels, report) = run_bfs(&g, n, false, 3);
            assert_eq!(labels, crate::reference::bfs(&g, 3u32), "{n} GPUs");
            assert!(report.totals.h_bytes_sent > 0, "cut edges force communication");
        }
    }

    #[test]
    fn multi_gpu_matches_reference_one_hop() {
        let g = ladder();
        for n in [2, 4] {
            let (labels, _) = run_bfs(&g, n, true, 0);
            assert_eq!(labels, crate::reference::bfs(&g, 0u32), "{n} GPUs, duplicate-1-hop");
        }
    }

    #[test]
    fn disconnected_vertices_stay_inf() {
        let coo = Coo::from_edges(6, vec![(0, 1), (1, 2)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (labels, _) = run_bfs(&g, 2, false, 0);
        assert_eq!(labels, vec![0, 1, 2, INF, INF, INF]);
    }

    #[test]
    fn unfused_scheme_gives_same_answer() {
        let g = ladder();
        let dist =
            DistGraph::build(&g, (0..16).map(|v| (v % 2) as u32).collect(), 2, Duplication::All);
        let system = SimSystem::homogeneous(2, HardwareProfile::k40());
        let config = EnactConfig { alloc_scheme: Some(AllocScheme::Max), ..Default::default() };
        let mut runner = Runner::new(system, &dist, Bfs::default(), config).unwrap();
        runner.enact(Some(0u32)).unwrap();
        let labels = gather_labels(&runner, &dist);
        assert_eq!(labels, crate::reference::bfs(&g, 0u32));
    }

    #[test]
    fn counters_match_table1_orders() {
        let g = ladder();
        let (_, report) = run_bfs(&g, 2, false, 0);
        let t = &report.totals;
        // W ∈ O(|E_i|) summed over GPUs ≈ |E| (every edge expanded once,
        // plus load-balancing scan items)
        assert!(t.w_items as usize >= g.n_edges());
        assert!(t.w_items as usize <= 4 * g.n_edges() + 16 * report.iterations);
        // H counted in vertices is bounded by border size × iterations
        assert!(t.h_vertices > 0);
        // wire bytes = vertices × (id + label)
        assert_eq!(t.h_bytes_sent, t.h_vertices * 8);
    }

    #[test]
    fn repeated_enacts_are_independent() {
        let g = ladder();
        let dist =
            DistGraph::build(&g, (0..16).map(|v| (v % 2) as u32).collect(), 2, Duplication::All);
        let system = SimSystem::homogeneous(2, HardwareProfile::k40());
        let mut runner =
            Runner::new(system, &dist, Bfs::default(), EnactConfig::default()).unwrap();
        let r1 = runner.enact(Some(0u32)).unwrap();
        let l1 = gather_labels(&runner, &dist);
        let r2 = runner.enact(Some(15u32)).unwrap();
        let l2 = gather_labels(&runner, &dist);
        assert_eq!(l1[0], 0);
        assert_eq!(l2[15], 0);
        assert_eq!(l2, crate::reference::bfs(&g, 15u32));
        assert!((r1.sim_time_us - r2.sim_time_us).abs() < r1.sim_time_us * 0.5);
    }
}
