//! Multi-GPU PageRank (Algorithm 3).
//!
//! * **Vertex duplication:** either works; like the paper we use
//!   duplicate-all "to better trace the program".
//! * **Computation:** a filter kernel updating the PR values (except on the
//!   first iteration), followed by an advance kernel accumulating rank
//!   shares along out-edges. `W ∈ O(|E_i|)` per iteration.
//! * **Communication:** selective. "The remote sub-frontiers do not change
//!   over iterations. We get all these sub-frontiers during the
//!   initialization step, and only send ranking values during actual
//!   computation" — each iteration pushes locally accumulated rank mass of
//!   each border vertex to its hosting GPU. `H ∈ O(|B_i|)` per iteration.
//! * **Combination:** atomicAdd of received partial rank into the local
//!   accumulator.
//! * **Convergence:** when the global sum of rank updates falls below a
//!   threshold, or at the iteration cap.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops;
use mgpu_core::problem::MgpuProblem;
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::sync::{Contribution, GlobalReduce};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

/// Multi-GPU PageRank.
#[derive(Debug, Clone, Copy)]
pub struct Pagerank {
    /// Damping factor (0.85 is customary).
    pub damping: f64,
    /// Stop when the global sum of |rank updates| in one iteration falls
    /// below this ("all ranking value updates are smaller than a pre-defined
    /// threshold"). Set to 0.0 to always run to `max_iters`.
    pub threshold: f64,
    /// Maximum number of rank-update iterations.
    pub max_iters: usize,
}

impl Default for Pagerank {
    fn default() -> Self {
        Pagerank { damping: 0.85, threshold: 0.0, max_iters: 30 }
    }
}

/// Per-GPU PageRank state.
#[derive(Debug)]
pub struct PrState {
    /// Authoritative ranks for owned vertices (junk elsewhere).
    pub ranks: DeviceArray<f32>,
    /// Per-iteration accumulated rank mass over the whole local space
    /// (owned and proxy vertices alike).
    accum: DeviceArray<f32>,
    /// Owned vertices (the compute frontier, fixed).
    owned: Vec<usize>,
    /// Border vertices: proxies with local in-edges — the fixed remote
    /// sub-frontier computed at init.
    border: Vec<usize>,
    /// Sum of |rank change| in the last update step.
    last_delta: f64,
    n_global: usize,
    /// Host scratch for the parallel accumulation advance: per-chunk dense
    /// rank partials, merged deterministically in chunk order (f32 addition
    /// is not associative, so the merge order is fixed by the chunk plan,
    /// never by the thread schedule). Reused across iterations.
    partial_scratch: Vec<f32>,
}

impl<V: Id, O: Id> MgpuProblem<V, O> for Pagerank {
    type State = PrState;
    type Msg = f32;

    fn name(&self) -> &'static str {
        "PR"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn alloc_scheme(&self) -> AllocScheme {
        // "we use fixed preallocation for CC and PR, as their memory
        // requirements can be determined before running" (§VI-B)
        AllocScheme::Fixed { sizing_factor: 1.0 }
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        assert_eq!(
            sub.duplication,
            Duplication::All,
            "this primitive's local ids must equal global ids (duplicate-all)"
        );
        let n = sub.n_vertices();
        let ranks = dev.alloc(n)?;
        let accum = dev.alloc(n)?;
        // One pass over local edges discovers the fixed border sub-frontier.
        let (owned, border) = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            let mut owned = Vec::new();
            let mut is_border = vec![false; n];
            for v in 0..n {
                let vid = V::from_usize(v);
                if sub.is_owned(vid) {
                    owned.push(v);
                    for &d in sub.csr.neighbors(vid) {
                        if !sub.is_owned(d) {
                            is_border[d.idx()] = true;
                        }
                    }
                }
            }
            let border: Vec<usize> = (0..n).filter(|&v| is_border[v]).collect();
            ((owned, border), (n + sub.n_edges()) as u64)
        })?;
        Ok(PrState {
            ranks,
            accum,
            owned,
            border,
            last_delta: f64::INFINITY,
            // n_global is filled in reset (the dist graph isn't visible
            // here beyond the subgraph, whose dup-all space *is* global).
            n_global: n,
            partial_scratch: Vec::new(),
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        _sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _src: Option<V>,
    ) -> Result<Vec<V>> {
        let init_rank = 1.0f32 / state.n_global as f32;
        let PrState { ranks, accum, .. } = state;
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            ranks.as_mut_slice().fill(init_rank);
            accum.as_mut_slice().fill(0.0);
            let n = ranks.len();
            ((), 2 * n as u64)
        })?;
        state.last_delta = f64::INFINITY;
        Ok(state.owned.iter().map(|&v| V::from_usize(v)).collect())
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        bufs: &mut FrontierBufs<V>,
        _input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        let n_global = state.n_global;
        // Filter step: apply accumulated mass to owned ranks (skipped on the
        // first iteration, which only spreads the uniform initial ranks).
        if iter > 0 {
            let damping = self.damping as f32;
            let base = (1.0 - self.damping) as f32 / n_global as f32;
            let PrState { ranks, accum, owned, .. } = state;
            let delta = ops::compute(dev, owned.len() as u64, || {
                let mut delta = 0.0f64;
                for &v in owned.iter() {
                    let new = base + damping * accum[v];
                    delta += (new - ranks[v]).abs() as f64;
                    ranks[v] = new;
                }
                delta
            })?;
            state.last_delta = delta;
            // Zero the accumulators for the next round (all local vertices,
            // proxies included).
            let accum = &mut state.accum;
            dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                accum.as_mut_slice().fill(0.0);
                let n = accum.len();
                ((), n as u64)
            })?;
        }
        // Advance step: spread rank shares along local out-edges. The
        // accumulation operator owns the += — chunks write disjoint dense
        // partials and the merge happens in chunk order, so the resulting
        // f32 bits are identical at every thread count.
        let owned_frontier: Vec<V> = state.owned.iter().map(|&v| V::from_usize(v)).collect();
        let PrState { ranks, accum, partial_scratch, .. } = state;
        let ranks: &[f32] = ranks.as_slice();
        ops::advance_accumulate(
            dev,
            sub,
            bufs,
            &owned_frontier,
            accum.as_mut_slice(),
            partial_scratch,
            |s| {
                let deg = sub.csr.degree(s);
                debug_assert!(deg > 0, "advance only visits vertices with out-edges");
                ranks[s.idx()] / deg as f32
            },
        )?;
        // The fixed remote sub-frontier: border proxies carrying their
        // accumulated mass to their hosts.
        Ok(state.border.iter().map(|&v| V::from_usize(v)).collect())
    }

    fn package(&self, state: &Self::State, v: V) -> f32 {
        state.accum[v.idx()]
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &f32) -> bool {
        state.accum[v.idx()] += *msg; // the paper's atomicAdd
        false
    }

    fn locally_done(&self, _state: &Self::State, _next_input: &[V]) -> bool {
        false // PR stops via the global residual, not empty frontiers
    }

    fn contribution(&self, state: &Self::State, _next_input: &[V]) -> Contribution {
        Contribution { f64_add: state.last_delta, ..Contribution::default() }
    }

    fn globally_done(&self, reduce: &GlobalReduce, iter: usize) -> bool {
        iter >= 2 && reduce.f64_sum < self.threshold
    }

    fn max_iterations(&self) -> usize {
        // iteration 0 spreads, iterations 1..=max_iters apply+spread
        self.max_iters + 1
    }

    /// PR has no checkpoint encoding (cross-superstep scalar state); the
    /// harvest word is the rank's bit pattern.
    fn result_word(&self, state: &Self::State, v: V) -> u64 {
        state.ranks[v.idx()].to_bits() as u64
    }
}

/// Gather final ranks from a finished runner into global vertex order.
pub fn gather_ranks<V: Id, O: Id>(
    runner: &Runner<'_, V, O, Pagerank>,
    dist: &DistGraph<V, O>,
) -> Vec<f32> {
    crate::bfs::gather(dist, |gpu, local| runner.state(gpu).ranks[local.idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_gen::{gnm, preferential_attachment};
    use mgpu_graph::{Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run_pr(
        g: &Csr<u32, u64>,
        n_gpus: usize,
        pr: Pagerank,
    ) -> (Vec<f32>, mgpu_core::EnactReport) {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, pr, EnactConfig::default()).unwrap();
        let report = runner.enact(None).unwrap();
        (gather_ranks(&runner, &dist), report)
    }

    fn assert_close(ours: &[f32], reference: &[f64], tol: f64) {
        for (i, (&a, &b)) in ours.iter().zip(reference).enumerate() {
            assert!(
                (a as f64 - b).abs() <= tol * b.abs().max(1e-12),
                "vertex {i}: ours {a} vs reference {b}"
            );
        }
    }

    #[test]
    fn matches_power_iteration_across_gpu_counts() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(100, 600, 21));
        let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 20 };
        let reference = crate::reference::pagerank(&g, 0.85, 20);
        for n in [1, 2, 3, 4] {
            let (ranks, report) = run_pr(&g, n, pr);
            assert_close(&ranks, &reference, 1e-3);
            assert_eq!(report.iterations, 21, "{n} GPUs: 1 spread + 20 updates");
        }
    }

    #[test]
    fn rank_sum_is_conserved_without_dangling_vertices() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&preferential_attachment(200, 4, 3));
        let (ranks, _) = run_pr(&g, 2, Pagerank { max_iters: 15, ..Default::default() });
        let sum: f64 = ranks.iter().map(|&r| r as f64).sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    #[test]
    fn threshold_stops_early() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(50, 300, 5));
        let loose = Pagerank { damping: 0.85, threshold: 1e-2, max_iters: 100 };
        let (_, report) = run_pr(&g, 2, loose);
        assert!(report.iterations < 50, "threshold should stop early, ran {}", report.iterations);
    }

    #[test]
    fn communication_volume_is_border_bound_per_iteration() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(100, 500, 8));
        let pr = Pagerank { damping: 0.85, threshold: 0.0, max_iters: 10 };
        let (_, report) = run_pr(&g, 2, pr);
        let iters = report.iterations as u64;
        // each iteration each GPU sends at most its border (≤ |V|) vertices
        assert!(report.totals.h_vertices <= iters * 2 * 100);
        assert!(report.totals.h_vertices > 0);
    }

    #[test]
    fn isolated_vertices_keep_base_rank() {
        let mut coo = gnm(40, 150, 2);
        coo.n_vertices = 44; // 4 isolated vertices appended
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (ranks, _) = run_pr(&g, 2, Pagerank { max_iters: 10, ..Default::default() });
        let base = (1.0 - 0.85) / 44.0;
        for &r in &ranks[40..44] {
            assert!((r as f64 - base).abs() < 1e-6);
        }
    }
}
