//! BFS with predecessor marking — the `MARK_PREDECESSORS` configuration of
//! the paper's Appendix A example.
//!
//! The appendix code sets `MAX_NUM_VERTEX_ASSOCIATES = 1` when predecessors
//! are marked: each transmitted vertex carries one extra `VertexT`
//! associate (the predecessor's global id) besides its label, and
//! `Expand_Incoming` stores it when the label wins the atomicMin. This
//! doubles the per-vertex wire size relative to plain BFS — visible in the
//! H-bytes counters.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops;
use mgpu_core::problem::{MgpuProblem, Wire};
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::INF;

/// BFS that also records each vertex's predecessor in the BFS tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsPred;

/// Per-GPU state: labels plus predecessor (global ids; `V::MAX`-like
/// sentinel is `None` encoded as the vertex itself for the source).
#[derive(Debug)]
pub struct BfsPredState<V: Id> {
    /// Depth labels, `INF` = unvisited.
    pub labels: DeviceArray<u32>,
    /// Predecessor global ids (valid where `labels != INF`; the source is
    /// its own predecessor).
    pub preds: DeviceArray<V>,
}

impl<V: Id + Wire, O: Id> MgpuProblem<V, O> for BfsPred {
    type State = BfsPredState<V>;
    /// `(label, predecessor-global-id)` — one value + one vertex associate.
    type Msg = (u32, V);

    fn name(&self) -> &'static str {
        "BFS(preds)"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        Ok(BfsPredState {
            labels: dev.alloc(sub.n_vertices())?,
            preds: dev.alloc(sub.n_vertices())?,
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        _sub: &SubGraph<V, O>,
        state: &mut Self::State,
        src: Option<V>,
    ) -> Result<Vec<V>> {
        let BfsPredState { labels, preds } = state;
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            labels.as_mut_slice().fill(INF);
            let n = preds.len();
            for i in 0..n {
                preds[i] = V::from_usize(i);
            }
            ((), 2 * n as u64)
        })?;
        Ok(match src {
            Some(s) => {
                state.labels[s.idx()] = 0;
                vec![s]
            }
            None => Vec::new(),
        })
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        let next = iter as u32 + 1;
        let BfsPredState { labels, preds } = state;
        // Sequential on purpose: "first discoverer wins" for predecessors is
        // a tie-break we keep schedule-independent by fixing the visit order.
        ops::advance_filter_fused_seq(dev, sub, input, |s, _, d| {
            if labels[d.idx()] == INF {
                labels[d.idx()] = next;
                preds[d.idx()] = sub.to_global(s);
                Some(d)
            } else {
                None
            }
        })
    }

    fn package(&self, state: &Self::State, v: V) -> (u32, V) {
        (state.labels[v.idx()], state.preds[v.idx()])
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &(u32, V)) -> bool {
        let (label, pred) = *msg;
        if label < state.labels[v.idx()] {
            state.labels[v.idx()] = label;
            state.preds[v.idx()] = pred;
            true
        } else {
            false
        }
    }

    // Strict min-combine on the depth; the predecessor rides along and ties
    // are broken by package order, which the stable canonicalization sort
    // preserves.
    fn monotone(&self) -> bool {
        true
    }
    fn suppression_key(&self, msg: &(u32, V)) -> u64 {
        u64::from(msg.0)
    }
}

/// Gather `(label, predecessor)` pairs in global order.
pub fn gather_tree<V: Id + Wire, O: Id>(
    runner: &Runner<'_, V, O, BfsPred>,
    dist: &DistGraph<V, O>,
) -> Vec<(u32, V)> {
    crate::bfs::gather(dist, |gpu, local| {
        let st = runner.state(gpu);
        (st.labels[local.idx()], st.preds[local.idx()])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_gen::gnm;
    use mgpu_graph::{Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run(g: &Csr<u32, u64>, n: usize, src: u32) -> (Vec<(u32, u32)>, mgpu_core::EnactReport) {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n) as u32).collect();
        let dist = DistGraph::build(g, owner, n, Duplication::All);
        let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
        let mut runner = Runner::new(sys, &dist, BfsPred, EnactConfig::default()).unwrap();
        let report = runner.enact(Some(src)).unwrap();
        (gather_tree(&runner, &dist), report)
    }

    #[test]
    fn labels_match_plain_bfs_and_tree_is_valid() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(120, 600, 77));
        let expect = crate::reference::bfs(&g, 0u32);
        for n in [1usize, 2, 4] {
            let (tree, _) = run(&g, n, 0);
            for (v, &(label, pred)) in tree.iter().enumerate() {
                assert_eq!(label, expect[v], "{n} GPUs, vertex {v}");
                if label != INF && label != 0 {
                    // predecessor is exactly one level shallower and adjacent
                    assert_eq!(expect[pred as usize], label - 1, "vertex {v} pred {pred}");
                    assert!(
                        g.neighbors(pred).contains(&(v as u32)),
                        "tree edge {pred}->{v} must exist"
                    );
                }
            }
        }
    }

    #[test]
    fn predecessor_wire_format_doubles_vertex_payload() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(120, 600, 78));
        let (_, with_pred) = run(&g, 3, 0);
        // plain BFS: 8 bytes/vertex (id + label); with preds: 12
        assert_eq!(with_pred.totals.h_bytes_sent, with_pred.totals.h_vertices * 12);
    }

    #[test]
    fn source_is_its_own_predecessor() {
        let g: Csr<u32, u64> = GraphBuilder::undirected(&gnm(50, 200, 9));
        let (tree, _) = run(&g, 2, 7);
        assert_eq!(tree[7], (0, 7));
    }
}
