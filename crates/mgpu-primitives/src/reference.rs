//! Sequential CPU reference implementations ("computations are verified for
//! correctness", §VII-A). Every multi-GPU result is validated against these.

use std::collections::VecDeque;

use mgpu_graph::{Csr, Id};

use crate::INF;

/// BFS depths from `src`; `INF` marks unreached vertices.
pub fn bfs<V: Id, O: Id>(g: &Csr<V, O>, src: V) -> Vec<u32> {
    let mut depth = vec![INF; g.n_vertices()];
    depth[src.idx()] = 0;
    let mut q = VecDeque::from([src]);
    while let Some(v) = q.pop_front() {
        let dv = depth[v.idx()];
        for &u in g.neighbors(v) {
            if depth[u.idx()] == INF {
                depth[u.idx()] = dv + 1;
                q.push_back(u);
            }
        }
    }
    depth
}

/// Dijkstra single-source shortest paths with `u32` weights; `INF` marks
/// unreached vertices.
pub fn sssp<V: Id, O: Id>(g: &Csr<V, O>, src: V) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![INF; g.n_vertices()];
    dist[src.idx()] = 0;
    let mut heap = BinaryHeap::from([(Reverse(0u32), src.idx())]);
    while let Some((Reverse(d), v)) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (u, w) in g.neighbors_weighted(V::from_usize(v)) {
            let nd = d.saturating_add(w);
            if nd < dist[u.idx()] {
                dist[u.idx()] = nd;
                heap.push((Reverse(nd), u.idx()));
            }
        }
    }
    dist
}

/// Connected components by union-find over undirected edges; returns the
/// smallest member vertex id of each vertex's component (matching the
/// min-label convention of the hooking algorithm).
pub fn cc<V: Id, O: Id>(g: &Csr<V, O>) -> Vec<usize> {
    let n = g.n_vertices();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], v: usize) -> usize {
        let mut root = v;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = v;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for v in 0..n {
        for &u in g.neighbors(V::from_usize(v)) {
            let (rv, ru) = (find(&mut parent, v), find(&mut parent, u.idx()));
            if rv != ru {
                // union by smaller id so roots are component minima
                let (lo, hi) = (rv.min(ru), rv.max(ru));
                parent[hi] = lo;
            }
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

/// PageRank by power iteration with damping `d`, run for exactly `iters`
/// iterations from the uniform distribution. Dangling mass is dropped
/// (the convention Gunrock uses), so rank sums can drift below 1 on graphs
/// with zero-out-degree vertices.
pub fn pagerank<V: Id, O: Id>(g: &Csr<V, O>, d: f64, iters: usize) -> Vec<f64> {
    let n = g.n_vertices();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (v, &rv) in rank.iter().enumerate() {
            let vid = V::from_usize(v);
            let deg = g.degree(vid);
            if deg == 0 {
                continue;
            }
            let share = rv / deg as f64;
            for &u in g.neighbors(vid) {
                next[u.idx()] += share;
            }
        }
        for x in next.iter_mut() {
            *x = (1.0 - d) / n as f64 + d * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Brandes betweenness centrality from a single source. Returns per-vertex
/// dependency scores (the source itself scores 0).
pub fn bc<V: Id, O: Id>(g: &Csr<V, O>, src: V) -> Vec<f64> {
    let n = g.n_vertices();
    let mut depth = vec![INF; n];
    let mut sigma = vec![0.0f64; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    depth[src.idx()] = 0;
    sigma[src.idx()] = 1.0;
    let mut q = VecDeque::from([src.idx()]);
    while let Some(v) = q.pop_front() {
        order.push(v);
        let dv = depth[v];
        for &u in g.neighbors(V::from_usize(v)) {
            let ui = u.idx();
            if depth[ui] == INF {
                depth[ui] = dv + 1;
                q.push_back(ui);
            }
            if depth[ui] == dv + 1 {
                sigma[ui] += sigma[v];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    let mut centrality = vec![0.0f64; n];
    for &v in order.iter().rev() {
        for &u in g.neighbors(V::from_usize(v)) {
            let ui = u.idx();
            if depth[ui] == depth[v] + 1 && sigma[ui] > 0.0 {
                delta[v] += sigma[v] / sigma[ui] * (1.0 + delta[ui]);
            }
        }
        if v != src.idx() {
            centrality[v] += delta[v];
        }
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_graph::{Coo, GraphBuilder};

    fn diamond_weighted() -> Csr<u32, u64> {
        // 0→1 (w1), 0→2 (w4), 1→3 (w1), 2→3 (w1); undirected
        let coo = Coo::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)], Some(vec![1, 4, 1, 1]));
        GraphBuilder::undirected(&coo)
    }

    #[test]
    fn bfs_depths_on_diamond() {
        let g = diamond_weighted();
        assert_eq!(bfs(&g, 0u32), vec![0, 1, 1, 2]);
        assert_eq!(bfs(&g, 3u32), vec![2, 1, 1, 0]);
    }

    #[test]
    fn sssp_prefers_cheap_path() {
        let g = diamond_weighted();
        // 0→3: via 1 costs 1+1=2 (direct 0→2 costs 4, but 0→1→3→2 costs 3)
        assert_eq!(sssp(&g, 0u32), vec![0, 1, 3, 2]);
    }

    #[test]
    fn sssp_unreachable_is_inf() {
        let coo = Coo::from_edges(3, vec![(0, 1)], Some(vec![5]));
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        assert_eq!(sssp(&g, 0u32)[2], INF);
    }

    #[test]
    fn cc_labels_components_by_minimum() {
        let coo = Coo::from_edges(6, vec![(0, 1), (1, 2), (4, 5)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        assert_eq!(cc(&g), vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn pagerank_sums_to_one_without_dangling() {
        let g = diamond_weighted();
        let r = pagerank(&g, 0.85, 50);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // symmetric positions 1 and 2 get equal rank
        assert!((r[1] - r[2]).abs() < 1e-12);
    }

    #[test]
    fn bc_on_a_path_peaks_in_the_middle() {
        let coo = Coo::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let c = bc(&g, 0u32);
        // from source 0: dependency of v counts shortest paths through it:
        // delta[3]=1 (to 4), delta[2]=2, delta[1]=3
        assert_eq!(c, vec![0.0, 3.0, 2.0, 1.0, 0.0]);
    }
}
