//! Multi-GPU single-source shortest paths (Table I row 3).
//!
//! Frontier-based Bellman–Ford relaxation, as in Gunrock: an advance kernel
//! relaxes the out-edges of the frontier (atomicMin on distances), a filter
//! kernel deduplicates the output frontier with a per-iteration visit stamp.
//! Vertices may re-enter the frontier when a shorter path arrives later —
//! the `b` factor of the paper's cost model (`W ∈ O(b·|E_i|)`,
//! `H ∈ O(2b·|B_i|)`, `S ≈ b·D/2`).
//!
//! Duplication and communication follow BFS: duplicate-all + selective; the
//! message is the new distance.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops;
use mgpu_core::problem::MgpuProblem;
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::bfs::gather;
use crate::INF;

/// Multi-GPU SSSP.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sssp;

/// Per-GPU SSSP state.
#[derive(Debug)]
pub struct SsspState {
    /// Tentative distances, `INF` = unreached. Indexed by local vertex id.
    pub dists: DeviceArray<u32>,
    /// Per-iteration visit stamps for frontier deduplication: `stamp[v]`
    /// holds the last iteration in which `v` entered the output frontier.
    stamp: DeviceArray<u32>,
    /// Iteration-start snapshot of `dists` (host scratch, reused every
    /// iteration). Relaxations *read* the snapshot and *write* `dists`
    /// through `fetch_min`, so concurrent chunks of the parallel advance see
    /// one consistent pre-iteration view: the set of vertices whose distance
    /// improves in an iteration depends only on the snapshot, never on the
    /// chunk schedule.
    snap: Vec<u32>,
}

impl<V: Id, O: Id> MgpuProblem<V, O> for Sssp {
    type State = SsspState;
    type Msg = u32;

    fn name(&self) -> &'static str {
        "SSSP"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn state_bytes_per_vertex(&self) -> usize {
        4 // one u32 distance per vertex
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        Ok(SsspState {
            dists: dev.alloc(sub.n_vertices())?,
            stamp: dev.alloc(sub.n_vertices())?,
            snap: Vec::with_capacity(sub.n_vertices()),
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        _sub: &SubGraph<V, O>,
        state: &mut Self::State,
        src: Option<V>,
    ) -> Result<Vec<V>> {
        let SsspState { dists, stamp, .. } = state;
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            dists.as_mut_slice().fill(INF);
            stamp.as_mut_slice().fill(INF);
            let n = dists.len();
            ((), 2 * n as u64)
        })?;
        Ok(match src {
            Some(s) => {
                state.dists[s.idx()] = 0;
                vec![s]
            }
            None => Vec::new(),
        })
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        use std::sync::atomic::Ordering::Relaxed;
        let it = iter as u32;
        let SsspState { dists, stamp, snap } = state;
        // Snapshot the distances at iteration start (metered as one bulk
        // copy). Gating relaxations on the snapshot — and deduplicating
        // emissions with an atomic stamp swap — makes the relaxed set
        // independent of the parallel chunk schedule, while `fetch_min`
        // guarantees the final distance of each vertex is the minimum over
        // all offers regardless of arrival order.
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            snap.clear();
            snap.extend_from_slice(dists.as_slice());
            ((), snap.len() as u64)
        })?;
        let snap: &[u32] = snap;
        let dists_a = vgpu::par::as_atomic_u32(dists.as_mut_slice());
        let stamp_a = vgpu::par::as_atomic_u32(stamp.as_mut_slice());
        if bufs.scheme().fused() {
            ops::advance_filter_fused(dev, sub, bufs, input, |s, e, d| {
                let nd = snap[s.idx()].saturating_add(sub.csr.edge_weight(e));
                if nd < snap[d.idx()] {
                    dists_a[d.idx()].fetch_min(nd, Relaxed);
                    (stamp_a[d.idx()].swap(it, Relaxed) != it).then_some(d)
                } else {
                    None
                }
            })
        } else {
            let relaxed = ops::advance(dev, sub, bufs, input, |s, e, d| {
                let nd = snap[s.idx()].saturating_add(sub.csr.edge_weight(e));
                if nd < snap[d.idx()] {
                    dists_a[d.idx()].fetch_min(nd, Relaxed);
                    Some(d)
                } else {
                    None
                }
            })?;
            ops::filter(dev, &relaxed, |v| stamp_a[v.idx()].swap(it, Relaxed) != it)
        }
    }

    fn package(&self, state: &Self::State, v: V) -> u32 {
        state.dists[v.idx()]
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &u32) -> bool {
        if *msg < state.dists[v.idx()] {
            state.dists[v.idx()] = *msg;
            true
        } else {
            false
        }
    }

    // Strict min-combine on the tentative distance: a re-relaxation that
    // does not improve the last value sent to the owner is pure wire waste.
    fn monotone(&self) -> bool {
        true
    }
    fn suppression_key(&self, msg: &u32) -> u64 {
        u64::from(*msg)
    }

    // Tentative distances are the recoverable state; the visit stamps are
    // per-iteration scratch a fresh reset reinitializes correctly.
    fn supports_checkpoint(&self) -> bool {
        true
    }

    fn checkpoint_word(&self, state: &Self::State, v: V) -> u64 {
        state.dists[v.idx()] as u64
    }

    fn restore_word(&self, state: &mut Self::State, v: V, word: u64) {
        state.dists[v.idx()] = word as u32;
    }
}

/// Gather final distances from a finished runner into global vertex order.
pub fn gather_dists<V: Id, O: Id>(
    runner: &Runner<'_, V, O, Sssp>,
    dist: &DistGraph<V, O>,
) -> Vec<u32> {
    gather(dist, |gpu, local| runner.state(gpu).dists[local.idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_gen::weights::add_paper_weights;
    use mgpu_gen::gnm;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run_sssp(g: &Csr<u32, u64>, n_gpus: usize, src: u32) -> Vec<u32> {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, Sssp, EnactConfig::default()).unwrap();
        runner.enact(Some(src)).unwrap();
        gather_dists(&runner, &dist)
    }

    #[test]
    fn weighted_diamond_takes_cheap_path() {
        let coo = Coo::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)], Some(vec![1, 4, 1, 1]));
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        for n in [1, 2, 3] {
            assert_eq!(run_sssp(&g, n, 0), crate::reference::sssp(&g, 0u32), "{n} GPUs");
        }
    }

    #[test]
    fn zero_weight_edges_are_handled() {
        let coo = Coo::from_edges(3, vec![(0, 1), (1, 2)], Some(vec![0, 0]));
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        assert_eq!(run_sssp(&g, 2, 0), vec![0, 0, 0]);
    }

    #[test]
    fn random_graph_matches_dijkstra_across_gpu_counts() {
        let mut coo = gnm(120, 600, 42);
        add_paper_weights(&mut coo, 7);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let expect = crate::reference::sssp(&g, 5u32);
        for n in [1, 2, 4, 6] {
            assert_eq!(run_sssp(&g, n, 5), expect, "{n} GPUs");
        }
    }

    #[test]
    fn unweighted_graph_degenerates_to_bfs() {
        let coo = gnm(60, 240, 3);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        assert_eq!(run_sssp(&g, 2, 0), crate::reference::bfs(&g, 0u32));
    }

    #[test]
    fn unfused_path_agrees() {
        let mut coo = gnm(80, 400, 9);
        add_paper_weights(&mut coo, 11);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let owner: Vec<u32> = (0..80).map(|v| (v % 3) as u32).collect();
        let dist = DistGraph::build(&g, owner, 3, Duplication::All);
        let system = SimSystem::homogeneous(3, HardwareProfile::k40());
        let config =
            EnactConfig { alloc_scheme: Some(AllocScheme::JustEnough), ..Default::default() };
        let mut runner = Runner::new(system, &dist, Sssp, config).unwrap();
        runner.enact(Some(0u32)).unwrap();
        assert_eq!(gather_dists(&runner, &dist), crate::reference::sssp(&g, 0u32));
    }
}
