//! Batched multi-source BFS (MS-BFS): up to 64 traversals per superstep.
//!
//! The k-source workload that BC and query bursts pay as k sequential
//! traversals shares almost all per-vertex work; packing one lane per
//! source into a `u64` bitfield lets a single superstep advance every
//! traversal at once (Then et al.'s MS-BFS idea, mapped onto this
//! framework's BSP substrate):
//!
//! * **State:** per local vertex, `seen` (lanes whose traversal reached the
//!   vertex), `visit` (lanes newly arrived and not yet propagated), `prop`
//!   (the consume-pass snapshot the advance reads), and a vertex-major
//!   `depth[v·lanes + lane]` table filled at first-set — the per-lane BFS
//!   depth is recovered from the superstep index, since every lane starts
//!   at superstep 0 and a lane's bit first reaches a vertex exactly at its
//!   BFS depth.
//! * **Computation:** one consume pass ([`ops::consume_bits`]) plus one
//!   advance per superstep. The advance claims destination bits with
//!   `fetch_or` (the `atomicOr` idiom): `new = prop[u] & !seen[d]`; the
//!   thread that flips a bit writes that lane's depth, and the thread that
//!   makes `visit[d]` transition 0→nonzero emits `d` — exactly one frontier
//!   entry per discovered vertex per superstep. `W ∈ O(|E_i|)` *per batch*,
//!   not per source.
//! * **Communication:** selective; the message is the vertex's new-bit
//!   word (`Msg = u64`, 8 wire bytes, non-uniform payloads — the encodings
//!   size them honestly via the per-vertex paths).
//! * **Combination:** OR-combine — monotone under the
//!   [`MonotoneOrder::OrBits`] lattice, so suppression floors (union of
//!   bits sent) and OR-merging canonicalization apply.
//! * **Convergence:** all frontiers empty; `S` = depth of the *deepest*
//!   single traversal, not the sum over sources.
//!
//! Depth recovery ties lane depths to the superstep counter, so MS-BFS
//! requires the BSP enactors (the async enactor has no supersteps and
//! cannot stamp arrival depths).

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::{CommStrategy, MonotoneOrder};
use mgpu_core::ops;
use mgpu_core::problem::MgpuProblem;
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::sync::GlobalReduce;
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::bfs::gather;
use crate::INF;

/// Hard lane cap: one bit per source in a machine word.
pub const LANES: usize = 64;

/// Batched multi-source BFS over up to [`LANES`] sources.
#[derive(Debug, Clone)]
pub struct MsBfs {
    /// Global vertex ids, one per lane (lane `i` traverses from
    /// `sources[i]`). Length 1..=64.
    pub sources: Vec<usize>,
}

impl MsBfs {
    /// A batch over the given global source ids (panics unless 1..=64).
    pub fn new(sources: Vec<usize>) -> Self {
        assert!(
            (1..=LANES).contains(&sources.len()),
            "MS-BFS batches 1..={LANES} sources, got {}",
            sources.len()
        );
        MsBfs { sources }
    }

    /// Active lane count (= number of sources).
    pub fn lanes(&self) -> usize {
        self.sources.len()
    }

    /// `n` distinct source ids spread evenly over the vertex space — the
    /// deterministic pick the CLI and benches use for `--sources N`.
    pub fn spread_sources(n: usize, n_vertices: usize) -> Vec<usize> {
        let k = n.clamp(1, LANES).min(n_vertices.max(1));
        (0..k).map(|i| i * n_vertices / k).collect()
    }
}

/// Per-GPU MS-BFS state over the local vertex space.
#[derive(Debug)]
pub struct MsBfsState<V> {
    /// Lanes whose traversal has reached the vertex (the monotone word the
    /// OR-combine grows).
    pub seen: DeviceArray<u64>,
    /// Lanes newly arrived and not yet propagated (consumed by
    /// [`ops::consume_bits`]; for a remote copy, flushed after its package
    /// left on the wire).
    pub visit: DeviceArray<u64>,
    /// The consume-pass snapshot the advance reads.
    pub prop: DeviceArray<u64>,
    /// Vertex-major per-lane depths: `depth[v·lanes + lane]`, `INF` =
    /// unreached.
    pub depth: DeviceArray<u32>,
    /// Remote copies whose `visit` bits were packaged last superstep
    /// (flush list for the next consume pass).
    pub sent: Vec<V>,
    /// Superstep cursor for combine-side depth stamping: bits arriving in
    /// superstep `k` were discovered at depth `k + 1`.
    pub cur_depth: u32,
}

impl<V: Id, O: Id> MgpuProblem<V, O> for MsBfs {
    type State = MsBfsState<V>;
    type Msg = u64;

    fn name(&self) -> &'static str {
        "MS-BFS"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn state_bytes_per_vertex(&self) -> usize {
        // seen + visit + prop words, plus the per-lane depth table — the
        // 8×-and-more growth the governor's admission must see honestly.
        3 * 8 + 4 * self.lanes()
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        let n = sub.n_vertices();
        Ok(MsBfsState {
            seen: dev.alloc(n)?,
            visit: dev.alloc(n)?,
            prop: dev.alloc(n)?,
            depth: dev.alloc(n * self.lanes())?,
            sent: Vec::new(),
            cur_depth: 0,
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _src: Option<V>,
    ) -> Result<Vec<V>> {
        let lanes = self.lanes();
        {
            let MsBfsState { seen, visit, prop, depth, .. } = &mut *state;
            dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                let n = seen.len();
                seen.as_mut_slice().fill(0);
                visit.as_mut_slice().fill(0);
                prop.as_mut_slice().fill(0);
                depth.as_mut_slice().fill(INF);
                ((), n as u64)
            })?;
        }
        state.sent.clear();
        state.cur_depth = 0;
        // Seed every owned source: depth 0 at its lane, bit pending in
        // `visit` for the first consume pass. The enactor's single-source
        // parameter is ignored — the batch carries its own sources.
        let mut frontier: Vec<V> = Vec::new();
        for (lane, &s) in self.sources.iter().enumerate() {
            let Some(local) = sub.from_global(V::from_usize(s)) else { continue };
            if !sub.is_owned(local) {
                continue;
            }
            if state.seen[local.idx()] == 0 {
                frontier.push(local); // a vertex sourcing several lanes enters once
            }
            let bit = 1u64 << lane;
            state.seen[local.idx()] |= bit;
            state.visit[local.idx()] |= bit;
            state.depth[local.idx() * lanes + lane] = 0;
        }
        Ok(frontier)
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>> {
        use std::sync::atomic::Ordering::Relaxed;
        let lanes = self.lanes();
        let flushed = std::mem::take(&mut state.sent);
        let (active, act) = ops::consume_bits(
            dev,
            &flushed,
            input,
            state.visit.as_mut_slice(),
            state.prop.as_mut_slice(),
        )?;
        if dev.timeline.is_enabled() {
            let at = dev.stream_time(COMPUTE_STREAM);
            dev.timeline.record(vgpu::TraceEvent {
                device: dev.id(),
                stream: COMPUTE_STREAM.0,
                kind: vgpu::TraceKind::Lanes,
                name: "lane-occupancy",
                start_us: at,
                items: u64::from(active.count_ones()),
                bytes: active,
                ..vgpu::TraceEvent::default()
            });
        }
        let depth_next = iter as u32 + 1;
        let out = {
            let prop = state.prop.as_slice();
            let seen = vgpu::par::as_atomic_u64(state.seen.as_mut_slice());
            let visit = vgpu::par::as_atomic_u64(state.visit.as_mut_slice());
            let depth = vgpu::par::as_atomic_u32(state.depth.as_mut_slice());
            // Batched expand: claim new lane bits on the destination with
            // fetch_or. Which thread wins a bit is schedule-dependent, but
            // every writer stores the same depth and the discovered bit set
            // is a pure function of the frontier — set-deterministic, like
            // the single-source CAS claim.
            let expand = |u: V, _e: usize, d: V| -> Option<V> {
                let bits = prop[u.idx()];
                if bits == 0 {
                    return None;
                }
                let new = bits & !seen[d.idx()].load(Relaxed);
                if new == 0 {
                    return None;
                }
                let won = new & !seen[d.idx()].fetch_or(new, Relaxed);
                if won == 0 {
                    return None;
                }
                let mut w = won;
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    depth[d.idx() * lanes + b].store(depth_next, Relaxed);
                    w &= w - 1;
                }
                // first 0→nonzero transition emits d exactly once
                (visit[d.idx()].fetch_or(won, Relaxed) == 0).then_some(d)
            };
            if bufs.scheme().fused() {
                ops::advance_filter_fused(dev, sub, bufs, &act, expand)?
            } else {
                // Unfused: the expand already claims, so the contract pass
                // only materializes the (deduplicated) frontier.
                let candidates = ops::advance(dev, sub, bufs, &act, expand)?;
                ops::filter(dev, &candidates, |_| true)?
            }
        };
        // Remote copies flush at the next consume: their pending bits are
        // leaving on the wire via `package` right after this returns.
        state.sent = out.iter().copied().filter(|&v| !sub.is_owned(v)).collect();
        Ok(out)
    }

    fn package(&self, state: &Self::State, v: V) -> u64 {
        state.visit[v.idx()]
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &u64) -> bool {
        let new = *msg & !state.seen[v.idx()];
        if new == 0 {
            return false;
        }
        let lanes = self.lanes();
        let d = state.cur_depth + 1;
        state.seen[v.idx()] |= new;
        let mut w = new;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            state.depth[v.idx() * lanes + b] = d;
            w &= w - 1;
        }
        state.visit[v.idx()] |= new;
        true
    }

    // OR-combine over the lane bitfield: monotone under the or-bits
    // lattice — floors are bit unions, canonical duplicates merge by OR,
    // and payloads are non-uniform (every vertex carries its own bit set).
    fn monotone(&self) -> bool {
        true
    }
    fn monotone_order(&self) -> MonotoneOrder {
        MonotoneOrder::OrBits
    }
    fn suppression_key(&self, msg: &u64) -> u64 {
        *msg
    }
    fn merge_msgs(&self, a: &u64, b: &u64) -> u64 {
        a | b
    }

    fn after_superstep(&self, state: &mut Self::State, _reduce: &GlobalReduce, iter: usize) {
        // `iter` is already the index of the NEXT superstep: bits combined
        // during it were claimed by its advance at depth `iter + 1`.
        state.cur_depth = iter as u32;
    }
}

/// Gather per-lane depths in global vertex order: `result[lane][g]` is the
/// BFS depth of global vertex `g` from `sources[lane]` (`INF` = unreached).
pub fn gather_lane_depths<V: Id, O: Id>(
    runner: &Runner<'_, V, O, MsBfs>,
    dist: &DistGraph<V, O>,
    lanes: usize,
) -> Vec<Vec<u32>> {
    (0..lanes)
        .map(|lane| gather(dist, |gpu, local| runner.state(gpu).depth[local.idx() * lanes + lane]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::{EnactConfig, EnactReport};
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run_ms_bfs(
        g: &Csr<u32, u64>,
        n_gpus: usize,
        sources: Vec<usize>,
        config: EnactConfig,
    ) -> (Vec<Vec<u32>>, EnactReport) {
        let prim = MsBfs::new(sources);
        let lanes = prim.lanes();
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(g, owner, n_gpus, Duplication::All);
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40());
        let mut runner = Runner::new(system, &dist, prim, config).unwrap();
        let report = runner.enact(None).unwrap();
        (gather_lane_depths(&runner, &dist, lanes), report)
    }

    fn ladder() -> Csr<u32, u64> {
        let mut coo = Coo::<u32>::new(16);
        for i in 0..8u32 {
            if i + 1 < 8 {
                coo.push(i, i + 1);
                coo.push(8 + i, 8 + i + 1);
            }
            coo.push(i, 8 + i);
        }
        GraphBuilder::undirected(&coo)
    }

    #[test]
    fn lane_depths_match_per_source_reference() {
        let g = ladder();
        let sources = vec![0usize, 5, 15];
        for n_gpus in [1, 2, 4] {
            let (depths, _) = run_ms_bfs(&g, n_gpus, sources.clone(), EnactConfig::default());
            for (lane, &s) in sources.iter().enumerate() {
                assert_eq!(
                    depths[lane],
                    crate::reference::bfs(&g, s as u32),
                    "{n_gpus} GPUs, lane {lane} (source {s})"
                );
            }
        }
    }

    #[test]
    fn batch_completes_in_the_deepest_traversals_supersteps() {
        let g = ladder();
        // all 16 vertices as sources: 16 lanes, one superstep count
        let sources: Vec<usize> = (0..16).collect();
        let (depths, report) = run_ms_bfs(&g, 2, sources.clone(), EnactConfig::default());
        let deepest = sources
            .iter()
            .map(|&s| {
                crate::reference::bfs(&g, s as u32).into_iter().filter(|&d| d != INF).max().unwrap()
            })
            .max()
            .unwrap() as usize;
        assert_eq!(report.iterations, deepest + 1, "deepest lane + one empty-frontier step");
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(depths[lane], crate::reference::bfs(&g, s as u32), "lane {lane}");
        }
    }

    #[test]
    fn one_vertex_may_source_several_lanes() {
        let g = ladder();
        let (depths, _) = run_ms_bfs(&g, 2, vec![3, 3, 12], EnactConfig::default());
        assert_eq!(depths[0], depths[1], "duplicate source lanes agree");
        assert_eq!(depths[0], crate::reference::bfs(&g, 3u32));
        assert_eq!(depths[2], crate::reference::bfs(&g, 12u32));
    }

    #[test]
    fn disconnected_lanes_stay_inf() {
        let coo = Coo::from_edges(6, vec![(0, 1), (1, 2)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (depths, _) = run_ms_bfs(&g, 2, vec![0, 4], EnactConfig::default());
        assert_eq!(depths[0], vec![0, 1, 2, INF, INF, INF]);
        assert_eq!(depths[1], vec![INF, INF, INF, INF, 0, INF]);
    }

    #[test]
    fn unfused_scheme_gives_same_answer() {
        let g = ladder();
        let config = EnactConfig { alloc_scheme: Some(AllocScheme::Max), ..Default::default() };
        let (depths, _) = run_ms_bfs(&g, 2, vec![0, 7, 9], config);
        for (lane, s) in [0u32, 7, 9].into_iter().enumerate() {
            assert_eq!(depths[lane], crate::reference::bfs(&g, s), "lane {lane}");
        }
    }

    #[test]
    fn spread_sources_are_distinct_and_in_range() {
        let s = MsBfs::spread_sources(64, 1000);
        assert_eq!(s.len(), 64);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&v| v < 1000));
        assert_eq!(MsBfs::spread_sources(8, 4), vec![0, 1, 2, 3], "clamped to the vertex count");
    }

    /// The batched engine's answer is a property of the graph, nothing else:
    /// across GPU counts, kernel-thread counts, broadcast topologies, and
    /// wire encodings, every lane's depths are bit-equal to an independent
    /// single-source reference, and within each cell the two thread counts
    /// produce the *same simulation* (identical counters, clocks, traffic).
    #[test]
    fn matrix_lane_depths_are_invariant_across_the_config_space() {
        use mgpu_core::{CommStrategy, CommTopology, WireEncoding};
        let g: Csr<u32, u64> = GraphBuilder::undirected(&mgpu_gen::gnm(48, 144, 7));
        let sources = MsBfs::spread_sources(16, 48);
        let refs: Vec<Vec<u32>> =
            sources.iter().map(|&s| crate::reference::bfs(&g, s as u32)).collect();
        for n_gpus in [2usize, 4, 8] {
            for topo in [CommTopology::Direct, CommTopology::Butterfly] {
                for enc in [WireEncoding::Legacy, WireEncoding::Auto, WireEncoding::Bitmap] {
                    let mut reports: Vec<EnactReport> = Vec::new();
                    for threads in [1usize, 4] {
                        let config = EnactConfig {
                            kernel_threads: Some(threads),
                            comm_topology: topo,
                            wire_encoding: enc,
                            // the butterfly collective only engages on
                            // broadcast supersteps, so those cells override
                            // MS-BFS's selective preference
                            comm: (topo == CommTopology::Butterfly)
                                .then_some(CommStrategy::Broadcast),
                            ..EnactConfig::default()
                        };
                        let (depths, report) = run_ms_bfs(&g, n_gpus, sources.clone(), config);
                        let cell = format!("{n_gpus} GPUs, {threads} threads, {topo:?}, {enc:?}");
                        for (lane, r) in refs.iter().enumerate() {
                            assert_eq!(&depths[lane], r, "{cell}, lane {lane}");
                        }
                        if topo == CommTopology::Butterfly && n_gpus > 2 {
                            assert!(
                                report.comm.collective_stages > 0,
                                "{cell}: the butterfly must actually stage"
                            );
                        }
                        reports.push(report);
                    }
                    assert!(
                        reports[0].same_simulation(&reports[1]),
                        "{n_gpus} GPUs, {topo:?}, {enc:?}: kernel threads are a wall-clock \
                         knob and must not perturb the simulation"
                    );
                }
            }
        }
    }

    /// The 64-lane state honestly prices its 8×-plus growth over
    /// single-source BFS (24 bitfield bytes + 4 per lane vs 4 flat): inside
    /// the capacity window between the two footprints the governor admits
    /// BFS and refuses MS-BFS at bind time with a typed OOM.
    #[test]
    fn admission_prices_the_lane_scaled_state() {
        use mgpu_core::governor::estimate_footprint;
        use mgpu_core::{MgpuProblem, PressurePolicy};
        let g: Csr<u32, u64> = GraphBuilder::undirected(&mgpu_gen::gnm(96, 288, 5));
        let n_gpus = 2usize;
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n_gpus) as u32).collect();
        let dist = DistGraph::build(&g, owner, n_gpus, Duplication::All);
        let prim = MsBfs::new(MsBfs::spread_sources(64, g.n_vertices()));
        let state_bytes = <MsBfs as MgpuProblem<u32, u64>>::state_bytes_per_vertex(&prim);
        assert_eq!(state_bytes, 24 + 4 * 64, "3 bitfield words + a u32 depth per lane");
        let floor = |state: usize, msg: usize| {
            dist.parts
                .iter()
                .map(|sub| {
                    estimate_footprint(
                        AllocScheme::JustEnough,
                        CommStrategy::Selective,
                        dist.n_parts,
                        sub.n_vertices(),
                        sub.n_edges(),
                        sub.topology_bytes(),
                        state,
                        4,
                        msg,
                    )
                    .total()
                })
                .max()
                .unwrap()
        };
        let bfs_floor = floor(4, 4);
        let ms_floor = floor(state_bytes, 8);
        assert!(bfs_floor < ms_floor, "64 lanes must cost strictly more per vertex");
        let cap = (bfs_floor + ms_floor) / 2;
        let config = EnactConfig {
            alloc_scheme: Some(AllocScheme::JustEnough),
            pressure: PressurePolicy::governed(),
            ..EnactConfig::default()
        };
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40().with_capacity(cap));
        match Runner::new(system, &dist, prim, config) {
            Err(vgpu::VgpuError::OutOfMemory { .. }) => {}
            Err(e) => panic!("expected a typed OOM at admission, got {e}"),
            Ok(_) => panic!("the 64-lane bind must be refused at admission"),
        }
        let system = SimSystem::homogeneous(n_gpus, HardwareProfile::k40().with_capacity(cap));
        let mut bfs = Runner::new(system, &dist, crate::Bfs::default(), config)
            .expect("the same budget admits single-source BFS");
        bfs.enact(Some(0u32)).expect("and it runs to completion");
    }

    /// A fully instrumented run — tracing + suppression + auto encoding over
    /// the butterfly — reconciles exactly: the profile built from the trace
    /// matches the report's counters, and the per-superstep lane occupancy
    /// the batch records peaks at the full lane count.
    #[test]
    fn traced_run_reconciles_and_records_lane_occupancy() {
        use mgpu_core::{CommStrategy, CommTopology, Profile, WireEncoding};
        let g = ladder();
        let sources = vec![0usize, 5, 9, 15];
        let config = EnactConfig {
            tracing: true,
            suppression: true,
            wire_encoding: WireEncoding::Auto,
            comm_topology: CommTopology::Butterfly,
            comm: Some(CommStrategy::Broadcast),
            ..EnactConfig::default()
        };
        let (depths, report) = run_ms_bfs(&g, 4, sources.clone(), config);
        for (lane, &s) in sources.iter().enumerate() {
            assert_eq!(depths[lane], crate::reference::bfs(&g, s as u32), "lane {lane}");
        }
        let trace = report.trace.as_ref().expect("tracing was on");
        let profile = Profile::from_trace(trace);
        profile.reconcile(&report).expect("trace must reconcile with the report");
        let peak_lanes = profile.per_superstep.iter().map(|r| r.lanes).max().unwrap_or(0);
        assert_eq!(
            peak_lanes,
            sources.len() as u64,
            "every lane is active in the first superstep, and the trace must see it"
        );
    }

    #[test]
    fn wire_bytes_price_the_eight_byte_payload() {
        let g = ladder();
        let (_, report) = run_ms_bfs(&g, 2, vec![0, 15], EnactConfig::default());
        let t = &report.totals;
        assert!(t.h_vertices > 0, "cut edges force communication");
        // legacy accounting: id (4) + bitfield payload (8) per vertex
        assert_eq!(t.h_bytes_sent, t.h_vertices * 12);
    }
}
