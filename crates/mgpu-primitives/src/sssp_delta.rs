//! Delta-stepping SSSP — the prioritized variant (Meyer & Sanders).
//!
//! §II-A credits Groute's strong results on "high-diameter,
//! road-network-like graphs, and primitives that can benefit from
//! prioritized data communication, such as SSSP" — the mechanism behind
//! that is bucketed prioritization. This primitive implements
//! delta-stepping *inside* the paper's BSP framework: tentative distances
//! are bucketed by `⌊dist/Δ⌋`; each superstep relaxes the globally smallest
//! non-empty bucket. Against the frontier Bellman–Ford of [`crate::Sssp`],
//! it trades more supersteps for far fewer re-relaxations (a smaller `b`
//! factor) — a win when the weight spread would otherwise make vertices
//! churn, and the subject of the `sssp_delta` ablation bench.
//!
//! Global bucket coordination rides the framework's superstep reduction:
//! each GPU contributes `-(its minimum non-empty bucket)` to the `f64_max`
//! reduction, so every GPU learns the global minimum bucket and processes
//! the same priority level in the same superstep.

use mgpu_core::alloc::{AllocScheme, FrontierBufs};
use mgpu_core::comm::CommStrategy;
use mgpu_core::ops;
use mgpu_core::problem::MgpuProblem;
use mgpu_core::Runner;
use mgpu_graph::Id;
use mgpu_partition::{DistGraph, Duplication, SubGraph};
use vgpu::sync::{Contribution, GlobalReduce};
use vgpu::{Device, DeviceArray, KernelKind, Result, COMPUTE_STREAM};

use crate::bfs::gather;
use crate::INF;

/// Delta-stepping SSSP.
#[derive(Debug, Clone, Copy)]
pub struct SsspDelta {
    /// Bucket width Δ. With the paper's [0, 64] weights, Δ≈32 works well;
    /// Δ=1 degenerates to Dijkstra-like strictness, Δ=∞ to Bellman–Ford.
    pub delta: u32,
}

impl Default for SsspDelta {
    fn default() -> Self {
        SsspDelta { delta: 32 }
    }
}

/// Per-GPU delta-stepping state.
#[derive(Debug)]
pub struct SsspDeltaState<V: Id> {
    /// Tentative distances (`INF` = unreached).
    pub dists: DeviceArray<u32>,
    /// Pending vertices per bucket (local ids; a vertex may appear in a
    /// stale bucket — filtered against `dists` when processed).
    buckets: Vec<Vec<V>>,
    /// The bucket this superstep will process (set from the reduction).
    current: usize,
    /// Work counter: relaxations performed (the `b`-factor numerator).
    pub relaxations: u64,
}

impl<V: Id> SsspDeltaState<V> {
    fn bucket_of(&self, dist: u32, delta: u32) -> usize {
        (dist / delta.max(1)) as usize
    }

    fn push(&mut self, v: V, dist: u32, delta: u32) {
        let b = self.bucket_of(dist, delta);
        if b >= self.buckets.len() {
            self.buckets.resize_with(b + 1, Vec::new);
        }
        self.buckets[b].push(v);
    }

    fn min_nonempty(&self) -> Option<usize> {
        self.buckets.iter().position(|b| !b.is_empty())
    }
}

impl<V: Id, O: Id> MgpuProblem<V, O> for SsspDelta {
    type State = SsspDeltaState<V>;
    type Msg = u32;

    fn name(&self) -> &'static str {
        "SSSP(Δ)"
    }

    fn duplication(&self) -> Duplication {
        Duplication::All
    }

    fn comm(&self) -> CommStrategy {
        CommStrategy::Selective
    }

    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::PreallocFusion { sizing_factor: 1.0 }
    }

    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State> {
        Ok(SsspDeltaState {
            dists: dev.alloc(sub.n_vertices())?,
            buckets: Vec::new(),
            current: 0,
            relaxations: 0,
        })
    }

    fn reset(
        &self,
        dev: &mut Device,
        _sub: &SubGraph<V, O>,
        state: &mut Self::State,
        src: Option<V>,
    ) -> Result<Vec<V>> {
        let dists = &mut state.dists;
        dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            dists.as_mut_slice().fill(INF);
            let n = dists.len();
            ((), n as u64)
        })?;
        state.buckets.clear();
        state.current = 0;
        state.relaxations = 0;
        Ok(match src {
            Some(s) => {
                state.dists[s.idx()] = 0;
                state.push(s, 0, self.delta);
                vec![s]
            }
            None => Vec::new(),
        })
    }

    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        _bufs: &mut FrontierBufs<V>,
        _input: &[V],
        _iter: usize,
    ) -> Result<Vec<V>> {
        // Take the current bucket; keep only vertices that still belong to
        // it (a vertex relaxed to a smaller distance was re-bucketed).
        let cur = state.current;
        let frontier: Vec<V> = if cur < state.buckets.len() {
            let delta = self.delta;
            let raw = std::mem::take(&mut state.buckets[cur]);
            let dists = &state.dists;
            let count = raw.len() as u64;
            dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
                let f: Vec<V> = raw
                    .into_iter()
                    .filter(|&v| {
                        dists[v.idx()] != INF && (dists[v.idx()] / delta.max(1)) as usize == cur
                    })
                    .collect();
                (f, count)
            })?
        } else {
            Vec::new()
        };

        // Relax the bucket's out-edges; re-bucket improved vertices.
        let delta = self.delta;
        let mut relaxed: Vec<(V, u32)> = Vec::new();
        {
            let dists = &mut state.dists;
            let mut relax_count = 0u64;
            // Sequential on purpose: the closure threads mutable relaxation
            // state (dists writes read by later edges in the same pass).
            ops::advance_filter_fused_seq(dev, sub, &frontier, |s, e, d| {
                let nd = dists[s.idx()].saturating_add(sub.csr.edge_weight(e));
                if nd < dists[d.idx()] {
                    dists[d.idx()] = nd;
                    relax_count += 1;
                    relaxed.push((d, nd));
                    Some(d)
                } else {
                    None
                }
            })?;
            state.relaxations += relax_count;
        }
        let mut out = Vec::with_capacity(relaxed.len());
        for (v, nd) in relaxed {
            state.push(v, nd, delta);
            out.push(v);
        }
        Ok(out)
    }

    fn package(&self, state: &Self::State, v: V) -> u32 {
        state.dists[v.idx()]
    }

    fn combine(&self, state: &mut Self::State, v: V, msg: &u32) -> bool {
        if *msg < state.dists[v.idx()] {
            state.dists[v.idx()] = *msg;
            state.push(v, *msg, self.delta);
            true
        } else {
            false
        }
    }

    // Strict min-combine on the tentative distance. Delta-stepping's bucket
    // re-expansions emit the same boundary vertices repeatedly, so the
    // suppression cache fires here more than anywhere else.
    fn monotone(&self) -> bool {
        true
    }
    fn suppression_key(&self, msg: &u32) -> u64 {
        u64::from(*msg)
    }

    fn locally_done(&self, state: &Self::State, _next_input: &[V]) -> bool {
        state.min_nonempty().is_none()
    }

    fn contribution(&self, state: &Self::State, next_input: &[V]) -> Contribution {
        // Contribute -(min non-empty bucket) so the f64_max reduction yields
        // the global minimum bucket.
        Contribution {
            u64_add: next_input.len() as u64,
            f64_max: state.min_nonempty().map_or(f64::NEG_INFINITY, |b| -(b as f64)),
            ..Contribution::default()
        }
    }

    fn after_superstep(&self, state: &mut Self::State, reduce: &GlobalReduce, _iter: usize) {
        if reduce.f64_max.is_finite() {
            state.current = (-reduce.f64_max) as usize;
        }
    }

    fn max_iterations(&self) -> usize {
        1_000_000 // buckets bound progress; this is a safety net
    }
}

/// Gather final distances in global vertex order.
pub fn gather_dists<V: Id, O: Id>(
    runner: &Runner<'_, V, O, SsspDelta>,
    dist: &DistGraph<V, O>,
) -> Vec<u32> {
    gather(dist, |gpu, local| runner.state(gpu).dists[local.idx()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_core::EnactConfig;
    use mgpu_gen::weights::add_paper_weights;
    use mgpu_gen::{gnm, grid2d};
    use mgpu_graph::{Csr, GraphBuilder};
    use vgpu::{HardwareProfile, SimSystem};

    fn run(g: &Csr<u32, u64>, n: usize, delta: u32, src: u32) -> (Vec<u32>, u64) {
        let owner: Vec<u32> = (0..g.n_vertices()).map(|v| (v % n) as u32).collect();
        let dist = DistGraph::build(g, owner, n, Duplication::All);
        let sys = SimSystem::homogeneous(n, HardwareProfile::k40());
        let mut runner =
            Runner::new(sys, &dist, SsspDelta { delta }, EnactConfig::default()).unwrap();
        runner.enact(Some(src)).unwrap();
        let relax = (0..n).map(|g| runner.state(g).relaxations).sum();
        (gather_dists(&runner, &dist), relax)
    }

    #[test]
    fn matches_dijkstra_across_gpu_counts_and_deltas() {
        let mut coo = gnm(100, 500, 61);
        add_paper_weights(&mut coo, 62);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let expect = crate::reference::sssp(&g, 0u32);
        for n in [1usize, 2, 4] {
            for delta in [1u32, 16, 64, 1 << 20] {
                let (d, _) = run(&g, n, delta, 0);
                assert_eq!(d, expect, "{n} GPUs, delta {delta}");
            }
        }
    }

    #[test]
    fn zero_and_max_weights_are_safe() {
        let coo = mgpu_graph::Coo::from_edges(
            4,
            vec![(0, 1), (1, 2), (2, 3)],
            Some(vec![0, u32::MAX / 2, 5]),
        );
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (d, _) = run(&g, 2, 32, 0);
        assert_eq!(d, crate::reference::sssp(&g, 0u32));
    }

    #[test]
    fn small_delta_relaxes_fewer_edges_than_bellman_ford() {
        // Road-like topology with wide weights: the prioritized variant
        // should waste fewer relaxations (the Groute effect).
        let mut coo = grid2d(40, 40, 1.0, 5);
        add_paper_weights(&mut coo, 6);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (_, relax_prio) = run(&g, 2, 16, 0);

        // Bellman-Ford-style: one giant bucket
        let (_, relax_bf) = run(&g, 2, 1 << 30, 0);
        assert!(
            relax_prio < relax_bf,
            "prioritized {relax_prio} should need fewer relaxations than Bellman-Ford {relax_bf}"
        );
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let coo = mgpu_graph::Coo::from_edges(5, vec![(0, 1)], Some(vec![3]));
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let (d, _) = run(&g, 2, 8, 0);
        assert_eq!(d, vec![0, 3, INF, INF, INF]);
    }
}
