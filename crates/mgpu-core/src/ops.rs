//! The Gunrock operators (§II-B): advance, filter, compute — plus the
//! fused (§VI-C) and pull-mode (§VI-A) variants this paper adds.
//!
//! Every operator executes its work for real on the calling device thread
//! and is metered as one kernel launch: `launch_overhead + work/throughput`.
//! Work units follow the paper's cost model: edges visited for advance,
//! input vertices for filter, elements for compute. A launch with an empty
//! frontier still pays the launch overhead — the §V-B effect.

use mgpu_graph::{Csr, Id};
use mgpu_partition::SubGraph;
use vgpu::{Device, KernelKind, Result, COMPUTE_STREAM};

use crate::alloc::FrontierBufs;

/// How an advance kernel maps frontier work onto (virtual) hardware
/// threads. Gunrock's key single-GPU optimization — inherited by the
/// multi-GPU framework "using high-performance, extensible single-GPU
/// primitives as our building blocks" (§VII-C) — is load-balanced
/// partitioning of the edge workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvanceMode {
    /// Gunrock-style: a prefix-sum over frontier degrees partitions the
    /// *edges* evenly over threads. Costs an extra scan but is immune to
    /// degree skew.
    #[default]
    LoadBalanced,
    /// Naive: one thread per frontier *vertex*. On power-law frontiers a
    /// single hub serializes its whole adjacency list while other threads
    /// idle — modeled as every vertex-slot costing the frontier's maximum
    /// degree.
    ThreadMapped,
}

/// [`advance`] with an explicit work-mapping mode. Results are identical;
/// only the metered cost differs (the `ablation` experiment compares them).
pub fn advance_with_mode<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &[V],
    mode: AdvanceMode,
    mut f: impl FnMut(V, usize, V) -> Option<V>,
) -> Result<Vec<V>> {
    let (need, charged_items) = match mode {
        AdvanceMode::LoadBalanced => {
            // the load-balancing scan itself
            let need = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                (sub.csr.frontier_out_degree(input), input.len() as u64)
            })?;
            (need, need as u64)
        }
        AdvanceMode::ThreadMapped => {
            let (need, max_deg) = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                let need = sub.csr.frontier_out_degree(input);
                let max_deg = input.iter().map(|&v| sub.csr.degree(v)).max().unwrap_or(0);
                ((need, max_deg), 0)
            })?;
            // every thread-slot takes as long as the slowest (hub) vertex
            (need, (input.len() * max_deg) as u64)
        }
    };
    bufs.prepare_intermediate(dev, need)?;
    let out = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
        let mut out = Vec::new();
        for &v in input {
            for e in sub.csr.edge_range(v) {
                let d = sub.csr.col_indices()[e];
                if let Some(emit) = f(v, e, d) {
                    out.push(emit);
                }
            }
        }
        (out, charged_items)
    })?;
    bufs.record_intermediate(out.len());
    Ok(out)
}

/// **Advance** (push mode): visit the out-edges of every vertex in `input`;
/// the functor `f(src, edge_id, dst)` returns `Some(v)` to emit `v` into the
/// intermediate frontier. Unfused: the intermediate is materialized in the
/// scheme-managed buffer and a separate [`filter`] pass follows.
pub fn advance<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &[V],
    mut f: impl FnMut(V, usize, V) -> Option<V>,
) -> Result<Vec<V>> {
    // Load-balancing scan: compute the advance output bound (Gunrock's
    // load-balanced partitioning computes exactly this prefix sum).
    let need = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        (sub.csr.frontier_out_degree(input), input.len() as u64)
    })?;
    bufs.prepare_intermediate(dev, need)?;
    let out = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
        let mut out = Vec::new();
        for &v in input {
            for e in sub.csr.edge_range(v) {
                let d = sub.csr.col_indices()[e];
                if let Some(emit) = f(v, e, d) {
                    out.push(emit);
                }
            }
        }
        (out, need as u64)
    })?;
    bufs.record_intermediate(out.len());
    Ok(out)
}

/// **Filter**: select the subset of `input` satisfying `pred`. Output size
/// is at most the input size (and for vertex frontiers capped by `|V_i|`,
/// which is why fixed preallocation sizes frontiers at `|V_i|`, §VI-B).
pub fn filter<V: Id>(
    dev: &mut Device,
    input: &[V],
    mut pred: impl FnMut(V) -> bool,
) -> Result<Vec<V>> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
        let out: Vec<V> = input.iter().copied().filter(|&v| pred(v)).collect();
        (out, input.len() as u64)
    })
}

/// **Fused advance+filter** (§VI-C): one kernel, no intermediate frontier in
/// memory. `f` plays both roles: it is the advance functor and its `None`
/// results are the filtered-out elements.
pub fn advance_filter_fused<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    input: &[V],
    mut f: impl FnMut(V, usize, V) -> Option<V>,
) -> Result<Vec<V>> {
    dev.kernel(COMPUTE_STREAM, KernelKind::FusedAdvanceFilter, || {
        let mut out = Vec::new();
        let mut edges = 0u64;
        for &v in input {
            for e in sub.csr.edge_range(v) {
                edges += 1;
                let d = sub.csr.col_indices()[e];
                if let Some(emit) = f(v, e, d) {
                    out.push(emit);
                }
            }
        }
        (out, edges)
    })
}

/// **Compute**: run `f` as one per-element kernel over `items` elements
/// (the paper's "computation" step, fused with advance or filter on the
/// GPU; here metered as one filter-throughput launch).
pub fn compute<R>(dev: &mut Device, items: u64, f: impl FnOnce() -> R) -> Result<R> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Compute, || (f(), items))
}

/// **Pull-mode advance** (§VI-A): parallelize across the *unvisited*
/// vertices; for each, scan incoming edges (CSC) and stop at the first
/// parent accepted by `find_parent` — the "edge skipping" that makes
/// direction-optimizing BFS fast. Returns the newly discovered vertices and
/// the number of edges actually scanned (the `a·|E_i|` of Table I).
pub fn advance_pull<V: Id, O: Id>(
    dev: &mut Device,
    csc: &Csr<V, O>,
    unvisited: &[V],
    mut find_parent: impl FnMut(V, V) -> bool,
) -> Result<(Vec<V>, u64)> {
    let (found, scanned) = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
        let mut found = Vec::new();
        let mut scanned = 0u64;
        for &v in unvisited {
            for &p in csc.neighbors(v) {
                scanned += 1;
                if find_parent(v, p) {
                    found.push(v);
                    break; // edge skipping: remaining parents are not visited
                }
            }
        }
        ((found, scanned), scanned)
    })?;
    Ok((found, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocScheme;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use vgpu::HardwareProfile;

    fn single_part() -> (Device, DistGraph<u32, u64>) {
        // 0—1—2—3 path plus 0—2 chord, undirected
        let coo = Coo::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 2)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let dg = DistGraph::build(&g, vec![0; 4], 1, Duplication::All);
        (Device::new(0, HardwareProfile::k40()), dg)
    }

    #[test]
    fn advance_visits_all_frontier_edges() {
        let (mut dev, dg) = single_part();
        let sub = &dg.parts[0];
        let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::JustEnough, 4, 8).unwrap();
        let out = advance(&mut dev, sub, &mut bufs, &[0], |_, _, d| Some(d)).unwrap();
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
        assert_eq!(dev.counters.w_items, 2 + 1, "2 edges + 1 scan item");
    }

    #[test]
    fn filter_applies_predicate_and_counts_input() {
        let (mut dev, _) = single_part();
        let out = filter(&mut dev, &[1u32, 2, 3, 4], |v| v % 2 == 0).unwrap();
        assert_eq!(out, vec![2, 4]);
        assert_eq!(dev.counters.w_items, 4);
    }

    #[test]
    fn fused_equals_advance_then_filter() {
        let (mut dev, dg) = single_part();
        let sub = &dg.parts[0];
        let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::Max, 4, 8).unwrap();
        let mut seen = vec![false; 4];
        seen[0] = true;
        let a = advance(&mut dev, sub, &mut bufs, &[0], |_, _, d| Some(d)).unwrap();
        let f = filter(&mut dev, &a, |v| {
            let fresh = !seen[v as usize];
            seen[v as usize] = true;
            fresh
        })
        .unwrap();

        let mut dev2 = Device::new(0, HardwareProfile::k40());
        let mut seen2 = vec![false; 4];
        seen2[0] = true;
        let fused = advance_filter_fused(&mut dev2, sub, &[0], |_, _, d| {
            if seen2[d as usize] {
                None
            } else {
                seen2[d as usize] = true;
                Some(d)
            }
        })
        .unwrap();
        let (mut x, mut y) = (f.clone(), fused.clone());
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y);
        assert!(dev2.counters.kernel_launches < dev.counters.kernel_launches);
    }

    #[test]
    fn empty_frontier_still_pays_launch_overhead() {
        let (mut dev, dg) = single_part();
        let sub = &dg.parts[0];
        let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::JustEnough, 4, 8).unwrap();
        let t0 = dev.now();
        let out = advance(&mut dev, sub, &mut bufs, &[], |_, _, d| Some(d)).unwrap();
        assert!(out.is_empty());
        assert!(dev.now() > t0, "launch overheads accrue even with no work");
    }

    #[test]
    fn pull_advance_skips_edges_after_first_parent() {
        let (mut dev, mut dg) = single_part();
        dg.parts[0].build_csc();
        let sub = &dg.parts[0];
        let csc = sub.csc.as_ref().unwrap();
        // visited = {0}; unvisited 1,2,3 look for a visited parent
        let visited = [true, false, false, false];
        let (found, scanned) =
            advance_pull(&mut dev, csc, &[1, 2, 3], |_, p| visited[p as usize]).unwrap();
        assert_eq!(found, vec![1, 2], "vertex 3 has no visited parent");
        // vertex 1's parents: 0 (hit, 1 scan); vertex 2's: 0,1,3 order by
        // csc — first is 0 (hit, 1 scan); vertex 3's: 2 (miss, 1 scan)
        assert_eq!(scanned, 3);
    }

    #[test]
    fn compute_charges_item_count() {
        let (mut dev, _) = single_part();
        let sum = compute(&mut dev, 100, || (0..100u64).sum::<u64>()).unwrap();
        assert_eq!(sum, 4950);
        assert_eq!(dev.counters.w_items, 100);
    }
}

#[cfg(test)]
mod advance_mode_tests {
    use super::*;
    use crate::alloc::AllocScheme;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use vgpu::HardwareProfile;

    /// star: hub 0 with 2048 leaves, plus a large matching — enough work
    /// that kernel time dominates launch overhead
    fn skewed() -> DistGraph<u32, u64> {
        const N: usize = 8192;
        let mut coo = Coo::<u32>::new(N);
        for leaf in 1..2049u32 {
            coo.push(0, leaf);
        }
        for i in 0..((N as u32 - 2050) / 2) {
            coo.push(2049 + 2 * i, 2050 + 2 * i);
        }
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        DistGraph::build(&g, vec![0; N], 1, Duplication::All)
    }

    #[test]
    fn modes_produce_identical_results() {
        let dg = skewed();
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..8192).collect();
        let run = |mode| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs =
                FrontierBufs::new(&mut dev, AllocScheme::Max, 8192, 16384).unwrap();
            let mut out =
                advance_with_mode(&mut dev, sub, &mut bufs, &frontier, mode, |_, _, d| Some(d))
                    .unwrap();
            out.sort_unstable();
            (out, dev.now())
        };
        let (lb, t_lb) = run(AdvanceMode::LoadBalanced);
        let (tm, t_tm) = run(AdvanceMode::ThreadMapped);
        assert_eq!(lb, tm, "identical emitted frontiers");
        assert!(
            t_tm > 2.0 * t_lb,
            "hub skew must penalize thread-mapped: {t_tm} vs {t_lb}"
        );
    }

    #[test]
    fn thread_mapped_is_fine_on_uniform_degree() {
        // cycle: all degrees equal — thread mapping loses nothing but the scan
        let edges: Vec<(u32, u32)> = (0..64u32).map(|i| (i, (i + 1) % 64)).collect();
        let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(64, edges, None));
        let dg = DistGraph::build(&g, vec![0; 64], 1, Duplication::All);
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..64).collect();
        let time = |mode| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::Max, 64, 128).unwrap();
            advance_with_mode(&mut dev, sub, &mut bufs, &frontier, mode, |_, _, d| Some(d))
                .unwrap();
            dev.now()
        };
        let t_lb = time(AdvanceMode::LoadBalanced);
        let t_tm = time(AdvanceMode::ThreadMapped);
        assert!((t_tm - t_lb).abs() < t_lb * 0.5, "near parity on uniform degree");
    }
}
