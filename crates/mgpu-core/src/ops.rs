//! The Gunrock operators (§II-B): advance, filter, compute — plus the
//! fused (§VI-C) and pull-mode (§VI-A) variants this paper adds.
//!
//! Every operator executes its work for real on the calling device thread
//! and is metered as one kernel launch: `launch_overhead + work/throughput`.
//! Work units follow the paper's cost model: edges visited for advance,
//! input vertices for filter, elements for compute. A launch with an empty
//! frontier still pays the launch overhead — the §V-B effect.
//!
//! ## Parallel execution, invariant metering
//!
//! The hot operators ([`advance`], [`filter`], [`advance_filter_fused`],
//! [`advance_accumulate`]) execute their bodies across
//! [`Device::kernel_threads`] host workers, the way a real advance kernel
//! spreads a frontier over thread blocks. The simulated cost never notices:
//! charges are pure functions of item counts, and the chunk plan that
//! partitions the frontier is derived **only from the workload** (a degree
//! prefix walk — Gunrock's load-balancing scan), never from the thread
//! count. Chunk outputs are concatenated in chunk order, so the emitted
//! frontier, every charge, and every BSP counter are bit-identical at any
//! thread count. Functors must therefore be `Fn + Sync`; frontier-claiming
//! state goes through atomics with order-independent outcomes (CAS claims,
//! `fetch_min` — see `vgpu::par::as_atomic_u32`). Operators whose callers
//! need sequential `FnMut` state keep the `*_seq` variants, which charge
//! identically.

use mgpu_graph::{Csr, Id};
use mgpu_partition::SubGraph;
use vgpu::{par, Arena, Device, KernelFault, KernelKind, Result, VgpuError, COMPUTE_STREAM};

use crate::alloc::FrontierBufs;
use crate::frontier::Frontier;
pub use crate::frontier::FrontierMode;

/// Legacy edge-work per parallel chunk. Still the floor for
/// [`advance_accumulate`], whose chunk plan is part of its result (dense f32
/// partials merge in chunk order, so its target must never change).
const PAR_CHUNK_WORK: usize = 4096;

/// Edge-work per cache-blocked chunk: sized so one chunk's column reads and
/// emission slots stay inside [`par::CACHE_BLOCK_BYTES`]. A pure function of
/// the id type, so plans remain workload-only.
fn chunk_target<V: Id>() -> usize {
    par::cache_block_items(2 * V::BYTES).max(PAR_CHUNK_WORK)
}

/// Upper bound on dense partial buffers for [`advance_accumulate`] (the
/// per-block partial-reduction idiom: more partials costs memory and merge
/// time, fewer costs parallelism).
const ACCUM_MAX_PARTIALS: usize = 16;

/// Partition frontier positions into contiguous ranges of roughly `target`
/// edge-work each (weight = degree + 1 so zero-degree runs still split).
/// This is the load-balancing prefix walk; it sees only the graph and the
/// frontier, never the thread count.
fn plan_chunks<V: Id, O: Id>(
    sub: &SubGraph<V, O>,
    input: &[V],
    target: usize,
) -> Vec<(usize, usize)> {
    par::plan_weighted_chunks(input.len(), target, |i| sub.csr.degree(input[i]) + 1)
}

/// Concatenate per-chunk emission buffers in chunk order and hand the spent
/// buffers back to the arena for the next launch.
fn concat_reclaim<V: Id>(arena: &Arena<V>, parts: Vec<Vec<V>>) -> Vec<V> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(&p);
        arena.reclaim(p);
    }
    out
}

/// Run the push-advance body over the planned chunks and concatenate the
/// per-chunk emissions in chunk order. Per-chunk buffers are leased from the
/// arena, so steady-state supersteps reuse capacity instead of re-growing.
fn advance_chunks<V: Id, O: Id, F>(
    threads: usize,
    sub: &SubGraph<V, O>,
    input: &[V],
    chunks: &[(usize, usize)],
    arena: &Arena<V>,
    f: &F,
) -> Vec<V>
where
    F: Fn(V, usize, V) -> Option<V> + Sync,
{
    let parts = par::run_chunks(threads, chunks.len(), |c| {
        let (lo, hi) = chunks[c];
        let mut out = arena.lease();
        for &v in &input[lo..hi] {
            for e in sub.csr.edge_range(v) {
                let d = sub.csr.col_indices()[e];
                if let Some(emit) = f(v, e, d) {
                    out.push(emit);
                }
            }
        }
        out
    });
    concat_reclaim(arena, parts)
}

/// Split the frontier into contiguous passes whose edge work fits `granted`
/// intermediate slots — the memory-pressure governor's chunked multi-pass
/// plan. `None` when a single vertex's adjacency alone exceeds the budget
/// (hard-infeasible). A pure function of the workload and the granted
/// budget, so the pass schedule is identical at any thread count.
fn plan_passes<V: Id, O: Id>(
    sub: &SubGraph<V, O>,
    input: &[V],
    granted: usize,
) -> Option<Vec<(usize, usize)>> {
    let mut passes = Vec::new();
    let (mut start, mut acc) = (0usize, 0usize);
    for (i, &v) in input.iter().enumerate() {
        let d = sub.csr.degree(v);
        if d > granted {
            return None;
        }
        if acc + d > granted {
            passes.push((start, i));
            start = i;
            acc = 0;
        }
        acc += d;
    }
    if start < input.len() {
        passes.push((start, input.len()));
    }
    Some(passes)
}

/// Record a chunked multi-pass advance as an instant span on the compute
/// stream (`items` = pass count; no clock effect).
fn record_chunk(dev: &mut Device, passes: usize) {
    if dev.timeline.is_enabled() {
        let at = dev.stream_time(COMPUTE_STREAM);
        dev.timeline.record(vgpu::TraceEvent {
            device: dev.id(),
            stream: COMPUTE_STREAM.0,
            kind: vgpu::TraceKind::Chunk,
            name: "chunked-advance",
            start_us: at,
            items: passes as u64,
            ..vgpu::TraceEvent::default()
        });
    }
}

/// Consult the injector's pressure-machinery sites and arm the device's
/// one-shot launch fault for the upcoming advance launch. `chunk_pass`
/// advances the chunked-pass counter (fires a transient `Fail`); `lease`
/// advances the arena-lease counter (fires a `TransientOom`). Arena leases
/// are taken *inside* the parallel kernel body, thread-nondeterministically,
/// so lease faults are modeled at launch granularity — the deterministic
/// site the in-place retry machinery can replay. When both sites fire on
/// the same launch the pass fault wins.
fn arm_pressure_faults(dev: &mut Device, chunk_pass: bool, lease: bool) {
    let gpu = dev.id();
    let mut armed: Option<KernelFault> = None;
    if let Some(inj) = dev.fault_injector() {
        if lease && inj.on_lease(gpu) {
            armed = Some(KernelFault::TransientOom);
        }
        if chunk_pass && inj.on_chunk_pass(gpu) {
            armed = Some(KernelFault::Fail);
        }
    }
    if let Some(f) = armed {
        dev.inject_fault(f);
    }
}

/// A typed OOM for a frontier whose single-vertex adjacency exceeds even the
/// degraded chunk budget.
fn chunk_infeasible<V: Id>(dev: &Device, granted: usize) -> VgpuError {
    VgpuError::OutOfMemory {
        device: dev.id(),
        requested: (granted.saturating_add(1) * std::mem::size_of::<V>()) as u64,
        live: dev.pool().live(),
        capacity: dev.pool().capacity(),
    }
}

/// Run an advance whose intermediate grant fell short of `need` as multiple
/// passes over contiguous frontier slices: each pass is its own metered
/// kernel launch (the honest slowdown of degrading), per-pass emissions are
/// concatenated in pass order (so the emitted frontier is bit-identical to
/// the single-pass result) and no pass emits more than `granted` elements.
/// Returns the full emission plus the largest per-pass emission — the actual
/// intermediate residency to record.
#[allow(clippy::too_many_arguments)]
fn advance_multi_pass<V: Id, O: Id, F>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &[V],
    granted: usize,
    mode: AdvanceMode,
    max_deg: usize,
    f: &F,
) -> Result<(Vec<V>, usize)>
where
    F: Fn(V, usize, V) -> Option<V> + Sync,
{
    let threads = dev.kernel_threads();
    // pass planning: one more scan over the input frontier
    let passes = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        (plan_passes(sub, input, granted), input.len() as u64)
    })?;
    let passes = passes.ok_or_else(|| chunk_infeasible::<V>(dev, granted))?;
    bufs.gov.chunked_advances += 1;
    bufs.gov.chunk_passes += passes.len() as u64;
    record_chunk(dev, passes.len());
    let mut out = Vec::new();
    let mut max_emit = 0usize;
    for &(lo, hi) in &passes {
        let slice = &input[lo..hi];
        arm_pressure_faults(dev, true, true);
        let part = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
            let chunks = plan_chunks(sub, slice, chunk_target::<V>());
            let emitted = advance_chunks(threads, sub, slice, &chunks, &bufs.arena, f);
            let items = match mode {
                AdvanceMode::LoadBalanced => sub.csr.frontier_out_degree(slice) as u64,
                AdvanceMode::ThreadMapped => (slice.len() * max_deg) as u64,
            };
            (emitted, items)
        })?;
        max_emit = max_emit.max(part.len());
        out.extend(part);
    }
    Ok((out, max_emit))
}

/// How an advance kernel maps frontier work onto (virtual) hardware
/// threads. Gunrock's key single-GPU optimization — inherited by the
/// multi-GPU framework "using high-performance, extensible single-GPU
/// primitives as our building blocks" (§VII-C) — is load-balanced
/// partitioning of the edge workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvanceMode {
    /// Gunrock-style: a prefix-sum over frontier degrees partitions the
    /// *edges* evenly over threads. Costs an extra scan but is immune to
    /// degree skew.
    #[default]
    LoadBalanced,
    /// Naive: one thread per frontier *vertex*. On power-law frontiers a
    /// single hub serializes its whole adjacency list while other threads
    /// idle — modeled as every vertex-slot costing the frontier's maximum
    /// degree.
    ThreadMapped,
}

/// [`advance`] with an explicit work-mapping mode. Results are identical;
/// only the metered cost differs (the `ablation` experiment compares them).
pub fn advance_with_mode<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &[V],
    mode: AdvanceMode,
    f: impl Fn(V, usize, V) -> Option<V> + Sync,
) -> Result<Vec<V>> {
    let threads = dev.kernel_threads();
    let (need, max_deg, chunks, charged_items) = match mode {
        AdvanceMode::LoadBalanced => {
            // the load-balancing scan itself
            let (need, chunks) = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                let need = sub.csr.frontier_out_degree(input);
                let chunks = plan_chunks(sub, input, chunk_target::<V>());
                ((need, chunks), input.len() as u64)
            })?;
            (need, 0, chunks, need as u64)
        }
        AdvanceMode::ThreadMapped => {
            let (need, max_deg, chunks) = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                let need = sub.csr.frontier_out_degree(input);
                let max_deg = input.iter().map(|&v| sub.csr.degree(v)).max().unwrap_or(0);
                let chunks = plan_chunks(sub, input, chunk_target::<V>());
                ((need, max_deg, chunks), 0)
            })?;
            // every thread-slot takes as long as the slowest (hub) vertex
            (need, max_deg, chunks, (input.len() * max_deg) as u64)
        }
    };
    let granted = bufs.prepare_intermediate_budget(dev, need)?;
    let (out, resident) = if granted >= need {
        arm_pressure_faults(dev, false, true);
        let out = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
            (advance_chunks(threads, sub, input, &chunks, &bufs.arena, &f), charged_items)
        })?;
        let resident = out.len();
        (out, resident)
    } else {
        // memory pressure: the intermediate only holds `granted` slots at a
        // time — run the advance as a chunked multi-pass
        advance_multi_pass(dev, sub, bufs, input, granted, mode, max_deg, &f)?
    };
    bufs.record_intermediate(dev, resident)?;
    Ok(out)
}

/// **Advance** (push mode): visit the out-edges of every vertex in `input`;
/// the functor `f(src, edge_id, dst)` returns `Some(v)` to emit `v` into the
/// intermediate frontier. Unfused: the intermediate is materialized in the
/// scheme-managed buffer and a separate [`filter`] pass follows.
///
/// Executes across [`Device::kernel_threads`] workers; `f` must be pure or
/// use order-independent atomics (see the module docs). Sequential callers
/// with mutable closure state use [`advance_seq`].
pub fn advance<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &[V],
    f: impl Fn(V, usize, V) -> Option<V> + Sync,
) -> Result<Vec<V>> {
    advance_with_mode(dev, sub, bufs, input, AdvanceMode::LoadBalanced, f)
}

/// Sequential [`advance`] for functors that carry mutable state (`FnMut`).
/// Charges exactly what [`advance`] charges.
pub fn advance_seq<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &[V],
    mut f: impl FnMut(V, usize, V) -> Option<V>,
) -> Result<Vec<V>> {
    let need = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        (sub.csr.frontier_out_degree(input), input.len() as u64)
    })?;
    let granted = bufs.prepare_intermediate_budget(dev, need)?;
    let (out, resident) = if granted >= need {
        let out = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
            let mut out = Vec::new();
            for &v in input {
                for e in sub.csr.edge_range(v) {
                    let d = sub.csr.col_indices()[e];
                    if let Some(emit) = f(v, e, d) {
                        out.push(emit);
                    }
                }
            }
            (out, need as u64)
        })?;
        let resident = out.len();
        (out, resident)
    } else {
        // memory pressure: chunked multi-pass, sequential body per pass
        let passes = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
            (plan_passes(sub, input, granted), input.len() as u64)
        })?;
        let passes = passes.ok_or_else(|| chunk_infeasible::<V>(dev, granted))?;
        bufs.gov.chunked_advances += 1;
        bufs.gov.chunk_passes += passes.len() as u64;
        record_chunk(dev, passes.len());
        let mut out = Vec::new();
        let mut max_emit = 0usize;
        for &(lo, hi) in &passes {
            let slice = &input[lo..hi];
            arm_pressure_faults(dev, true, false);
            let part = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
                let mut part = Vec::new();
                let mut edges = 0u64;
                for &v in slice {
                    for e in sub.csr.edge_range(v) {
                        edges += 1;
                        let d = sub.csr.col_indices()[e];
                        if let Some(emit) = f(v, e, d) {
                            part.push(emit);
                        }
                    }
                }
                (part, edges)
            })?;
            max_emit = max_emit.max(part.len());
            out.extend(part);
        }
        (out, max_emit)
    };
    bufs.record_intermediate(dev, resident)?;
    Ok(out)
}

/// **Filter**: select the subset of `input` satisfying `pred`. Output size
/// is at most the input size (and for vertex frontiers capped by `|V_i|`,
/// which is why fixed preallocation sizes frontiers at `|V_i|`, §VI-B).
///
/// Executes across [`Device::kernel_threads`] workers over fixed-size input
/// ranges; order within the output matches input order. `pred` must be pure
/// or claim through atomics; sequential callers use [`filter_seq`].
pub fn filter<V: Id>(
    dev: &mut Device,
    input: &[V],
    pred: impl Fn(V) -> bool + Sync,
) -> Result<Vec<V>> {
    let threads = dev.kernel_threads();
    let target = chunk_target::<V>();
    dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
        let n_chunks = input.len().div_ceil(target);
        let parts = par::run_chunks(threads, n_chunks, |c| {
            let lo = c * target;
            let hi = (lo + target).min(input.len());
            input[lo..hi].iter().copied().filter(|&v| pred(v)).collect::<Vec<V>>()
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        (out, input.len() as u64)
    })
}

/// Sequential [`filter`] for stateful predicates (`FnMut`). Charges exactly
/// what [`filter`] charges.
pub fn filter_seq<V: Id>(
    dev: &mut Device,
    input: &[V],
    mut pred: impl FnMut(V) -> bool,
) -> Result<Vec<V>> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
        let out: Vec<V> = input.iter().copied().filter(|&v| pred(v)).collect();
        (out, input.len() as u64)
    })
}

/// **Bitfield consume** — the frontier-ingest pass of a batched
/// (multi-source) traversal whose per-vertex state is a `u64` lane
/// bitfield. Two sequential sweeps in one Filter-class kernel charging one
/// item per touched vertex:
///
/// * `flushed` — vertices whose pending bits left on the wire last
///   superstep (remote copies already packaged): their `visit` word is
///   cleared so a later superstep's new bits trigger a fresh emission.
/// * `input` — this superstep's frontier: each vertex's pending `visit`
///   bits move into its `prop` slot (the snapshot the advance reads), and
///   `visit` is cleared so the advance's 0→nonzero transition test can
///   detect first emission. Duplicate frontier entries are harmless: the
///   first occurrence takes the bits, later ones see zero and leave the
///   snapshot untouched.
///
/// Returns the union of all propagated bits — the superstep's active-lane
/// mask (free to compute inside the same sweep; the tracing layer records
/// its popcount as lane occupancy) — and the deduplicated active frontier
/// (entries whose snapshot is non-empty, first occurrence only), so the
/// advance never scans a vertex's edges twice for one superstep.
pub fn consume_bits<V: Id>(
    dev: &mut Device,
    flushed: &[V],
    input: &[V],
    visit: &mut [u64],
    prop: &mut [u64],
) -> Result<(u64, Vec<V>)> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
        for &v in flushed {
            visit[v.idx()] = 0;
        }
        let mut active = 0u64;
        let mut act: Vec<V> = Vec::with_capacity(input.len());
        for &v in input {
            let bits = std::mem::take(&mut visit[v.idx()]);
            if bits != 0 {
                prop[v.idx()] = bits;
                active |= bits;
                act.push(v);
            }
        }
        ((active, act), (flushed.len() + input.len()) as u64)
    })
}

/// **Fused advance+filter** (§VI-C): one kernel, no intermediate frontier in
/// memory. `f` plays both roles: it is the advance functor and its `None`
/// results are the filtered-out elements.
///
/// Executes across [`Device::kernel_threads`] workers; the charged edge
/// count is the sum of per-chunk edge counts, which depends only on the
/// frontier. Stateful callers use [`advance_filter_fused_seq`].
pub fn advance_filter_fused<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &FrontierBufs<V>,
    input: &[V],
    f: impl Fn(V, usize, V) -> Option<V> + Sync,
) -> Result<Vec<V>> {
    let threads = dev.kernel_threads();
    dev.kernel(COMPUTE_STREAM, KernelKind::FusedAdvanceFilter, || {
        let chunks = plan_chunks(sub, input, chunk_target::<V>());
        let parts = par::run_chunks(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            let mut out = bufs.arena.lease();
            let mut edges = 0u64;
            for &v in &input[lo..hi] {
                for e in sub.csr.edge_range(v) {
                    edges += 1;
                    let d = sub.csr.col_indices()[e];
                    if let Some(emit) = f(v, e, d) {
                        out.push(emit);
                    }
                }
            }
            (out, edges)
        });
        let edges: u64 = parts.iter().map(|(_, e)| e).sum();
        let mut out = Vec::with_capacity(parts.iter().map(|(p, _)| p.len()).sum());
        for (p, _) in parts {
            out.extend_from_slice(&p);
            bufs.arena.reclaim(p);
        }
        (out, edges)
    })
}

/// Sequential [`advance_filter_fused`] for stateful functors (`FnMut`).
/// Charges exactly what the parallel variant charges.
pub fn advance_filter_fused_seq<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    input: &[V],
    mut f: impl FnMut(V, usize, V) -> Option<V>,
) -> Result<Vec<V>> {
    dev.kernel(COMPUTE_STREAM, KernelKind::FusedAdvanceFilter, || {
        let mut out = Vec::new();
        let mut edges = 0u64;
        for &v in input {
            for e in sub.csr.edge_range(v) {
                edges += 1;
                let d = sub.csr.col_indices()[e];
                if let Some(emit) = f(v, e, d) {
                    out.push(emit);
                }
            }
        }
        (out, edges)
    })
}

/// **Advance-accumulate**: visit every out-edge of the frontier and add the
/// source's contribution into a dense per-destination accumulator (the
/// PageRank inner loop). Floating-point addition is not associative, so a
/// naive parallel scatter would drift across schedules; instead each chunk
/// scatters into its own dense partial buffer (the per-block partial idiom)
/// and the partials are merged into `accum` in chunk order — making the
/// result bit-identical at every thread count, including one, because the
/// partial path *is* the algorithm. `scratch` is caller-owned so repeated
/// iterations reuse one allocation.
pub fn advance_accumulate<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &[V],
    accum: &mut [f32],
    scratch: &mut Vec<f32>,
    contrib: impl Fn(V) -> f32 + Sync,
) -> Result<()> {
    let threads = dev.kernel_threads();
    // Load-balancing scan; the chunk target also caps the number of dense
    // partial buffers (workload-derived, so the plan is thread-invariant).
    let (need, chunks) = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        let need = sub.csr.frontier_out_degree(input);
        let target = (need / ACCUM_MAX_PARTIALS + 1).max(PAR_CHUNK_WORK);
        ((need, plan_chunks(sub, input, target)), input.len() as u64)
    })?;
    // The accumulate scatter merges dense f32 partials in chunk order;
    // splitting it into passes would change the merge order and drift the
    // bits. The intermediate here is never materialized (`resident` is 0),
    // so under pressure a partial grant is accepted as-is — the scatter plan
    // stays workload-derived and the result unchanged.
    bufs.prepare_intermediate_budget(dev, need)?;
    let n = accum.len();
    dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
        if n > 0 && !chunks.is_empty() {
            scratch.resize(chunks.len() * n, 0.0);
            let mut slots: Vec<&mut [f32]> = scratch.chunks_mut(n).collect();
            par::for_each_slot_mut(threads, &mut slots, |c, slot| {
                slot.fill(0.0);
                let (lo, hi) = chunks[c];
                for &v in &input[lo..hi] {
                    // Evaluate the functor only for vertices that emit edges
                    // — like edge-centric advance, it never sees a
                    // zero-degree vertex (PR divides by the out-degree).
                    let edges = sub.csr.edge_range(v);
                    if edges.is_empty() {
                        continue;
                    }
                    let cv = contrib(v);
                    for e in edges {
                        slot[sub.csr.col_indices()[e].idx()] += cv;
                    }
                }
            });
            for slot in slots.iter() {
                for (a, &p) in accum.iter_mut().zip(slot.iter()) {
                    *a += p;
                }
            }
        }
        ((), need as u64)
    })?;
    bufs.record_intermediate(dev, 0)?;
    Ok(())
}

/// **Compute**: run `f` as one per-element kernel over `items` elements
/// (the paper's "computation" step, fused with advance or filter on the
/// GPU; here metered as one filter-throughput launch).
pub fn compute<R>(dev: &mut Device, items: u64, f: impl FnOnce() -> R) -> Result<R> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Compute, || (f(), items))
}

/// **Pull-mode advance** (§VI-A): parallelize across the *unvisited*
/// vertices; for each, scan incoming edges (CSC) and stop at the first
/// parent accepted by `find_parent` — the "edge skipping" that makes
/// direction-optimizing BFS fast. Returns the newly discovered vertices and
/// the number of edges actually scanned (the `a·|E_i|` of Table I).
/// Sequential: the scanned-edge charge depends on visit order, which must
/// stay deterministic.
pub fn advance_pull<V: Id, O: Id>(
    dev: &mut Device,
    csc: &Csr<V, O>,
    unvisited: &[V],
    mut find_parent: impl FnMut(V, V) -> bool,
) -> Result<(Vec<V>, u64)> {
    let (found, scanned) = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
        let mut found = Vec::new();
        let mut scanned = 0u64;
        for &v in unvisited {
            for &p in csc.neighbors(v) {
                scanned += 1;
                if find_parent(v, p) {
                    found.push(v);
                    break; // edge skipping: remaining parents are not visited
                }
            }
        }
        ((found, scanned), scanned)
    })?;
    Ok((found, scanned))
}

// ---------------------------------------------------------------------------
// Frontier-typed operators
//
// Each of these charges *exactly* what its slice-typed counterpart charges:
// every item count is derived from the frontier's length or its out-degree
// sum, both of which are representation-independent, and iteration order is
// ascending in both representations (see `crate::frontier`). The dense
// bodies plan word-granular cache-blocked chunks, which the determinism
// contract of `vgpu::par` makes simulation-invisible.
// ---------------------------------------------------------------------------

/// Visit the set bits of `words[lo..hi]` as ascending vertex ids. A
/// saturated word (ubiquitous while the DOBFS unvisited set is near-full)
/// decodes word-at-a-time: a plain counted loop with no loop-carried
/// bit-clear dependency, instead of 64 `trailing_zeros` probes.
fn for_word_bits<V: Id>(words: &[u64], lo: usize, hi: usize, mut f: impl FnMut(V)) {
    for (w, &word) in words.iter().enumerate().take(hi).skip(lo) {
        let base = w * 64;
        if word == u64::MAX {
            for b in 0..64 {
                f(V::from_usize(base + b));
            }
        } else {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f(V::from_usize(base + b));
                bits &= bits - 1;
            }
        }
    }
}

/// Cache-blocked chunk plan over bitmap words: the degree-prefix walk of
/// [`plan_chunks`] at word granularity. Workload-only, thread-invariant.
fn plan_dense_chunks<V: Id, O: Id>(
    sub: &SubGraph<V, O>,
    words: &[u64],
    target: usize,
) -> Vec<(usize, usize)> {
    par::plan_weighted_chunks(words.len(), target, |w| {
        let mut acc = 0usize;
        for_word_bits::<V>(words, w, w + 1, |v| acc += sub.csr.degree(v) + 1);
        acc
    })
}

/// Build a [`Frontier`] from a full vertex-space scan — one Bulk launch
/// charging `universe` items, exactly like the scan it replaces (the DOBFS
/// backward-switch "collect the unvisited" step).
pub fn frontier_scan<V: Id>(
    dev: &mut Device,
    universe: usize,
    mode: FrontierMode,
    pred: impl Fn(usize) -> bool,
) -> Result<Frontier<V>> {
    dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        (Frontier::from_fn(universe, mode, pred), universe as u64)
    })
}

/// Shrink a frontier in place — one Filter launch charging the pre-shrink
/// length, exactly like filtering the equivalent sorted id vector.
pub fn frontier_retain<V: Id>(
    dev: &mut Device,
    frontier: &mut Frontier<V>,
    pred: impl Fn(V) -> bool,
) -> Result<()> {
    let before = frontier.len() as u64;
    dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
        frontier.retain(pred);
        ((), before)
    })
}

/// [`advance`] over a [`Frontier`] input. The sparse representation
/// delegates to the slice advance outright; the dense representation runs
/// the same body over word-granular cache-blocked chunks. Charges, emission
/// order, and the memory-pressure path are bit-identical to
/// `advance(dev, sub, bufs, &input.to_vec(), f)`.
pub fn advance_frontier<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &mut FrontierBufs<V>,
    input: &Frontier<V>,
    f: impl Fn(V, usize, V) -> Option<V> + Sync,
) -> Result<Vec<V>> {
    if let Some(ids) = input.ids() {
        return advance(dev, sub, bufs, ids, f);
    }
    let words = input.words().expect("frontier is sparse or dense");
    let threads = dev.kernel_threads();
    // the load-balancing scan, charged on the frontier length as always
    let (need, chunks) = dev.kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
        let mut need = 0usize;
        input.for_each(|v| need += sub.csr.degree(v));
        let chunks = plan_dense_chunks(sub, words, chunk_target::<V>());
        ((need, chunks), input.len() as u64)
    })?;
    let granted = bufs.prepare_intermediate_budget(dev, need)?;
    if granted >= need {
        let out = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
            let parts = par::run_chunks(threads, chunks.len(), |c| {
                let (lo, hi) = chunks[c];
                let mut out = bufs.arena.lease();
                for_word_bits::<V>(words, lo, hi, |v| {
                    for e in sub.csr.edge_range(v) {
                        let d = sub.csr.col_indices()[e];
                        if let Some(emit) = f(v, e, d) {
                            out.push(emit);
                        }
                    }
                });
                out
            });
            (concat_reclaim(&bufs.arena, parts), need as u64)
        })?;
        let resident = out.len();
        bufs.record_intermediate(dev, resident)?;
        Ok(out)
    } else {
        // memory pressure: materialize the ascending ids (host-side, not
        // metered — same as the legacy materialization) and run the standard
        // chunked multi-pass, which plans and charges identically
        let ids = input.to_vec();
        let (out, resident) =
            advance_multi_pass(dev, sub, bufs, &ids, granted, AdvanceMode::LoadBalanced, 0, &f)?;
        bufs.record_intermediate(dev, resident)?;
        Ok(out)
    }
}

/// [`advance_filter_fused`] over a [`Frontier`] input — one fused kernel
/// charging the edges actually visited, bit-identical to the slice variant
/// on `input.to_vec()`.
pub fn advance_filter_fused_frontier<V: Id, O: Id>(
    dev: &mut Device,
    sub: &SubGraph<V, O>,
    bufs: &FrontierBufs<V>,
    input: &Frontier<V>,
    f: impl Fn(V, usize, V) -> Option<V> + Sync,
) -> Result<Vec<V>> {
    if let Some(ids) = input.ids() {
        return advance_filter_fused(dev, sub, bufs, ids, f);
    }
    let words = input.words().expect("frontier is sparse or dense");
    let threads = dev.kernel_threads();
    dev.kernel(COMPUTE_STREAM, KernelKind::FusedAdvanceFilter, || {
        let chunks = plan_dense_chunks(sub, words, chunk_target::<V>());
        let parts = par::run_chunks(threads, chunks.len(), |c| {
            let (lo, hi) = chunks[c];
            let mut out = bufs.arena.lease();
            let mut edges = 0u64;
            for_word_bits::<V>(words, lo, hi, |v| {
                for e in sub.csr.edge_range(v) {
                    edges += 1;
                    let d = sub.csr.col_indices()[e];
                    if let Some(emit) = f(v, e, d) {
                        out.push(emit);
                    }
                }
            });
            (out, edges)
        });
        let edges: u64 = parts.iter().map(|(_, e)| e).sum();
        let mut out = Vec::with_capacity(parts.iter().map(|(p, _)| p.len()).sum());
        for (p, _) in parts {
            out.extend_from_slice(&p);
            bufs.arena.reclaim(p);
        }
        (out, edges)
    })
}

/// [`advance_pull`] over a [`Frontier`] unvisited set — iterates ascending
/// in both representations, so the edge-skipping scan count (and therefore
/// the charge) is bit-identical to the slice variant on `unvisited.to_vec()`.
pub fn advance_pull_frontier<V: Id, O: Id>(
    dev: &mut Device,
    csc: &Csr<V, O>,
    unvisited: &Frontier<V>,
    mut find_parent: impl FnMut(V, V) -> bool,
) -> Result<(Vec<V>, u64)> {
    let (found, scanned) = dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || {
        let mut found = Vec::new();
        let mut scanned = 0u64;
        unvisited.for_each(|v| {
            for &p in csc.neighbors(v) {
                scanned += 1;
                if find_parent(v, p) {
                    found.push(v);
                    break; // edge skipping: remaining parents are not visited
                }
            }
        });
        ((found, scanned), scanned)
    })?;
    Ok((found, scanned))
}

/// Fused [`frontier_retain`] + [`advance_pull_frontier`]: one decode pass
/// over the unvisited set serves both the shrink and the pull, valid
/// whenever both read the same immutable label state (as the DOBFS backward
/// superstep does). Launches the same two kernels with the same charges as
/// the unfused pair — a Filter on the pre-shrink length, then an Advance on
/// the scanned-edge count — so simulated clocks, counters, and traces are
/// bit-identical; only the host wall clock improves (the second launch
/// reuses the results the first already computed).
pub fn retain_pull_frontier<V: Id, O: Id>(
    dev: &mut Device,
    csc: &Csr<V, O>,
    unvisited: &mut Frontier<V>,
    keep: impl Fn(V) -> bool,
    mut find_parent: impl FnMut(V, V) -> bool,
) -> Result<(Vec<V>, u64)> {
    let before = unvisited.len() as u64;
    let (found, scanned) = dev.kernel(COMPUTE_STREAM, KernelKind::Filter, || {
        let mut found = Vec::new();
        let mut scanned = 0u64;
        unvisited.retain_visit(&keep, |v| {
            for &p in csc.neighbors(v) {
                scanned += 1;
                if find_parent(v, p) {
                    found.push(v);
                    break; // edge skipping, as in the unfused pull
                }
            }
        });
        ((found, scanned), before)
    })?;
    dev.kernel(COMPUTE_STREAM, KernelKind::Advance, || ((), scanned))?;
    Ok((found, scanned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocScheme;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use vgpu::HardwareProfile;

    fn single_part() -> (Device, DistGraph<u32, u64>) {
        // 0—1—2—3 path plus 0—2 chord, undirected
        let coo = Coo::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 2)], None);
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let dg = DistGraph::build(&g, vec![0; 4], 1, Duplication::All);
        (Device::new(0, HardwareProfile::k40()), dg)
    }

    #[test]
    fn advance_visits_all_frontier_edges() {
        let (mut dev, dg) = single_part();
        let sub = &dg.parts[0];
        let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::JustEnough, 4, 8).unwrap();
        let out = advance(&mut dev, sub, &mut bufs, &[0], |_, _, d| Some(d)).unwrap();
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
        assert_eq!(dev.counters.w_items, 2 + 1, "2 edges + 1 scan item");
    }

    #[test]
    fn filter_applies_predicate_and_counts_input() {
        let (mut dev, _) = single_part();
        let out = filter(&mut dev, &[1u32, 2, 3, 4], |v| v % 2 == 0).unwrap();
        assert_eq!(out, vec![2, 4]);
        assert_eq!(dev.counters.w_items, 4);
    }

    #[test]
    fn fused_equals_advance_then_filter() {
        let (mut dev, dg) = single_part();
        let sub = &dg.parts[0];
        let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::Max, 4, 8).unwrap();
        let mut seen = [false; 4];
        seen[0] = true;
        let a = advance_seq(&mut dev, sub, &mut bufs, &[0], |_, _, d| Some(d)).unwrap();
        let f = filter_seq(&mut dev, &a, |v| {
            let fresh = !seen[v as usize];
            seen[v as usize] = true;
            fresh
        })
        .unwrap();

        let mut dev2 = Device::new(0, HardwareProfile::k40());
        let mut seen2 = [false; 4];
        seen2[0] = true;
        let fused = advance_filter_fused_seq(&mut dev2, sub, &[0], |_, _, d| {
            if seen2[d as usize] {
                None
            } else {
                seen2[d as usize] = true;
                Some(d)
            }
        })
        .unwrap();
        let (mut x, mut y) = (f.clone(), fused.clone());
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y);
        assert!(dev2.counters.kernel_launches < dev.counters.kernel_launches);
    }

    #[test]
    fn empty_frontier_still_pays_launch_overhead() {
        let (mut dev, dg) = single_part();
        let sub = &dg.parts[0];
        let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::JustEnough, 4, 8).unwrap();
        let t0 = dev.now();
        let out = advance(&mut dev, sub, &mut bufs, &[], |_, _, d| Some(d)).unwrap();
        assert!(out.is_empty());
        assert!(dev.now() > t0, "launch overheads accrue even with no work");
    }

    #[test]
    fn pull_advance_skips_edges_after_first_parent() {
        let (mut dev, mut dg) = single_part();
        dg.parts[0].build_csc();
        let sub = &dg.parts[0];
        let csc = sub.csc.as_ref().unwrap();
        // visited = {0}; unvisited 1,2,3 look for a visited parent
        let visited = [true, false, false, false];
        let (found, scanned) =
            advance_pull(&mut dev, csc, &[1, 2, 3], |_, p| visited[p as usize]).unwrap();
        assert_eq!(found, vec![1, 2], "vertex 3 has no visited parent");
        // vertex 1's parents: 0 (hit, 1 scan); vertex 2's: 0,1,3 order by
        // csc — first is 0 (hit, 1 scan); vertex 3's: 2 (miss, 1 scan)
        assert_eq!(scanned, 3);
    }

    #[test]
    fn compute_charges_item_count() {
        let (mut dev, _) = single_part();
        let sum = compute(&mut dev, 100, || (0..100u64).sum::<u64>()).unwrap();
        assert_eq!(sum, 4950);
        assert_eq!(dev.counters.w_items, 100);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::alloc::AllocScheme;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use std::sync::atomic::Ordering::Relaxed;
    use vgpu::{par, BspCounters, HardwareProfile};

    /// A graph big enough that the chunk plan produces many chunks.
    fn big_part() -> DistGraph<u32, u64> {
        const N: usize = 20_000;
        let mut edges = Vec::new();
        for i in 0..N as u32 {
            edges.push((i, (i * 7 + 1) % N as u32));
            edges.push((i, (i * 13 + 5) % N as u32));
            if i % 50 == 0 {
                for k in 0..40u32 {
                    edges.push((i, (i + k * 97 + 3) % N as u32));
                }
            }
        }
        let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(N, edges, None));
        DistGraph::build(&g, vec![0; N], 1, Duplication::All)
    }

    fn run_advance(threads: usize, dg: &DistGraph<u32, u64>) -> (Vec<u32>, f64, BspCounters) {
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..sub.csr.n_vertices() as u32).collect();
        let mut dev = Device::new(0, HardwareProfile::k40());
        dev.set_kernel_threads(threads);
        let mut bufs =
            FrontierBufs::new(&mut dev, AllocScheme::Max, sub.csr.n_vertices(), sub.csr.n_edges())
                .unwrap();
        let out =
            advance(&mut dev, sub, &mut bufs, &frontier, |s, _, d| (d > s).then_some(d)).unwrap();
        (out, dev.now(), dev.counters)
    }

    #[test]
    fn parallel_advance_is_bit_identical_to_sequential() {
        let dg = big_part();
        let (out1, t1, c1) = run_advance(1, &dg);
        for threads in [2, 4, 8] {
            let (outn, tn, cn) = run_advance(threads, &dg);
            assert_eq!(out1, outn, "emitted frontier order at {threads} threads");
            assert_eq!(t1.to_bits(), tn.to_bits(), "sim clock at {threads} threads");
            assert_eq!(c1, cn, "BSP counters at {threads} threads");
        }
    }

    #[test]
    fn parallel_filter_preserves_input_order_and_charge() {
        let input: Vec<u32> = (0..100_000).collect();
        let run = |threads| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            dev.set_kernel_threads(threads);
            let out = filter(&mut dev, &input, |v| v % 3 == 0).unwrap();
            (out, dev.now(), dev.counters)
        };
        let (o1, t1, c1) = run(1);
        let (o4, t4, c4) = run(4);
        assert_eq!(o1, o4);
        assert_eq!(t1.to_bits(), t4.to_bits());
        assert_eq!(c1, c4);
        assert!(o1.windows(2).all(|w| w[0] < w[1]), "input order preserved");
    }

    #[test]
    fn parallel_fused_charges_the_same_edges() {
        let dg = big_part();
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..sub.csr.n_vertices() as u32).collect();
        let run = |threads| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            dev.set_kernel_threads(threads);
            let bufs = FrontierBufs::new(
                &mut dev,
                AllocScheme::Max,
                sub.csr.n_vertices(),
                sub.csr.n_edges(),
            )
            .unwrap();
            let mut labels = vec![u32::MAX; sub.csr.n_vertices()];
            labels[0] = 0;
            let out = {
                let atoms = par::as_atomic_u32(&mut labels);
                advance_filter_fused(&mut dev, sub, &bufs, &frontier, |_, _, d| {
                    atoms[d as usize]
                        .compare_exchange(u32::MAX, 1, Relaxed, Relaxed)
                        .is_ok()
                        .then_some(d)
                })
                .unwrap()
            };
            (out, labels, dev.now(), dev.counters)
        };
        let (o1, l1, t1, c1) = run(1);
        let (o4, l4, t4, c4) = run(4);
        // CAS claims are set-deterministic: the emitted *set* and the final
        // labels match even though the claiming schedule differs.
        let (mut s1, mut s4) = (o1.clone(), o4.clone());
        s1.sort_unstable();
        s4.sort_unstable();
        assert_eq!(s1, s4);
        assert_eq!(l1, l4);
        assert_eq!(t1.to_bits(), t4.to_bits());
        assert_eq!(c1, c4);
    }

    #[test]
    fn advance_accumulate_is_bit_identical_across_threads() {
        let dg = big_part();
        let sub = &dg.parts[0];
        let n = sub.csr.n_vertices();
        let frontier: Vec<u32> = (0..n as u32).collect();
        let ranks: Vec<f32> = (0..n).map(|i| 1.0 / (i + 1) as f32).collect();
        let run = |threads| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            dev.set_kernel_threads(threads);
            let mut bufs =
                FrontierBufs::new(&mut dev, AllocScheme::Max, n, sub.csr.n_edges()).unwrap();
            let mut accum = vec![0.0f32; n];
            let mut scratch = Vec::new();
            advance_accumulate(
                &mut dev,
                sub,
                &mut bufs,
                &frontier,
                &mut accum,
                &mut scratch,
                |s| ranks[s as usize] / sub.csr.degree(s).max(1) as f32,
            )
            .unwrap();
            (accum, dev.now(), dev.counters)
        };
        let (a1, t1, c1) = run(1);
        for threads in [2, 4] {
            let (an, tn, cn) = run(threads);
            let bits1: Vec<u32> = a1.iter().map(|x| x.to_bits()).collect();
            let bitsn: Vec<u32> = an.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits1, bitsn, "f32 accumulation bits at {threads} threads");
            assert_eq!(t1.to_bits(), tn.to_bits());
            assert_eq!(c1, cn);
        }
    }

    #[test]
    fn seq_variants_charge_identically_to_parallel() {
        let dg = big_part();
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..sub.csr.n_vertices() as u32).collect();
        let mut dev_p = Device::new(0, HardwareProfile::k40());
        let mut dev_s = Device::new(0, HardwareProfile::k40());
        let n = sub.csr.n_vertices();
        let mut bufs_p =
            FrontierBufs::new(&mut dev_p, AllocScheme::Max, n, sub.csr.n_edges()).unwrap();
        let mut bufs_s =
            FrontierBufs::new(&mut dev_s, AllocScheme::Max, n, sub.csr.n_edges()).unwrap();
        let p = advance(&mut dev_p, sub, &mut bufs_p, &frontier, |_, _, d| Some(d)).unwrap();
        let s = advance_seq(&mut dev_s, sub, &mut bufs_s, &frontier, |_, _, d| Some(d)).unwrap();
        assert_eq!(p, s);
        assert_eq!(dev_p.now().to_bits(), dev_s.now().to_bits());
        assert_eq!(dev_p.counters, dev_s.counters);

        let fp = filter(&mut dev_p, &frontier, |v| v % 2 == 0).unwrap();
        let fs = filter_seq(&mut dev_s, &frontier, |v| v % 2 == 0).unwrap();
        assert_eq!(fp, fs);
        assert_eq!(dev_p.now().to_bits(), dev_s.now().to_bits());

        let gp = advance_filter_fused(&mut dev_p, sub, &bufs_p, &frontier, |s, _, d| {
            (d > s).then_some(d)
        })
        .unwrap();
        let gs =
            advance_filter_fused_seq(&mut dev_s, sub, &frontier, |s, _, d| (d > s).then_some(d))
                .unwrap();
        assert_eq!(gp, gs);
        assert_eq!(dev_p.now().to_bits(), dev_s.now().to_bits());
        assert_eq!(dev_p.counters, dev_s.counters);
    }
}

#[cfg(test)]
mod pressure_tests {
    use super::*;
    use crate::alloc::AllocScheme;
    use crate::governor::PressurePolicy;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use vgpu::interconnect::Link;
    use vgpu::{BspCounters, HardwareProfile};

    fn part() -> DistGraph<u32, u64> {
        const N: usize = 4000;
        let mut edges = Vec::new();
        for i in 0..N as u32 {
            edges.push((i, (i + 1) % N as u32));
            edges.push((i, (i * 31 + 7) % N as u32));
        }
        let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(N, edges, None));
        DistGraph::build(&g, vec![0; N], 1, Duplication::All)
    }

    fn run(threads: usize, cap: Option<u64>) -> (Vec<u32>, f64, BspCounters, u64) {
        let dg = part();
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..sub.csr.n_vertices() as u32).collect();
        let profile = match cap {
            Some(c) => HardwareProfile::k40().with_capacity(c),
            None => HardwareProfile::k40(),
        };
        let mut dev = Device::new(0, profile);
        dev.set_kernel_threads(threads);
        let mut bufs = FrontierBufs::new(
            &mut dev,
            AllocScheme::JustEnough,
            sub.csr.n_vertices(),
            sub.csr.n_edges(),
        )
        .unwrap()
        .with_pressure(PressurePolicy::governed(), Link { bandwidth_gb_s: 16.0, latency_us: 25.0 });
        let out =
            advance(&mut dev, sub, &mut bufs, &frontier, |s, _, d| (d > s).then_some(d)).unwrap();
        (out, dev.now(), dev.counters, bufs.governor().chunk_passes)
    }

    #[test]
    fn chunked_multi_pass_matches_unconstrained_results() {
        let (full, t_full, _, p_full) = run(1, None);
        assert_eq!(p_full, 0, "no pressure, no chunking");
        let (capped, t_capped, _, passes) = run(1, Some(20_000));
        assert!(passes >= 2, "the tight pool must force a multi-pass, got {passes}");
        assert_eq!(full, capped, "emitted frontier bit-identical under pressure");
        assert!(t_capped > t_full, "degrading is slower, never wrong");
    }

    #[test]
    fn chunked_multi_pass_is_bit_identical_across_threads() {
        let (o1, t1, c1, p1) = run(1, Some(20_000));
        for threads in [2, 4] {
            let (on, tn, cn, pn) = run(threads, Some(20_000));
            assert_eq!(o1, on, "emissions at {threads} threads");
            assert_eq!(t1.to_bits(), tn.to_bits(), "sim clock at {threads} threads");
            assert_eq!(c1, cn, "counters at {threads} threads");
            assert_eq!(p1, pn, "pass count at {threads} threads");
        }
    }

    #[test]
    fn infeasible_chunk_budget_is_a_typed_oom() {
        // a hub whose adjacency exceeds anything a 600-byte pool can grant
        let mut coo = Coo::<u32>::new(300);
        for leaf in 1..300u32 {
            coo.push(0, leaf);
        }
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        let dg = DistGraph::build(&g, vec![0; 300], 1, Duplication::All);
        let sub = &dg.parts[0];
        let mut dev = Device::new(0, HardwareProfile::k40().with_capacity(600));
        let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::JustEnough, 300, sub.csr.n_edges())
            .unwrap()
            .with_pressure(
                PressurePolicy::governed(),
                Link { bandwidth_gb_s: 16.0, latency_us: 25.0 },
            );
        let err = advance(&mut dev, sub, &mut bufs, &[0], |_, _, d| Some(d)).unwrap_err();
        assert!(matches!(err, VgpuError::OutOfMemory { .. }), "typed, not a panic: {err:?}");
    }
}

#[cfg(test)]
mod advance_mode_tests {
    use super::*;
    use crate::alloc::AllocScheme;
    use mgpu_graph::{Coo, Csr, GraphBuilder};
    use mgpu_partition::{DistGraph, Duplication};
    use vgpu::HardwareProfile;

    /// star: hub 0 with 2048 leaves, plus a large matching — enough work
    /// that kernel time dominates launch overhead
    fn skewed() -> DistGraph<u32, u64> {
        const N: usize = 8192;
        let mut coo = Coo::<u32>::new(N);
        for leaf in 1..2049u32 {
            coo.push(0, leaf);
        }
        for i in 0..((N as u32 - 2050) / 2) {
            coo.push(2049 + 2 * i, 2050 + 2 * i);
        }
        let g: Csr<u32, u64> = GraphBuilder::undirected(&coo);
        DistGraph::build(&g, vec![0; N], 1, Duplication::All)
    }

    #[test]
    fn modes_produce_identical_results() {
        let dg = skewed();
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..8192).collect();
        let run = |mode| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::Max, 8192, 16384).unwrap();
            let mut out =
                advance_with_mode(&mut dev, sub, &mut bufs, &frontier, mode, |_, _, d| Some(d))
                    .unwrap();
            out.sort_unstable();
            (out, dev.now())
        };
        let (lb, t_lb) = run(AdvanceMode::LoadBalanced);
        let (tm, t_tm) = run(AdvanceMode::ThreadMapped);
        assert_eq!(lb, tm, "identical emitted frontiers");
        assert!(t_tm > 2.0 * t_lb, "hub skew must penalize thread-mapped: {t_tm} vs {t_lb}");
    }

    #[test]
    fn frontier_ops_charge_identically_to_slice_ops() {
        use crate::frontier::{Frontier, FrontierMode};
        let dg = skewed();
        let sub = &dg.parts[0];
        let ids: Vec<u32> = (0..8192u32).filter(|v| v % 3 != 0).collect();
        let slice_run = || {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::Max, 8192, 16384).unwrap();
            let a = advance(&mut dev, sub, &mut bufs, &ids, |_, _, d| Some(d)).unwrap();
            let g =
                advance_filter_fused(&mut dev, sub, &bufs, &ids, |s, _, d| (d > s).then_some(d))
                    .unwrap();
            (a, g, dev.now(), dev.counters)
        };
        let (a0, g0, t0, c0) = slice_run();
        for mode in [FrontierMode::Sparse, FrontierMode::Dense, FrontierMode::Auto] {
            let fr = Frontier::from_sorted(ids.clone(), 8192, mode);
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::Max, 8192, 16384).unwrap();
            let a = advance_frontier(&mut dev, sub, &mut bufs, &fr, |_, _, d| Some(d)).unwrap();
            let g = advance_filter_fused_frontier(&mut dev, sub, &bufs, &fr, |s, _, d| {
                (d > s).then_some(d)
            })
            .unwrap();
            assert_eq!(a, a0, "{mode:?} advance emissions");
            assert_eq!(g, g0, "{mode:?} fused emissions");
            assert_eq!(dev.now().to_bits(), t0.to_bits(), "{mode:?} sim clock");
            assert_eq!(dev.counters, c0, "{mode:?} counters");
        }
    }

    #[test]
    fn frontier_pull_matches_slice_pull() {
        use crate::frontier::{Frontier, FrontierMode};
        let mut dg = skewed();
        dg.parts[0].build_csc();
        let sub = &dg.parts[0];
        let csc = sub.csc.as_ref().unwrap();
        let visited: Vec<bool> = (0..8192).map(|v| v % 5 == 0).collect();
        let unvisited: Vec<u32> = (0..8192u32).filter(|&v| !visited[v as usize]).collect();
        let mut dev0 = Device::new(0, HardwareProfile::k40());
        let (f0, s0) =
            advance_pull(&mut dev0, csc, &unvisited, |_, p| visited[p as usize]).unwrap();
        for mode in [FrontierMode::Sparse, FrontierMode::Dense, FrontierMode::Auto] {
            let fr = Frontier::from_sorted(unvisited.clone(), 8192, mode);
            let mut dev = Device::new(0, HardwareProfile::k40());
            let (f, s) =
                advance_pull_frontier(&mut dev, csc, &fr, |_, p| visited[p as usize]).unwrap();
            assert_eq!(f, f0, "{mode:?} found");
            assert_eq!(s, s0, "{mode:?} scanned");
            assert_eq!(dev.now().to_bits(), dev0.now().to_bits(), "{mode:?} sim clock");
            assert_eq!(dev.counters, dev0.counters, "{mode:?} counters");
        }
    }

    #[test]
    fn frontier_scan_and_retain_charge_like_bulk_and_filter() {
        use crate::frontier::{Frontier, FrontierMode};
        const N: usize = 10_000;
        let keep = |v: usize| !v.is_multiple_of(7);
        let shrink = |v: u32| v.is_multiple_of(2);
        // reference: the legacy scan-into-vec + filter on another device
        let mut dev0 = Device::new(0, HardwareProfile::k40());
        let ids0: Vec<u32> = dev0
            .kernel(COMPUTE_STREAM, KernelKind::Bulk, || {
                ((0..N as u32).filter(|&v| keep(v as usize)).collect(), N as u64)
            })
            .unwrap();
        let kept0 = filter_seq(&mut dev0, &ids0, &shrink).unwrap();
        for mode in [FrontierMode::Sparse, FrontierMode::Dense, FrontierMode::Auto] {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut fr: Frontier<u32> = frontier_scan(&mut dev, N, mode, keep).unwrap();
            assert_eq!(fr.to_vec(), ids0, "{mode:?} scan result");
            frontier_retain(&mut dev, &mut fr, shrink).unwrap();
            assert_eq!(fr.to_vec(), kept0, "{mode:?} retain result");
            assert_eq!(dev.now().to_bits(), dev0.now().to_bits(), "{mode:?} sim clock");
            assert_eq!(dev.counters, dev0.counters, "{mode:?} counters");
        }
    }

    #[test]
    fn thread_mapped_is_fine_on_uniform_degree() {
        // cycle: all degrees equal — thread mapping loses nothing but the scan
        let edges: Vec<(u32, u32)> = (0..64u32).map(|i| (i, (i + 1) % 64)).collect();
        let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(64, edges, None));
        let dg = DistGraph::build(&g, vec![0; 64], 1, Duplication::All);
        let sub = &dg.parts[0];
        let frontier: Vec<u32> = (0..64).collect();
        let time = |mode| {
            let mut dev = Device::new(0, HardwareProfile::k40());
            let mut bufs = FrontierBufs::new(&mut dev, AllocScheme::Max, 64, 128).unwrap();
            advance_with_mode(&mut dev, sub, &mut bufs, &frontier, mode, |_, _, d| Some(d))
                .unwrap();
            dev.now()
        };
        let t_lb = time(AdvanceMode::LoadBalanced);
        let t_tm = time(AdvanceMode::ThreadMapped);
        assert!((t_tm - t_lb).abs() < t_lb * 0.5, "near parity on uniform degree");
    }
}
