//! The memory-pressure governor: admission control, downgrade chains and
//! degradation accounting.
//!
//! §VI-B of the paper treats GPU memory capacity as the binding constraint —
//! worst-case allocation "artificially limits the size of the subgraph we can
//! place onto one GPU" — and just-enough allocation keeps a reallocation
//! backstop armed "to prevent illegal memory access". The governor extends
//! that stance from sizing policy to *survival* policy: every
//! [`vgpu::VgpuError::OutOfMemory`] becomes a decision point instead of a
//! fatal error.
//!
//! Three tiers, in escalation order:
//!
//! 1. **Admission control** ([`estimate_footprint`], applied in
//!    `Runner::new`): a pre-flight per-device estimate — CSR topology,
//!    per-vertex problem state, frontier preallocation under the chosen
//!    [`AllocScheme`], and comm staging — checked against soft/hard
//!    watermarks of the pool capacity. Above the soft watermark the scheme is
//!    walked down a deterministic downgrade chain
//!    (`Max → Fixed → JustEnough`; `PreallocFusion → JustEnough`) before any
//!    allocation happens; past the hard watermark even at the floor, the bind
//!    fails with a *typed* `OutOfMemory`. Higher layers add the global links
//!    of the chain: `duplicate-all → duplicate-1-hop` (re-partition) and
//!    `broadcast → selective` (drop a comm override).
//! 2. **Mid-run degradation** (`FrontierBufs` + `ops`): an OOM from
//!    `prepare_intermediate`/`commit_output` first *spills cold buffer
//!    capacity to host* (staged over the interconnect's host path and charged
//!    to the BSP model, so `T = W + H·g + S·l` stays honest) and retries;
//!    if the buffer still does not fit, the advance runs as a **chunked
//!    multi-pass** whose per-pass budget derives from the pool's free bytes.
//! 3. **Resilience integration**: an OOM the governor cannot absorb
//!    propagates typed, where `RecoveryPolicy::is_transient` already treats
//!    it exactly like an injected `oom:D@N` fault.
//!
//! **Determinism contract.** Every governor decision is a pure function of
//! *simulated* accounting — pool capacity, live bytes, item counts — never of
//! host thread count or wall-clock. A degraded run is therefore bit-identical
//! across `kernel_threads`, and a memory-starved device produces results
//! equal to an unconstrained one: slower, never wrong.

use crate::alloc::AllocScheme;
use crate::comm::CommStrategy;

/// Governor policy knobs. The default is fully off: no estimate is computed,
/// no downgrade applied, every OOM propagates exactly as before — existing
/// runs stay bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressurePolicy {
    /// Master switch.
    pub enabled: bool,
    /// Fraction of pool capacity the admission estimate may occupy before
    /// the downgrade chain is walked (the *soft* watermark; the *hard*
    /// watermark is the capacity itself).
    pub soft_watermark: f64,
    /// Smallest per-pass element budget a chunked multi-pass advance will
    /// accept; below it (a single vertex's adjacency cannot fit) the OOM is
    /// hard-infeasible and propagates typed.
    pub min_chunk: usize,
}

impl Default for PressurePolicy {
    fn default() -> Self {
        PressurePolicy { enabled: false, soft_watermark: 0.85, min_chunk: 1 }
    }
}

impl PressurePolicy {
    /// The standard governed preset: admission at an 85% soft watermark,
    /// spill + chunked multi-pass enabled.
    pub fn governed() -> Self {
        PressurePolicy { enabled: true, ..PressurePolicy::default() }
    }
}

/// One recorded downgrade decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Downgrade {
    /// Device the decision was scoped to; `None` for global decisions
    /// (duplication, communication strategy).
    pub device: Option<usize>,
    /// What was downgraded: `"alloc-scheme"`, `"duplication"` or `"comm"`.
    pub kind: &'static str,
    /// Label before the downgrade.
    pub from: &'static str,
    /// Label after the downgrade.
    pub to: &'static str,
    /// The footprint estimate that triggered the decision, in bytes.
    pub estimated_bytes: u64,
    /// The budget (soft watermark × capacity) it was checked against.
    pub budget_bytes: u64,
}

/// Itemized governor decisions for one enact — the report's account of how a
/// run survived memory pressure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GovernorLog {
    /// Every downgrade applied, in decision order (admission first).
    pub downgrades: Vec<Downgrade>,
    /// Advances that had to run as chunked multi-pass.
    pub chunked_advances: u64,
    /// Total passes executed by chunked advances (≥ 2 each).
    pub chunk_passes: u64,
    /// Spill events (cold buffer capacity staged to host).
    pub spill_events: u64,
    /// Total bytes spilled to host.
    pub spilled_bytes: u64,
    /// Operations retried after a spill reclaimed capacity.
    pub reclaim_retries: u64,
}

impl GovernorLog {
    /// True when the governor never had to act.
    pub fn is_quiet(&self) -> bool {
        self.downgrades.is_empty()
            && self.chunked_advances == 0
            && self.chunk_passes == 0
            && self.spill_events == 0
            && self.spilled_bytes == 0
            && self.reclaim_retries == 0
    }

    /// Fold another log's decisions into this one (device logs into the
    /// report total, in device order).
    pub fn absorb(&mut self, other: &GovernorLog) {
        self.downgrades.extend(other.downgrades.iter().cloned());
        self.chunked_advances += other.chunked_advances;
        self.chunk_passes += other.chunk_passes;
        self.spill_events += other.spill_events;
        self.spilled_bytes += other.spilled_bytes;
        self.reclaim_retries += other.reclaim_retries;
    }
}

/// A pre-flight per-device footprint estimate (admission tier).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FootprintEstimate {
    /// CSR topology bytes (row offsets + column indices + values).
    pub topology: u64,
    /// Per-vertex problem state (labels, ranks, …).
    pub state: u64,
    /// Frontier buffers preallocated under the alloc scheme.
    pub frontier: u64,
    /// Comm staging for outgoing packages (vertex ids + messages).
    pub comm: u64,
}

impl FootprintEstimate {
    /// Total estimated bytes.
    pub fn total(&self) -> u64 {
        self.topology + self.state + self.frontier + self.comm
    }
}

/// Estimate one device's footprint before any allocation: `topology_bytes`
/// for the CSR, `state_bytes_per_vertex` per local vertex, the scheme's
/// frontier preallocation (input + output + intermediate unless fused) at
/// `vertex_bytes` per element, and a comm staging bound — a whole-frontier
/// package under broadcast, half under selective (the owned-border fraction
/// is unknown before partitioning stats are in; the estimate only has to
/// rank schemes consistently, and it is a pure function of its arguments).
#[allow(clippy::too_many_arguments)]
pub fn estimate_footprint(
    scheme: AllocScheme,
    comm: CommStrategy,
    n_devices: usize,
    n_vertices: usize,
    n_edges: usize,
    topology_bytes: u64,
    state_bytes_per_vertex: usize,
    vertex_bytes: usize,
    msg_bytes: usize,
) -> FootprintEstimate {
    let frontier_pre = match scheme {
        AllocScheme::JustEnough => 0,
        AllocScheme::Max => n_edges,
        AllocScheme::Fixed { sizing_factor } | AllocScheme::PreallocFusion { sizing_factor } => {
            (n_vertices as f64 * sizing_factor).ceil() as usize
        }
    };
    let n_bufs = if scheme.fused() { 2 } else { 3 };
    let comm_elems = if n_devices <= 1 {
        0
    } else {
        match comm {
            CommStrategy::Broadcast => n_vertices,
            CommStrategy::Selective => n_vertices / 2,
        }
    };
    FootprintEstimate {
        topology: topology_bytes,
        state: (n_vertices * state_bytes_per_vertex) as u64,
        frontier: (n_bufs * frontier_pre.max(1) * vertex_bytes) as u64,
        comm: (comm_elems * (vertex_bytes + msg_bytes)) as u64,
    }
}

/// The next scheme in the deterministic downgrade chain, or `None` at the
/// floor. `Max → Fixed{1.0} → JustEnough`; fusion drops straight to
/// `JustEnough` (losing fusion re-introduces the intermediate buffer, but
/// just-enough sizes it on demand — the memory-minimal configuration).
pub fn downgrade_scheme(scheme: AllocScheme) -> Option<AllocScheme> {
    match scheme {
        AllocScheme::Max => Some(AllocScheme::Fixed { sizing_factor: 1.0 }),
        AllocScheme::Fixed { .. } | AllocScheme::PreallocFusion { .. } => {
            Some(AllocScheme::JustEnough)
        }
        AllocScheme::JustEnough => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_off() {
        assert!(!PressurePolicy::default().enabled);
        assert!(PressurePolicy::governed().enabled);
    }

    #[test]
    fn downgrade_chain_reaches_the_floor() {
        let mut scheme = AllocScheme::Max;
        let mut labels = vec![scheme.label()];
        while let Some(next) = downgrade_scheme(scheme) {
            scheme = next;
            labels.push(scheme.label());
        }
        assert_eq!(labels, vec!["max", "fixed", "just-enough"]);
        assert_eq!(
            downgrade_scheme(AllocScheme::PreallocFusion { sizing_factor: 2.0 }),
            Some(AllocScheme::JustEnough)
        );
    }

    #[test]
    fn estimate_orders_schemes_like_their_footprints() {
        let est = |scheme| {
            estimate_footprint(scheme, CommStrategy::Selective, 4, 1000, 50_000, 4096, 4, 4, 4)
                .total()
        };
        let je = est(AllocScheme::JustEnough);
        let fx = est(AllocScheme::Fixed { sizing_factor: 3.0 });
        let mx = est(AllocScheme::Max);
        let pf = est(AllocScheme::PreallocFusion { sizing_factor: 3.0 });
        assert!(je < fx && fx < mx && pf < fx);
    }

    #[test]
    fn broadcast_estimates_more_comm_than_selective() {
        let est = |comm| {
            estimate_footprint(AllocScheme::JustEnough, comm, 4, 1000, 50_000, 0, 0, 4, 4).comm
        };
        assert!(est(CommStrategy::Broadcast) > est(CommStrategy::Selective));
        // single device: no comm staging at all
        let single = estimate_footprint(
            AllocScheme::JustEnough,
            CommStrategy::Broadcast,
            1,
            1000,
            0,
            0,
            0,
            4,
            4,
        );
        assert_eq!(single.comm, 0);
    }

    #[test]
    fn log_absorb_and_quiet() {
        let mut a = GovernorLog::default();
        assert!(a.is_quiet());
        let b = GovernorLog {
            downgrades: vec![Downgrade {
                device: Some(1),
                kind: "alloc-scheme",
                from: "max",
                to: "fixed",
                estimated_bytes: 100,
                budget_bytes: 80,
            }],
            chunked_advances: 1,
            chunk_passes: 3,
            spill_events: 2,
            spilled_bytes: 512,
            reclaim_retries: 2,
        };
        a.absorb(&b);
        assert!(!a.is_quiet());
        assert_eq!(a.downgrades.len(), 1);
        assert_eq!(a.chunk_passes, 3);
        assert_eq!(a.spilled_bytes, 512);
    }
}
