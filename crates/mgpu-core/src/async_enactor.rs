//! An asynchronous (Groute-style) enactor — the §II-A contemporary.
//!
//! Groute [18] "leveraged asynchronous computation to demonstrate
//! impressive multi-GPU performance particularly on high-diameter,
//! road-network-like graphs, and primitives that can benefit from
//! prioritized data communication, such as SSSP and CC". The mechanism:
//! devices do **not** synchronize at iteration boundaries. Each device
//! loops — drain inbox, combine, relax its pending frontier, push updates —
//! and the whole computation ends with distributed termination detection
//! (all devices idle and no messages in flight).
//!
//! Trade-offs faithfully reproduced:
//!
//! * no `S·l` term: deep, narrow traversals stop paying a global barrier
//!   per level — the road-network win;
//! * stale reads: relaxations may use values a peer has already improved,
//!   so *label-correcting* primitives are required (monotonic `combine`,
//!   iteration logic independent of the superstep index — SSSP, CC, and
//!   label-correcting BFS qualify; DOBFS and BC do not), and total work
//!   `W` can exceed the BSP schedule's;
//! * simulated time is scheduling-dependent (asynchrony is inherently
//!   non-deterministic), unlike the BSP enactor's exactly reproducible
//!   clocks. Results still converge to the same fixpoint.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;
use std::time::Instant;

use mgpu_graph::Id;
use mgpu_partition::{DistGraph, SubGraph};
use parking_lot::Mutex;
use vgpu::memory::Reservation;
use vgpu::sync::harvest_device_thread;
use vgpu::{
    Device, Interconnect, KernelKind, Mailbox, Result, SimSystem, VgpuError, COMM_STREAM,
    COMPUTE_STREAM,
};

use crate::alloc::FrontierBufs;
use crate::comm::{split_and_package_with, Package, PackagePolicy, SuppressState, WireEncoding};
use crate::enactor::EnactConfig;
use crate::executor::{assemble_report, post_package, Executor, ExecutorKind};
use crate::problem::MgpuProblem;
use crate::report::{CommReduction, EnactReport};
use crate::resilience::{guard, RecoveryCounters, RecoveryLog, RecoveryPolicy};

/// An asynchronous runner for label-correcting primitives.
///
/// The primitive contract beyond [`MgpuProblem`]: `iteration` must be a
/// pure relaxation of its input frontier (no dependence on the iteration
/// index), `combine` must be monotonic (repeated application converges),
/// and communication must be selective. SSSP and CC satisfy this;
/// [`crate::enactor::Runner`] remains the home of BSP-only primitives.
pub struct AsyncRunner<'g, V: Id, O: Id, P: MgpuProblem<V, O>> {
    system: SimSystem,
    dist: &'g DistGraph<V, O>,
    problem: P,
    per_gpu: Vec<AsyncPerGpu<V, P::State>>,
    encoding: WireEncoding,
    suppression: bool,
    tracing: bool,
    recovery: RecoveryPolicy,
}

struct AsyncPerGpu<V: Id, S> {
    state: S,
    bufs: FrontierBufs<V>,
    _topology: Reservation,
}

impl<'g, V: Id, O: Id, P: MgpuProblem<V, O>> AsyncRunner<'g, V, O, P> {
    /// Bind `problem` to `dist` on `system` (see [`crate::Runner::new`]).
    pub fn new(system: SimSystem, dist: &'g DistGraph<V, O>, problem: P) -> Result<Self> {
        Self::with_config(system, dist, problem, &EnactConfig::default())
    }

    /// [`AsyncRunner::new`] with explicit wire-volume knobs. The async path
    /// honours `wire_encoding`, `suppression`, `recovery` and `pressure`
    /// from the config; `comm_topology` does not apply (there are no
    /// supersteps to stage a collective over) and is ignored.
    pub fn with_config(
        mut system: SimSystem,
        dist: &'g DistGraph<V, O>,
        problem: P,
        config: &EnactConfig,
    ) -> Result<Self> {
        assert_eq!(system.n_devices(), dist.n_parts);
        let scheme = problem.alloc_scheme();
        let host_link = system.interconnect.host_link();
        let mut per_gpu = Vec::with_capacity(dist.n_parts);
        for (dev, sub) in system.devices.iter_mut().zip(dist.parts.iter()) {
            let topology = dev.pool().reserve_external(sub.topology_bytes())?;
            let cost = dev.profile().local_copy_us(sub.topology_bytes());
            dev.charge(COMPUTE_STREAM, cost, 0.0)?;
            let state = problem.init(dev, sub)?;
            let bufs = FrontierBufs::new(dev, scheme, sub.n_vertices(), sub.n_edges())?
                .with_pressure(config.pressure, host_link);
            per_gpu.push(AsyncPerGpu { state, bufs, _topology: topology });
        }
        Ok(AsyncRunner {
            system,
            dist,
            problem,
            per_gpu,
            encoding: config.wire_encoding,
            suppression: config.suppression,
            tracing: config.tracing,
            recovery: config.recovery,
        })
    }

    /// Run one traversal asynchronously from `src` (global id).
    pub fn enact(&mut self, src: Option<V>) -> Result<EnactReport> {
        self.system.reset_clocks();
        if self.tracing {
            // Async mode has no supersteps: every span stays stamped 0 and
            // no sync spans are recorded (the profiler skips its makespan
            // reconstruction accordingly).
            for dev in &mut self.system.devices {
                dev.timeline.enable();
                dev.timeline.clear();
            }
        }
        // Fresh mid-run governor decisions per enact (mirrors the BSP path).
        for per in &mut self.per_gpu {
            per.bufs.reset_governor();
        }
        let n = self.dist.n_parts;
        let located = src.map(|g| self.dist.locate(g));
        let mailbox: Mailbox<Arc<Package<V, P::Msg>>> =
            Mailbox::with_faults(n, self.system.fault_injector());
        // Distributed termination: messages in flight + busy device count.
        let in_flight = AtomicI64::new(0);
        let busy = AtomicUsize::new(n);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<VgpuError>> = Mutex::new(None);
        let policy = self.recovery;
        let rec = RecoveryCounters::default();
        let fired_before = self.system.fault_injector().map_or(0, |inj| inj.fired());
        let problem = &self.problem;
        let interconnect = std::sync::Arc::clone(&self.system.interconnect);
        let monotone = problem.monotone();
        let pkg_policy = PackagePolicy {
            encoding: self.encoding,
            monotone,
            uniform_hint: problem.uniform_broadcast_msgs(),
            order: problem.monotone_order(),
        };
        let suppression = self.suppression && monotone && n > 1;

        let t0 = Instant::now();
        let rounds: Vec<Result<(usize, CommReduction)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for ((dev, per), sub) in self
                .system
                .devices
                .iter_mut()
                .zip(self.per_gpu.iter_mut())
                .zip(self.dist.parts.iter())
            {
                let src_local = match located {
                    Some((gpu, local)) if gpu == dev.id() => Some(local),
                    _ => None,
                };
                dev.set_retry_policy(policy.max_retries, policy.retry_backoff_us);
                let mailbox = &mailbox;
                let in_flight = &in_flight;
                let busy = &busy;
                let abort = &abort;
                let first_error = &first_error;
                let policy = &policy;
                let rec = &rec;
                let interconnect = std::sync::Arc::clone(&interconnect);
                handles.push(scope.spawn(move || {
                    run_async_gpu(
                        problem,
                        dev,
                        per,
                        sub,
                        &interconnect,
                        mailbox,
                        in_flight,
                        busy,
                        abort,
                        first_error,
                        src_local,
                        pkg_policy,
                        suppression,
                        policy,
                        rec,
                    )
                }));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(gpu, h)| harvest_device_thread(h.join(), gpu))
                .collect()
        });
        let wall_time_us = t0.elapsed().as_secs_f64() * 1e6;

        let fired_after = self.system.fault_injector().map_or(0, |inj| inj.fired());
        let kernel_retries: u64 = self.system.devices.iter().map(|d| d.kernel_retries()).sum();
        let transfer_retries = rec.transfer_retries.load(SeqCst);
        let recovery = RecoveryLog {
            kernel_retries,
            transfer_retries,
            faults_injected: fired_after - fired_before,
            backoff_us: (kernel_retries + transfer_retries) as f64 * policy.retry_backoff_us,
            ..RecoveryLog::default()
        };

        if abort.load(SeqCst) {
            return Err(first_error.lock().take().unwrap_or(VgpuError::Aborted));
        }
        let mut max_rounds = 0usize;
        let mut comm_acc = CommReduction::default();
        for r in rounds {
            let (rounds_done, comm_stats) = r?;
            max_rounds = max_rounds.max(rounds_done);
            comm_acc.merge(&comm_stats);
        }
        let governor = {
            let mut gov = crate::governor::GovernorLog::default();
            for per in &self.per_gpu {
                gov.absorb(per.bufs.governor());
            }
            gov
        };
        Ok(assemble_report(
            &self.system,
            self.problem.name(),
            n,
            max_rounds,
            wall_time_us,
            Vec::new(), // async mode has no superstep structure
            recovery,
            governor,
            comm_acc,
            self.tracing,
        ))
    }

    /// Access a device's primitive state after an enact.
    pub fn state(&self, gpu: usize) -> &P::State {
        &self.per_gpu[gpu].state
    }

    /// The underlying system.
    pub fn system(&self) -> &SimSystem {
        &self.system
    }

    /// Read the primitive's per-vertex result words in global vertex order
    /// (see [`MgpuProblem::result_word`]).
    pub fn harvest(&self) -> Vec<u64> {
        (0..self.dist.n_global)
            .map(|g| {
                let (gpu, local) = self.dist.locate(V::from_usize(g));
                self.problem.result_word(&self.per_gpu[gpu].state, local)
            })
            .collect()
    }
}

impl<'g, V: Id, O: Id, P: MgpuProblem<V, O>> Executor<V> for AsyncRunner<'g, V, O, P> {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Async
    }

    fn primitive(&self) -> &'static str {
        self.problem.name()
    }

    fn n_devices(&self) -> usize {
        self.dist.n_parts
    }

    fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    fn enact(&mut self, src: Option<V>) -> Result<EnactReport> {
        AsyncRunner::enact(self, src)
    }

    fn harvest(&self) -> Vec<u64> {
        AsyncRunner::harvest(self)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_async_gpu<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut AsyncPerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    interconnect: &Interconnect,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    in_flight: &AtomicI64,
    busy: &AtomicUsize,
    abort: &AtomicBool,
    first_error: &Mutex<Option<VgpuError>>,
    src_local: Option<V>,
    pkg_policy: PackagePolicy,
    suppression: bool,
    policy: &RecoveryPolicy,
    rec: &RecoveryCounters,
) -> Result<(usize, CommReduction)> {
    let gpu = dev.id();
    let fail = |e: VgpuError| {
        first_error.lock().get_or_insert(e);
        abort.store(true, SeqCst);
    };
    // Suppression is sound here for the same reason it is in the BSP path:
    // remote state only ever improves (async requires a monotone combiner),
    // so a key at or above the floor would be rejected by every receiver.
    let mut supp: Option<SuppressState> =
        suppression.then(|| SuppressState::with_order(sub.n_vertices(), pkg_policy.order));
    let mut stats = CommReduction::default();

    let mut pending: Vec<V> =
        match guard(gpu, || problem.reset(dev, sub, &mut per.state, src_local)) {
            Ok(f) => f,
            Err(e) => {
                fail(e);
                Vec::new()
            }
        };
    let mut rounds = 0usize;
    let mut idle = false;
    if pending.is_empty() {
        busy.fetch_sub(1, SeqCst);
        idle = true;
    }

    loop {
        if abort.load(SeqCst) {
            if !idle {
                busy.fetch_sub(1, SeqCst);
            }
            return Err(first_error.lock().clone().unwrap_or(VgpuError::Aborted));
        }

        // --- drain & combine whatever has arrived ---
        let deliveries = mailbox.drain(gpu);
        if !deliveries.is_empty() && idle {
            busy.fetch_add(1, SeqCst);
            idle = false;
        }
        for delivery in deliveries {
            // The message leaves flight whether or not the combine succeeds —
            // otherwise a failing device would wedge termination detection.
            let combined = guard(gpu, || {
                dev.stream_wait(COMM_STREAM, delivery.arrival)?;
                let src = delivery.src;
                let pkg = delivery.payload;
                dev.counters.h_bytes_recv += pkg.wire_bytes();
                if dev.timeline.is_enabled() {
                    let at = dev.stream_time(COMM_STREAM);
                    dev.timeline.record(vgpu::TraceEvent {
                        device: dev.id(),
                        stream: COMM_STREAM.0,
                        kind: vgpu::TraceKind::Recv,
                        name: "recv",
                        start_us: at,
                        items: pkg.len() as u64,
                        bytes: pkg.wire_bytes(),
                        peer: src as i64,
                        ..vgpu::TraceEvent::default()
                    });
                }
                let state = &mut per.state;
                let pending_ref = &mut pending;
                dev.kernel(COMM_STREAM, KernelKind::Combine, || {
                    // selective wire ids are owner-local: combine directly
                    let (vs, ms) = pkg.decode();
                    for (i, &wire) in vs.iter().enumerate() {
                        if problem.combine(state, wire, &ms[i]) {
                            pending_ref.push(wire);
                        }
                    }
                    ((), pkg.len() as u64)
                })?;
                Ok(())
            });
            in_flight.fetch_sub(1, SeqCst);
            if let Err(e) = combined {
                fail(e);
            }
        }
        // combine output feeds the next relaxation
        if !pending.is_empty() {
            let ev = dev.record_event(COMM_STREAM);
            if let Err(e) = dev.stream_wait(COMPUTE_STREAM, ev) {
                fail(e);
            }
        }

        if pending.is_empty() {
            if !idle {
                busy.fetch_sub(1, SeqCst);
                idle = true;
            }
            // termination: nobody busy, nothing in flight, inbox empty
            if busy.load(SeqCst) == 0 && in_flight.load(SeqCst) == 0 && mailbox.is_empty(gpu) {
                if let Some(s) = supp.as_ref() {
                    stats.suppressed_vertices = s.suppressed_vertices;
                    stats.suppressed_bytes = s.suppressed_bytes;
                }
                return Ok((rounds, stats));
            }
            std::thread::yield_now();
            continue;
        }

        // --- relax the pending frontier ---
        let input = std::mem::take(&mut pending);
        let supp_ref = &mut supp;
        let stats_ref = &mut stats;
        let outcome = guard(gpu, || -> Result<Vec<V>> {
            let output =
                problem.iteration(dev, sub, &mut per.state, &mut per.bufs, &input, rounds)?;
            let state = &per.state;
            let (local, pkgs) = split_and_package_with(
                dev,
                sub,
                &output,
                &mut per.bufs.split,
                |v| problem.package(state, v),
                pkg_policy,
                supp_ref.as_mut(),
                |m| problem.suppression_key(m),
                |a, b| problem.merge_msgs(a, b),
            )?;
            if pkgs.iter().any(Option::is_some) {
                let ready = dev.record_event(COMPUTE_STREAM);
                dev.stream_wait(COMM_STREAM, ready)?;
            }
            for (peer, pkg) in pkgs.into_iter().enumerate() {
                let Some(pkg) = pkg else { continue };
                stats_ref.count_package(pkg.encoding());
                // The shared BSP `post_package` body: transient-retry loop
                // where every attempt occupies the link and counts toward H.
                post_package(dev, interconnect, mailbox, peer, Arc::new(pkg), policy, rec)?;
                // Count the message in flight only once it is actually
                // posted; a faulted send must not wedge termination.
                in_flight.fetch_add(1, SeqCst);
            }
            Ok(local)
        });
        match outcome {
            Ok(local) => pending = local,
            Err(e) => fail(e),
        }
        rounds += 1;
        if rounds > 10_000_000 {
            fail(VgpuError::Aborted); // runaway safety net
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnactConfig;
    use mgpu_partition::{Duplication, RandomPartitioner};
    use vgpu::HardwareProfile;

    // The async enactor is validated end-to-end in the primitives/bench
    // crates (it needs a label-correcting primitive); here we only check
    // construction-time invariants.
    #[test]
    #[should_panic(expected = "assertion")]
    fn mismatched_device_count_is_rejected() {
        use mgpu_graph::{Coo, Csr, GraphBuilder};
        let g: Csr<u32, u64> = GraphBuilder::undirected(&Coo::from_edges(4, vec![(0, 1)], None));
        let dist = DistGraph::partition(&g, &RandomPartitioner::default(), 2, Duplication::All);
        let system = SimSystem::homogeneous(3, HardwareProfile::k40());
        let _ = AsyncRunner::new(system, &dist, DummyNever);
        let _ = EnactConfig::default();
    }

    /// Minimal problem used only to exercise the constructor assertion.
    struct DummyNever;
    impl MgpuProblem<u32, u64> for DummyNever {
        type State = ();
        type Msg = ();
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn duplication(&self) -> Duplication {
            Duplication::All
        }
        fn comm(&self) -> crate::CommStrategy {
            crate::CommStrategy::Selective
        }
        fn init(&self, _: &mut Device, _: &SubGraph<u32, u64>) -> Result<()> {
            Ok(())
        }
        fn reset(
            &self,
            _: &mut Device,
            _: &SubGraph<u32, u64>,
            _: &mut (),
            _: Option<u32>,
        ) -> Result<Vec<u32>> {
            Ok(vec![])
        }
        fn iteration(
            &self,
            _: &mut Device,
            _: &SubGraph<u32, u64>,
            _: &mut (),
            _: &mut FrontierBufs<u32>,
            _: &[u32],
            _: usize,
        ) -> Result<Vec<u32>> {
            Ok(vec![])
        }
        fn package(&self, _: &(), _: u32) {}
        fn combine(&self, _: &mut (), _: u32, _: &()) -> bool {
            false
        }
    }
}
