//! Memory allocation schemes for frontier buffers (§VI-B, Fig. 3).
//!
//! "Iterative graph primitives usually produce frontiers with a size that is
//! unknown until the finish of an advance or filter kernel." The paper
//! compares four ways to size the buffers that hold them:
//!
//! * **Just-enough** — estimate before each operation, reallocate when the
//!   estimate proves insufficient (rare in practice). Smallest footprint.
//! * **Fixed** — preallocate `sizing_factor × |V_i|` from previous runs of
//!   similar graphs; just-enough stays armed as a backstop "to prevent
//!   illegal memory access".
//! * **Max** — worst-case `|E_i|`-sized buffers; never reallocates but
//!   "artificially limits the size of the subgraph we can place onto one
//!   GPU".
//! * **Prealloc + fusion** — fixed preallocation, and the fused
//!   advance+filter kernel (§VI-C) eliminates the intermediate frontier
//!   buffer entirely.

use mgpu_graph::Id;
use vgpu::{Device, DeviceArray, Result};

use crate::comm::SplitScratch;

/// Frontier-buffer allocation scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocScheme {
    /// Estimate then reallocate on demand (§VI-B's contribution).
    JustEnough,
    /// Preallocate `sizing_factor × |V_i|` elements per buffer.
    Fixed {
        /// Multiplier on `|V_i|` derived "from previous runs of similar
        /// graphs".
        sizing_factor: f64,
    },
    /// Preallocate `|E_i|` elements per buffer (the worst case an advance
    /// can produce).
    Max,
    /// [`AllocScheme::Fixed`] sizing plus kernel fusion: the intermediate
    /// advance output buffer is never allocated.
    PreallocFusion {
        /// See [`AllocScheme::Fixed::sizing_factor`].
        sizing_factor: f64,
    },
}

impl AllocScheme {
    /// Does this scheme use the fused advance+filter path?
    pub fn fused(&self) -> bool {
        matches!(self, AllocScheme::PreallocFusion { .. })
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AllocScheme::JustEnough => "just-enough",
            AllocScheme::Fixed { .. } => "fixed",
            AllocScheme::Max => "max",
            AllocScheme::PreallocFusion { .. } => "prealloc+fusion",
        }
    }

    fn prealloc_elems(&self, n_vertices: usize, n_edges: usize) -> usize {
        match *self {
            AllocScheme::JustEnough => 0,
            AllocScheme::Fixed { sizing_factor }
            | AllocScheme::PreallocFusion { sizing_factor } => {
                (n_vertices as f64 * sizing_factor).ceil() as usize
            }
            AllocScheme::Max => n_edges,
        }
    }
}

/// The scheme-managed frontier buffers of one GPU: input/output vertex
/// frontiers plus (for unfused pipelines) the intermediate advance output.
#[derive(Debug)]
pub struct FrontierBufs<V: Id> {
    scheme: AllocScheme,
    /// Current input frontier contents.
    pub input: DeviceArray<V>,
    /// Output frontier under construction.
    pub output: DeviceArray<V>,
    /// Advance's pre-filter output; `None` under prealloc+fusion.
    pub intermediate: Option<DeviceArray<V>>,
    /// Reusable scratch for the selective split's count pass — lives here so
    /// every per-iteration split reuses one histogram allocation.
    pub split: SplitScratch,
}

impl<V: Id> FrontierBufs<V> {
    /// Allocate buffers for a subgraph with `n_vertices` local vertices and
    /// `n_edges` local edges under `scheme`. Fails with OutOfMemory if the
    /// preallocation does not fit — the very failure mode just-enough
    /// allocation exists to avoid.
    pub fn new(
        dev: &mut Device,
        scheme: AllocScheme,
        n_vertices: usize,
        n_edges: usize,
    ) -> Result<Self> {
        let pre = scheme.prealloc_elems(n_vertices, n_edges);
        // Under Max, *every* frontier buffer is worst-case sized — "allocate
        // memory that is large enough to handle any case, e.g. a size |E|
        // array for advance" — which is exactly what makes the scheme
        // memory-hungry in Fig. 3. The fixed schemes size vertex frontiers
        // by the sizing factor (capped estimates from previous runs).
        let frontier_pre = match scheme {
            AllocScheme::JustEnough => 0,
            AllocScheme::Max => n_edges,
            AllocScheme::Fixed { sizing_factor }
            | AllocScheme::PreallocFusion { sizing_factor } => {
                (n_vertices as f64 * sizing_factor).ceil() as usize
            }
        };
        let input = dev.alloc_with_capacity::<V>(frontier_pre.max(1))?;
        let output = dev.alloc_with_capacity::<V>(frontier_pre.max(1))?;
        let intermediate =
            if scheme.fused() { None } else { Some(dev.alloc_with_capacity::<V>(pre.max(1))?) };
        Ok(FrontierBufs { scheme, input, output, intermediate, split: SplitScratch::default() })
    }

    /// The scheme in force.
    pub fn scheme(&self) -> AllocScheme {
        self.scheme
    }

    /// Make sure the intermediate buffer can hold `need` elements before an
    /// unfused advance. Under just-enough this grows the buffer exactly to
    /// `need` (charging the reallocation copy); under the preallocating
    /// schemes it is the "backstop" reallocation that §VI-B keeps armed.
    pub fn prepare_intermediate(&mut self, dev: &mut Device, need: usize) -> Result<()> {
        match &mut self.intermediate {
            Some(buf) => dev.ensure_capacity(buf, need),
            None => Ok(()), // fused pipeline: nothing to size
        }
    }

    /// Store the post-filter output frontier, growing the output buffer per
    /// the scheme, and swap it to become the next input.
    pub fn commit_output(&mut self, dev: &mut Device, frontier: &[V]) -> Result<()> {
        dev.ensure_capacity(&mut self.output, frontier.len())?;
        self.output.clear();
        self.output.extend_from_slice(frontier);
        std::mem::swap(&mut self.input, &mut self.output);
        Ok(())
    }

    /// Record that an unfused advance produced `len` intermediate elements.
    pub fn record_intermediate(&mut self, len: usize) {
        if let Some(buf) = &mut self.intermediate {
            debug_assert!(len <= buf.capacity(), "prepare_intermediate was not called");
            buf.clear();
            buf.resize_within_capacity(len.min(buf.capacity()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::HardwareProfile;

    fn dev() -> Device {
        Device::new(0, HardwareProfile::k40())
    }

    #[test]
    fn max_scheme_preallocates_edge_sized_buffers() {
        let mut d = dev();
        let bufs = FrontierBufs::<u32>::new(&mut d, AllocScheme::Max, 100, 5000).unwrap();
        assert_eq!(bufs.intermediate.as_ref().unwrap().capacity(), 5000);
        // "a size |E| array for advance" — worst-case sizing applies to the
        // frontier buffers too, which is what makes Max memory-hungry
        assert_eq!(bufs.input.capacity(), 5000);
    }

    #[test]
    fn fixed_scheme_scales_with_vertices() {
        let mut d = dev();
        let bufs =
            FrontierBufs::<u32>::new(&mut d, AllocScheme::Fixed { sizing_factor: 2.5 }, 100, 5000)
                .unwrap();
        assert_eq!(bufs.intermediate.as_ref().unwrap().capacity(), 250);
    }

    #[test]
    fn fusion_has_no_intermediate() {
        let mut d = dev();
        let bufs = FrontierBufs::<u32>::new(
            &mut d,
            AllocScheme::PreallocFusion { sizing_factor: 2.0 },
            100,
            5000,
        )
        .unwrap();
        assert!(bufs.intermediate.is_none());
        assert!(AllocScheme::PreallocFusion { sizing_factor: 2.0 }.fused());
    }

    #[test]
    fn just_enough_grows_on_demand_only() {
        let mut d = dev();
        let mut bufs =
            FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 100, 5000).unwrap();
        let base = d.pool().live();
        bufs.prepare_intermediate(&mut d, 640).unwrap();
        assert_eq!(d.pool().live() - base, (640 - 1) * 4);
        assert!(d.pool().reallocs() >= 1);
    }

    #[test]
    fn peak_ordering_just_enough_below_fixed_below_max() {
        let peak = |scheme| {
            let mut d = dev();
            let mut bufs = FrontierBufs::<u32>::new(&mut d, scheme, 1000, 50_000).unwrap();
            bufs.prepare_intermediate(&mut d, 300).unwrap();
            bufs.commit_output(&mut d, &[1, 2, 3]).unwrap();
            d.pool().peak()
        };
        let je = peak(AllocScheme::JustEnough);
        let fx = peak(AllocScheme::Fixed { sizing_factor: 3.0 });
        let mx = peak(AllocScheme::Max);
        let pf = peak(AllocScheme::PreallocFusion { sizing_factor: 3.0 });
        assert!(je < fx, "just-enough {je} < fixed {fx}");
        assert!(fx < mx, "fixed {fx} < max {mx}");
        assert!(pf < fx, "fusion {pf} saves the intermediate vs fixed {fx}");
    }

    #[test]
    fn commit_swaps_output_into_input() {
        let mut d = dev();
        let mut bufs = FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 10, 100).unwrap();
        bufs.commit_output(&mut d, &[7, 8]).unwrap();
        assert_eq!(bufs.input.as_slice(), &[7, 8]);
        bufs.commit_output(&mut d, &[9]).unwrap();
        assert_eq!(bufs.input.as_slice(), &[9]);
    }

    #[test]
    fn max_scheme_can_oom_where_just_enough_fits() {
        let small = HardwareProfile::k40().with_capacity(10_000);
        let mut d = Device::new(0, small);
        // 3000 edges × 4 B = 12 KB intermediate alone exceeds the 10 KB pool
        assert!(FrontierBufs::<u32>::new(&mut d, AllocScheme::Max, 100, 3000).is_err());
        let mut d = Device::new(0, HardwareProfile::k40().with_capacity(10_000));
        assert!(FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 100, 3000).is_ok());
    }
}
