//! Memory allocation schemes for frontier buffers (§VI-B, Fig. 3).
//!
//! "Iterative graph primitives usually produce frontiers with a size that is
//! unknown until the finish of an advance or filter kernel." The paper
//! compares four ways to size the buffers that hold them:
//!
//! * **Just-enough** — estimate before each operation, reallocate when the
//!   estimate proves insufficient (rare in practice). Smallest footprint.
//! * **Fixed** — preallocate `sizing_factor × |V_i|` from previous runs of
//!   similar graphs; just-enough stays armed as a backstop "to prevent
//!   illegal memory access".
//! * **Max** — worst-case `|E_i|`-sized buffers; never reallocates but
//!   "artificially limits the size of the subgraph we can place onto one
//!   GPU".
//! * **Prealloc + fusion** — fixed preallocation, and the fused
//!   advance+filter kernel (§VI-C) eliminates the intermediate frontier
//!   buffer entirely.

use mgpu_graph::Id;
use vgpu::interconnect::Link;
use vgpu::{Device, DeviceArray, Result, VgpuError, COMPUTE_STREAM};

use crate::comm::SplitScratch;
use crate::governor::{GovernorLog, PressurePolicy};

/// Frontier-buffer allocation scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocScheme {
    /// Estimate then reallocate on demand (§VI-B's contribution).
    JustEnough,
    /// Preallocate `sizing_factor × |V_i|` elements per buffer.
    Fixed {
        /// Multiplier on `|V_i|` derived "from previous runs of similar
        /// graphs".
        sizing_factor: f64,
    },
    /// Preallocate `|E_i|` elements per buffer (the worst case an advance
    /// can produce).
    Max,
    /// [`AllocScheme::Fixed`] sizing plus kernel fusion: the intermediate
    /// advance output buffer is never allocated.
    PreallocFusion {
        /// See [`AllocScheme::Fixed::sizing_factor`].
        sizing_factor: f64,
    },
}

impl AllocScheme {
    /// Does this scheme use the fused advance+filter path?
    pub fn fused(&self) -> bool {
        matches!(self, AllocScheme::PreallocFusion { .. })
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            AllocScheme::JustEnough => "just-enough",
            AllocScheme::Fixed { .. } => "fixed",
            AllocScheme::Max => "max",
            AllocScheme::PreallocFusion { .. } => "prealloc+fusion",
        }
    }

    fn prealloc_elems(&self, n_vertices: usize, n_edges: usize) -> usize {
        match *self {
            AllocScheme::JustEnough => 0,
            AllocScheme::Fixed { sizing_factor }
            | AllocScheme::PreallocFusion { sizing_factor } => {
                (n_vertices as f64 * sizing_factor).ceil() as usize
            }
            AllocScheme::Max => n_edges,
        }
    }
}

/// The scheme-managed frontier buffers of one GPU: input/output vertex
/// frontiers plus (for unfused pipelines) the intermediate advance output.
#[derive(Debug)]
pub struct FrontierBufs<V: Id> {
    scheme: AllocScheme,
    /// Current input frontier contents.
    pub input: DeviceArray<V>,
    /// Output frontier under construction.
    pub output: DeviceArray<V>,
    /// Advance's pre-filter output; `None` under prealloc+fusion.
    pub intermediate: Option<DeviceArray<V>>,
    /// Reusable scratch for the selective split's count pass — lives here so
    /// every per-iteration split reuses one histogram allocation.
    pub split: SplitScratch,
    /// Memory-pressure policy (default: fully off — every OOM propagates).
    pressure: PressurePolicy,
    /// Host-staged link used to charge spills; `None` until the enactor
    /// attaches the interconnect's host path.
    host_link: Option<Link>,
    /// Mid-run governor decisions (spills, reclaim retries, chunked passes).
    pub(crate) gov: GovernorLog,
    /// Recycling pool for per-chunk kernel scratch (host-side only, never
    /// accounted against the device pool — see `vgpu::arena`). Trimmed at
    /// every output commit, i.e. at each superstep barrier.
    pub arena: vgpu::Arena<V>,
}

impl<V: Id> FrontierBufs<V> {
    /// Allocate buffers for a subgraph with `n_vertices` local vertices and
    /// `n_edges` local edges under `scheme`. Fails with OutOfMemory if the
    /// preallocation does not fit — the very failure mode just-enough
    /// allocation exists to avoid.
    pub fn new(
        dev: &mut Device,
        scheme: AllocScheme,
        n_vertices: usize,
        n_edges: usize,
    ) -> Result<Self> {
        let pre = scheme.prealloc_elems(n_vertices, n_edges);
        // Under Max, *every* frontier buffer is worst-case sized — "allocate
        // memory that is large enough to handle any case, e.g. a size |E|
        // array for advance" — which is exactly what makes the scheme
        // memory-hungry in Fig. 3. The fixed schemes size vertex frontiers
        // by the sizing factor (capped estimates from previous runs).
        let frontier_pre = match scheme {
            AllocScheme::JustEnough => 0,
            AllocScheme::Max => n_edges,
            AllocScheme::Fixed { sizing_factor }
            | AllocScheme::PreallocFusion { sizing_factor } => {
                (n_vertices as f64 * sizing_factor).ceil() as usize
            }
        };
        let input = dev.alloc_with_capacity::<V>(frontier_pre.max(1))?;
        let output = dev.alloc_with_capacity::<V>(frontier_pre.max(1))?;
        let intermediate =
            if scheme.fused() { None } else { Some(dev.alloc_with_capacity::<V>(pre.max(1))?) };
        Ok(FrontierBufs {
            scheme,
            input,
            output,
            intermediate,
            split: SplitScratch::default(),
            pressure: PressurePolicy::default(),
            host_link: None,
            gov: GovernorLog::default(),
            arena: vgpu::Arena::new(),
        })
    }

    /// Attach a memory-pressure policy and the host-staged link spills are
    /// charged over. With the default (off) policy this changes nothing.
    pub fn with_pressure(mut self, policy: PressurePolicy, host_link: Link) -> Self {
        self.pressure = policy;
        self.host_link = Some(host_link);
        self
    }

    /// The scheme in force.
    pub fn scheme(&self) -> AllocScheme {
        self.scheme
    }

    /// Mid-run governor decisions recorded on these buffers.
    pub fn governor(&self) -> &GovernorLog {
        &self.gov
    }

    /// Clear the per-enact governor decisions (the enactor calls this so
    /// each enact reports its own degradation events).
    pub fn reset_governor(&mut self) {
        self.gov = GovernorLog::default();
    }

    /// Make sure the intermediate buffer can hold `need` elements before an
    /// unfused advance. Under just-enough this grows the buffer exactly to
    /// `need` (charging the reallocation copy); under the preallocating
    /// schemes it is the "backstop" reallocation that §VI-B keeps armed.
    pub fn prepare_intermediate(&mut self, dev: &mut Device, need: usize) -> Result<()> {
        self.prepare_intermediate_budget(dev, need).map(|_| ())
    }

    /// [`Self::prepare_intermediate`] under the memory-pressure governor:
    /// returns the number of intermediate slots actually *granted*. Normally
    /// `granted == need`. When the grow OOMs and the pressure policy is on,
    /// cold frontier capacity is spilled to host and the grow retried; if
    /// `need` still does not fit, the grant drops to what the pool's free
    /// bytes allow and the caller runs the advance as a chunked multi-pass.
    /// Every decision here is a function of pool accounting only, so the
    /// degraded schedule is identical at any `kernel_threads`.
    pub fn prepare_intermediate_budget(&mut self, dev: &mut Device, need: usize) -> Result<usize> {
        if self.intermediate.is_none() {
            return Ok(need); // fused pipeline: nothing to size
        }
        let first = dev.ensure_capacity(self.intermediate.as_mut().expect("checked above"), need);
        match first {
            Ok(()) => Ok(need),
            Err(e) if !(self.pressure.enabled && matches!(e, VgpuError::OutOfMemory { .. })) => {
                Err(e)
            }
            Err(_) => {
                // Reclaim tier: the output buffer's contents are dead between
                // commits and the input only needs its in-use length — spill
                // the cold capacity to host and retry the grow.
                self.gov.reclaim_retries += 1;
                let mut freed = 0u64;
                self.output.clear();
                freed += self.output.shrink_to(1);
                freed += self.input.shrink_to(0);
                self.charge_spill(dev, freed)?;
                if dev
                    .ensure_capacity(self.intermediate.as_mut().expect("checked above"), need)
                    .is_ok()
                {
                    return Ok(need);
                }
                // Chunk tier: grant what fits, holding half the free bytes in
                // reserve so the output frontier can still be committed.
                let buf = self.intermediate.as_mut().expect("checked above");
                let free_elems = dev.pool().free_bytes() as usize / std::mem::size_of::<V>();
                let granted = (buf.capacity() + free_elems / 2).max(self.pressure.min_chunk);
                dev.ensure_capacity(buf, granted)?;
                Ok(granted)
            }
        }
    }

    /// Store the post-filter output frontier, growing the output buffer per
    /// the scheme, and swap it to become the next input. Under the pressure
    /// policy an OOM on the grow spills the intermediate (dead between
    /// advances) and the input's slack capacity before retrying; a second
    /// failure is hard-infeasible and propagates typed.
    pub fn commit_output(&mut self, dev: &mut Device, frontier: &[V]) -> Result<()> {
        if let Err(e) = dev.ensure_capacity(&mut self.output, frontier.len()) {
            if !(self.pressure.enabled && matches!(e, VgpuError::OutOfMemory { .. })) {
                return Err(e);
            }
            self.gov.reclaim_retries += 1;
            let mut freed = 0u64;
            if let Some(buf) = &mut self.intermediate {
                buf.clear();
                freed += buf.shrink_to(1);
            }
            freed += self.input.shrink_to(0);
            self.charge_spill(dev, freed)?;
            dev.ensure_capacity(&mut self.output, frontier.len())?;
        }
        self.output.clear();
        self.output.extend_from_slice(frontier);
        std::mem::swap(&mut self.input, &mut self.output);
        // superstep barrier: bound the host footprint the arena carries over
        self.arena.trim(vgpu::arena::ARENA_RETAIN);
        Ok(())
    }

    /// Record that an unfused advance produced `len` intermediate elements.
    /// An under-prepared buffer *grows* — a counted backstop reallocation
    /// that can fail with a typed `OutOfMemory` — instead of silently
    /// truncating the frontier, which was a wrong-answer bug in release
    /// builds. The resize is length-only: the residency model never reads
    /// the intermediate's contents, so steady-state supersteps must not
    /// re-zero `len` elements every iteration (they used to `clear()` first,
    /// which made `resize` rewrite the whole buffer each superstep).
    pub fn record_intermediate(&mut self, dev: &mut Device, len: usize) -> Result<()> {
        if let Some(buf) = &mut self.intermediate {
            if len > buf.capacity() {
                dev.ensure_capacity(buf, len)?;
            }
            buf.resize_within_capacity(len);
        }
        Ok(())
    }

    /// Charge a host spill of `freed` bytes over the staged link (D2H
    /// occupancy plus latency on the compute stream, occupancy counted as
    /// communication time) and record it in the governor log.
    fn charge_spill(&mut self, dev: &mut Device, freed: u64) -> Result<()> {
        if freed == 0 {
            return Ok(());
        }
        // Injected spill-transfer faults fire here, at the k-th spill on
        // this device: the failed attempt still occupies the staged link
        // (charged below, exactly like a failed peer send), then the spill
        // fails typed. There is no in-place retry — recovery is owned by
        // the resilience layer's attempt restart.
        let faulted = dev.fault_injector().is_some_and(|inj| inj.on_spill(dev.id()));
        if let Some(link) = self.host_link {
            let occupancy = freed as f64 / (link.bandwidth_gb_s * 1e3);
            // one enqueue of occupancy+latency (splitting it would shift the
            // clock); the span's `h_us` carries the occupancy portion that
            // lands in the H counter
            let meta = vgpu::SpanMeta::new(vgpu::TraceKind::Spill, "host-spill")
                .bytes(freed)
                .h_us(occupancy);
            dev.charge_as(COMPUTE_STREAM, occupancy + link.latency_us, 0.0, meta)?;
            dev.counters.h_time_us += occupancy;
        }
        if faulted {
            return Err(VgpuError::TransferFailed { from: dev.id(), to: dev.id() });
        }
        self.gov.spill_events += 1;
        self.gov.spilled_bytes += freed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::HardwareProfile;

    fn dev() -> Device {
        Device::new(0, HardwareProfile::k40())
    }

    #[test]
    fn max_scheme_preallocates_edge_sized_buffers() {
        let mut d = dev();
        let bufs = FrontierBufs::<u32>::new(&mut d, AllocScheme::Max, 100, 5000).unwrap();
        assert_eq!(bufs.intermediate.as_ref().unwrap().capacity(), 5000);
        // "a size |E| array for advance" — worst-case sizing applies to the
        // frontier buffers too, which is what makes Max memory-hungry
        assert_eq!(bufs.input.capacity(), 5000);
    }

    #[test]
    fn fixed_scheme_scales_with_vertices() {
        let mut d = dev();
        let bufs =
            FrontierBufs::<u32>::new(&mut d, AllocScheme::Fixed { sizing_factor: 2.5 }, 100, 5000)
                .unwrap();
        assert_eq!(bufs.intermediate.as_ref().unwrap().capacity(), 250);
    }

    #[test]
    fn fusion_has_no_intermediate() {
        let mut d = dev();
        let bufs = FrontierBufs::<u32>::new(
            &mut d,
            AllocScheme::PreallocFusion { sizing_factor: 2.0 },
            100,
            5000,
        )
        .unwrap();
        assert!(bufs.intermediate.is_none());
        assert!(AllocScheme::PreallocFusion { sizing_factor: 2.0 }.fused());
    }

    #[test]
    fn just_enough_grows_on_demand_only() {
        let mut d = dev();
        let mut bufs =
            FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 100, 5000).unwrap();
        let base = d.pool().live();
        bufs.prepare_intermediate(&mut d, 640).unwrap();
        assert_eq!(d.pool().live() - base, (640 - 1) * 4);
        assert!(d.pool().reallocs() >= 1);
    }

    #[test]
    fn peak_ordering_just_enough_below_fixed_below_max() {
        let peak = |scheme| {
            let mut d = dev();
            let mut bufs = FrontierBufs::<u32>::new(&mut d, scheme, 1000, 50_000).unwrap();
            bufs.prepare_intermediate(&mut d, 300).unwrap();
            bufs.commit_output(&mut d, &[1, 2, 3]).unwrap();
            d.pool().peak()
        };
        let je = peak(AllocScheme::JustEnough);
        let fx = peak(AllocScheme::Fixed { sizing_factor: 3.0 });
        let mx = peak(AllocScheme::Max);
        let pf = peak(AllocScheme::PreallocFusion { sizing_factor: 3.0 });
        assert!(je < fx, "just-enough {je} < fixed {fx}");
        assert!(fx < mx, "fixed {fx} < max {mx}");
        assert!(pf < fx, "fusion {pf} saves the intermediate vs fixed {fx}");
    }

    #[test]
    fn commit_swaps_output_into_input() {
        let mut d = dev();
        let mut bufs = FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 10, 100).unwrap();
        bufs.commit_output(&mut d, &[7, 8]).unwrap();
        assert_eq!(bufs.input.as_slice(), &[7, 8]);
        bufs.commit_output(&mut d, &[9]).unwrap();
        assert_eq!(bufs.input.as_slice(), &[9]);
    }

    #[test]
    fn record_intermediate_grows_instead_of_truncating() {
        let mut d = dev();
        let mut bufs =
            FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 100, 5000).unwrap();
        // prepare_intermediate was never called: recording must grow the
        // buffer (a counted backstop realloc), never truncate the frontier
        bufs.record_intermediate(&mut d, 640).unwrap();
        assert_eq!(bufs.intermediate.as_ref().unwrap().len(), 640);
        assert!(d.pool().reallocs() >= 1);
    }

    #[test]
    fn record_intermediate_reuses_capacity_across_supersteps() {
        let mut d = dev();
        let mut bufs =
            FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 100, 5000).unwrap();
        bufs.record_intermediate(&mut d, 640).unwrap();
        let (allocs, reallocs) = (d.pool().allocs(), d.pool().reallocs());
        // poison the contents: a steady-state re-record must not rewrite them
        bufs.intermediate.as_mut().unwrap().as_mut_slice().fill(0xDEAD_BEEF);
        for _ in 0..100 {
            bufs.record_intermediate(&mut d, 640).unwrap();
        }
        assert_eq!(d.pool().allocs(), allocs, "steady state allocates nothing");
        assert_eq!(d.pool().reallocs(), reallocs, "steady state never re-grows");
        assert!(
            bufs.intermediate.as_ref().unwrap().as_slice().iter().all(|&x| x == 0xDEAD_BEEF),
            "same-length re-records are length-only (no clear+refill churn)"
        );
        // shrinking then growing back within capacity also stays quiet
        bufs.record_intermediate(&mut d, 10).unwrap();
        bufs.record_intermediate(&mut d, 640).unwrap();
        assert_eq!(d.pool().reallocs(), reallocs);
    }

    #[test]
    fn record_intermediate_oom_is_typed_not_truncated() {
        let mut d = Device::new(0, HardwareProfile::k40().with_capacity(2_000));
        let mut bufs = FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 10, 100).unwrap();
        let err = bufs.record_intermediate(&mut d, 10_000).unwrap_err();
        assert!(matches!(err, VgpuError::OutOfMemory { .. }));
        // the buffer stays usable at its old capacity
        bufs.record_intermediate(&mut d, 1).unwrap();
    }

    #[test]
    fn pressure_spills_cold_capacity_and_grants_a_chunk_budget() {
        let mut d = Device::new(0, HardwareProfile::k40().with_capacity(4_000));
        let mut bufs = FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 10, 100)
            .unwrap()
            .with_pressure(
                crate::governor::PressurePolicy::governed(),
                Link { bandwidth_gb_s: 16.0, latency_us: 25.0 },
            );
        // fatten the output buffer, then swap a tiny frontier in so the fat
        // capacity ends up cold on the output side
        let fat: Vec<u32> = (0..500).collect();
        bufs.commit_output(&mut d, &fat).unwrap();
        bufs.commit_output(&mut d, &[1, 2]).unwrap();
        // 2000 intermediate slots (8000 B) cannot fit a 4000 B pool: the
        // governor spills the cold 499 slots and grants a partial budget
        let t0 = d.now();
        let granted = bufs.prepare_intermediate_budget(&mut d, 2000).unwrap();
        assert!(granted < 2000, "grant degrades to a chunk budget, got {granted}");
        assert!(granted >= 1);
        let gov = bufs.governor();
        assert_eq!(gov.reclaim_retries, 1);
        assert_eq!(gov.spill_events, 1);
        assert_eq!(gov.spilled_bytes, 499 * 4);
        assert!(d.now() > t0, "the spill transfer was charged to the clock");
        // without the pressure policy the same request is a plain OOM
        let mut d2 = Device::new(0, HardwareProfile::k40().with_capacity(4_000));
        let mut plain =
            FrontierBufs::<u32>::new(&mut d2, AllocScheme::JustEnough, 10, 100).unwrap();
        plain.commit_output(&mut d2, &fat).unwrap();
        plain.commit_output(&mut d2, &[1, 2]).unwrap();
        assert!(plain.prepare_intermediate(&mut d2, 2000).is_err());
    }

    #[test]
    fn commit_output_spills_the_intermediate_under_pressure() {
        let mut d = Device::new(0, HardwareProfile::k40().with_capacity(4_000));
        let mut bufs = FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 10, 100)
            .unwrap()
            .with_pressure(
                crate::governor::PressurePolicy::governed(),
                Link { bandwidth_gb_s: 16.0, latency_us: 25.0 },
            );
        bufs.prepare_intermediate(&mut d, 800).unwrap(); // 3200 B resident
        let frontier: Vec<u32> = (0..400).collect(); // needs 1600 B more
        bufs.commit_output(&mut d, &frontier).unwrap();
        assert_eq!(bufs.input.as_slice(), &frontier[..]);
        assert!(bufs.governor().spilled_bytes > 0);
        assert_eq!(bufs.governor().reclaim_retries, 1);
    }

    #[test]
    fn max_scheme_can_oom_where_just_enough_fits() {
        let small = HardwareProfile::k40().with_capacity(10_000);
        let mut d = Device::new(0, small);
        // 3000 edges × 4 B = 12 KB intermediate alone exceeds the 10 KB pool
        assert!(FrontierBufs::<u32>::new(&mut d, AllocScheme::Max, 100, 3000).is_err());
        let mut d = Device::new(0, HardwareProfile::k40().with_capacity(10_000));
        assert!(FrontierBufs::<u32>::new(&mut d, AllocScheme::JustEnough, 100, 3000).is_ok());
    }
}
