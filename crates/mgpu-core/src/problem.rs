//! The programmer-facing primitive interface (§III-B).
//!
//! A multi-GPU primitive in this framework is a type implementing
//! [`MgpuProblem`]. Exactly the four concerns the paper asks the programmer
//! to specify are abstract; everything else has defaults:
//!
//! 1. **Core single-GPU primitive** — [`MgpuProblem::iteration`], written
//!    against the [`crate::ops`] operators exactly as a single-GPU Gunrock
//!    primitive would be; it sees only local vertex ids and never knows
//!    whether a vertex is hosted locally or remotely.
//! 2. **Data to communicate** — the [`MgpuProblem::Msg`] associated type
//!    (per-vertex associated values; the paper supports only per-vertex
//!    communication and argues per-edge communication cannot scale) and the
//!    [`MgpuProblem::package`] hook.
//! 3. **Combining remote and local data** — [`MgpuProblem::combine`], the
//!    `Expand_Incoming` kernel body of Appendix A.
//! 4. **Stop condition** — [`MgpuProblem::locally_done`] (default: empty
//!    frontier) and [`MgpuProblem::globally_done`] (default: never) on top
//!    of the built-in all-frontiers-empty rule.

use mgpu_graph::Id;
use mgpu_partition::{Duplication, SubGraph};
use vgpu::sync::{Contribution, GlobalReduce};
use vgpu::{Device, Result};

use crate::alloc::{AllocScheme, FrontierBufs};
use crate::comm::CommStrategy;

/// A value that can be packaged with a vertex and pushed over the
/// interconnect. `BYTES` is what the cost model charges per vertex on the
/// wire (in addition to the vertex id itself). `PartialEq` lets the
/// broadcast path detect uniform payloads (e.g. every (DO)BFS message in an
/// iteration carries the same label) and switch to the bitmap wire format.
pub trait Wire: Clone + PartialEq + Send + Sync + 'static {
    /// Serialized size in bytes.
    const BYTES: usize;

    /// Append exactly [`Self::BYTES`] little-endian bytes to `out` — the
    /// real wire serialization the materialized package encodings use.
    fn write_to(&self, out: &mut Vec<u8>);

    /// Read exactly [`Self::BYTES`] bytes back from the front of `buf`
    /// (inverse of [`Self::write_to`]; round-trips bit-identically).
    fn read_from(buf: &[u8]) -> Self;
}

impl Wire for () {
    const BYTES: usize = 0;
    fn write_to(&self, _out: &mut Vec<u8>) {}
    fn read_from(_buf: &[u8]) -> Self {}
}
impl Wire for u32 {
    const BYTES: usize = 4;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf[..4].try_into().expect("u32 wire bytes"))
    }
}
impl Wire for u64 {
    const BYTES: usize = 8;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf[..8].try_into().expect("u64 wire bytes"))
    }
}
impl Wire for f32 {
    const BYTES: usize = 4;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        f32::from_le_bytes(buf[..4].try_into().expect("f32 wire bytes"))
    }
}
impl Wire for f64 {
    const BYTES: usize = 8;
    fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().expect("f64 wire bytes"))
    }
}
impl<A: Wire, B: Wire> Wire for (A, B) {
    const BYTES: usize = A::BYTES + B::BYTES;
    fn write_to(&self, out: &mut Vec<u8>) {
        self.0.write_to(out);
        self.1.write_to(out);
    }
    fn read_from(buf: &[u8]) -> Self {
        (A::read_from(buf), B::read_from(&buf[A::BYTES..]))
    }
}

/// A multi-GPU graph primitive. See the module docs for the contract.
///
/// `V`/`O` are the vertex-id and edge-offset widths (Gunrock's `VertexT` /
/// `SizeT` template parameters).
pub trait MgpuProblem<V: Id, O: Id>: Sync {
    /// Per-GPU problem state (the `DataSlice` of Appendix A): label arrays,
    /// rank arrays, visited bitmaps, … allocated on the device.
    type State: Send + 'static;

    /// Per-vertex associated data pushed to remote GPUs (e.g. the BFS label,
    /// or `(label, pred)` when predecessor marking is on).
    type Msg: Wire;

    /// Primitive name for reports.
    fn name(&self) -> &'static str;

    /// Vertex-duplication strategy this primitive wants (§III-C / Table I).
    fn duplication(&self) -> Duplication;

    /// Communication strategy this primitive wants (§III-C / Table I).
    fn comm(&self) -> CommStrategy;

    /// Frontier-buffer allocation scheme (§VI-B). The paper: (DO)BFS, SSSP,
    /// BC use prealloc+fusion; CC and PR use fixed preallocation.
    fn alloc_scheme(&self) -> AllocScheme {
        AllocScheme::JustEnough
    }

    /// Bytes of per-vertex problem state [`MgpuProblem::init`] will allocate
    /// — the admission governor's pre-flight estimate of the `State` arrays.
    /// Only the relative magnitude matters (it ranks downgrade candidates);
    /// the default assumes one 8-byte word per vertex. Primitives with
    /// leaner (BFS/SSSP: one `u32`) or heavier (BC: four arrays) state
    /// override it.
    fn state_bytes_per_vertex(&self) -> usize {
        8
    }

    /// Allocate per-GPU state for `sub` (called once, before any traversal).
    fn init(&self, dev: &mut Device, sub: &SubGraph<V, O>) -> Result<Self::State>;

    /// Reset state for a fresh traversal and return the initial local input
    /// frontier. `src` is `Some(owner-local id)` on the GPU hosting the
    /// source vertex (if the primitive has one), `None` elsewhere.
    fn reset(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        src: Option<V>,
    ) -> Result<Vec<V>>;

    /// One iteration of the unmodified single-GPU primitive
    /// (`FullQueue_Core`): consume the input frontier, produce the output
    /// frontier, all in local vertex ids.
    fn iteration(
        &self,
        dev: &mut Device,
        sub: &SubGraph<V, O>,
        state: &mut Self::State,
        bufs: &mut FrontierBufs<V>,
        input: &[V],
        iter: usize,
    ) -> Result<Vec<V>>;

    /// Package the associated data for one outgoing frontier vertex
    /// (local id).
    fn package(&self, state: &Self::State, v: V) -> Self::Msg;

    /// Combine one received `(vertex, msg)` into local state; return `true`
    /// if the vertex should join the next input frontier. `v` is a local id
    /// (the framework has already resolved wire ids).
    fn combine(&self, state: &mut Self::State, v: V, msg: &Self::Msg) -> bool;

    /// Is [`Self::combine`] a *monotone min-combine* under
    /// [`Self::suppression_key`]? The contract: `combine` accepts a message
    /// only when its key is strictly below the key currently recorded for
    /// that vertex, and a rejected message leaves state unchanged. Label
    /// traversals (BFS/DOBFS: depth; SSSP: distance; CC: component id)
    /// satisfy this; additive combiners (PR rank, BC sigma) do not.
    ///
    /// Declaring `true` enables monotone send suppression (under
    /// `EnactConfig::suppression`), package canonicalization, and the
    /// butterfly collective — all observationally equivalent for a truthful
    /// declaration, all off for the default `false`.
    fn monotone(&self) -> bool {
        false
    }

    /// Total order on messages for the monotone contract: lower key =
    /// stronger message under [`MonotoneOrder::MinKey`]; the message's bit
    /// set under [`MonotoneOrder::OrBits`]. Only meaningful when
    /// [`Self::monotone`] is `true`.
    fn suppression_key(&self, _msg: &Self::Msg) -> u64 {
        0
    }

    /// Which lattice the monotone combiner improves under. The default
    /// `MinKey` is the label-traversal total order; bitfield OR-combiners
    /// (MS-BFS reached sets) declare `OrBits`, switching suppression floors
    /// to bit unions and duplicate canonicalization to [`Self::merge_msgs`].
    /// Only meaningful when [`Self::monotone`] is `true`.
    fn monotone_order(&self) -> crate::comm::MonotoneOrder {
        crate::comm::MonotoneOrder::MinKey
    }

    /// Merge two messages destined for the same vertex into one message
    /// carrying their combined information — the or-bits canonical form of
    /// a duplicate pair. The contract: combining the merged message must be
    /// observationally equivalent to combining both originals. Unused under
    /// `MinKey` (canonicalization keeps the lowest key instead).
    fn merge_msgs(&self, a: &Self::Msg, _b: &Self::Msg) -> Self::Msg {
        a.clone()
    }

    /// Does every broadcast message of one superstep carry the *same*
    /// payload (e.g. the (DO)BFS depth label)? `Some(true)` lets the
    /// packaging layer skip its O(n) uniformity scan; `None` (the default)
    /// keeps the scan. The hint must be truthful — a false `Some(true)`
    /// corrupts the bitmap/uniform-delta encodings.
    fn uniform_broadcast_msgs(&self) -> Option<bool> {
        None
    }

    /// Is this GPU locally converged, given the next input frontier the
    /// framework assembled? Default: the frontier is empty. Primitives with
    /// phases (BC) or fixpoint semantics (PR, CC) override this.
    fn locally_done(&self, _state: &Self::State, next_input: &[V]) -> bool {
        next_input.is_empty()
    }

    /// Communication strategy for the *upcoming* superstep. Defaults to the
    /// static [`MgpuProblem::comm`]; phase-based primitives (BC: selective
    /// forward sweep, broadcast backward sweep) override this. Must be a
    /// pure function of state that evolves identically on every GPU (state
    /// transitions driven by [`MgpuProblem::after_superstep`] on the shared
    /// reduction satisfy this), since sender and receiver must agree on the
    /// wire id convention.
    fn comm_now(&self, _state: &Self::State) -> CommStrategy {
        self.comm()
    }

    /// Numeric contribution to the per-superstep global reduction (e.g.
    /// PageRank's total rank change). The default contributes the next
    /// input frontier's size to `u64_sum`, giving every GPU the global
    /// frontier population for free.
    fn contribution(&self, _state: &Self::State, next_input: &[V]) -> Contribution {
        Contribution { u64_add: next_input.len() as u64, ..Contribution::default() }
    }

    /// Observe the superstep's global reduction and update local state —
    /// the hook by which phase-based primitives make globally consistent
    /// phase transitions (every GPU sees the identical reduction).
    fn after_superstep(&self, _state: &mut Self::State, _reduce: &GlobalReduce, _iter: usize) {}

    /// Extra global stop condition evaluated by every GPU after each
    /// superstep's reduction (e.g. PR's residual threshold). The built-in
    /// rule — stop when every GPU is locally done — always applies too.
    fn globally_done(&self, _reduce: &GlobalReduce, _iter: usize) -> bool {
        false
    }

    /// Hard iteration cap (safety net; PR uses its configured max).
    fn max_iterations(&self) -> usize {
        usize::MAX
    }

    /// Does this primitive support superstep checkpointing — i.e. is its
    /// per-vertex recoverable state fully captured by
    /// [`Self::checkpoint_word`] / [`Self::restore_word`]? Default: no
    /// (checkpoints are silently skipped). Monotone label primitives (BFS,
    /// SSSP, CC) encode one word per vertex; primitives with cross-superstep
    /// scalar state evolving in [`Self::after_superstep`] (e.g. PR) should
    /// leave this off unless that state is also reconstructible.
    fn supports_checkpoint(&self) -> bool {
        false
    }

    /// Encode local vertex `v`'s recoverable state as one 64-bit word (the
    /// framework keys it by *global* id, so a checkpoint restores onto any
    /// partition layout). Only called when [`Self::supports_checkpoint`].
    fn checkpoint_word(&self, _state: &Self::State, _v: V) -> u64 {
        0
    }

    /// Overwrite local vertex `v`'s state from a checkpoint word (inverse
    /// of [`Self::checkpoint_word`], applied after a fresh
    /// [`Self::reset`]). Called for owned vertices *and* proxies.
    fn restore_word(&self, _state: &mut Self::State, _v: V, _word: u64) {}

    /// Encode local vertex `v`'s *result* as one 64-bit word — the uniform
    /// harvest hook [`crate::executor::Executor::harvest`] reads per-vertex
    /// answers through, in whatever bit layout the primitive documents
    /// (labels/distances/components as integers; ranks and centrality
    /// scores as `f32::to_bits`). The default reuses the checkpoint
    /// encoding, which *is* the result for the monotone label primitives
    /// (BFS, SSSP, CC); primitives without checkpoint support override
    /// this directly.
    fn result_word(&self, state: &Self::State, v: V) -> u64 {
        self.checkpoint_word(state, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_compose() {
        assert_eq!(<() as Wire>::BYTES, 0);
        assert_eq!(<u32 as Wire>::BYTES, 4);
        assert_eq!(<(u32, f32) as Wire>::BYTES, 8);
        assert_eq!(<(u32, (u32, f64)) as Wire>::BYTES, 16);
    }

    fn assert_round_trip<W: Wire + std::fmt::Debug>(w: W) {
        let mut out = Vec::new();
        w.write_to(&mut out);
        assert_eq!(out.len(), W::BYTES);
        assert_eq!(W::read_from(&out), w);
    }

    #[test]
    fn wire_serialization_round_trips() {
        assert_round_trip(());
        assert_round_trip(0xdead_beefu32);
        assert_round_trip(u64::MAX - 7);
        assert_round_trip(-0.0f32);
        assert_round_trip(f64::INFINITY);
        assert_round_trip((3u32, 2.5f32));
        assert_round_trip((1u32, (2u32, 9.0f64)));
    }
}
