//! Superstep-granular resilience: recovery policy, checkpointing, and a
//! driver that degrades gracefully after permanent device loss.
//!
//! The BSP superstep boundary is the natural recovery point: every device's
//! state is globally consistent there (all pushes combined, clocks aligned),
//! so it is where this module detects failures, takes checkpoints, and
//! decides — uniformly on every device, from the shared reduction — whether
//! to abort.
//!
//! Three recovery mechanisms, all off by default (a default-configured run
//! is bit-identical to a build without this module):
//!
//! * **In-place retry** — transient launch faults are relaunched at the
//!   fault site (see [`vgpu::Device::set_retry_policy`]; the fault fires
//!   before the kernel body, so the failed launch had no side effects).
//!   Transient transfer faults are re-sent by the enactor, re-charging the
//!   link occupancy per attempt. Both charge
//!   [`RecoveryPolicy::retry_backoff_us`] simulated microseconds per
//!   attempt.
//! * **Checkpointing** — every [`RecoveryPolicy::checkpoint_interval`]
//!   supersteps, each device encodes its *owned* vertices' recoverable state
//!   as one `u64` word each ([`crate::MgpuProblem::checkpoint_word`]) keyed
//!   by **global** vertex id, plus its owned slice of the next input
//!   frontier. A checkpoint completes only when all devices contribute — a
//!   device that failed during the superstep never offers, so partial
//!   checkpoints are discarded deterministically. Global-id keying is what
//!   lets a checkpoint taken on N devices restore onto a re-partitioned
//!   N−1-device layout.
//! * **Degradation** — on permanent device loss, [`ResilientRunner`]
//!   restores the last complete checkpoint, re-homes the lost device's
//!   vertices onto the survivors, and continues on N−1 GPUs. The failed
//!   attempt's simulated makespan is banked as
//!   [`RecoveryLog::lost_time_us`] and folded into the final report.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use mgpu_graph::{Csr, Id};
use mgpu_partition::DistGraph;
use parking_lot::Mutex;
use vgpu::{FaultPlan, HardwareProfile, Interconnect, Result, SimSystem, VgpuError};

use crate::enactor::{EnactConfig, Runner};
use crate::executor::{Executor, ExecutorKind};
use crate::problem::MgpuProblem;
use crate::report::EnactReport;

/// Bounded-recovery policy carried on [`EnactConfig`]. The default is
/// fully off: no retries, no checkpoints, no straggler rendezvous timeout,
/// no degradation — and, by construction, zero simulated-time overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retry budget for transient faults: in-place kernel relaunches,
    /// per-package re-sends, and (for [`ResilientRunner`]) whole-attempt
    /// restarts from the last checkpoint.
    pub max_retries: u32,
    /// Simulated backoff charged per retry attempt, in microseconds.
    pub retry_backoff_us: f64,
    /// Take a checkpoint every this many supersteps (0 = never).
    pub checkpoint_interval: usize,
    /// Rendezvous timeout: if the spread between the fastest and slowest
    /// device at a superstep barrier exceeds this, the straggler is
    /// detected (and evicted if [`Self::evict_stragglers`] is set). Every
    /// device evaluates the identical condition from the shared reduction,
    /// so the decision is uniform. `INFINITY` = never.
    pub straggler_timeout_us: f64,
    /// Evict the slowest device when the rendezvous timeout trips (it exits
    /// with [`VgpuError::Timeout`] and the run fails over to the
    /// survivors); otherwise stragglers are only counted.
    pub evict_stragglers: bool,
    /// On permanent device loss, re-home the lost device's subgraph onto
    /// the survivors and continue on N−1 GPUs instead of failing.
    pub degrade_on_loss: bool,
    /// When a butterfly collective stage hits a transient transfer fault
    /// that exhausts its per-send retries, fall back to a direct broadcast
    /// for that superstep (recorded as [`RecoveryLog::butterfly_fallbacks`]
    /// and charged honestly in the trace) instead of failing the enact.
    pub fallback_to_direct: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            retry_backoff_us: 0.0,
            checkpoint_interval: 0,
            straggler_timeout_us: f64::INFINITY,
            evict_stragglers: false,
            degrade_on_loss: false,
            fallback_to_direct: false,
        }
    }
}

impl RecoveryPolicy {
    /// A sensible everything-on preset: 3 retries with 25 µs backoff, a
    /// checkpoint every 4 supersteps, degradation on loss, and butterfly
    /// fallback to direct broadcast.
    pub fn resilient() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            retry_backoff_us: 25.0,
            checkpoint_interval: 4,
            degrade_on_loss: true,
            fallback_to_direct: true,
            ..RecoveryPolicy::default()
        }
    }

    /// Is `e` a transient fault that a bounded retry may clear (as opposed
    /// to a permanent loss or a programming error)?
    pub fn is_transient(&self, e: &VgpuError) -> bool {
        matches!(
            e,
            VgpuError::KernelFailed { .. }
                | VgpuError::TransferFailed { .. }
                | VgpuError::Timeout { .. }
                | VgpuError::OutOfMemory { .. }
        )
    }
}

/// Every recovery event of an enact (or of a whole [`ResilientRunner`]
/// drive, accumulated across attempts). All counts derive from
/// deterministic fault sites, so two runs of the same plan produce equal
/// logs — [`EnactReport::same_simulation`] includes this.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    /// In-place kernel relaunches (summed over devices).
    pub kernel_retries: u64,
    /// Package re-sends after transient transfer faults.
    pub transfer_retries: u64,
    /// Fault events that fired from the attached plan.
    pub faults_injected: u64,
    /// Complete (all-device) checkpoints taken.
    pub checkpoints_taken: u64,
    /// Superstep barriers whose fast–slow spread exceeded the rendezvous
    /// timeout.
    pub stragglers_detected: u64,
    /// Supersteps where the butterfly collective fell back to a direct
    /// broadcast after an unrecoverable mid-stage transfer fault (counted
    /// once per superstep, not per device).
    pub butterfly_fallbacks: u64,
    /// Total simulated backoff charged across retries, in microseconds.
    pub backoff_us: f64,
    /// Devices permanently lost, by *original* device id, in loss order.
    pub lost_devices: Vec<usize>,
    /// Failovers performed (re-home + restart on survivors).
    pub failovers: u64,
    /// Simulated time spent on attempts that did not complete, in
    /// microseconds.
    pub lost_time_us: f64,
    /// Superstep the final successful attempt resumed from, if it restored
    /// a checkpoint.
    pub resumed_at: Option<usize>,
}

impl RecoveryLog {
    /// Accumulate another attempt's log into this one.
    pub fn absorb(&mut self, other: &RecoveryLog) {
        self.kernel_retries += other.kernel_retries;
        self.transfer_retries += other.transfer_retries;
        self.faults_injected += other.faults_injected;
        self.checkpoints_taken += other.checkpoints_taken;
        self.stragglers_detected += other.stragglers_detected;
        self.butterfly_fallbacks += other.butterfly_fallbacks;
        self.backoff_us += other.backoff_us;
        self.lost_devices.extend(&other.lost_devices);
        self.failovers += other.failovers;
        self.lost_time_us += other.lost_time_us;
        if other.resumed_at.is_some() {
            self.resumed_at = other.resumed_at;
        }
    }

    /// Did anything at all happen?
    pub fn is_quiet(&self) -> bool {
        *self == RecoveryLog::default()
    }
}

/// Shared recovery counters for the device threads of one enact.
#[derive(Debug, Default)]
pub(crate) struct RecoveryCounters {
    pub(crate) transfer_retries: AtomicU64,
    pub(crate) stragglers: AtomicU64,
    pub(crate) butterfly_fallbacks: AtomicU64,
}

impl RecoveryCounters {
    pub(crate) fn note_transfer_retry(&self) {
        self.transfer_retries.fetch_add(1, Relaxed);
    }

    pub(crate) fn note_straggler(&self) {
        self.stragglers.fetch_add(1, Relaxed);
    }

    pub(crate) fn note_butterfly_fallback(&self) {
        self.butterfly_fallbacks.fetch_add(1, Relaxed);
    }
}

/// A complete superstep checkpoint in the *global* vertex space — valid to
/// restore onto any partition layout of the same graph.
#[derive(Debug, Clone)]
pub struct GlobalCheckpoint<V> {
    /// The superstep boundary this captures: resume by running iteration
    /// `iter` next.
    pub iter: usize,
    /// `(global vertex id, state word)` for every vertex, sorted by id.
    pub words: Vec<(V, u64)>,
    /// The input frontier for iteration `iter`, as sorted global ids.
    pub frontier: Vec<V>,
}

struct PartialCheckpoint<V> {
    iter: usize,
    offers: usize,
    words: Vec<(V, u64)>,
    frontier: Vec<V>,
}

/// Collects per-device checkpoint offers and finalizes a
/// [`GlobalCheckpoint`] once all devices have contributed for the same
/// superstep. A failed device never offers, so its superstep's partial is
/// silently superseded by the next due one.
pub struct CheckpointSink<V> {
    interval: usize,
    n: usize,
    partial: Mutex<PartialCheckpoint<V>>,
    complete: Mutex<Option<GlobalCheckpoint<V>>>,
    taken: AtomicU64,
}

impl<V: Id> CheckpointSink<V> {
    /// A sink for `n` devices checkpointing every `interval` supersteps
    /// (0 = disabled).
    pub fn new(n: usize, interval: usize) -> Self {
        CheckpointSink {
            interval,
            n,
            partial: Mutex::new(PartialCheckpoint {
                iter: 0,
                offers: 0,
                words: Vec::new(),
                frontier: Vec::new(),
            }),
            complete: Mutex::new(None),
            taken: AtomicU64::new(0),
        }
    }

    /// Is a checkpoint due at superstep boundary `iter`?
    pub fn due(&self, iter: usize) -> bool {
        self.interval > 0 && iter > 0 && iter.is_multiple_of(self.interval)
    }

    /// One device's contribution for boundary `iter`: its owned vertices'
    /// `(global id, word)` pairs and its owned slice of the next frontier.
    pub fn offer(&self, iter: usize, words: Vec<(V, u64)>, frontier: Vec<V>) {
        let mut p = self.partial.lock();
        if p.iter != iter {
            p.iter = iter;
            p.offers = 0;
            p.words.clear();
            p.frontier.clear();
        }
        p.words.extend(words);
        p.frontier.extend(frontier);
        p.offers += 1;
        if p.offers == self.n {
            let mut words = std::mem::take(&mut p.words);
            let mut frontier = std::mem::take(&mut p.frontier);
            words.sort_unstable_by_key(|&(g, _)| g);
            frontier.sort_unstable();
            frontier.dedup();
            *self.complete.lock() = Some(GlobalCheckpoint { iter, words, frontier });
            self.taken.fetch_add(1, Relaxed);
        }
    }

    /// Complete checkpoints finalized so far.
    pub fn taken(&self) -> u64 {
        self.taken.load(Relaxed)
    }

    /// Take the most recent complete checkpoint, if any.
    pub fn take_complete(&self) -> Option<GlobalCheckpoint<V>> {
        self.complete.lock().take()
    }
}

/// Run `f`, converting a panic in problem code into
/// [`VgpuError::DeviceLost`] so the device thread keeps participating in
/// rendezvous (one poisoned kernel body fails the enact call, not the
/// process).
pub(crate) fn guard<T>(gpu: usize, f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(_) => Err(VgpuError::DeviceLost { device: gpu }),
    }
}

/// A self-healing driver around [`Runner`]: binds a problem to a graph,
/// enacts, and on failure retries from the last checkpoint — rebuilding the
/// partition on the surviving devices when one is permanently lost.
///
/// Device ids in [`RecoveryLog::lost_devices`] and in the fault plan are
/// *original* ids; after a failover the plan is remapped onto the runtime
/// ids of the survivors and the dead device's remaining events are dropped.
pub struct ResilientRunner<'g, V: Id, O: Id, P: MgpuProblem<V, O> + Clone> {
    graph: &'g Csr<V, O>,
    problem: P,
    profiles: Vec<HardwareProfile>,
    /// Global vertex id → original owning device.
    owner: Vec<u32>,
    config: EnactConfig,
    plan: FaultPlan,
    build_csc: bool,
    /// Result words harvested from the final (possibly degraded) attempt of
    /// the last [`Executor::enact`] drive — the inner [`Runner`] is torn
    /// down per attempt, so the trait's `harvest` reads this cache.
    last_values: Vec<u64>,
}

impl<'g, V: Id, O: Id, P: MgpuProblem<V, O> + Clone> ResilientRunner<'g, V, O, P> {
    /// A homogeneous node of `n` devices with round-robin vertex ownership.
    pub fn homogeneous(
        graph: &'g Csr<V, O>,
        problem: P,
        n: usize,
        profile: HardwareProfile,
        config: EnactConfig,
    ) -> Self {
        assert!(n > 0, "need at least one device");
        let owner = (0..graph.n_vertices()).map(|v| (v % n) as u32).collect();
        ResilientRunner {
            graph,
            problem,
            profiles: vec![profile; n],
            owner,
            config,
            plan: FaultPlan::new(),
            build_csc: false,
            last_values: Vec::new(),
        }
    }

    /// Replace the round-robin ownership with an explicit table
    /// (global vertex id → original device id).
    pub fn with_owner(mut self, owner: Vec<u32>) -> Self {
        assert_eq!(owner.len(), self.graph.n_vertices(), "one owner per vertex");
        self.owner = owner;
        self
    }

    /// Attach a deterministic fault plan (device ids are original ids).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Build reverse adjacencies on every attempt's partition (needed by
    /// pull-mode primitives).
    pub fn with_csc(mut self) -> Self {
        self.build_csc = true;
        self
    }

    /// Enact from `src`, recovering per the config's [`RecoveryPolicy`].
    pub fn enact(&self, src: Option<V>) -> Result<EnactReport> {
        self.enact_with(src, |_, _| ()).map(|(report, ())| report)
    }

    /// Enact, then run `extract` on the final (possibly degraded) runner and
    /// partition before they are dropped — the hook for reading results out
    /// of per-GPU state in the global vertex space.
    pub fn enact_with<R>(
        &self,
        src: Option<V>,
        extract: impl Fn(&Runner<'_, V, O, P>, &DistGraph<V, O>) -> R,
    ) -> Result<(EnactReport, R)> {
        let policy = self.config.recovery;
        let n_original = self.profiles.len();
        // Original ids of the devices still alive, indexed by runtime id.
        let mut alive: Vec<usize> = (0..n_original).collect();
        let mut resume: Option<GlobalCheckpoint<V>> = None;
        let mut log = RecoveryLog::default();
        let mut retries_left = policy.max_retries;
        loop {
            let n = alive.len();
            let mut orig_to_runtime: Vec<Option<usize>> = vec![None; n_original];
            for (r, &o) in alive.iter().enumerate() {
                orig_to_runtime[o] = Some(r);
            }
            // Re-home: surviving owners keep their vertices (renumbered to
            // runtime ids); a dead device's vertices are dealt round-robin
            // over the survivors.
            let runtime_owner: Vec<u32> = self
                .owner
                .iter()
                .enumerate()
                .map(|(v, &o)| match orig_to_runtime[o as usize] {
                    Some(r) => r as u32,
                    None => (v % n) as u32,
                })
                .collect();
            let mut dist =
                DistGraph::build(self.graph, runtime_owner, n, self.problem.duplication());
            if self.build_csc {
                dist.build_cscs();
            }
            let profiles: Vec<HardwareProfile> =
                alive.iter().map(|&o| self.profiles[o].clone()).collect();
            let mut system = SimSystem::new(profiles, Interconnect::pcie3(n, 4))
                .expect("matching sizes by construction");
            if !self.plan.is_empty() {
                system.attach_fault_plan(&self.plan.remap(&alive));
            }
            let sink = CheckpointSink::new(n, policy.checkpoint_interval);

            let mut runner = Runner::new(system, &dist, self.problem.clone(), self.config)?;
            let (outcome, attempt_log) = runner.enact_resilient(src, resume.as_ref(), &sink);
            log.absorb(&attempt_log);
            match outcome {
                Ok(mut report) => {
                    let value = extract(&runner, &dist);
                    report.sim_time_us += log.lost_time_us;
                    report.recovery = log;
                    return Ok((report, value));
                }
                Err(e) => {
                    log.lost_time_us += runner.system().makespan_us();
                    if let Some(ck) = sink.take_complete() {
                        resume = Some(ck);
                    }
                    match e {
                        VgpuError::DeviceLost { device }
                            if policy.degrade_on_loss && alive.len() > 1 =>
                        {
                            let original = alive.remove(device);
                            log.lost_devices.push(original);
                            log.failovers += 1;
                        }
                        VgpuError::Timeout { device }
                            if policy.evict_stragglers
                                && policy.degrade_on_loss
                                && alive.len() > 1 =>
                        {
                            let original = alive.remove(device);
                            log.lost_devices.push(original);
                            log.failovers += 1;
                        }
                        ref transient if policy.is_transient(transient) && retries_left > 0 => {
                            retries_left -= 1;
                        }
                        _ => return Err(e),
                    }
                }
            }
        }
    }
}

impl<'g, V: Id, O: Id, P: MgpuProblem<V, O> + Clone> Executor<V> for ResilientRunner<'g, V, O, P> {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::Resilient
    }

    fn primitive(&self) -> &'static str {
        self.problem.name()
    }

    fn n_devices(&self) -> usize {
        self.profiles.len()
    }

    fn recovery_policy(&self) -> RecoveryPolicy {
        self.config.recovery
    }

    fn enact(&mut self, src: Option<V>) -> Result<EnactReport> {
        let (report, values) = self.enact_with(src, |runner, _| runner.harvest())?;
        self.last_values = values;
        Ok(report)
    }

    fn harvest(&self) -> Vec<u64> {
        self.last_values.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_fully_off() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.checkpoint_interval, 0);
        assert!(p.straggler_timeout_us.is_infinite());
        assert!(!p.evict_stragglers && !p.degrade_on_loss);
    }

    #[test]
    fn transient_classification() {
        let p = RecoveryPolicy::resilient();
        assert!(p.is_transient(&VgpuError::KernelFailed { device: 0 }));
        assert!(p.is_transient(&VgpuError::TransferFailed { from: 0, to: 1 }));
        assert!(p.is_transient(&VgpuError::Timeout { device: 2 }));
        assert!(!p.is_transient(&VgpuError::DeviceLost { device: 0 }));
        assert!(!p.is_transient(&VgpuError::Aborted));
    }

    #[test]
    fn sink_finalizes_only_when_all_devices_offer() {
        let sink: CheckpointSink<u32> = CheckpointSink::new(2, 2);
        assert!(!sink.due(1) && sink.due(2) && !sink.due(3) && sink.due(4));
        sink.offer(2, vec![(1, 10)], vec![1]);
        assert!(sink.take_complete().is_none(), "one of two devices offered");
        // the second device failed and never offers for iter 2; its stale
        // partial is discarded when iter 4 begins
        sink.offer(4, vec![(0, 7), (2, 9)], vec![2]);
        sink.offer(4, vec![(1, 8), (3, 6)], vec![1, 2]);
        let ck = sink.take_complete().expect("all devices offered for iter 4");
        assert_eq!(ck.iter, 4);
        assert_eq!(ck.words, vec![(0, 7), (1, 8), (2, 9), (3, 6)], "sorted by global id");
        assert_eq!(ck.frontier, vec![1, 2], "sorted and deduplicated");
        assert_eq!(sink.taken(), 1);
    }

    #[test]
    fn disabled_sink_is_never_due() {
        let sink: CheckpointSink<u32> = CheckpointSink::new(4, 0);
        for i in 0..20 {
            assert!(!sink.due(i));
        }
    }

    #[test]
    fn log_absorb_accumulates() {
        let mut a = RecoveryLog { kernel_retries: 2, backoff_us: 50.0, ..Default::default() };
        let b = RecoveryLog {
            kernel_retries: 3,
            lost_devices: vec![1],
            failovers: 1,
            resumed_at: Some(4),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.kernel_retries, 5);
        assert_eq!(a.lost_devices, vec![1]);
        assert_eq!(a.resumed_at, Some(4));
        assert!(!a.is_quiet());
        assert!(RecoveryLog::default().is_quiet());
    }

    #[test]
    fn guard_converts_panics() {
        let ok: Result<u32> = guard(0, || Ok(7));
        assert_eq!(ok.unwrap(), 7);
        let err = guard(3, || -> Result<()> { panic!("poisoned") }).unwrap_err();
        assert_eq!(err, VgpuError::DeviceLost { device: 3 });
    }
}
