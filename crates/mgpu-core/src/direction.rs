//! Direction-optimizing traversal machinery (§VI-A).
//!
//! Beamer-style DOBFS switches between forward ("push") and backward
//! ("pull") traversal. The traditional switch condition needs the exact
//! number of edges in the next frontier — "additional computation
//! (potentially of the same scale of the actual traversal)". The paper's
//! contribution is a switch that needs only already-available inputs:
//!
//! * estimated forward edges  `FV = |Q| · |E_i| / |V_i|`
//! * estimated backward edges `BV = |U| · |V_i| / |P|`
//!
//! Start forward; switch forward→backward when `FV > BV · do_a`, and
//! backward→forward when `FV < BV · do_b`. Because a forward→backward
//! switch must scan all vertices to build the unvisited frontier, it is
//! allowed **once**. `do_a = 0.01`, `do_b = 0.1` work well for social
//! graphs and are mostly independent of the GPU count.

/// Traversal direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Push: expand the current frontier's out-edges.
    Forward,
    /// Pull: unvisited vertices scan in-edges for a visited parent.
    Backward,
}

/// Switch thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DirectionConfig {
    /// Forward→backward threshold (`do_a`).
    pub do_a: f64,
    /// Backward→forward threshold (`do_b`).
    pub do_b: f64,
    /// Allow direction optimization at all (false = plain BFS).
    pub enabled: bool,
}

impl Default for DirectionConfig {
    /// The paper's social-graph parameters: do_a = 0.01, do_b = 0.1.
    fn default() -> Self {
        DirectionConfig { do_a: 0.01, do_b: 0.1, enabled: true }
    }
}

/// Per-GPU direction state across iterations.
#[derive(Debug, Clone, Copy)]
pub struct DirectionState {
    /// Current direction.
    pub current: Direction,
    /// Whether the one allowed forward→backward switch has been spent.
    pub switched_to_backward: bool,
    config: DirectionConfig,
}

impl DirectionState {
    /// Fresh state: traversal begins forward.
    pub fn new(config: DirectionConfig) -> Self {
        DirectionState { current: Direction::Forward, switched_to_backward: false, config }
    }

    /// Estimated forward edge visits `FV = |Q|·|E_i|/|V_i|`.
    pub fn forward_estimate(frontier: usize, local_edges: usize, local_vertices: usize) -> f64 {
        if local_vertices == 0 {
            return 0.0;
        }
        frontier as f64 * local_edges as f64 / local_vertices as f64
    }

    /// Estimated backward edge visits `BV = |U|·|V_i|/|P|`.
    pub fn backward_estimate(unvisited: usize, local_vertices: usize, visited: usize) -> f64 {
        if visited == 0 {
            return f64::INFINITY;
        }
        unvisited as f64 * local_vertices as f64 / visited as f64
    }

    /// Decide the direction for the upcoming iteration from quantities that
    /// are already available: `|Q|` (current frontier), `|U|` (unvisited),
    /// `|P|` (visited), `|E_i|`, `|V_i|`. Returns the direction to use and
    /// updates internal state.
    pub fn decide(
        &mut self,
        frontier: usize,
        unvisited: usize,
        visited: usize,
        local_edges: usize,
        local_vertices: usize,
    ) -> Direction {
        if !self.config.enabled {
            return Direction::Forward;
        }
        let fv = Self::forward_estimate(frontier, local_edges, local_vertices);
        let bv = Self::backward_estimate(unvisited, local_vertices, visited);
        match self.current {
            Direction::Forward => {
                if !self.switched_to_backward && fv > bv * self.config.do_a {
                    self.current = Direction::Backward;
                    self.switched_to_backward = true; // one-shot: the switch
                                                      // requires a full vertex scan
                }
            }
            Direction::Backward => {
                if fv < bv * self.config.do_b {
                    self.current = Direction::Forward;
                }
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_forward() {
        let s = DirectionState::new(DirectionConfig::default());
        assert_eq!(s.current, Direction::Forward);
    }

    #[test]
    fn switches_backward_when_frontier_explodes() {
        let mut s = DirectionState::new(DirectionConfig::default());
        // |Q|=10k of |V|=100k, |E|=3.2M: FV = 320k; |U|=90k, |P|=10k: BV=900k
        // FV > BV·0.01 = 9k → switch
        let d = s.decide(10_000, 90_000, 10_000, 3_200_000, 100_000);
        assert_eq!(d, Direction::Backward);
        assert!(s.switched_to_backward);
    }

    #[test]
    fn stays_forward_for_tiny_frontiers() {
        let mut s = DirectionState::new(DirectionConfig::default());
        // FV = 3.2 (one-vertex frontier), BV huge at start (P=1)
        let d = s.decide(1, 99_999, 1, 3_200_000, 100_000);
        assert_eq!(d, Direction::Forward);
    }

    #[test]
    fn returns_forward_for_the_tail_and_never_switches_back_again() {
        let mut s = DirectionState::new(DirectionConfig::default());
        s.decide(10_000, 90_000, 10_000, 3_200_000, 100_000); // → backward
                                                              // tail: one-vertex frontier, sizeable unvisited remainder:
                                                              // FV = 1·32 = 32; BV = 1000·100k/99k ≈ 1010; FV < BV·0.1 = 101 → forward
        let d = s.decide(1, 1_000, 99_000, 3_200_000, 100_000);
        assert_eq!(d, Direction::Forward, "FV=32 < BV·0.1≈101");
        // another explosion cannot trigger a second backward switch
        let d = s.decide(50_000, 50_000, 50_000, 3_200_000, 100_000);
        assert_eq!(d, Direction::Forward);
    }

    #[test]
    fn disabled_config_is_always_forward() {
        let mut s = DirectionState::new(DirectionConfig { enabled: false, ..Default::default() });
        let d = s.decide(50_000, 50_000, 50_000, 3_200_000, 100_000);
        assert_eq!(d, Direction::Forward);
    }

    #[test]
    fn estimates_handle_degenerate_inputs() {
        assert_eq!(DirectionState::forward_estimate(5, 100, 0), 0.0);
        assert!(DirectionState::backward_estimate(5, 100, 0).is_infinite());
    }

    #[test]
    fn forward_estimate_orders_by_frontier_and_average_degree() {
        // FV = |Q|·|E|/|V| — linear in the frontier, linear in avg degree.
        let small = DirectionState::forward_estimate(100, 3_200_000, 100_000);
        let bigger_frontier = DirectionState::forward_estimate(1_000, 3_200_000, 100_000);
        let denser_graph = DirectionState::forward_estimate(100, 6_400_000, 100_000);
        assert!(small < bigger_frontier);
        assert!(small < denser_graph);
        assert_eq!(bigger_frontier, 10.0 * small);
        assert_eq!(denser_graph, 2.0 * small);
    }

    #[test]
    fn backward_estimate_shrinks_as_the_visited_set_grows() {
        // BV = |U|·|V|/|P| — more visited vertices make the pull cheaper.
        let early = DirectionState::backward_estimate(90_000, 100_000, 10_000);
        let late = DirectionState::backward_estimate(10_000, 100_000, 90_000);
        assert!(late < early);
        // and it scales with how much is still unvisited
        assert!(
            DirectionState::backward_estimate(50_000, 100_000, 10_000)
                < DirectionState::backward_estimate(90_000, 100_000, 10_000)
        );
    }

    #[test]
    fn hysteresis_band_keeps_the_backward_direction() {
        // Once backward, only FV < BV·do_b flips forward: an FV between
        // BV·do_a and BV·do_b (which would have triggered the forward→
        // backward switch) keeps pulling instead of oscillating.
        let mut s = DirectionState::new(DirectionConfig::default());
        s.decide(10_000, 90_000, 10_000, 3_200_000, 100_000);
        assert_eq!(s.current, Direction::Backward);
        // FV = 5000·32 = 160k; BV = 50k·100k/50k = 100k; BV·do_b = 10k < FV
        let d = s.decide(5_000, 50_000, 50_000, 3_200_000, 100_000);
        assert_eq!(d, Direction::Backward, "FV=160k is far above BV·do_b=10k");
    }

    #[test]
    fn threshold_boundaries_are_strict() {
        // Forward→backward requires FV strictly greater than BV·do_a.
        // |Q|=100, |V|=|E|=100k → FV = 100; |U|=10k, |P|=100k → BV = 10k;
        // BV·do_a = 100 exactly → no switch.
        let mut s = DirectionState::new(DirectionConfig::default());
        let d = s.decide(100, 10_000, 100_000, 100_000, 100_000);
        assert_eq!(d, Direction::Forward, "FV == BV·do_a must not switch");
        assert!(!s.switched_to_backward);

        // Backward→forward requires FV strictly less than BV·do_b.
        let mut s = DirectionState::new(DirectionConfig::default());
        s.decide(10_000, 90_000, 10_000, 3_200_000, 100_000); // → backward
                                                              // |Q|=1000, |V|=|E|=100k → FV = 1000; |U|=10k, |P|=100k → BV = 10k;
                                                              // BV·do_b = 1000 exactly → stays backward.
        let d = s.decide(1_000, 10_000, 100_000, 100_000, 100_000);
        assert_eq!(d, Direction::Backward, "FV == BV·do_b must not switch");
    }
}
