//! Structured run traces and BSP cost attribution (the observability layer).
//!
//! When [`crate::EnactConfig::tracing`] is on, every device records its
//! typed [`TraceEvent`] spans (kernels, sends/receives, barrier waits,
//! superstep syncs, retries, collective stages, spills, chunked passes,
//! checkpoints) into its `vgpu` timeline; [`Trace::collect`] snapshots them
//! into the report. A [`Profile`] folds the trace into per-device and
//! per-superstep BSP attribution tables — `W` (primitive kernels), `C`
//! (communication computation), `H·g` (wire occupancy), `S·l` (sync
//! charges), barrier wait/skew — and [`Profile::reconcile`] asserts the
//! **exact reconciliation invariant**:
//!
//! * per device, the folded `W`/`C`/`H`/`S·l` sums are *bit-identical* to
//!   the device's [`vgpu::BspCounters`] (the trace spans are recorded at the
//!   very charge sites that bump the counters, in the same order, with the
//!   same f64 values — so the sums agree to the last bit, not to a
//!   tolerance);
//! * event counts match the counters (kernel spans = `kernel_launches`,
//!   sync spans = `supersteps`, send/recv bytes = `h_bytes_sent/recv`, …);
//! * the makespan reconstructed from the final superstep-sync span equals
//!   `EnactReport::sim_time_us` bitwise (plus recovery `lost_time_us` for
//!   resilient reports, which fold failed attempts into the total).
//!
//! Because all span times are *simulated* clocks, a trace is bit-identical
//! across kernel-thread counts and host scheduling; the serialized JSONL
//! form is therefore byte-identical too, which the golden-trace suite in
//! `tests/trace_observability.rs` pins.

use vgpu::{SimSystem, TraceEvent, TraceKind};

use crate::report::EnactReport;

/// Format an `f64` for the exporters: `Display` prints the shortest string
/// that round-trips, so equal bit patterns serialize to equal bytes.
fn fmt_f64(x: f64) -> String {
    format!("{x}")
}

/// The structured event record of one enacted traversal: every device's
/// typed spans in program (simulated-clock) order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Per-device event streams, indexed by device id.
    pub per_device: Vec<Vec<TraceEvent>>,
}

impl Trace {
    /// Snapshot every device timeline of `system`.
    pub fn collect(system: &SimSystem) -> Trace {
        Trace { per_device: system.devices.iter().map(|d| d.timeline.events().to_vec()).collect() }
    }

    /// Number of devices traced.
    pub fn n_devices(&self) -> usize {
        self.per_device.len()
    }

    /// Total recorded spans over all devices.
    pub fn n_events(&self) -> usize {
        self.per_device.iter().map(Vec::len).sum()
    }

    /// Is the trace empty (tracing off or nothing ran)?
    pub fn is_empty(&self) -> bool {
        self.n_events() == 0
    }

    /// Serialize as compact JSONL: one event object per line, devices in
    /// id order, events in program order. This is the golden format — equal
    /// simulations produce byte-equal output.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for events in &self.per_device {
            for e in events {
                out.push_str(&format!(
                    concat!(
                        "{{\"device\":{},\"stream\":{},\"superstep\":{},",
                        "\"kind\":\"{}\",\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},",
                        "\"items\":{},\"bytes\":{},\"h_us\":{},\"peer\":{}}}\n"
                    ),
                    e.device,
                    e.stream,
                    e.superstep,
                    e.kind.as_str(),
                    e.name,
                    fmt_f64(e.start_us),
                    fmt_f64(e.dur_us),
                    e.items,
                    e.bytes,
                    fmt_f64(e.h_us),
                    e.peer,
                ));
            }
        }
        out
    }

    /// Serialize as Chrome trace-event JSON (load in `chrome://tracing` or
    /// Perfetto): one complete (`"ph":"X"`) span per event with the typed
    /// kind as the category and the metadata in `args`, plus process-name
    /// metadata so devices label as `GPU <id>`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        for (id, events) in self.per_device.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{id},\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"GPU {id}\"}}}}"
                ),
                &mut first,
            );
            for e in events {
                push(
                    format!(
                        concat!(
                            "{{\"pid\":{},\"tid\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},",
                            "\"name\":\"{}\",\"cat\":\"{}\",\"args\":{{\"superstep\":{},",
                            "\"items\":{},\"bytes\":{},\"h_us\":{},\"peer\":{}}}}}"
                        ),
                        e.device,
                        e.stream,
                        fmt_f64(e.start_us),
                        fmt_f64(e.dur_us),
                        e.name,
                        e.kind.as_str(),
                        e.superstep,
                        e.items,
                        e.bytes,
                        fmt_f64(e.h_us),
                        e.peer,
                    ),
                    &mut first,
                );
            }
        }
        out.push_str("]}");
        out
    }
}

/// One row of the BSP attribution table (a device, a superstep, or a total):
/// time buckets in simulated microseconds plus event/byte tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BspRow {
    /// Primitive-kernel time (the BSP `W`).
    pub w_us: f64,
    /// Communication-computation kernel time (the paper's `C`).
    pub c_us: f64,
    /// Wire occupancy time (the BSP `H·g`).
    pub h_us: f64,
    /// Superstep synchronization charges (the BSP `S·l`).
    pub sync_us: f64,
    /// Idle time waiting for the slowest peer at barriers (load skew).
    pub wait_us: f64,
    /// Everything else on the clock: allocation charges, transfer latency
    /// tails, retry backoffs, failed-launch overheads.
    pub other_us: f64,
    /// Kernel launches (primitive + communication-computation).
    pub kernels: u64,
    /// Superstep sync spans.
    pub syncs: u64,
    /// Package send attempts.
    pub sends: u64,
    /// Package arrivals.
    pub recvs: u64,
    /// Retry spans (kernel relaunches + transfer resends).
    pub retries: u64,
    /// Governor downgrade markers (admission decisions replayed at t=0).
    pub downgrades: u64,
    /// Butterfly collective stages.
    pub stages: u64,
    /// Host-spill transfers.
    pub spills: u64,
    /// Chunked multi-pass advances.
    pub chunks: u64,
    /// Checkpoint offers.
    pub checkpoints: u64,
    /// Peak batched-traversal lane occupancy (max active lanes across the
    /// row's lane markers; 0 when the primitive is single-source).
    pub lanes: u64,
    /// Wire bytes successfully sent (failed attempts excluded).
    pub bytes_sent: u64,
    /// Wire bytes received.
    pub bytes_recv: u64,
    /// Vertices successfully sent.
    pub vertices_sent: u64,
    /// Packages successfully sent.
    pub messages: u64,
    /// Bytes freed to the host by spills.
    pub spilled_bytes: u64,
}

impl BspRow {
    /// The attributed simulated time of the row (all buckets).
    pub fn total_us(&self) -> f64 {
        self.w_us + self.c_us + self.h_us + self.sync_us + self.wait_us + self.other_us
    }

    /// Fold one span into the row. `last_send` threads the most recent send
    /// attempt's (bytes, items) so a transfer-retry span can roll back the
    /// failed attempt's success tallies (the counters only credit the
    /// attempt that delivered).
    fn absorb(&mut self, e: &TraceEvent, last_send: &mut (u64, u64)) {
        match e.kind {
            TraceKind::Kernel => {
                self.w_us += e.dur_us;
                self.kernels += 1;
            }
            TraceKind::CommKernel => {
                self.c_us += e.dur_us;
                self.kernels += 1;
            }
            TraceKind::Charge => self.other_us += e.dur_us,
            TraceKind::Send => {
                self.h_us += e.h_us;
                self.sends += 1;
                self.bytes_sent += e.bytes;
                self.vertices_sent += e.items;
                self.messages += 1;
                *last_send = (e.bytes, e.items);
            }
            TraceKind::Recv => {
                self.recvs += 1;
                self.bytes_recv += e.bytes;
            }
            TraceKind::BarrierWait => self.wait_us += e.dur_us,
            TraceKind::Sync => {
                self.sync_us += e.dur_us;
                self.syncs += 1;
            }
            TraceKind::Retry => {
                self.retries += 1;
                self.other_us += e.dur_us;
                if e.name == "transfer-retry" {
                    // the immediately preceding send attempt failed — it
                    // occupied the link (h_us stands) but delivered nothing
                    self.bytes_sent -= last_send.0;
                    self.vertices_sent -= last_send.1;
                    self.messages -= 1;
                }
            }
            TraceKind::Downgrade => self.downgrades += 1,
            TraceKind::Stage => self.stages += 1,
            TraceKind::Spill => {
                self.spills += 1;
                self.h_us += e.h_us;
                self.other_us += e.dur_us - e.h_us; // the latency tail
                self.spilled_bytes += e.bytes;
            }
            TraceKind::Chunk => self.chunks += 1,
            TraceKind::Checkpoint => self.checkpoints += 1,
            TraceKind::Lanes => self.lanes = self.lanes.max(e.items),
        }
    }
}

/// The folded BSP attribution of one [`Trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-device attribution, indexed by device id.
    pub per_device: Vec<BspRow>,
    /// Per-superstep attribution (summed over devices), indexed by absolute
    /// superstep number.
    pub per_superstep: Vec<BspRow>,
    /// System totals (per-device rows folded in device order — the same
    /// order `SimSystem::total_counters` merges, so float sums agree
    /// bitwise with the report totals).
    pub total: BspRow,
    /// The run's makespan reconstructed from the final superstep-sync span:
    /// `max(start + dur)` over sync spans. Sync spans are recorded with
    /// `start` equal to the barrier-aligned clock, so this reproduces the
    /// post-barrier clock bit-for-bit.
    pub makespan_us: f64,
}

impl Profile {
    /// Fold `trace` into attribution tables.
    pub fn from_trace(trace: &Trace) -> Profile {
        let mut per_device = Vec::with_capacity(trace.n_devices());
        let mut per_superstep: Vec<BspRow> = Vec::new();
        let mut makespan = 0.0f64;
        for events in &trace.per_device {
            let mut row = BspRow::default();
            let mut last_send = (0u64, 0u64);
            let mut last_step_send = (0u64, 0u64);
            for e in events {
                row.absorb(e, &mut last_send);
                let step = e.superstep as usize;
                if per_superstep.len() <= step {
                    per_superstep.resize(step + 1, BspRow::default());
                }
                per_superstep[step].absorb(e, &mut last_step_send);
                if e.kind == TraceKind::Sync {
                    makespan = makespan.max(e.start_us + e.dur_us);
                }
            }
            per_device.push(row);
        }
        let mut total = BspRow::default();
        for row in &per_device {
            total.w_us += row.w_us;
            total.c_us += row.c_us;
            total.h_us += row.h_us;
            total.sync_us += row.sync_us;
            total.wait_us += row.wait_us;
            total.other_us += row.other_us;
            total.kernels += row.kernels;
            total.syncs += row.syncs;
            total.sends += row.sends;
            total.recvs += row.recvs;
            total.retries += row.retries;
            total.downgrades += row.downgrades;
            total.stages += row.stages;
            total.spills += row.spills;
            total.chunks += row.chunks;
            total.checkpoints += row.checkpoints;
            total.lanes = total.lanes.max(row.lanes);
            total.bytes_sent += row.bytes_sent;
            total.bytes_recv += row.bytes_recv;
            total.vertices_sent += row.vertices_sent;
            total.messages += row.messages;
            total.spilled_bytes += row.spilled_bytes;
        }
        Profile { per_device, per_superstep, total, makespan_us: makespan }
    }

    /// Verify the exact reconciliation invariant against `report` (see the
    /// module docs). Returns a description of the first mismatch; `Ok(())`
    /// means every per-device time bucket, every tally and the makespan
    /// agree with the report — bitwise for the f64 sums.
    pub fn reconcile(&self, report: &EnactReport) -> std::result::Result<(), String> {
        fn bits(label: &str, dev: usize, a: f64, b: f64) -> std::result::Result<(), String> {
            if a.to_bits() != b.to_bits() {
                return Err(format!("device {dev}: {label} trace={a} report={b} (bitwise)"));
            }
            Ok(())
        }
        fn count(label: &str, dev: usize, a: u64, b: u64) -> std::result::Result<(), String> {
            if a != b {
                return Err(format!("device {dev}: {label} trace={a} report={b}"));
            }
            Ok(())
        }
        if self.per_device.len() != report.per_device.len() {
            return Err(format!(
                "device count: trace={} report={}",
                self.per_device.len(),
                report.per_device.len()
            ));
        }
        for (dev, (row, c)) in self.per_device.iter().zip(report.per_device.iter()).enumerate() {
            bits("W time", dev, row.w_us, c.w_time_us)?;
            bits("C time", dev, row.c_us, c.c_time_us)?;
            bits("H time", dev, row.h_us, c.h_time_us)?;
            bits("sync time", dev, row.sync_us, c.sync_time_us)?;
            count("kernel launches", dev, row.kernels, c.kernel_launches)?;
            count("supersteps", dev, row.syncs, c.supersteps)?;
            count("bytes sent", dev, row.bytes_sent, c.h_bytes_sent)?;
            count("bytes recv", dev, row.bytes_recv, c.h_bytes_recv)?;
            count("vertices sent", dev, row.vertices_sent, c.h_vertices)?;
            count("messages", dev, row.messages, c.h_messages)?;
        }
        let t = &report.totals;
        for (label, a, b) in [
            ("W time", self.total.w_us, t.w_time_us),
            ("C time", self.total.c_us, t.c_time_us),
            ("H time", self.total.h_us, t.h_time_us),
            ("sync time", self.total.sync_us, t.sync_time_us),
        ] {
            if a.to_bits() != b.to_bits() {
                return Err(format!("totals: {label} trace={a} report={b} (bitwise)"));
            }
        }
        // Resilient reports fold the simulated time lost to failed attempts
        // into `sim_time_us`; the trace describes the surviving attempt, so
        // its makespan plus the recorded loss must reproduce the total. For
        // plain reports `lost_time_us` is 0.0 and the addition is exact.
        // Async traces carry no sync spans (there are no supersteps), so the
        // makespan cannot be reconstructed from the trace — skip the check.
        if self.total.syncs > 0 {
            let reconstructed = self.makespan_us + report.recovery.lost_time_us;
            if reconstructed.to_bits() != report.sim_time_us.to_bits() {
                return Err(format!(
                    "makespan: trace={} (+lost {}) report sim_time_us={} (bitwise)",
                    self.makespan_us, report.recovery.lost_time_us, report.sim_time_us
                ));
            }
        }
        Ok(())
    }

    /// Supersteps covered by the per-superstep table.
    pub fn n_supersteps(&self) -> usize {
        self.per_superstep.len()
    }

    /// Serialize the attribution tables as one JSON object (per-device and
    /// per-superstep rows plus totals and makespan) — the payload of
    /// `BENCH_profile.json` and the CLI's `--profile` output file.
    pub fn to_json(&self) -> String {
        fn row_json(r: &BspRow) -> String {
            format!(
                concat!(
                    "{{\"w_us\":{},\"c_us\":{},\"h_us\":{},\"sync_us\":{},",
                    "\"wait_us\":{},\"other_us\":{},\"kernels\":{},\"syncs\":{},",
                    "\"sends\":{},\"recvs\":{},\"retries\":{},\"downgrades\":{},",
                    "\"stages\":{},\"spills\":{},\"chunks\":{},\"checkpoints\":{},",
                    "\"lanes\":{},\"bytes_sent\":{},\"bytes_recv\":{},\"vertices_sent\":{},",
                    "\"messages\":{},\"spilled_bytes\":{}}}"
                ),
                fmt_f64(r.w_us),
                fmt_f64(r.c_us),
                fmt_f64(r.h_us),
                fmt_f64(r.sync_us),
                fmt_f64(r.wait_us),
                fmt_f64(r.other_us),
                r.kernels,
                r.syncs,
                r.sends,
                r.recvs,
                r.retries,
                r.downgrades,
                r.stages,
                r.spills,
                r.chunks,
                r.checkpoints,
                r.lanes,
                r.bytes_sent,
                r.bytes_recv,
                r.vertices_sent,
                r.messages,
                r.spilled_bytes,
            )
        }
        let devs: Vec<String> = self.per_device.iter().map(row_json).collect();
        let steps: Vec<String> = self.per_superstep.iter().map(row_json).collect();
        format!(
            "{{\"makespan_us\":{},\"total\":{},\"per_device\":[{}],\"per_superstep\":[{}]}}",
            fmt_f64(self.makespan_us),
            row_json(&self.total),
            devs.join(","),
            steps.join(","),
        )
    }

    /// Render the per-superstep table plus totals as aligned text (the CLI's
    /// `--profile` summary).
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}\n",
            "step", "W us", "C us", "H us", "sync us", "wait us", "sends", "kernels"
        ));
        for (i, r) in self.per_superstep.iter().enumerate() {
            out.push_str(&format!(
                "{:>5} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>8}\n",
                i, r.w_us, r.c_us, r.h_us, r.sync_us, r.wait_us, r.sends, r.kernels
            ));
        }
        let t = &self.total;
        out.push_str(&format!(
            "{:>5} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>8}\n",
            "total", t.w_us, t.c_us, t.h_us, t.sync_us, t.wait_us, t.sends, t.kernels
        ));
        out.push_str(&format!(
            "makespan {:.3} us  (attributed: W {:.3} + C {:.3} + H {:.3} + S*l {:.3} \
             + wait {:.3} + other {:.3})\n",
            self.makespan_us, t.w_us, t.c_us, t.h_us, t.sync_us, t.wait_us, t.other_us
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TraceKind, start: f64, dur: f64) -> TraceEvent {
        TraceEvent { kind, name: kind.as_str(), start_us: start, dur_us: dur, ..Default::default() }
    }

    fn two_device_trace() -> Trace {
        let d0 = vec![
            span(TraceKind::Kernel, 0.0, 3.0),
            TraceEvent {
                bytes: 64,
                items: 8,
                h_us: 0.5,
                dur_us: 0.5,
                start_us: 3.0,
                peer: 1,
                ..span(TraceKind::Send, 3.0, 0.5)
            },
            span(TraceKind::Sync, 5.0, 1.0),
        ];
        let d1 = vec![
            TraceEvent { device: 1, ..span(TraceKind::CommKernel, 0.0, 2.0) },
            TraceEvent { device: 1, bytes: 64, items: 8, ..span(TraceKind::Recv, 4.0, 0.0) },
            TraceEvent {
                device: 1,
                start_us: 4.0,
                dur_us: 1.0,
                ..span(TraceKind::BarrierWait, 4.0, 1.0)
            },
            TraceEvent { device: 1, ..span(TraceKind::Sync, 5.0, 1.0) },
        ];
        Trace { per_device: vec![d0, d1] }
    }

    #[test]
    fn profile_folds_kinds_into_bsp_buckets() {
        let p = Profile::from_trace(&two_device_trace());
        assert_eq!(p.per_device.len(), 2);
        assert_eq!(p.per_device[0].w_us, 3.0);
        assert_eq!(p.per_device[0].h_us, 0.5);
        assert_eq!(p.per_device[0].sends, 1);
        assert_eq!(p.per_device[0].bytes_sent, 64);
        assert_eq!(p.per_device[1].c_us, 2.0);
        assert_eq!(p.per_device[1].bytes_recv, 64);
        assert_eq!(p.per_device[1].wait_us, 1.0);
        assert_eq!(p.total.sync_us, 2.0);
        assert_eq!(p.makespan_us, 6.0);
    }

    #[test]
    fn transfer_retry_rolls_back_the_failed_attempt() {
        let events = vec![
            TraceEvent { bytes: 100, items: 10, h_us: 1.0, ..span(TraceKind::Send, 0.0, 1.0) },
            TraceEvent { name: "transfer-retry", ..span(TraceKind::Retry, 1.0, 2.0) },
            TraceEvent { bytes: 100, items: 10, h_us: 1.0, ..span(TraceKind::Send, 3.0, 1.0) },
        ];
        let p = Profile::from_trace(&Trace { per_device: vec![events] });
        let r = &p.per_device[0];
        assert_eq!(r.sends, 2, "both attempts occupied the link");
        assert_eq!(r.h_us, 2.0, "H charges accrue per attempt");
        assert_eq!(r.messages, 1, "only one package delivered");
        assert_eq!(r.bytes_sent, 100);
        assert_eq!(r.vertices_sent, 10);
        assert_eq!(r.retries, 1);
    }

    #[test]
    fn spill_splits_occupancy_from_latency() {
        let events =
            vec![TraceEvent { bytes: 4096, h_us: 2.0, ..span(TraceKind::Spill, 0.0, 7.0) }];
        let p = Profile::from_trace(&Trace { per_device: vec![events] });
        assert_eq!(p.per_device[0].h_us, 2.0);
        assert_eq!(p.per_device[0].other_us, 5.0);
        assert_eq!(p.per_device[0].spilled_bytes, 4096);
    }

    #[test]
    fn per_superstep_rows_group_by_stamp() {
        let events = vec![
            TraceEvent { superstep: 0, ..span(TraceKind::Kernel, 0.0, 1.0) },
            TraceEvent { superstep: 2, ..span(TraceKind::Kernel, 5.0, 4.0) },
        ];
        let p = Profile::from_trace(&Trace { per_device: vec![events] });
        assert_eq!(p.n_supersteps(), 3, "rows are dense up to the max stamp");
        assert_eq!(p.per_superstep[0].w_us, 1.0);
        assert_eq!(p.per_superstep[1], BspRow::default());
        assert_eq!(p.per_superstep[2].w_us, 4.0);
    }

    #[test]
    fn exporters_are_well_formed() {
        let t = two_device_trace();
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), t.n_events());
        assert!(jsonl.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(jsonl.contains("\"kind\":\"send\""));
        let chrome = t.to_chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"name\":\"GPU 0\""));
        assert_eq!(chrome.matches("\"ph\":\"X\"").count(), t.n_events());
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
        let p = Profile::from_trace(&t);
        let j = p.to_json();
        assert!(j.contains("\"makespan_us\":6"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(p.format_table().contains("makespan"));
    }

    #[test]
    fn lane_markers_fold_to_peak_occupancy() {
        let events = vec![
            TraceEvent { items: 3, bytes: 0b111, ..span(TraceKind::Lanes, 0.0, 0.0) },
            TraceEvent { superstep: 1, items: 7, bytes: 0x7f, ..span(TraceKind::Lanes, 1.0, 0.0) },
            TraceEvent { superstep: 2, items: 2, bytes: 0b11, ..span(TraceKind::Lanes, 2.0, 0.0) },
        ];
        let p = Profile::from_trace(&Trace { per_device: vec![events] });
        assert_eq!(p.per_device[0].lanes, 7, "device row keeps the peak");
        assert_eq!(p.total.lanes, 7, "totals take the max, not the sum");
        assert_eq!(p.per_superstep[1].lanes, 7);
        assert_eq!(p.per_superstep[2].lanes, 2, "per-superstep rows keep their own occupancy");
    }

    #[test]
    fn empty_trace_profiles_to_zero() {
        let p = Profile::from_trace(&Trace::default());
        assert_eq!(p.total, BspRow::default());
        assert_eq!(p.makespan_us, 0.0);
        assert_eq!(p.n_supersteps(), 0);
    }
}
