//! A deterministic multi-tenant query scheduler over shared graph
//! residency — the production-service layer of ROADMAP item 2.
//!
//! One immutable partitioned CSR (`DistGraph`) is resident; many
//! heterogeneous queries (BFS, SSSP, BC, PR, CC — anything implementing
//! [`crate::executor::Executor`]) are admitted against it concurrently.
//! The model mirrors what stream multiplexing buys on real hardware: the
//! topology is charged once per device, each admitted query adds only its
//! *dynamic* footprint (frontier buffers, per-vertex state, comm staging),
//! and queries in the same *wave* execute concurrently on their own
//! stream lanes while queued waves wait for lanes/memory to free up.
//!
//! ## Determinism
//!
//! Scheduling is a pure function of `(seed, submission order, footprints,
//! policy)`:
//!
//! 1. A seeded Fisher–Yates permutation of the submission order picks the
//!    *dispatch order* (the only randomness; same seed → same order).
//! 2. A greedy ledger packs dispatch order into waves: a query joins the
//!    current wave while the wave holds a free lane and the ledger stays
//!    under the pressure governor's soft watermark; otherwise the wave
//!    closes and the query starts the next one (it *queued*). A query
//!    whose lone footprint exceeds the hard cap is *rejected* with the
//!    same typed [`VgpuError::OutOfMemory`] the enactor's admission walk
//!    raises at the floor.
//! 3. Waves execute in order. Within a wave, queries run on up to
//!    [`ServicePolicy::workers`] host threads — a wall-clock knob only.
//!    Each query's executor builds a fresh simulated system whose clocks
//!    are deterministic, so per-query [`EnactReport`]s are bit-equal to a
//!    serial run of the same spec at *any* worker count. Aggregates are
//!    folded in fixed submission order after each wave joins, never in
//!    thread-completion order.
//!
//! Admission decisions are recorded per query in [`AdmissionRecord`]s on
//! the [`ServiceReport`] — deliberately *not* injected into per-query
//! `EnactReport::governor` logs, which would break their bit-equality
//! with plain serial enacts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mgpu_graph::Id;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vgpu::{Result, VgpuError};

use crate::executor::Executor;
use crate::governor::PressurePolicy;
use crate::report::EnactReport;

/// A factory producing a fresh executor for one query. `Fn` (not
/// `FnOnce`) so a spec can be re-run — the concurrency tests replay the
/// same specs serially and assert bit-equal reports.
pub type BuildExecutor<'g, V> =
    Box<dyn Fn() -> Result<Box<dyn Executor<V> + Send + 'g>> + Send + Sync + 'g>;

/// One submitted query: a name for the logs, the source vertex, the
/// per-device *dynamic* memory footprint (beyond the shared residency)
/// the admission ledger charges, and the executor factory.
pub struct QuerySpec<'g, V: Id> {
    /// Label for admission records and reports (e.g. `"bfs:4"`).
    pub name: String,
    /// Global source vertex (`None` for source-less primitives).
    pub source: Option<V>,
    /// Estimated per-device bytes this query adds on top of the shared
    /// topology residency (state + frontier + comm staging).
    pub footprint_bytes: u64,
    /// Builds a fresh executor bound to the shared residency.
    pub build: BuildExecutor<'g, V>,
}

impl<'g, V: Id> QuerySpec<'g, V> {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        source: Option<V>,
        footprint_bytes: u64,
        build: impl Fn() -> Result<Box<dyn Executor<V> + Send + 'g>> + Send + Sync + 'g,
    ) -> Self {
        QuerySpec { name: name.into(), source, footprint_bytes, build: Box::new(build) }
    }
}

/// Scheduler policy. Everything that shapes the *schedule* lives here;
/// per-query enact behaviour stays in each spec's factory.
#[derive(Debug, Clone, Copy)]
pub struct ServicePolicy {
    /// Seed of the dispatch permutation (the only randomness).
    pub seed: u64,
    /// Host threads per wave. Purely wall-clock: reports and results are
    /// identical at every value.
    pub workers: usize,
    /// Maximum concurrent queries per wave (stream lanes); 0 = unbounded.
    pub lanes: usize,
    /// Per-device memory capacity for admission (the hard watermark);
    /// `None` = admission ledger disabled.
    pub mem_cap: Option<u64>,
    /// Shared topology bytes per device, charged once per wave (queries
    /// add only their dynamic footprints on top).
    pub residency_bytes: u64,
    /// Pressure-governor policy reused for admission: the soft watermark
    /// is where queries start queueing; the hard cap is where a lone
    /// query is rejected with a typed OOM. Admission engages only when
    /// both `pressure.enabled` and `mem_cap` are set.
    pub pressure: PressurePolicy,
}

impl Default for ServicePolicy {
    fn default() -> Self {
        ServicePolicy {
            seed: 0,
            workers: 1,
            lanes: 4,
            mem_cap: None,
            residency_bytes: 0,
            pressure: PressurePolicy::governed(),
        }
    }
}

/// One per-query admission decision, in submission order on the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionRecord {
    /// Submission index of the query.
    pub query: usize,
    /// The spec's name.
    pub name: String,
    /// Wave the query was scheduled into (`None` if rejected).
    pub wave: Option<usize>,
    /// Did the query wait for an earlier wave to finish (any wave > 0)?
    pub queued: bool,
    /// Was the query refused outright (lone footprint over the hard cap)?
    pub rejected: bool,
    /// `residency + footprint`: the bytes this query needs resident.
    pub estimated_bytes: u64,
    /// The soft-watermark budget the ledger packed against
    /// (`u64::MAX` when admission is disabled).
    pub budget_bytes: u64,
}

/// One query's outcome.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Submission index.
    pub query: usize,
    /// The spec's name.
    pub name: String,
    /// Wave it ran in (`usize::MAX` for rejected queries).
    pub wave: usize,
    /// The per-query enact report, or the typed error (a rejected query
    /// carries the admission OOM; a faulted one its root cause).
    pub result: Result<EnactReport>,
    /// Harvested per-vertex result words in global vertex order (empty on
    /// error).
    pub values: Vec<u64>,
}

/// What a [`Service::run`] produced: per-query outcomes (submission
/// order), the admission log, and deterministic simulated-time aggregates.
#[derive(Debug)]
pub struct ServiceReport {
    /// One outcome per submitted query, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// One admission decision per submitted query, in submission order.
    pub admission: Vec<AdmissionRecord>,
    /// Number of waves executed.
    pub waves: usize,
    /// Σ of successful queries' simulated times — the serial makespan.
    pub serial_sim_us: f64,
    /// Σ over waves of the wave's max simulated time — the concurrent
    /// makespan under ideal stream-lane overlap (the same
    /// compute/comm-overlap idealization the vgpu substrate itself makes).
    pub concurrent_sim_us: f64,
    /// Host wall time of the whole run (informational; nondeterministic).
    pub wall_time_us: f64,
}

impl ServiceReport {
    /// Aggregate throughput multiplier of concurrent over serial
    /// execution, on deterministic simulated time.
    pub fn throughput_x(&self) -> f64 {
        if self.concurrent_sim_us > 0.0 {
            self.serial_sim_us / self.concurrent_sim_us
        } else {
            1.0
        }
    }

    /// Were all queries admitted and successful?
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// Flat JSON object (the CLI `serve --json` output).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"waves\":{},", self.waves));
        s.push_str(&format!("\"serial_sim_us\":{:.3},", self.serial_sim_us));
        s.push_str(&format!("\"concurrent_sim_us\":{:.3},", self.concurrent_sim_us));
        s.push_str(&format!("\"throughput_x\":{:.4},", self.throughput_x()));
        s.push_str(&format!("\"wall_time_us\":{:.1},", self.wall_time_us));
        s.push_str("\"queries\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            match &o.result {
                Ok(r) => s.push_str(&format!(
                    "{{\"query\":{},\"name\":\"{}\",\"wave\":{},\"ok\":true,\
                     \"sim_time_us\":{:.3},\"iterations\":{}}}",
                    o.query, o.name, o.wave, r.sim_time_us, r.iterations
                )),
                Err(e) => s.push_str(&format!(
                    "{{\"query\":{},\"name\":\"{}\",\"ok\":false,\"error\":\"{e}\"}}",
                    o.query, o.name
                )),
            }
        }
        s.push_str("],\"admission\":[");
        for (i, a) in self.admission.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"query\":{},\"name\":\"{}\",\"wave\":{},\"queued\":{},\"rejected\":{},\
                 \"estimated_bytes\":{},\"budget_bytes\":{}}}",
                a.query,
                a.name,
                a.wave.map_or(-1i64, |w| w as i64),
                a.queued,
                a.rejected,
                a.estimated_bytes,
                a.budget_bytes
            ));
        }
        s.push_str("]}");
        s
    }
}

/// The wave plan the admission pass computes before anything executes.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulePlan {
    /// Waves of submission indices, in execution order (each wave keeps
    /// dispatch order internally).
    pub waves: Vec<Vec<usize>>,
    /// Per-query admission records, in submission order.
    pub admission: Vec<AdmissionRecord>,
    /// Rejected queries with their typed OOM, in dispatch order.
    pub rejected: Vec<(usize, VgpuError)>,
}

/// The multi-tenant query scheduler. See the module docs for the model
/// and the determinism argument.
pub struct Service {
    policy: ServicePolicy,
}

impl Service {
    /// A service with `policy`.
    pub fn new(policy: ServicePolicy) -> Self {
        Service { policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> &ServicePolicy {
        &self.policy
    }

    /// Plan admission and wave packing for `queries` (`(name, footprint)`
    /// pairs in submission order) without executing anything — a pure
    /// function of the policy and its inputs, exposed for tests and for
    /// dry-run inspection.
    pub fn plan(&self, queries: &[(String, u64)]) -> SchedulePlan {
        let k = queries.len();
        // Seeded Fisher–Yates: the dispatch permutation is the only
        // randomness in the scheduler.
        let mut order: Vec<usize> = (0..k).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.policy.seed);
        for i in (1..k).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let lanes = if self.policy.lanes == 0 { usize::MAX } else { self.policy.lanes };
        let capped = self.policy.pressure.enabled && self.policy.mem_cap.is_some();
        let cap = self.policy.mem_cap.unwrap_or(u64::MAX);
        let budget = if capped {
            (cap as f64 * self.policy.pressure.soft_watermark) as u64
        } else {
            u64::MAX
        };
        let residency = self.policy.residency_bytes;

        let mut waves: Vec<Vec<usize>> = Vec::new();
        let mut cur: Vec<usize> = Vec::new();
        let mut ledger = residency;
        let mut admission: Vec<AdmissionRecord> = Vec::with_capacity(k);
        let mut rejected: Vec<(usize, VgpuError)> = Vec::new();
        for &q in &order {
            let fp = queries[q].1;
            let est = residency.saturating_add(fp);
            if capped && est > cap {
                // Lone query over the hard watermark: typed OOM, exactly
                // the shape the enactor's admission floor raises.
                admission.push(AdmissionRecord {
                    query: q,
                    name: queries[q].0.clone(),
                    wave: None,
                    queued: false,
                    rejected: true,
                    estimated_bytes: est,
                    budget_bytes: budget,
                });
                rejected.push((
                    q,
                    VgpuError::OutOfMemory {
                        device: 0,
                        requested: est,
                        live: residency,
                        capacity: cap,
                    },
                ));
                continue;
            }
            // Join the current wave while a lane is free and the ledger
            // stays under the soft watermark; a lone over-budget query
            // (between watermarks) still gets its own wave — queue, don't
            // fail.
            let join = cur.len() < lanes && (cur.is_empty() || ledger.saturating_add(fp) <= budget);
            if !join {
                waves.push(std::mem::take(&mut cur));
                ledger = residency;
            }
            let wave = waves.len();
            ledger = ledger.saturating_add(fp);
            cur.push(q);
            admission.push(AdmissionRecord {
                query: q,
                name: queries[q].0.clone(),
                wave: Some(wave),
                queued: wave > 0,
                rejected: false,
                estimated_bytes: est,
                budget_bytes: budget,
            });
        }
        if !cur.is_empty() {
            waves.push(cur);
        }
        admission.sort_by_key(|r| r.query);
        SchedulePlan { waves, admission, rejected }
    }

    /// Admit, schedule and execute `specs`. Per-query reports and result
    /// values are bit-equal to serial runs of the same factories at any
    /// worker count; see the module docs.
    pub fn run<'g, V: Id>(&self, specs: &[QuerySpec<'g, V>]) -> ServiceReport {
        let named: Vec<(String, u64)> =
            specs.iter().map(|s| (s.name.clone(), s.footprint_bytes)).collect();
        let plan = self.plan(&named);
        let k = specs.len();
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..k).map(|_| None).collect();
        for (q, e) in plan.rejected {
            outcomes[q] = Some(QueryOutcome {
                query: q,
                name: specs[q].name.clone(),
                wave: usize::MAX,
                result: Err(e),
                values: Vec::new(),
            });
        }

        let t0 = Instant::now();
        for (w, wave) in plan.waves.iter().enumerate() {
            let wave = wave.as_slice();
            let next = AtomicUsize::new(0);
            let workers = self.policy.workers.max(1).min(wave.len());
            type Done = Vec<(usize, Result<(EnactReport, Vec<u64>)>)>;
            let done: Done = std::thread::scope(|scope| {
                let next = &next;
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut out: Done = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= wave.len() {
                                    break;
                                }
                                let q = wave[i];
                                let spec = &specs[q];
                                let r = (spec.build)().and_then(|mut ex| {
                                    let report = ex.enact(spec.source)?;
                                    let values = ex.harvest();
                                    Ok((report, values))
                                });
                                out.push((q, r));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("service worker panicked"))
                    .collect()
            });
            for (q, r) in done {
                let (result, values) = match r {
                    Ok((report, values)) => (Ok(report), values),
                    Err(e) => (Err(e), Vec::new()),
                };
                outcomes[q] = Some(QueryOutcome {
                    query: q,
                    name: specs[q].name.clone(),
                    wave: w,
                    result,
                    values,
                });
            }
        }
        let wall_time_us = t0.elapsed().as_secs_f64() * 1e6;

        // Deterministic aggregates: fold in fixed wave/dispatch order,
        // never in thread-completion order (f64 addition is not
        // associative).
        let mut serial_sim_us = 0.0;
        let mut concurrent_sim_us = 0.0;
        for wave in &plan.waves {
            let mut wave_max = 0.0f64;
            for &q in wave {
                if let Some(o) = &outcomes[q] {
                    if let Ok(rep) = &o.result {
                        serial_sim_us += rep.sim_time_us;
                        wave_max = wave_max.max(rep.sim_time_us);
                    }
                }
            }
            concurrent_sim_us += wave_max;
        }

        ServiceReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every query resolved to an outcome"))
                .collect(),
            admission: plan.admission,
            waves: plan.waves.len(),
            serial_sim_us,
            concurrent_sim_us,
            wall_time_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(fps: &[u64]) -> Vec<(String, u64)> {
        fps.iter().enumerate().map(|(i, &f)| (format!("q{i}"), f)).collect()
    }

    #[test]
    fn plan_is_deterministic_per_seed_and_varies_across_seeds() {
        let queries = named(&[10, 20, 30, 40, 50, 60, 70, 80]);
        let s1 = Service::new(ServicePolicy { seed: 7, lanes: 3, ..Default::default() });
        let a = s1.plan(&queries);
        let b = s1.plan(&queries);
        assert_eq!(a, b, "same seed, same plan");
        let mut seen_different = false;
        for seed in 0..16 {
            let s2 = Service::new(ServicePolicy { seed, lanes: 3, ..Default::default() });
            if s2.plan(&queries).waves != a.waves {
                seen_different = true;
                break;
            }
        }
        assert!(seen_different, "some seed should permute the dispatch order");
    }

    #[test]
    fn lanes_bound_wave_width_and_later_waves_are_queued() {
        let queries = named(&[1; 10]);
        let plan = Service::new(ServicePolicy { lanes: 4, ..Default::default() }).plan(&queries);
        assert_eq!(plan.waves.len(), 3);
        assert!(plan.waves.iter().all(|w| w.len() <= 4));
        for rec in &plan.admission {
            assert_eq!(rec.queued, rec.wave.unwrap() > 0);
            assert!(!rec.rejected);
        }
        assert!(plan.rejected.is_empty());
    }

    #[test]
    fn watermark_queues_and_hard_cap_rejects() {
        // residency 100, cap 200, watermark 0.85 → budget 170.
        // fp 40 queries: wave ledger 100+40+... queues after the first.
        let policy = ServicePolicy {
            lanes: 0,
            mem_cap: Some(200),
            residency_bytes: 100,
            ..Default::default()
        };
        let plan = Service::new(policy).plan(&named(&[40, 40, 40]));
        assert_eq!(plan.waves.len(), 3, "watermark admits one 40-byte query per wave");
        assert!(plan.rejected.is_empty());
        assert!(plan.admission.iter().any(|r| r.queued));

        // A lone query between watermarks (100+90=190 ≤ 200 but > 170)
        // queues into its own wave instead of failing.
        let plan = Service::new(policy).plan(&named(&[90]));
        assert_eq!(plan.waves.len(), 1);
        assert!(plan.rejected.is_empty());

        // A lone query over the hard cap is rejected, typed.
        let plan = Service::new(policy).plan(&named(&[150]));
        assert!(plan.waves.iter().all(|w| w.is_empty()) || plan.waves.is_empty());
        assert_eq!(plan.rejected.len(), 1);
        assert!(matches!(plan.rejected[0].1, VgpuError::OutOfMemory { requested: 250, .. }));
        assert!(plan.admission[0].rejected);
    }

    #[test]
    fn disabled_admission_never_queues_on_memory() {
        let policy = ServicePolicy { lanes: 0, mem_cap: None, ..Default::default() };
        let plan = Service::new(policy).plan(&named(&[u64::MAX / 2, u64::MAX / 2]));
        assert_eq!(plan.waves.len(), 1, "no cap, no lanes bound: one wave");
        assert!(plan.rejected.is_empty());
    }
}
