//! # mgpu-core — the data-centric multi-GPU graph framework
//!
//! This crate is the paper's primary contribution (§III): a programming
//! model in which an *unmodified single-GPU primitive* — a sequence of
//! advance / filter / compute operations on frontiers — is extended to
//! multiple GPUs by framework-managed machinery at each bulk-synchronous
//! iteration boundary.
//!
//! The programmer specifies ([`MgpuProblem`], mirroring §III-B):
//! * the core single-GPU iteration (built from the [`ops`] operators),
//! * what per-vertex data to communicate ([`problem::Wire`] message type and
//!   the `package` hook),
//! * how to combine received and local data (the `combine` hook — the
//!   `Expand_Incoming` kernel of Appendix A),
//! * the stop condition (empty frontiers by default, plus an optional
//!   global predicate for primitives like PageRank).
//!
//! The framework handles everything else ([`enactor`]): splitting output
//! frontiers into local and remote sub-frontiers, packaging remote
//! sub-frontiers with their associated data, pushing packages to peer GPUs,
//! merging received sub-frontiers with the combiner, managing each GPU from
//! a dedicated CPU thread, overlapping computation and communication on
//! separate streams, and detecting global convergence.
//!
//! Framework-level optimizations from §VI are implemented here:
//! * [`direction`] — direction-optimizing traversal with the cheap FV/BV
//!   switch heuristic and the once-only forward→backward rule;
//! * [`alloc`] — the just-enough memory allocation scheme and its three
//!   comparison schemes (fixed, maximum, preallocation+fusion);
//! * fused advance+filter operators ([`ops::advance_filter_fused`]) that
//!   skip the intermediate frontier entirely (§VI-C).

pub mod alloc;
pub mod async_enactor;
pub mod comm;
pub mod direction;
pub mod enactor;
pub mod executor;
pub mod frontier;
pub mod governor;
pub mod ops;
pub mod problem;
pub mod report;
pub mod resilience;
pub mod service;
pub mod trace;

pub use alloc::{AllocScheme, FrontierBufs};
pub use comm::{
    CommStrategy, CommTopology, MonotoneOrder, Package, PackageEncoding, PackagePolicy,
    SplitScratch, SuppressState, WireEncoding,
};
pub use direction::{Direction, DirectionConfig, DirectionState};
pub use async_enactor::AsyncRunner;
pub use enactor::{EnactConfig, Runner};
pub use executor::{Executor, ExecutorKind};
pub use frontier::{Frontier, FrontierMode};
pub use governor::{Downgrade, GovernorLog, PressurePolicy};
pub use problem::{MgpuProblem, Wire};
pub use report::{CommReduction, DeviceMemStats, EnactReport};
pub use resilience::{CheckpointSink, GlobalCheckpoint, RecoveryLog, RecoveryPolicy, ResilientRunner};
pub use service::{
    AdmissionRecord, BuildExecutor, QueryOutcome, QuerySpec, SchedulePlan, Service, ServicePolicy,
    ServiceReport,
};
pub use trace::{BspRow, Profile, Trace};
