//! Frontier representations: sparse sorted vectors vs dense bitmaps.
//!
//! Gunrock and the paper both treat the frontier data structure as a
//! first-class performance decision: a sparse frontier (a compacted vector
//! of vertex ids) is ideal when few vertices are active, but the backward
//! pass of direction-optimizing BFS iterates a set that starts as *almost
//! every vertex* — there a bitmap costs 1 bit per vertex of bandwidth
//! instead of 32, and membership updates are single-word stores.
//!
//! [`Frontier`] abstracts over both representations while preserving the
//! substrate's determinism contract: **iteration order is ascending vertex
//! id in both representations**, and the active count is maintained
//! incrementally, so any charge derived from a frontier (its length, its
//! out-degree sum, its scan cost) is bit-identical regardless of
//! representation. The density-based auto switch is a pure function of
//! `(len, universe)` — never of thread count or timing — so representation
//! choices replay identically too.
//!
//! The representations only make sense for *sorted* vertex sets (the DOBFS
//! unvisited set, filter outputs over ascending inputs). Push-mode frontiers
//! arrive in emission order and stay plain `Vec<V>`.

use mgpu_graph::Id;

/// Dense-switch threshold: go to a bitmap at density ≥ 1/16 (a sorted `u32`
/// vec costs 32 bits/element; the bitmap costs `universe` bits total, so the
/// bitmap is strictly smaller from 1/32 — the extra factor 2 is hysteresis
/// headroom so iteration-heavy sparse sets do not flap).
const DENSE_AT: usize = 16;
/// Sparse-switch threshold: a dense frontier falls back to the sorted vec
/// below density 1/64 (word-scan overhead dominates once most words are
/// empty; staggered against [`DENSE_AT`] so shrinking sets switch once).
const SPARSE_AT: usize = 64;

/// Which frontier representation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontierMode {
    /// Pick by density: bitmap at ≥ 1/16, sorted vec below 1/64, with
    /// hysteresis in between. The choice depends only on `(len, universe)`.
    #[default]
    Auto,
    /// Always the sorted-vec representation (the legacy behavior).
    Sparse,
    /// Always the bitmap representation.
    Dense,
}

impl FrontierMode {
    /// Short label for reports and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            FrontierMode::Auto => "auto",
            FrontierMode::Sparse => "sparse",
            FrontierMode::Dense => "dense",
        }
    }
}

#[derive(Debug, Clone)]
enum Repr<V> {
    /// Strictly ascending vertex ids.
    Sparse(Vec<V>),
    /// Bit `v` set ⇔ `v` is in the frontier; `count` is maintained.
    Dense { words: Vec<u64>, count: usize },
}

/// A set of vertex ids over a fixed universe `0..universe`, iterated in
/// ascending order by both representations.
#[derive(Debug, Clone)]
pub struct Frontier<V: Id> {
    repr: Repr<V>,
    universe: usize,
    mode: FrontierMode,
}

impl<V: Id> Frontier<V> {
    /// Build from a vertex-space scan: contains every `v` in `0..universe`
    /// with `pred(v)`. The dense path never materializes the id list.
    pub fn from_fn(universe: usize, mode: FrontierMode, pred: impl Fn(usize) -> bool) -> Self {
        let dense = match mode {
            FrontierMode::Sparse => false,
            FrontierMode::Dense => true,
            // estimate nothing: build dense (one bit per scanned vertex),
            // then rebalance on the exact count — still O(universe).
            FrontierMode::Auto => true,
        };
        let mut f = if dense {
            let mut words = vec![0u64; universe.div_ceil(64)];
            let mut count = 0usize;
            for v in 0..universe {
                if pred(v) {
                    words[v / 64] |= 1u64 << (v % 64);
                    count += 1;
                }
            }
            Frontier { repr: Repr::Dense { words, count }, universe, mode }
        } else {
            let ids: Vec<V> = (0..universe).filter(|&v| pred(v)).map(V::from_usize).collect();
            Frontier { repr: Repr::Sparse(ids), universe, mode }
        };
        f.rebalance();
        f
    }

    /// Build from a strictly ascending id list.
    pub fn from_sorted(ids: Vec<V>, universe: usize, mode: FrontierMode) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be strictly ascending");
        debug_assert!(ids.last().is_none_or(|v| v.idx() < universe));
        let mut f = Frontier { repr: Repr::Sparse(ids), universe, mode };
        f.rebalance();
        f
    }

    /// The empty frontier over `0..universe`.
    pub fn empty(universe: usize, mode: FrontierMode) -> Self {
        Frontier { repr: Repr::Sparse(Vec::new()), universe, mode }
    }

    /// Number of active vertices. O(1) in both representations.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(ids) => ids.len(),
            Repr::Dense { count, .. } => *count,
        }
    }

    /// True when no vertex is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the vertex space this frontier ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Active fraction of the universe.
    pub fn density(&self) -> f64 {
        if self.universe == 0 {
            0.0
        } else {
            self.len() as f64 / self.universe as f64
        }
    }

    /// Is the current representation the bitmap?
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// The mode this frontier rebalances under.
    pub fn mode(&self) -> FrontierMode {
        self.mode
    }

    /// Visit every active vertex in ascending id order.
    pub fn for_each(&self, mut f: impl FnMut(V)) {
        match &self.repr {
            Repr::Sparse(ids) => {
                for &v in ids {
                    f(v);
                }
            }
            Repr::Dense { words, .. } => {
                for (w, &word) in words.iter().enumerate() {
                    let base = w * 64;
                    if word == u64::MAX {
                        // Word-at-a-time fast path: a saturated word (the
                        // common case while the DOBFS unvisited set is still
                        // near-full) decodes as a plain counted loop with no
                        // loop-carried bit-clear dependency.
                        for b in 0..64 {
                            f(V::from_usize(base + b));
                        }
                    } else {
                        let mut bits = word;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            f(V::from_usize(base + b));
                            bits &= bits - 1;
                        }
                    }
                }
            }
        }
    }

    /// The active ids as an ascending vector.
    pub fn to_vec(&self) -> Vec<V> {
        match &self.repr {
            Repr::Sparse(ids) => ids.clone(),
            Repr::Dense { count, .. } => {
                let mut out = Vec::with_capacity(*count);
                self.for_each(|v| out.push(v));
                out
            }
        }
    }

    /// Drop every vertex failing `pred`, preserving ascending order, then
    /// rebalance the representation under the frontier's mode.
    pub fn retain(&mut self, pred: impl Fn(V) -> bool) {
        match &mut self.repr {
            Repr::Sparse(ids) => ids.retain(|&v| pred(v)),
            Repr::Dense { words, count } => {
                for (w, word) in words.iter_mut().enumerate() {
                    let base = w * 64;
                    let mut kept = *word;
                    let mut removed = 0usize;
                    if *word == u64::MAX {
                        // saturated-word fast path, see `for_each`
                        for b in 0..64 {
                            if !pred(V::from_usize(base + b)) {
                                kept &= !(1u64 << b);
                                removed += 1;
                            }
                        }
                    } else {
                        let mut bits = *word;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            if !pred(V::from_usize(base + b)) {
                                kept &= !(1u64 << b);
                                removed += 1;
                            }
                            bits &= bits - 1;
                        }
                    }
                    *count -= removed;
                    *word = kept;
                }
            }
        }
        self.rebalance();
    }

    /// Fused shrink + traversal: equivalent to `retain(pred)` followed by
    /// `for_each(visit)` — `visit` runs, in ascending order, on exactly the
    /// vertices that survive `pred` — but in a single pass over the
    /// representation. In the dense regime that halves the bit-decode work,
    /// which is the dominant host cost of the backward pass's per-superstep
    /// maintenance. `pred` must not depend on `visit`'s side effects.
    pub fn retain_visit(&mut self, pred: impl Fn(V) -> bool, mut visit: impl FnMut(V)) {
        match &mut self.repr {
            Repr::Sparse(ids) => ids.retain(|&v| {
                let keep = pred(v);
                if keep {
                    visit(v);
                }
                keep
            }),
            Repr::Dense { words, count } => {
                for (w, word) in words.iter_mut().enumerate() {
                    let base = w * 64;
                    let mut kept = *word;
                    let mut removed = 0usize;
                    if *word == u64::MAX {
                        // saturated-word fast path, see `for_each`
                        for b in 0..64 {
                            let v = V::from_usize(base + b);
                            if pred(v) {
                                visit(v);
                            } else {
                                kept &= !(1u64 << b);
                                removed += 1;
                            }
                        }
                    } else {
                        let mut bits = *word;
                        while bits != 0 {
                            let b = bits.trailing_zeros() as usize;
                            let v = V::from_usize(base + b);
                            if pred(v) {
                                visit(v);
                            } else {
                                kept &= !(1u64 << b);
                                removed += 1;
                            }
                            bits &= bits - 1;
                        }
                    }
                    *count -= removed;
                    *word = kept;
                }
            }
        }
        self.rebalance();
    }

    /// The bitmap words (dense representation only).
    pub(crate) fn words(&self) -> Option<&[u64]> {
        match &self.repr {
            Repr::Dense { words, .. } => Some(words),
            Repr::Sparse(_) => None,
        }
    }

    /// The sorted id slice (sparse representation only).
    pub(crate) fn ids(&self) -> Option<&[V]> {
        match &self.repr {
            Repr::Sparse(ids) => Some(ids),
            Repr::Dense { .. } => None,
        }
    }

    /// Convert to whatever representation the mode and density dictate.
    /// Purely a function of `(len, universe, mode)` — deterministic.
    fn rebalance(&mut self) {
        let want_dense = match self.mode {
            FrontierMode::Sparse => false,
            FrontierMode::Dense => true,
            FrontierMode::Auto => {
                let len = self.len();
                if self.is_dense() {
                    // keep dense until density drops below 1/SPARSE_AT
                    len * SPARSE_AT >= self.universe
                } else {
                    len * DENSE_AT >= self.universe
                }
            }
        };
        match (&self.repr, want_dense) {
            (Repr::Sparse(_), true) => {
                let mut words = vec![0u64; self.universe.div_ceil(64)];
                let mut count = 0usize;
                if let Repr::Sparse(ids) = &self.repr {
                    for &v in ids {
                        words[v.idx() / 64] |= 1u64 << (v.idx() % 64);
                        count += 1;
                    }
                }
                self.repr = Repr::Dense { words, count };
            }
            (Repr::Dense { .. }, false) => {
                let mut ids = Vec::with_capacity(self.len());
                self.for_each(|v| ids.push(v));
                self.repr = Repr::Sparse(ids);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids_of(f: &Frontier<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        f.for_each(|v| out.push(v));
        out
    }

    #[test]
    fn from_fn_matches_filter_in_both_modes() {
        for mode in [FrontierMode::Sparse, FrontierMode::Dense, FrontierMode::Auto] {
            let f = Frontier::<u32>::from_fn(200, mode, |v| v % 3 == 0);
            let expect: Vec<u32> = (0..200).filter(|v| v % 3 == 0).collect();
            assert_eq!(ids_of(&f), expect, "{mode:?}");
            assert_eq!(f.len(), expect.len(), "{mode:?}");
        }
    }

    #[test]
    fn dense_iteration_is_ascending() {
        let f =
            Frontier::<u32>::from_sorted(vec![0, 63, 64, 65, 127, 199], 200, FrontierMode::Dense);
        assert!(f.is_dense());
        assert_eq!(ids_of(&f), vec![0, 63, 64, 65, 127, 199]);
    }

    #[test]
    fn retain_preserves_order_and_count_in_both_modes() {
        for mode in [FrontierMode::Sparse, FrontierMode::Dense] {
            let mut f = Frontier::<u32>::from_fn(128, mode, |_| true);
            f.retain(|v| v % 2 == 1);
            assert_eq!(f.len(), 64, "{mode:?}");
            assert_eq!(ids_of(&f), (0..128u32).filter(|v| v % 2 == 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn auto_mode_switches_dense_to_sparse_as_density_drops() {
        let mut f = Frontier::<u32>::from_fn(6400, FrontierMode::Auto, |_| true);
        assert!(f.is_dense(), "full frontier is dense");
        f.retain(|v| v < 10);
        assert!(!f.is_dense(), "density 10/6400 < 1/64 falls back to sparse");
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn auto_mode_has_hysteresis() {
        // density 1/32: dense stays dense, a fresh sparse build stays sparse
        let n = 3200usize;
        let mut dense = Frontier::<u32>::from_fn(n, FrontierMode::Auto, |_| true);
        dense.retain(|v| (v as usize).is_multiple_of(32));
        assert!(dense.is_dense(), "1/32 ≥ 1/64 keeps the bitmap");
        let sparse = Frontier::<u32>::from_sorted(
            (0..n as u32).step_by(32).collect(),
            n,
            FrontierMode::Auto,
        );
        assert!(!sparse.is_dense(), "1/32 < 1/16 builds sparse");
    }

    #[test]
    fn forced_modes_pin_the_representation() {
        let f = Frontier::<u32>::from_sorted(vec![5], 1_000_000, FrontierMode::Dense);
        assert!(f.is_dense());
        let g = Frontier::<u32>::from_fn(64, FrontierMode::Sparse, |_| true);
        assert!(!g.is_dense());
    }

    #[test]
    fn empty_and_edge_universes() {
        let f = Frontier::<u32>::empty(0, FrontierMode::Auto);
        assert!(f.is_empty());
        assert_eq!(f.density(), 0.0);
        let g = Frontier::<u32>::from_fn(1, FrontierMode::Auto, |_| true);
        assert_eq!(g.len(), 1);
        assert_eq!(ids_of(&g), vec![0]);
    }

    #[test]
    fn to_vec_round_trips() {
        let ids = vec![1u32, 7, 8, 40, 41, 42];
        for mode in [FrontierMode::Sparse, FrontierMode::Dense] {
            let f = Frontier::from_sorted(ids.clone(), 64, mode);
            assert_eq!(f.to_vec(), ids, "{mode:?}");
        }
    }
}
