//! Traversal reports: the measurements every experiment consumes.

use vgpu::{BspCounters, MemoryPool};

use crate::governor::GovernorLog;
use crate::resilience::RecoveryLog;

/// Aggregated per-superstep statistics (summed over devices) — the frontier
/// evolution that drives direction switching and communication volume.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SuperstepTrace {
    /// Input frontier vertices consumed this superstep.
    pub input: u64,
    /// Output frontier vertices produced by the primitive iterations.
    pub output: u64,
    /// Vertices pushed to peers.
    pub sent: u64,
    /// Vertices accepted by combiners into the next input frontier.
    pub combined: u64,
    /// Vertices dropped by monotone send suppression before packaging
    /// (zero under the default configuration).
    pub suppressed: u64,
}

/// Wire-volume reduction accounting, summed over devices: what the
/// suppression cache, the real encodings, and the butterfly collective did
/// during the enact. All zeros under the default configuration except the
/// encoding histogram, which also classifies legacy accounting (list vs
/// bitmap bound) so the default wire mix is visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommReduction {
    /// Vertices dropped before packaging because their key could not
    /// improve any receiver (monotone suppression).
    pub suppressed_vertices: u64,
    /// Wire bytes those vertices would have cost under list accounting.
    pub suppressed_bytes: u64,
    /// Packages that went out list-encoded (or list-accounted).
    pub enc_list: u64,
    /// Packages that went out bitmap-encoded (or bitmap-accounted).
    pub enc_bitmap: u64,
    /// Packages that went out delta-varint-encoded.
    pub enc_delta: u64,
    /// Butterfly collective stages executed (summed over devices and
    /// supersteps; zero under the direct topology).
    pub collective_stages: u64,
}

impl CommReduction {
    /// Fold another device's accounting into this one.
    pub fn merge(&mut self, other: &CommReduction) {
        self.suppressed_vertices += other.suppressed_vertices;
        self.suppressed_bytes += other.suppressed_bytes;
        self.enc_list += other.enc_list;
        self.enc_bitmap += other.enc_bitmap;
        self.enc_delta += other.enc_delta;
        self.collective_stages += other.collective_stages;
    }

    /// Count one package into the encoding histogram.
    pub fn count_package(&mut self, enc: crate::comm::PackageEncoding) {
        match enc {
            crate::comm::PackageEncoding::List => self.enc_list += 1,
            crate::comm::PackageEncoding::Bitmap => self.enc_bitmap += 1,
            crate::comm::PackageEncoding::DeltaVarint => self.enc_delta += 1,
        }
    }
}

/// Per-device memory accounting snapshot taken when an enact finishes —
/// the numbers the CLI summary prints per GPU and the capacity-sweep tests
/// assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceMemStats {
    /// High-water mark of live bytes on the device pool.
    pub peak: u64,
    /// Live bytes at snapshot time.
    pub live: u64,
    /// Reallocation events on the pool (cumulative since system creation).
    pub reallocs: u64,
    /// Bytes copied by those reallocations.
    pub realloc_copied: u64,
}

impl DeviceMemStats {
    /// Snapshot a device pool.
    pub fn of(pool: &MemoryPool) -> Self {
        DeviceMemStats {
            peak: pool.peak(),
            live: pool.live(),
            reallocs: pool.reallocs(),
            realloc_copied: pool.realloc_copied(),
        }
    }
}

/// The outcome of one enacted traversal.
#[derive(Debug, Clone)]
pub struct EnactReport {
    /// Primitive name.
    pub primitive: &'static str,
    /// Number of devices used.
    pub n_devices: usize,
    /// BSP supersteps executed (S).
    pub iterations: usize,
    /// Simulated makespan in microseconds (the number every figure reports,
    /// produced by the calibrated cost model).
    pub sim_time_us: f64,
    /// Host wall-clock of the enact call in microseconds (real execution on
    /// CPU threads; useful for sanity checks, not for paper comparisons).
    pub wall_time_us: f64,
    /// Aggregated BSP counters over all devices.
    pub totals: BspCounters,
    /// Per-device counters.
    pub per_device: Vec<BspCounters>,
    /// Peak device-memory footprint over devices, in bytes.
    pub peak_memory_per_device: u64,
    /// Sum of peak memory over devices, in bytes.
    pub total_peak_memory: u64,
    /// Total reallocation events across device pools since system creation
    /// (the expensive event just-enough allocation works to keep rare,
    /// §VI-B; cumulative across enacts on the same runner).
    pub pool_reallocs: u64,
    /// Per-device memory accounting snapshots (peak/live/reallocs), indexed
    /// by device id.
    pub mem_per_device: Vec<DeviceMemStats>,
    /// Per-superstep frontier statistics, summed over devices.
    pub history: Vec<SuperstepTrace>,
    /// Recovery events (retries, checkpoints, failovers) — all zero/empty
    /// for a fault-free run under the default policy.
    pub recovery: RecoveryLog,
    /// Itemized memory-pressure governor decisions (admission downgrades,
    /// chunked passes, spills, reclaim retries) — quiet when the governor
    /// never had to act.
    pub governor: GovernorLog,
    /// Wire-volume reduction accounting (suppression, encoding histogram,
    /// collective stages), summed over devices.
    pub comm: CommReduction,
    /// The structured event trace of the run, present when
    /// `EnactConfig::tracing` was on (see [`crate::trace`]). Deliberately
    /// excluded from [`Self::same_simulation`]: the trace *describes* the
    /// simulation, it is not part of it — a traced and an untraced run of
    /// the same workload must compare equal.
    pub trace: Option<crate::trace::Trace>,
}

impl EnactReport {
    /// Traversed-edges-per-second metric in GTEPS, given the number of edges
    /// the traversal is credited with (the paper credits DOBFS with the full
    /// |E| of the traversed component even though edge skipping visits far
    /// fewer — that convention is what makes 900-GTEPS DOBFS numbers
    /// possible, §VII-B).
    pub fn gteps(&self, credited_edges: usize) -> f64 {
        if self.sim_time_us <= 0.0 {
            return 0.0;
        }
        credited_edges as f64 / self.sim_time_us / 1e3
    }

    /// Simulated milliseconds (the unit of Tables IV and V).
    pub fn sim_ms(&self) -> f64 {
        self.sim_time_us / 1e3
    }

    /// Speedup of this run over a baseline run (baseline_time / this_time).
    pub fn speedup_over(&self, baseline: &EnactReport) -> f64 {
        baseline.sim_time_us / self.sim_time_us
    }

    /// Fold a subsequent enact on the same runner into this report — the
    /// aggregate a repeated single-source campaign pays, which is what the
    /// batched multi-source engine is priced against. Supersteps, simulated
    /// time, and traffic accumulate; memory high-water marks and cumulative
    /// pool counters take the max (the pool persists across enacts, so its
    /// numbers are already cumulative, not per-enact).
    pub fn absorb(&mut self, other: &EnactReport) {
        self.iterations += other.iterations;
        self.sim_time_us += other.sim_time_us;
        self.wall_time_us += other.wall_time_us;
        // BspCounters::merge takes the max of supersteps (its callers merge
        // concurrent devices); sequential enacts add theirs end to end.
        let steps = self.totals.supersteps + other.totals.supersteps;
        self.totals.merge(&other.totals);
        self.totals.supersteps = steps;
        for (mine, theirs) in self.per_device.iter_mut().zip(&other.per_device) {
            let s = mine.supersteps + theirs.supersteps;
            mine.merge(theirs);
            mine.supersteps = s;
        }
        self.peak_memory_per_device = self.peak_memory_per_device.max(other.peak_memory_per_device);
        self.total_peak_memory = self.total_peak_memory.max(other.total_peak_memory);
        self.pool_reallocs = self.pool_reallocs.max(other.pool_reallocs);
        for (mine, theirs) in self.mem_per_device.iter_mut().zip(&other.mem_per_device) {
            mine.peak = mine.peak.max(theirs.peak);
            mine.live = theirs.live;
            mine.reallocs = mine.reallocs.max(theirs.reallocs);
            mine.realloc_copied = mine.realloc_copied.max(theirs.realloc_copied);
        }
        self.history.extend(other.history.iter().copied());
        self.recovery.absorb(&other.recovery);
        self.governor.absorb(&other.governor);
        self.comm.merge(&other.comm);
    }

    /// Bit-identical *simulation* equality: everything except host
    /// wall-clock, with simulated times compared by bit pattern. Two runs of
    /// the same workload under the same fault plan and policy must satisfy
    /// this regardless of `kernel_threads` or thread scheduling — the
    /// determinism contract the resilience tests assert.
    pub fn same_simulation(&self, other: &EnactReport) -> bool {
        self.primitive == other.primitive
            && self.n_devices == other.n_devices
            && self.iterations == other.iterations
            && self.sim_time_us.to_bits() == other.sim_time_us.to_bits()
            && self.totals == other.totals
            && self.per_device == other.per_device
            && self.peak_memory_per_device == other.peak_memory_per_device
            && self.total_peak_memory == other.total_peak_memory
            && self.pool_reallocs == other.pool_reallocs
            && self.mem_per_device == other.mem_per_device
            && self.history == other.history
            && self.recovery == other.recovery
            && self.governor == other.governor
            && self.comm == other.comm
    }

    /// Serialize the report as a JSON object (flat, self-describing) for
    /// external plotting/analysis pipelines. Hand-rolled to keep the
    /// dependency set small; every field is either numeric or a quoted
    /// ASCII identifier, so no escaping is needed.
    pub fn to_json(&self) -> String {
        let c = &self.totals;
        format!(
            concat!(
                "{{\"primitive\":\"{}\",\"n_devices\":{},\"iterations\":{},",
                "\"sim_time_us\":{},\"wall_time_us\":{},",
                "\"w_items\":{},\"c_items\":{},\"h_vertices\":{},",
                "\"h_bytes_sent\":{},\"h_bytes_recv\":{},\"h_messages\":{},",
                "\"kernel_launches\":{},\"w_time_us\":{},\"c_time_us\":{},",
                "\"h_time_us\":{},\"sync_time_us\":{},",
                "\"peak_memory_per_device\":{},\"total_peak_memory\":{},",
                "\"pool_reallocs\":{},",
                "\"kernel_retries\":{},\"transfer_retries\":{},",
                "\"faults_injected\":{},\"checkpoints_taken\":{},",
                "\"stragglers_detected\":{},\"butterfly_fallbacks\":{},\"failovers\":{},",
                "\"lost_devices\":{},\"lost_time_us\":{},",
                "\"downgrades\":{},\"chunked_advances\":{},\"chunk_passes\":{},",
                "\"spill_events\":{},\"spilled_bytes\":{},\"reclaim_retries\":{},",
                "\"suppressed_vertices\":{},\"suppressed_bytes\":{},",
                "\"enc_list\":{},\"enc_bitmap\":{},\"enc_delta\":{},",
                "\"collective_stages\":{}}}"
            ),
            self.primitive,
            self.n_devices,
            self.iterations,
            self.sim_time_us,
            self.wall_time_us,
            c.w_items,
            c.c_items,
            c.h_vertices,
            c.h_bytes_sent,
            c.h_bytes_recv,
            c.h_messages,
            c.kernel_launches,
            c.w_time_us,
            c.c_time_us,
            c.h_time_us,
            c.sync_time_us,
            self.peak_memory_per_device,
            self.total_peak_memory,
            self.pool_reallocs,
            self.recovery.kernel_retries,
            self.recovery.transfer_retries,
            self.recovery.faults_injected,
            self.recovery.checkpoints_taken,
            self.recovery.stragglers_detected,
            self.recovery.butterfly_fallbacks,
            self.recovery.failovers,
            self.recovery.lost_devices.len(),
            self.recovery.lost_time_us,
            self.governor.downgrades.len(),
            self.governor.chunked_advances,
            self.governor.chunk_passes,
            self.governor.spill_events,
            self.governor.spilled_bytes,
            self.governor.reclaim_retries,
            self.comm.suppressed_vertices,
            self.comm.suppressed_bytes,
            self.comm.enc_list,
            self.comm.enc_bitmap,
            self.comm.enc_delta,
            self.comm.collective_stages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(us: f64) -> EnactReport {
        EnactReport {
            primitive: "test",
            n_devices: 1,
            iterations: 3,
            sim_time_us: us,
            wall_time_us: 1.0,
            totals: BspCounters::default(),
            per_device: vec![],
            peak_memory_per_device: 0,
            total_peak_memory: 0,
            pool_reallocs: 0,
            mem_per_device: Vec::new(),
            history: Vec::new(),
            recovery: RecoveryLog::default(),
            governor: GovernorLog::default(),
            comm: CommReduction::default(),
            trace: None,
        }
    }

    #[test]
    fn gteps_is_edges_over_time() {
        let r = report(1000.0); // 1 ms
        assert!((r.gteps(2_000_000) - 2.0).abs() < 1e-9, "2M edges / 1 ms = 2 GTEPS");
    }

    #[test]
    fn speedup_is_ratio() {
        let fast = report(500.0);
        let slow = report(2000.0);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_gives_zero_gteps() {
        assert_eq!(report(0.0).gteps(100), 0.0);
    }

    #[test]
    fn absorb_accumulates_sequential_enacts() {
        let mut a = report(100.0);
        a.totals.supersteps = 3;
        a.totals.h_vertices = 10;
        a.peak_memory_per_device = 50;
        let mut b = report(50.0);
        b.totals.supersteps = 2;
        b.totals.h_vertices = 4;
        b.peak_memory_per_device = 80;
        a.absorb(&b);
        assert_eq!(a.iterations, 6);
        assert_eq!(a.totals.supersteps, 5, "sequential supersteps add, not max");
        assert_eq!(a.totals.h_vertices, 14);
        assert!((a.sim_time_us - 150.0).abs() < 1e-12);
        assert_eq!(a.peak_memory_per_device, 80, "peaks take the max");
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let j = report(123.5).to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"primitive\":\"test\""));
        assert!(j.contains("\"sim_time_us\":123.5"));
        assert!(j.contains("\"iterations\":3"));
        assert!(j.contains("\"downgrades\":0"));
        assert!(j.contains("\"butterfly_fallbacks\":0"));
        assert!(j.contains("\"spilled_bytes\":0"));
        assert!(j.contains("\"suppressed_vertices\":0"));
        assert!(j.contains("\"enc_delta\":0"));
        assert!(j.contains("\"collective_stages\":0"));
        // balanced braces and quotes
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('"').count() % 2, 0);
    }
}
