//! The multi-GPU enactor: one dedicated CPU thread per device, BSP
//! supersteps with framework-managed communication (§III-B, Fig. 1).
//!
//! Per iteration, each device thread:
//!
//! 1. runs the unmodified single-GPU `iteration` on its local input
//!    frontier (compute stream);
//! 2. splits the output frontier into local and remote sub-frontiers,
//!    packages the remote ones with the programmer's associated data, and
//!    pushes each package to its peer (communication stream — the transfer
//!    waits on a compute-stream event, so computation and communication
//!    overlap exactly as with `cudaStreamWaitEvent`);
//! 3. rendezvous; drains its inbox, waits for each package's simulated
//!    arrival, and runs the combine kernel (`Expand_Incoming`), assembling
//!    the next input frontier from the local sub-frontier plus combined
//!    received vertices;
//! 4. ends the superstep: clocks are max-reduced across devices (BSP global
//!    sync), the per-iteration overhead `l` is charged, and convergence is
//!    evaluated (all devices locally done, a primitive-specific global
//!    predicate, or the iteration cap).
//!
//! A device thread that fails (e.g. out of memory) keeps participating in
//! rendezvous with an abort flag raised so no peer deadlocks; the enact call
//! returns the root-cause error.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Instant;

use mgpu_graph::Id;
use mgpu_partition::{DistGraph, SubGraph};
use parking_lot::Mutex;
use vgpu::memory::Reservation;
use vgpu::{
    Device, Event, Interconnect, KernelKind, Mailbox, Result, SimSystem, SyncPoint, VgpuError,
    COMM_STREAM, COMPUTE_STREAM,
};

use crate::alloc::{AllocScheme, FrontierBufs};
use crate::comm::{broadcast_package, split_and_package, CommStrategy, Package};
use crate::problem::MgpuProblem;
use crate::report::{EnactReport, SuperstepTrace};

/// Per-enact configuration overrides.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnactConfig {
    /// Override the primitive's allocation scheme (Fig. 3 sweeps this).
    pub alloc_scheme: Option<AllocScheme>,
    /// Override the primitive's communication strategy.
    pub comm: Option<CommStrategy>,
    /// Override the primitive's iteration cap.
    pub max_iterations: Option<usize>,
    /// Host threads for kernel bodies on every device (default: the
    /// `MGPU_KERNEL_THREADS` env var, else available parallelism). Purely a
    /// wall-clock knob — simulated time and BSP counters are identical at
    /// every value (see `vgpu::par`).
    pub kernel_threads: Option<usize>,
}

struct PerGpu<V: Id, S> {
    state: S,
    bufs: FrontierBufs<V>,
    /// Keeps the subgraph topology charged against the device pool for the
    /// runner's lifetime.
    _topology: Reservation,
}

/// A primitive bound to a partitioned graph on a system: initialize once,
/// enact many times (the paper's `Init` / `Reset`+`Enact` split).
pub struct Runner<'g, V: Id, O: Id, P: MgpuProblem<V, O>> {
    system: SimSystem,
    dist: &'g DistGraph<V, O>,
    problem: P,
    config: EnactConfig,
    per_gpu: Vec<PerGpu<V, P::State>>,
}

impl<'g, V: Id, O: Id, P: MgpuProblem<V, O>> Runner<'g, V, O, P> {
    /// Bind `problem` to `dist` on `system`: reserves each subgraph's
    /// topology in device memory, initializes per-GPU state and allocates
    /// the scheme-managed frontier buffers.
    pub fn new(
        mut system: SimSystem,
        dist: &'g DistGraph<V, O>,
        problem: P,
        config: EnactConfig,
    ) -> Result<Self> {
        assert_eq!(
            system.n_devices(),
            dist.n_parts,
            "system device count must match partition count"
        );
        let scheme = config.alloc_scheme.unwrap_or_else(|| problem.alloc_scheme());
        // Id-width bandwidth factor (Table V): baseline is 32-bit vertices
        // with 32-bit offsets; wider ids read proportionally more per edge.
        let width_factor = (V::BYTES as f64 + O::BYTES as f64 / 4.0) / 5.0;
        let mut per_gpu = Vec::with_capacity(dist.n_parts);
        for (dev, sub) in system.devices.iter_mut().zip(dist.parts.iter()) {
            dev.set_width_factor(width_factor);
            if let Some(t) = config.kernel_threads {
                dev.set_kernel_threads(t);
            }
            let bytes = sub.topology_bytes();
            let topology = dev.pool().reserve_external(bytes)?;
            // charge the H2D copy of the graph at memory bandwidth
            let cost = dev.profile().local_copy_us(bytes);
            dev.charge(COMPUTE_STREAM, cost, 0.0)?;
            let state = problem.init(dev, sub)?;
            let bufs = FrontierBufs::new(dev, scheme, sub.n_vertices(), sub.n_edges())?;
            per_gpu.push(PerGpu { state, bufs, _topology: topology });
        }
        Ok(Runner { system, dist, problem, config, per_gpu })
    }

    /// The allocation scheme in force.
    pub fn scheme(&self) -> AllocScheme {
        self.per_gpu[0].bufs.scheme()
    }

    /// Access the underlying system (for memory / counter inspection).
    pub fn system(&self) -> &SimSystem {
        &self.system
    }

    /// Dissolve the runner, returning the system (per-GPU state and buffer
    /// reservations are dropped — device memory is released).
    pub fn into_system(self) -> SimSystem {
        self.system
    }

    /// Run one traversal from `src` (a *global* vertex id; `None` for
    /// primitives without a source, e.g. PR and CC). Device clocks and
    /// counters are reset so each enact reports an independent measurement.
    pub fn enact(&mut self, src: Option<V>) -> Result<EnactReport> {
        self.system.reset_clocks();
        let n = self.dist.n_parts;
        let located = src.map(|g| self.dist.locate(g));
        let sync = SyncPoint::new(n);
        // Packages travel as `Arc`s: a broadcast to n−1 peers posts n−1
        // pointers to one package, not n−1 deep copies (the wire cost is
        // still charged per peer — the copies that disappear are host-side).
        let mailbox: Mailbox<Arc<Package<V, P::Msg>>> = Mailbox::new(n);
        let abort = AtomicBool::new(false);
        let first_error: Mutex<Option<VgpuError>> = Mutex::new(None);
        let comm = self.config.comm;
        let max_iterations =
            self.config.max_iterations.unwrap_or_else(|| self.problem.max_iterations());

        let problem = &self.problem;
        let interconnect = std::sync::Arc::clone(&self.system.interconnect);
        let t0 = Instant::now();
        let iterations: Vec<Result<(usize, Vec<SuperstepTrace>)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for ((dev, per), sub) in self
                .system
                .devices
                .iter_mut()
                .zip(self.per_gpu.iter_mut())
                .zip(self.dist.parts.iter())
            {
                let src_local = match located {
                    Some((gpu, local)) if gpu == dev.id() => Some(local),
                    _ => None,
                };
                let sync = &sync;
                let mailbox = &mailbox;
                let abort = &abort;
                let first_error = &first_error;
                let interconnect = std::sync::Arc::clone(&interconnect);
                handles.push(scope.spawn(move || {
                    run_gpu(
                        problem,
                        dev,
                        per,
                        sub,
                        &interconnect,
                        sync,
                        mailbox,
                        comm,
                        max_iterations,
                        abort,
                        first_error,
                        src_local,
                    )
                }));
            }
            handles.into_iter().map(|h| h.join().expect("device thread panicked")).collect()
        });
        let wall_time_us = t0.elapsed().as_secs_f64() * 1e6;

        let mut iters = 0usize;
        let mut history: Vec<SuperstepTrace> = Vec::new();
        for r in iterations {
            match r {
                Ok((i, local_hist)) => {
                    iters = iters.max(i);
                    if history.len() < local_hist.len() {
                        history.resize(local_hist.len(), SuperstepTrace::default());
                    }
                    for (acc, t) in history.iter_mut().zip(&local_hist) {
                        acc.input += t.input;
                        acc.output += t.output;
                        acc.sent += t.sent;
                        acc.combined += t.combined;
                    }
                }
                Err(VgpuError::Aborted) => {}
                Err(e) => return Err(e),
            }
        }
        if abort.load(Relaxed) {
            return Err(first_error.lock().take().unwrap_or(VgpuError::Aborted));
        }

        Ok(EnactReport {
            primitive: self.problem.name(),
            n_devices: n,
            iterations: iters,
            sim_time_us: self.system.makespan_us(),
            wall_time_us,
            totals: self.system.total_counters(),
            per_device: self.system.devices.iter().map(|d| d.counters).collect(),
            peak_memory_per_device: self.system.peak_memory_per_device(),
            total_peak_memory: self.system.total_peak_memory(),
            pool_reallocs: self.system.devices.iter().map(|d| d.pool().reallocs()).sum(),
            history,
        })
    }

    /// Access a device's per-GPU primitive state (e.g. to read labels or
    /// ranks after an enact).
    pub fn state(&self, gpu: usize) -> &P::State {
        &self.per_gpu[gpu].state
    }
}

/// The per-device control loop (the `BFSThread` + `Iteration_Loop` of
/// Appendix A).
#[allow(clippy::too_many_arguments)]
fn run_gpu<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    interconnect: &Interconnect,
    sync: &SyncPoint,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    comm: Option<CommStrategy>,
    max_iterations: usize,
    abort: &AtomicBool,
    first_error: &Mutex<Option<VgpuError>>,
    src_local: Option<V>,
) -> Result<(usize, Vec<SuperstepTrace>)> {
    let n = sync.n();
    let gpu = dev.id();
    let mut failed = false;
    let fail = |e: VgpuError, failed: &mut bool| {
        abort.store(true, Relaxed);
        first_error.lock().get_or_insert(e);
        *failed = true;
    };

    // Reset: primitive state + initial frontier ("Put tsrc into initial
    // frontier on GPU src_gpu"). The host vector drives the iteration
    // directly; commit_output only establishes device residency (no
    // copy-back — the contents are by construction identical).
    let mut input: Vec<V> = match problem.reset(dev, sub, &mut per.state, src_local) {
        Ok(f) => f,
        Err(e) => {
            fail(e, &mut failed);
            Vec::new()
        }
    };
    if !failed {
        if let Err(e) = per.bufs.commit_output(dev, &input) {
            fail(e, &mut failed);
        }
    }

    let mut iter = 0usize;
    let mut history: Vec<SuperstepTrace> = Vec::new();
    loop {
        let mut trace = SuperstepTrace { input: input.len() as u64, ..Default::default() };
        let sent_before = dev.counters.h_vertices;
        // Strategy for this superstep: identical on every GPU because state
        // phases evolve from the shared reduction.
        let comm_k = comm.unwrap_or_else(|| problem.comm_now(&per.state));
        // ---- compute + split/package/push (Fig. 1's top half) ----
        let local_part: Vec<V> = if !failed && !abort.load(Relaxed) {
            match compute_and_send(
                problem,
                dev,
                per,
                sub,
                interconnect,
                mailbox,
                comm_k,
                &input,
                iter,
                n,
            ) {
                Ok((local, output_len)) => {
                    trace.output = output_len;
                    local
                }
                Err(e) => {
                    fail(e, &mut failed);
                    Vec::new()
                }
            }
        } else {
            Vec::new()
        };

        // ---- rendezvous: every peer's pushes are posted ----
        sync.barrier(dev.now(), false);

        // ---- combine received sub-frontiers (Fig. 1's bottom half) ----
        let next_input: Vec<V> = if !failed && !abort.load(Relaxed) {
            match combine_received(problem, dev, per, sub, mailbox, comm_k, local_part) {
                Ok(v) => v,
                Err(e) => {
                    fail(e, &mut failed);
                    Vec::new()
                }
            }
        } else {
            let _ = mailbox.drain(gpu); // keep inboxes clean for peers
            Vec::new()
        };

        trace.sent = dev.counters.h_vertices - sent_before;
        trace.combined = next_input.len() as u64; // local part + combined adds
        history.push(trace);

        // ---- superstep boundary: global sync + convergence ----
        let locally_done = failed || problem.locally_done(&per.state, &next_input);
        let contribution = problem.contribution(&per.state, &next_input);
        let reduce = sync.superstep(dev.now(), locally_done, contribution);
        dev.end_superstep(n, reduce.max_time_us);
        iter += 1;
        problem.after_superstep(&mut per.state, &reduce, iter);

        if abort.load(Relaxed) {
            return Err(if failed {
                first_error.lock().clone().unwrap_or(VgpuError::Aborted)
            } else {
                VgpuError::Aborted
            });
        }
        if reduce.done_count == n || problem.globally_done(&reduce, iter) || iter >= max_iterations
        {
            return Ok((iter, history));
        }
        input = next_input;
    }
}

#[allow(clippy::too_many_arguments)]
fn compute_and_send<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    interconnect: &Interconnect,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    comm: CommStrategy,
    input: &[V],
    iter: usize,
    n: usize,
) -> Result<(Vec<V>, u64)> {
    let gpu = dev.id();
    let output = problem.iteration(dev, sub, &mut per.state, &mut per.bufs, input, iter)?;
    let output_len = output.len() as u64;

    type Sends<V, M> = Vec<(usize, Arc<Package<V, M>>)>;
    let (local, sends): (Vec<V>, Sends<V, P::Msg>) = if n == 1 {
        (output, Vec::new())
    } else {
        match comm {
            CommStrategy::Selective => {
                let state = &per.state;
                let (local, pkgs) =
                    split_and_package(dev, sub, &output, &mut per.bufs.split, |v| {
                        problem.package(state, v)
                    })?;
                let sends = pkgs
                    .into_iter()
                    .enumerate()
                    .filter_map(|(j, p)| p.map(|p| (j, Arc::new(p))))
                    .collect();
                (local, sends)
            }
            CommStrategy::Broadcast => {
                let state = &per.state;
                let pkg = broadcast_package(dev, sub, &output, |v| problem.package(state, v))?;
                // the output frontier itself is the local part — no copy
                let sends = if pkg.is_empty() {
                    Vec::new()
                } else {
                    let pkg = Arc::new(pkg);
                    (0..n).filter(|&j| j != gpu).map(|j| (j, Arc::clone(&pkg))).collect()
                };
                (output, sends)
            }
        }
    };

    // Push packages on the communication stream, which waits for the
    // packaging work on the compute stream (cudaStreamWaitEvent analog).
    if !sends.is_empty() {
        let ready = dev.record_event(COMPUTE_STREAM);
        dev.stream_wait(COMM_STREAM, ready)?;
        for (j, pkg) in sends {
            let bytes = pkg.wire_bytes();
            // The sender's copy engine is occupied for the bandwidth
            // component; the wire latency only delays arrival at the peer.
            let occupancy = interconnect.occupancy_us(gpu, j, bytes);
            let sent_at = dev.charge(COMM_STREAM, occupancy, 0.0)?;
            let arrived_at = sent_at + interconnect.latency_us(gpu, j);
            dev.counters.h_bytes_sent += interconnect.charged_bytes(bytes);
            dev.counters.h_vertices += pkg.len() as u64;
            dev.counters.h_messages += 1;
            dev.counters.h_time_us += occupancy;
            mailbox.send(gpu, j, Event::at(arrived_at), pkg);
        }
    }
    Ok((local, output_len))
}

fn combine_received<V: Id, O: Id, P: MgpuProblem<V, O>>(
    problem: &P,
    dev: &mut Device,
    per: &mut PerGpu<V, P::State>,
    sub: &SubGraph<V, O>,
    mailbox: &Mailbox<Arc<Package<V, P::Msg>>>,
    comm: CommStrategy,
    local_part: Vec<V>,
) -> Result<Vec<V>> {
    let gpu = dev.id();
    let mut next = local_part;
    for delivery in mailbox.drain(gpu) {
        dev.stream_wait(COMM_STREAM, delivery.arrival)?;
        let pkg = delivery.payload;
        dev.counters.h_bytes_recv += pkg.wire_bytes();
        let state = &mut per.state;
        // accepted vertices append straight onto the merged frontier — the
        // per-package `added` temporary is gone
        let next_ref = &mut next;
        dev.kernel(COMM_STREAM, KernelKind::Combine, || {
            for (i, &wire) in pkg.vertices.iter().enumerate() {
                let v = match comm {
                    CommStrategy::Selective => Some(wire),
                    CommStrategy::Broadcast => sub.from_global(wire),
                };
                if let Some(v) = v {
                    if problem.combine(state, v, &pkg.msgs[i]) {
                        next_ref.push(v);
                    }
                }
            }
            ((), pkg.len() as u64)
        })?;
    }
    // Make the merged frontier resident under the allocation scheme and let
    // the next iteration's compute wait for combine completion.
    per.bufs.commit_output(dev, &next)?;
    let done = dev.record_event(COMM_STREAM);
    dev.stream_wait(COMPUTE_STREAM, done)?;
    Ok(next)
}
